//! Criterion benchmarks that regenerate (scaled-down) data points of every figure of
//! the paper, so `cargo bench` exercises the same code paths as the experiment
//! binaries.  Each benchmark measures the time to produce one data point; the full
//! tables/figures are produced by the `fig*`/`table*` binaries (`cargo run --release
//! -p vliw-bench --bin fig8`).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use cvliw_core::UnrollPolicy;
use vliw_arch::MachineConfig;
use vliw_bench::{run_corpus, Algorithm, Baseline, Sweep};
use vliw_timing::CycleTimeModel;
use vliw_workloads::{LoopCorpus, SpecFp95};

fn small_corpus(bench: SpecFp95) -> LoopCorpus {
    let mut c = LoopCorpus::generate(bench);
    c.loops.truncate(4);
    c
}

/// Figure 4 data point: relative IPC of one configuration, BSA vs N&E.
fn fig4_point(c: &mut Criterion) {
    let corpus = small_corpus(SpecFp95::Hydro2d);
    let mut group = c.benchmark_group("fig4-point");
    for (label, alg) in [
        ("bsa", Algorithm::Bsa),
        ("ne", Algorithm::NystromEichenberger),
    ] {
        for buses in [1usize, 4] {
            let machine = MachineConfig::four_cluster(buses, 1);
            group.bench_with_input(
                BenchmarkId::new(label, format!("{buses}bus")),
                &machine,
                |b, m| {
                    b.iter(|| {
                        let mut sweep = Sweep::new();
                        let id = sweep.cell_vs(
                            m.clone(),
                            alg,
                            UnrollPolicy::None,
                            Baseline::UnifiedCounterpart,
                        );
                        sweep
                            .run(std::slice::from_ref(&corpus))
                            .mean_relative_ipc(id)
                    });
                },
            );
        }
    }
    group.finish();
}

/// Figure 8 data point: one benchmark, one configuration, each unrolling policy.
fn fig8_point(c: &mut Criterion) {
    let corpus = small_corpus(SpecFp95::Swim);
    let machine = MachineConfig::two_cluster(1, 2);
    let mut group = c.benchmark_group("fig8-point");
    for policy in UnrollPolicy::ALL {
        group.bench_function(policy.label(), |b| {
            b.iter(|| run_corpus(&corpus, &machine, Algorithm::Bsa, policy));
        });
    }
    group.finish();
}

/// Figure 9 / Table 2 data point: cycle-time model evaluation (cheap, but part of the
/// pipeline).
fn table2_point(c: &mut Criterion) {
    let model = CycleTimeModel::new();
    let configs = [
        MachineConfig::unified(),
        MachineConfig::two_cluster(1, 1),
        MachineConfig::four_cluster(2, 1),
    ];
    c.bench_function("table2-cycle-times", |b| {
        b.iter(|| configs.iter().map(|m| model.cycle_time_ps(m)).sum::<f64>());
    });
}

/// Figure 10 data point: code size of one corpus under selective unrolling.
fn fig10_point(c: &mut Criterion) {
    let corpus = small_corpus(SpecFp95::Applu);
    let machine = MachineConfig::four_cluster(1, 1);
    c.bench_function("fig10-codesize-point", |b| {
        b.iter(|| {
            let r = run_corpus(&corpus, &machine, Algorithm::Bsa, UnrollPolicy::Selective);
            (r.code_size.useful_ops, r.code_size.total_slots)
        });
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = fig4_point, fig8_point, table2_point, fig10_point
}
criterion_main!(benches);
