//! Criterion micro-benchmarks of the schedulers themselves: how fast BSA, the
//! two-phase baseline and the unified SMS scheduler process representative loops, and
//! the cost of the unrolling policies.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use cvliw_core::{
    BsaScheduler, LoadBalancedScheduler, NeScheduler, RoundRobinScheduler, SelectiveUnroller,
    UnrollPolicy,
};
use vliw_arch::MachineConfig;
use vliw_sms::SmsScheduler;
use vliw_workloads::{kernels, LoopCorpus, SpecFp95};

fn scheduler_throughput(c: &mut Criterion) {
    let machine2 = MachineConfig::two_cluster(1, 1);
    let machine4 = MachineConfig::four_cluster(1, 1);
    let unified = MachineConfig::unified();
    let loops = vec![
        ("saxpy", kernels::saxpy(1000)),
        ("stencil3", kernels::stencil3(1000)),
        ("jacobi5", kernels::jacobi5(1000)),
        ("tridiag", kernels::tridiag(1000)),
    ];

    let mut group = c.benchmark_group("scheduler-throughput");
    for (name, graph) in &loops {
        group.bench_with_input(BenchmarkId::new("unified-sms", name), graph, |b, g| {
            let s = SmsScheduler::new(&unified);
            b.iter(|| s.schedule(g).unwrap());
        });
        group.bench_with_input(BenchmarkId::new("bsa-2cluster", name), graph, |b, g| {
            let s = BsaScheduler::new(&machine2);
            b.iter(|| s.schedule(g).unwrap());
        });
        group.bench_with_input(BenchmarkId::new("bsa-4cluster", name), graph, |b, g| {
            let s = BsaScheduler::new(&machine4);
            b.iter(|| s.schedule(g).unwrap());
        });
        group.bench_with_input(BenchmarkId::new("ne-4cluster", name), graph, |b, g| {
            let s = NeScheduler::new(&machine4);
            b.iter(|| s.schedule(g).unwrap());
        });
    }
    group.finish();
}

fn unrolling_policies(c: &mut Criterion) {
    let machine = MachineConfig::four_cluster(1, 2);
    let graph = kernels::jacobi5(1000);
    let mut group = c.benchmark_group("unrolling-policy");
    for policy in UnrollPolicy::ALL {
        group.bench_function(policy.label(), |b| {
            let driver = SelectiveUnroller::new(BsaScheduler::new(&machine));
            b.iter(|| driver.schedule_with_policy(&graph, policy).unwrap());
        });
    }
    group.finish();
}

fn corpus_scheduling(c: &mut Criterion) {
    // One whole benchmark corpus end to end (what the figure binaries do per data
    // point); kept to a single small corpus so `cargo bench` stays quick.
    let mut corpus = LoopCorpus::generate(SpecFp95::Mgrid);
    corpus.loops.truncate(6);
    let machine = MachineConfig::four_cluster(1, 1);
    c.bench_function("corpus-mgrid-4cluster-bsa", |b| {
        b.iter(|| {
            vliw_bench::run_corpus(
                &corpus,
                &machine,
                vliw_bench::Algorithm::Bsa,
                UnrollPolicy::Selective,
            )
        });
    });
}

/// Ablation: the paper's profit-driven single-pass assignment vs. two deliberately
/// naive assignment policies (round-robin and balance-only), measured both as
/// scheduler runtime and — through the thresholds asserted in the unit tests — as
/// schedule quality.
fn ablation_assignment_policies(c: &mut Criterion) {
    let machine = MachineConfig::two_cluster(1, 1);
    let graph = kernels::hydro(1000);
    let mut group = c.benchmark_group("ablation-assignment");
    group.bench_function("bsa-profit", |b| {
        let s = BsaScheduler::new(&machine);
        b.iter(|| s.schedule(&graph).unwrap());
    });
    group.bench_function("two-phase-ne", |b| {
        let s = NeScheduler::new(&machine);
        b.iter(|| s.schedule(&graph).unwrap());
    });
    group.bench_function("round-robin", |b| {
        let s = RoundRobinScheduler::new(&machine);
        b.iter(|| s.schedule(&graph).unwrap());
    });
    group.bench_function("load-balanced", |b| {
        let s = LoadBalancedScheduler::new(&machine);
        b.iter(|| s.schedule(&graph).unwrap());
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = scheduler_throughput, unrolling_policies, corpus_scheduling,
        ablation_assignment_policies
}
criterion_main!(benches);
