//! Structural statistics of the synthetic SPECfp95 loop corpora (Section 6.1 of the
//! paper describes the workload; this binary documents what the substitute corpus
//! looks like so its calibration can be audited).

use vliw_bench::write_json;
use vliw_metrics::TextTable;
use vliw_workloads::{CorpusStats, LoopCorpus};

fn main() {
    let corpora = LoopCorpus::all();
    let stats: Vec<CorpusStats> = corpora.iter().map(CorpusStats::of).collect();

    let mut table = TextTable::new([
        "benchmark",
        "loops",
        "mean ops",
        "max ops",
        "carried edge frac",
        "loops w/ recurrences",
        "int/fp/mem mix",
        "mean iterations",
    ]);
    for s in &stats {
        table.row([
            s.benchmark.clone(),
            s.loops.to_string(),
            format!("{:.1}", s.mean_ops),
            s.max_ops.to_string(),
            format!("{:.3}", s.loop_carried_fraction),
            format!("{:.2}", s.loops_with_recurrences),
            format!(
                "{:.2}/{:.2}/{:.2}",
                s.kind_mix[0], s.kind_mix[1], s.kind_mix[2]
            ),
            format!("{:.0}", s.mean_iterations),
        ]);
    }
    println!("Synthetic SPECfp95 corpus statistics");
    println!("{table}");
    if let Ok(path) = write_json("corpus_stats", &stats) {
        println!("JSON written to {}", path.display());
    }
}
