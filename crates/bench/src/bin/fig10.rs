//! Figure 10 — impact of loop unrolling on code size: total operation slots (useful +
//! NOP) and useful operations only, normalised to the unified configuration without
//! unrolling, for the same scenarios as Figure 8.

use cvliw_core::UnrollPolicy;
use serde::Serialize;
use vliw_arch::MachineConfig;
use vliw_bench::{run_corpus, standard_corpora, write_json, Algorithm};
use vliw_metrics::TextTable;

#[derive(Debug, Serialize)]
struct Bar {
    clusters: usize,
    policy: String,
    buses: usize,
    latency: u32,
    normalized_total: f64,
    normalized_useful: f64,
}

fn main() {
    let corpora = standard_corpora();
    let unified = MachineConfig::unified();

    // Baseline: unified configuration, no unrolling, summed over all benchmarks.
    let mut base_total = 0u64;
    let mut base_useful = 0u64;
    for corpus in &corpora {
        let r = run_corpus(corpus, &unified, Algorithm::UnifiedSms, UnrollPolicy::None);
        base_total += r.code_size.total_slots;
        base_useful += r.code_size.useful_ops;
    }

    let mut bars: Vec<Bar> = Vec::new();
    for &clusters in &[2usize, 4] {
        println!("Figure 10 ({clusters}-cluster configuration) — code size normalised to unified/no-unrolling");
        let mut table = TextTable::new([
            "policy",
            "config",
            "total slots (norm.)",
            "useful ops (norm.)",
        ]);
        for policy in UnrollPolicy::ALL {
            for &buses in &[1usize, 2] {
                for &lat in &[1u32, 2, 4] {
                    let machine = MachineConfig::clustered(clusters, buses, lat);
                    let mut total = 0u64;
                    let mut useful = 0u64;
                    for corpus in &corpora {
                        let r = run_corpus(corpus, &machine, Algorithm::Bsa, policy);
                        total += r.code_size.total_slots;
                        useful += r.code_size.useful_ops;
                    }
                    let nt = total as f64 / base_total as f64;
                    let nu = useful as f64 / base_useful as f64;
                    table.row([
                        policy.label().to_string(),
                        format!("B={buses} L={lat}"),
                        format!("{nt:.2}"),
                        format!("{nu:.2}"),
                    ]);
                    bars.push(Bar {
                        clusters,
                        policy: policy.label().to_string(),
                        buses,
                        latency: lat,
                        normalized_total: nt,
                        normalized_useful: nu,
                    });
                }
            }
        }
        println!("{table}");
    }
    if let Ok(path) = write_json("fig10", &bars) {
        println!("JSON written to {}", path.display());
    }
}
