//! Figure 10 — impact of loop unrolling on code size: total operation slots (useful +
//! NOP) and useful operations only, normalised to the unified configuration without
//! unrolling, for the same scenarios as Figure 8.
//!
//! The data comes from [`vliw_bench::figures::fig10`], which drives the declarative
//! sweep runner.

use vliw_bench::{figures, standard_corpora, write_json};
use vliw_metrics::TextTable;

fn main() {
    let corpora = standard_corpora();
    let bars = figures::fig10(&corpora);

    for &clusters in &[2usize, 4] {
        println!("Figure 10 ({clusters}-cluster configuration) — code size normalised to unified/no-unrolling");
        let mut table = TextTable::new([
            "policy",
            "config",
            "total slots (norm.)",
            "useful ops (norm.)",
        ]);
        for b in bars.iter().filter(|b| b.clusters == clusters) {
            table.row([
                b.policy.clone(),
                format!("B={} L={}", b.buses, b.latency),
                format!("{:.2}", b.normalized_total),
                format!("{:.2}", b.normalized_useful),
            ]);
        }
        println!("{table}");
    }
    if let Ok(path) = write_json("fig10", &bars) {
        println!("JSON written to {}", path.display());
    }
}
