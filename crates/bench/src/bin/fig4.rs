//! Figure 4 — relative performance (IPC of the clustered machine / IPC of the unified
//! machine with the same resources) as a function of the number of buses, for the
//! paper's single-pass scheduler (BSA) and the two-phase baseline (N&E), with bus
//! latencies of 1 and 2 cycles, on the 2-cluster and 4-cluster configurations.
//!
//! No unrolling is applied (this figure motivates the unrolling technique).  The data
//! comes from [`vliw_bench::figures::fig4`], which drives the declarative sweep
//! runner (memoized unified baselines, rayon-parallel cells).

use vliw_bench::{figures, standard_corpora, write_json};
use vliw_metrics::TextTable;

fn main() {
    let corpora = standard_corpora();
    let output = figures::fig4(&corpora);

    for &clusters in &[2usize, 4] {
        println!("Figure 4 ({clusters}-cluster configuration) — relative IPC vs number of buses");
        let mut table = TextTable::new(["algorithm / latency", "buses", "relative IPC"]);
        for p in output.points.iter().filter(|p| p.clusters == clusters) {
            table.row([
                format!("{} L={}", p.algorithm, p.latency),
                p.buses.to_string(),
                format!("{:.3}", p.relative_ipc),
            ]);
        }
        println!("{table}");
    }

    // The motivation-section claim: at the configurations N&E evaluated (2-cluster /
    // 2-bus and 4-cluster / 4-bus, latency 1) BSA produces schedules with a few
    // percent higher IPC.
    println!("Motivation check — BSA vs N&E at the N&E configurations (latency 1):");
    let mut table = TextTable::new(["configuration", "BSA rel. IPC", "N&E rel. IPC", "BSA gain"]);
    for row in &output.motivation {
        table.row([
            format!("{}-cluster/{}-bus", row.clusters, row.buses),
            format!("{:.3}", row.bsa),
            format!("{:.3}", row.ne),
            format!("{:+.1}%", (row.bsa / row.ne - 1.0) * 100.0),
        ]);
    }
    println!("{table}");

    if let Ok(path) = write_json("fig4", &output.points) {
        println!("JSON written to {}", path.display());
    }
}
