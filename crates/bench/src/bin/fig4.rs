//! Figure 4 — relative performance (IPC of the clustered machine / IPC of the unified
//! machine with the same resources) as a function of the number of buses, for the
//! paper's single-pass scheduler (BSA) and the two-phase baseline (N&E), with bus
//! latencies of 1 and 2 cycles, on the 2-cluster and 4-cluster configurations.
//!
//! No unrolling is applied (this figure motivates the unrolling technique).

use cvliw_core::UnrollPolicy;
use serde::Serialize;
use vliw_arch::MachineConfig;
use vliw_bench::{mean, relative_ipc, standard_corpora, write_json, Algorithm};
use vliw_metrics::TextTable;

#[derive(Debug, Serialize)]
struct Point {
    clusters: usize,
    buses: usize,
    latency: u32,
    algorithm: String,
    relative_ipc: f64,
}

fn main() {
    let corpora = standard_corpora();
    let bus_counts = [1usize, 2, 3, 4, 6, 8, 12];
    let latencies = [1u32, 2];
    let algorithms = [Algorithm::Bsa, Algorithm::NystromEichenberger];
    let mut points: Vec<Point> = Vec::new();

    for &clusters in &[2usize, 4] {
        println!("Figure 4 ({clusters}-cluster configuration) — relative IPC vs number of buses");
        let mut table = TextTable::new(["algorithm / latency", "buses", "relative IPC"]);
        for &alg in &algorithms {
            for &lat in &latencies {
                for &buses in &bus_counts {
                    let machine = MachineConfig::clustered(clusters, buses, lat);
                    let rels: Vec<f64> = corpora
                        .iter()
                        .map(|c| relative_ipc(c, &machine, alg, UnrollPolicy::None).2)
                        .collect();
                    let avg = mean(&rels);
                    table.row([
                        format!("{} L={lat}", alg.label()),
                        buses.to_string(),
                        format!("{avg:.3}"),
                    ]);
                    points.push(Point {
                        clusters,
                        buses,
                        latency: lat,
                        algorithm: alg.label().to_string(),
                        relative_ipc: avg,
                    });
                }
            }
        }
        println!("{table}");
    }

    // The motivation-section claim: at the configurations N&E evaluated (2-cluster /
    // 2-bus and 4-cluster / 4-bus, latency 1) BSA produces schedules with a few
    // percent higher IPC.
    println!("Motivation check — BSA vs N&E at the N&E configurations (latency 1):");
    let mut table = TextTable::new(["configuration", "BSA rel. IPC", "N&E rel. IPC", "BSA gain"]);
    for (clusters, buses) in [(2usize, 2usize), (4, 4)] {
        let machine = MachineConfig::clustered(clusters, buses, 1);
        let bsa = mean(
            &corpora
                .iter()
                .map(|c| relative_ipc(c, &machine, Algorithm::Bsa, UnrollPolicy::None).2)
                .collect::<Vec<_>>(),
        );
        let ne = mean(
            &corpora
                .iter()
                .map(|c| {
                    relative_ipc(
                        c,
                        &machine,
                        Algorithm::NystromEichenberger,
                        UnrollPolicy::None,
                    )
                    .2
                })
                .collect::<Vec<_>>(),
        );
        table.row([
            format!("{clusters}-cluster/{buses}-bus"),
            format!("{bsa:.3}"),
            format!("{ne:.3}"),
            format!("{:+.1}%", (bsa / ne - 1.0) * 100.0),
        ]);
    }
    println!("{table}");

    if let Ok(path) = write_json("fig4", &points) {
        println!("JSON written to {}", path.display());
    }
}
