//! Figure 8 — IPC of every SPECfp95 benchmark on the unified and clustered
//! configurations, for the three unrolling policies (No unrolling / Unrolling /
//! Selective unrolling), with 1 or 2 buses and bus latencies of 1, 2 and 4 cycles.
//!
//! The data comes from [`vliw_bench::figures::fig8`], which drives the declarative
//! sweep runner (memoized unified baselines, rayon-parallel cells).

use vliw_bench::{figures, standard_corpora, write_json};
use vliw_metrics::TextTable;

fn main() {
    let corpora = standard_corpora();
    let bars = figures::fig8(&corpora);

    for &clusters in &[2usize, 4] {
        println!("=== Figure 8 ({clusters}-cluster configuration) ===\n");
        for corpus in &corpora {
            let benchmark = corpus.benchmark.name();
            println!("--- {benchmark} ---");
            let mut table = TextTable::new([
                "policy",
                "config",
                "unified IPC",
                "clustered IPC",
                "relative",
            ]);
            for b in bars
                .iter()
                .filter(|b| b.clusters == clusters && b.benchmark == benchmark)
            {
                table.row([
                    b.policy.clone(),
                    format!("B={} L={}", b.buses, b.latency),
                    format!("{:.2}", b.unified_ipc),
                    format!("{:.2}", b.ipc),
                    format!("{:.3}", b.relative_ipc),
                ]);
            }
            println!("{table}");
        }

        // Averages over all benchmarks (the AVERAGE panel of Figure 8).
        println!("--- AVERAGE ({clusters}-cluster) ---");
        let mut table = TextTable::new(["policy", "config", "avg relative IPC"]);
        for (policy, buses, lat, avg) in figures::fig8_averages(&bars, clusters) {
            table.row([policy, format!("B={buses} L={lat}"), format!("{avg:.3}")]);
        }
        println!("{table}");
    }

    if let Ok(path) = write_json("fig8", &bars) {
        println!("JSON written to {}", path.display());
    }
}
