//! Figure 8 — IPC of every SPECfp95 benchmark on the unified and clustered
//! configurations, for the three unrolling policies (No unrolling / Unrolling /
//! Selective unrolling), with 1 or 2 buses and bus latencies of 1, 2 and 4 cycles.

use cvliw_core::UnrollPolicy;
use serde::Serialize;
use vliw_arch::MachineConfig;
use vliw_bench::{mean, run_corpus, standard_corpora, write_json, Algorithm};
use vliw_metrics::TextTable;

#[derive(Debug, Serialize)]
struct Bar {
    benchmark: String,
    clusters: usize,
    policy: String,
    buses: usize,
    latency: u32,
    ipc: f64,
    unified_ipc: f64,
    relative_ipc: f64,
    unrolled_loops: usize,
}

fn main() {
    let corpora = standard_corpora();
    let policies = UnrollPolicy::ALL;
    let bus_latencies = [1u32, 2, 4];
    let bus_counts = [1usize, 2];
    let mut bars: Vec<Bar> = Vec::new();

    for &clusters in &[2usize, 4] {
        println!("=== Figure 8 ({clusters}-cluster configuration) ===\n");
        for corpus in &corpora {
            let unified = MachineConfig::unified();
            println!("--- {} ---", corpus.benchmark.name());
            let mut table = TextTable::new([
                "policy",
                "config",
                "unified IPC",
                "clustered IPC",
                "relative",
            ]);
            for policy in policies {
                let unified_result = run_corpus(corpus, &unified, Algorithm::UnifiedSms, policy);
                for &buses in &bus_counts {
                    for &lat in &bus_latencies {
                        let machine = MachineConfig::clustered(clusters, buses, lat);
                        let clustered = run_corpus(corpus, &machine, Algorithm::Bsa, policy);
                        let rel = if unified_result.ipc > 0.0 {
                            clustered.ipc / unified_result.ipc
                        } else {
                            0.0
                        };
                        table.row([
                            policy.label().to_string(),
                            format!("B={buses} L={lat}"),
                            format!("{:.2}", unified_result.ipc),
                            format!("{:.2}", clustered.ipc),
                            format!("{rel:.3}"),
                        ]);
                        bars.push(Bar {
                            benchmark: corpus.benchmark.name().to_string(),
                            clusters,
                            policy: policy.label().to_string(),
                            buses,
                            latency: lat,
                            ipc: clustered.ipc,
                            unified_ipc: unified_result.ipc,
                            relative_ipc: rel,
                            unrolled_loops: clustered.unrolled_loops,
                        });
                    }
                }
            }
            println!("{table}");
        }

        // Averages over all benchmarks (the AVERAGE panel of Figure 8).
        println!("--- AVERAGE ({clusters}-cluster) ---");
        let mut table = TextTable::new(["policy", "config", "avg relative IPC"]);
        for policy in policies {
            for &buses in &bus_counts {
                for &lat in &bus_latencies {
                    let rels: Vec<f64> = bars
                        .iter()
                        .filter(|b| {
                            b.clusters == clusters
                                && b.policy == policy.label()
                                && b.buses == buses
                                && b.latency == lat
                        })
                        .map(|b| b.relative_ipc)
                        .collect();
                    table.row([
                        policy.label().to_string(),
                        format!("B={buses} L={lat}"),
                        format!("{:.3}", mean(&rels)),
                    ]);
                }
            }
        }
        println!("{table}");
    }

    if let Ok(path) = write_json("fig8", &bars) {
        println!("JSON written to {}", path.display());
    }
}
