//! Figure 9 — speed-up of the clustered configurations over the unified one when the
//! cycle time (Table 2 / Palacharla model) is taken into account, for the No-unrolling
//! (NU) and Selective-unrolling (SU) policies with 1 or 2 buses (bus latency 1).

use cvliw_core::UnrollPolicy;
use serde::Serialize;
use vliw_arch::MachineConfig;
use vliw_bench::{mean, run_corpus, standard_corpora, write_json, Algorithm};
use vliw_metrics::TextTable;
use vliw_timing::{speedup, CycleTimeModel};

#[derive(Debug, Serialize)]
struct Bar {
    clusters: usize,
    buses: usize,
    policy: String,
    relative_ipc: f64,
    cycle_time_ratio: f64,
    speedup: f64,
}

fn main() {
    let corpora = standard_corpora();
    let model = CycleTimeModel::new();
    let unified = MachineConfig::unified();
    let mut bars: Vec<Bar> = Vec::new();
    let mut table = TextTable::new([
        "configuration",
        "policy",
        "rel. IPC",
        "cycle-time ratio",
        "speed-up",
    ]);

    for &clusters in &[2usize, 4] {
        for &buses in &[1usize, 2] {
            let machine = MachineConfig::clustered(clusters, buses, 1);
            for (policy, label) in [(UnrollPolicy::None, "NU"), (UnrollPolicy::Selective, "SU")] {
                // Average relative IPC over the benchmarks.
                let mut rels = Vec::new();
                for corpus in &corpora {
                    let unified_result =
                        run_corpus(corpus, &unified, Algorithm::UnifiedSms, policy);
                    let clustered = run_corpus(corpus, &machine, Algorithm::Bsa, policy);
                    if unified_result.ipc > 0.0 {
                        rels.push(clustered.ipc / unified_result.ipc);
                    }
                }
                let rel = mean(&rels);
                // speedup() wants absolute IPCs; feed the ratio directly.
                let row = speedup(&model, &unified, &machine, 1.0, rel);
                table.row([
                    format!("{clusters}-cluster B={buses}"),
                    label.to_string(),
                    format!("{rel:.3}"),
                    format!("{:.2}", row.cycle_time_ratio),
                    format!("{:.2}", row.speedup),
                ]);
                bars.push(Bar {
                    clusters,
                    buses,
                    policy: label.to_string(),
                    relative_ipc: rel,
                    cycle_time_ratio: row.cycle_time_ratio,
                    speedup: row.speedup,
                });
            }
        }
    }

    println!("Figure 9 — speed-up over the unified configuration (bus latency = 1)");
    println!("{table}");
    let best = bars
        .iter()
        .max_by(|a, b| a.speedup.partial_cmp(&b.speedup).unwrap())
        .unwrap();
    println!(
        "Best configuration: {}-cluster B={} {} with a speed-up of {:.2} (paper: 3.6 for 4-cluster/1-bus SU)",
        best.clusters, best.buses, best.policy, best.speedup
    );
    if let Ok(path) = write_json("fig9", &bars) {
        println!("JSON written to {}", path.display());
    }
}
