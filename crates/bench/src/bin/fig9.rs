//! Figure 9 — speed-up of the clustered configurations over the unified one when the
//! cycle time (Table 2 / Palacharla model) is taken into account, for the No-unrolling
//! (NU) and Selective-unrolling (SU) policies with 1 or 2 buses (bus latency 1).
//!
//! The data comes from [`vliw_bench::figures::fig9`], which drives the declarative
//! sweep runner (memoized unified baselines, rayon-parallel cells).

use vliw_bench::{figures, standard_corpora, write_json};
use vliw_metrics::TextTable;

fn main() {
    let corpora = standard_corpora();
    let bars = figures::fig9(&corpora);

    let mut table = TextTable::new([
        "configuration",
        "policy",
        "rel. IPC",
        "cycle-time ratio",
        "speed-up",
    ]);
    for b in &bars {
        table.row([
            format!("{}-cluster B={}", b.clusters, b.buses),
            b.policy.clone(),
            format!("{:.3}", b.relative_ipc),
            format!("{:.2}", b.cycle_time_ratio),
            format!("{:.2}", b.speedup),
        ]);
    }

    println!("Figure 9 — speed-up over the unified configuration (bus latency = 1)");
    println!("{table}");
    let best = bars
        .iter()
        .max_by(|a, b| a.speedup.partial_cmp(&b.speedup).unwrap())
        .unwrap();
    println!(
        "Best configuration: {}-cluster B={} {} with a speed-up of {:.2} (paper: 3.6 for 4-cluster/1-bus SU)",
        best.clusters, best.buses, best.policy, best.speedup
    );
    if let Ok(path) = write_json("fig9", &bars) {
        println!("JSON written to {}", path.display());
    }
}
