//! The optimality-gap figure — certified gap `achieved II − solver lower bound`
//! of every scheduling policy on the Table-1 clustered machines, over a
//! fixed-seed fuzz corpus plus one exactly-unrolled kernel per case.
//!
//! The data comes from [`vliw_bench::optgap::fig_optgap`], which certifies every
//! `(loop, target machine)` pair with the exact branch-and-bound solver.  Exits
//! non-zero iff any schedule undercuts its certified lower bound (the sixth
//! oracle's hard invariant) — CI's `optgap-smoke` job gates on exactly that.

use vliw_bench::optgap;
use vliw_metrics::TextTable;

fn main() {
    let report = optgap::fig_optgap();
    let s = &report.summary;

    println!(
        "Optimality gaps — {} cases x 2 Table-1 machines, solver budget {} probes",
        s.cases,
        optgap::OPTGAP_SOLVER_PROBES
    );
    println!(
        "{} schedules audited ({} unschedulable): {} exact certificates ({:.1}%), \
         {} lower bounds, {} fuel-exhausted, {} at the certified optimum",
        s.schedules_audited,
        s.unschedulable,
        s.solver_exact,
        100.0 * s.exact_rate,
        s.solver_lower_bounds,
        s.solver_fuel_exhausted,
        s.at_certified_optimum,
    );

    for (title, axis) in [
        ("policy", &report.gaps_by_policy),
        ("machine", &report.gaps_by_machine),
        ("limiting resource", &report.gaps_by_limiting),
        ("unroll factor", &report.gaps_by_unroll),
    ] {
        println!("Certified gap by {title}:");
        let mut table = TextTable::new([title, "gap histogram"]);
        for (label, hist) in axis {
            let cells: Vec<String> = hist.iter().map(|(k, v)| format!("{k}:{v}")).collect();
            table.row([label.clone(), cells.join(" ")]);
        }
        println!("{table}");
    }

    let path = vliw_bench::write_json("fig_optgap", &report).expect("write report");
    vliw_lint::reportio::exit_on_violations(
        &path,
        s.lower_bound_violations as usize,
        &format!(
            "no certified-lower-bound violations in {} schedules",
            s.schedules_audited
        ),
        &format!(
            "{} schedule(s) below a certified lower bound",
            s.lower_bound_violations
        ),
    );
}
