//! The unroll-factor exploration sweep — beyond the paper's Figure 8, which only
//! ever evaluates unrolling at the single point `U = n_clusters`: IPC and static
//! code size across `U ∈ 1..=8` (exact remainder accounting) on the Table-1
//! clustered machines, plus the `Explore` policy's code-size-budgeted winner.
//!
//! The data comes from [`vliw_bench::figures::fig_unroll`], which drives the
//! declarative sweep runner.

use vliw_bench::{figures, standard_corpora, write_json};
use vliw_metrics::TextTable;

fn main() {
    let corpora = standard_corpora();
    let points = figures::fig_unroll(&corpora);

    for &clusters in &[2usize, 4] {
        println!(
            "Unroll-factor exploration ({clusters}-cluster configuration) — aggregate over all benchmarks"
        );
        let mut table = TextTable::new([
            "policy",
            "IPC",
            "vs U=1",
            "code (norm.)",
            "unrolled",
            "reg-limited",
            "bus-limited",
            "MaxLive",
        ]);
        for p in points.iter().filter(|p| p.clusters == clusters) {
            table.row([
                p.policy.clone(),
                format!("{:.3}", p.ipc),
                format!("{:.3}", p.ipc_vs_no_unrolling),
                format!("{:.2}", p.code_size_vs_no_unrolling),
                p.unrolled_loops.to_string(),
                p.register_limited_loops.to_string(),
                p.bus_limited_loops.to_string(),
                p.max_register_pressure.to_string(),
            ]);
        }
        println!("{table}");
    }
    if let Ok(path) = write_json("fig_unroll", &points) {
        println!("JSON written to {}", path.display());
    }
}
