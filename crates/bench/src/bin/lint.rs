//! The `lint` gate binary: statically certify every schedule behind the committed
//! figure artifacts.
//!
//! ```text
//! cargo run --release -p vliw-bench --bin lint
//! ```
//!
//! Enumerates every deduplicated scheduling job of the five figure pipelines
//! ([`vliw_bench::lint_audit::figure_jobs`]), schedules every corpus loop under
//! each, and runs `vliw_lint`'s certifier over every produced schedule — kernels
//! and exact-unroll remainder epilogues alike.  Writes the deterministic
//! `results/lint_report.json` (part of the golden byte-identity suite) and exits
//! non-zero when any schedule has a deny-level diagnostic, so CI can gate on it.

use vliw_bench::{lint_audit, standard_corpora};
use vliw_metrics::TextTable;

fn main() {
    let corpora = standard_corpora();
    let jobs = lint_audit::figure_jobs();
    println!(
        "lint: certifying the schedules of {} figure jobs over {} corpora",
        jobs.len(),
        corpora.len()
    );

    let report = lint_audit::audit_jobs(&jobs, &corpora);

    let mut table = TextTable::new([
        "machine",
        "algorithm",
        "policy",
        "schedules",
        "certified",
        "warns",
    ]);
    for j in &report.jobs {
        let warns: u64 = j.warnings.values().sum();
        table.row([
            j.machine.clone(),
            j.algorithm.clone(),
            j.policy.clone(),
            format!("{}", j.schedules),
            format!("{}", j.certified),
            format!("{warns}"),
        ]);
    }
    println!("{table}");
    println!("warn-lint histogram:");
    for (id, count) in &report.warnings {
        println!("  {id:<20} {count}");
    }
    println!(
        "{} schedules audited, {} certified, {} denied",
        report.schedules_audited, report.certified, report.deny_schedules
    );
    for job in &report.jobs {
        for deny in &job.deny_reports {
            println!(
                "  DENY {} on {} (II {}): {:?}",
                deny.loop_name, deny.machine, deny.ii, deny.diagnostics
            );
        }
    }

    let path =
        vliw_lint::reportio::write_results_json("lint_report", &report).expect("write report");
    vliw_lint::reportio::exit_on_violations(
        &path,
        report.deny_schedules as usize,
        &format!(
            "all {} schedules statically certified",
            report.schedules_audited
        ),
        &format!("{} uncertified schedule(s)", report.deny_schedules),
    );
}
