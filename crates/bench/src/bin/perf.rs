//! `perf` — the timing harness behind `BENCH_perf.json`.
//!
//! Times the experiment pipeline at three granularities so later performance work has
//! a trajectory to compare against:
//!
//! * **Figure-8 sweep** — the full `{benchmark × policy × clusters × buses ×
//!   bus-latency}` scheduling sweep (the most expensive reproduction in the repo)
//!   through the declarative sweep runner, wall-clock, with the configured thread
//!   count and again pinned to one thread so thread scaling is visible on multi-core
//!   runners;
//! * **Figure-4 baseline memoization** — the Figure-4 pipeline through the sweep
//!   runner (unified baselines scheduled once per structure) against a naive replica
//!   that reschedules the unified counterpart for every cell, exactly as the
//!   pre-sweep `relative_ipc` helper did;
//! * **Figure-8 sweep under fuel budgets** — the same sweep with every BSA search
//!   metered by a generous `FuelBudget` (via the `FUEL_BUDGET_PROBES` hook), so the
//!   cost of the robustness layer's fuel accounting is a committed number;
//! * **component microbenches** — the MRT multi-cycle probe/reserve/release cycle,
//!   a BSA clustered schedule (plain and fuel-budgeted), a unified SMS schedule, and
//!   the full `ResilientScheduler` degradation ladder, each over a fixed synthetic
//!   workload.
//!
//! `FAST_EXPERIMENTS=1` shrinks the corpora exactly as it does for the figure
//! binaries (CI runs the harness that way); the recorded seed baseline only applies
//! to the full sweep.  Results are written to `BENCH_perf.json` in the working
//! directory (the repo root under `cargo run`).

use cvliw_core::{BsaScheduler, ResilientScheduler, UnrollPolicy};
use serde::Serialize;
use std::time::Instant;
use vliw_arch::{MachineConfig, ResourcePool};
use vliw_bench::{figures, run_corpus, standard_corpora, Algorithm};
use vliw_sms::{FuelBudget, ModuloReservationTable, SmsScheduler};
use vliw_workloads::{LoopCorpus, SpecFp95};

/// Wall-clock of the full Figure-8 sweep at the seed commit (sequential rayon shim,
/// counter-based MRT, clone-per-trial BSA), measured on the same 1-core container
/// this PR was developed in.  Kept as the fixed "before" of the optimization work.
const SEED_FIG8_SWEEP_MS: f64 = 200_333.0;

/// Probe budget used for the fuel-overhead measurements: generous enough that no
/// search in the sweep ever exhausts it, so the timing isolates the cost of the
/// metering itself (every probe increments and checks a counter) rather than the
/// cost of budget-induced failures.
const GENEROUS_PROBES: u64 = 1 << 60;

#[derive(Debug, Serialize)]
struct Micro {
    name: String,
    iterations: u64,
    total_ms: f64,
    per_iter_us: f64,
}

#[derive(Debug, Serialize)]
struct Report {
    /// "full" or "fast" (`FAST_EXPERIMENTS` shrinks the corpora).
    mode: String,
    threads: usize,
    /// Seed wall-clock of the full sweep (ms); the "before" of this trajectory.
    baseline_fig8_sweep_ms: f64,
    baseline_note: String,
    /// Optimized wall-clock of the sweep in `mode`, with `threads` workers.
    fig8_sweep_ms: f64,
    /// The same sweep pinned to one worker (None when only one core is available —
    /// the parallel number already is the serial number).
    fig8_sweep_serial_ms: Option<f64>,
    /// The same sweep with every BSA II search metered by a generous fuel budget
    /// (`FUEL_BUDGET_PROBES`); should sit within run-to-run noise of `fig8_sweep_ms`.
    fig8_sweep_budgeted_ms: f64,
    /// budgeted / unbudgeted — the relative cost of fuel metering on the full sweep.
    fuel_metering_overhead: f64,
    /// baseline / optimized; only meaningful (and only emitted) in full mode.
    speedup_vs_seed: Option<f64>,
    /// The Figure-4 pipeline through the sweep runner (memoized unified baselines).
    fig4_sweep_ms: f64,
    /// The same cells with the baseline rescheduled per cell (the pre-sweep
    /// `relative_ipc` behaviour).
    fig4_naive_ms: f64,
    /// naive / memoized — the measured win of the baseline memoization.
    fig4_memoization_speedup: f64,
    micro: Vec<Micro>,
}

/// The full Figure-8 reproduction through the sweep runner, without the reporting.
fn fig8_sweep(corpora: &[LoopCorpus]) -> usize {
    let bars = figures::fig8(corpora);
    assert_eq!(bars.len(), 2 * corpora.len() * 3 * 2 * 3);
    assert!(bars.iter().all(|b| b.ipc > 0.0));
    bars.len()
}

fn time_sweep(corpora: &[LoopCorpus]) -> f64 {
    let start = Instant::now();
    let bars = fig8_sweep(corpora);
    let ms = start.elapsed().as_secs_f64() * 1e3;
    println!("  {bars} figure bars in {ms:.0} ms");
    ms
}

/// The Figure-4 cell grid as the pre-sweep code ran it: the unified counterpart is
/// rescheduled from scratch for every (algorithm, latency, bus-count) cell.
fn fig4_naive(corpora: &[LoopCorpus]) -> usize {
    let mut points = 0usize;
    for &clusters in &[2usize, 4] {
        for &alg in &[Algorithm::Bsa, Algorithm::NystromEichenberger] {
            for &lat in &[1u32, 2] {
                for &buses in &[1usize, 2, 3, 4, 6, 8, 12] {
                    let machine = MachineConfig::clustered(clusters, buses, lat);
                    let unified = machine.unified_counterpart();
                    for corpus in corpora {
                        let clustered = run_corpus(corpus, &machine, alg, UnrollPolicy::None);
                        let base =
                            run_corpus(corpus, &unified, Algorithm::UnifiedSms, UnrollPolicy::None);
                        assert!(clustered.ipc > 0.0 && base.ipc > 0.0);
                    }
                    points += 1;
                }
            }
        }
    }
    points
}

fn micro_mrt_probe() -> Micro {
    let machine = MachineConfig::two_cluster(2, 2);
    let pool = ResourcePool::new(&machine);
    let mut mrt = ModuloReservationTable::new(&pool, 8);
    let bus = pool.buses().next().unwrap();
    let iterations = 2_000_000u64;
    let start = Instant::now();
    let mut hits = 0u64;
    for i in 0..iterations {
        let cycle = (i % 23) as i64 - 11;
        if mrt.is_free_for(bus, cycle, 2) {
            let r = mrt.reserve_for(bus, cycle, 2);
            hits += 1;
            mrt.release(r);
        }
    }
    assert!(hits > 0);
    let total_ms = start.elapsed().as_secs_f64() * 1e3;
    Micro {
        name: "mrt probe+reserve+release (II=8, 2-cycle bus)".into(),
        iterations,
        total_ms,
        per_iter_us: total_ms * 1e3 / iterations as f64,
    }
}

fn micro_bsa_schedule() -> Micro {
    let mut corpus = LoopCorpus::generate(SpecFp95::Swim);
    corpus.loops.truncate(8);
    let machine = MachineConfig::four_cluster(1, 1);
    let bsa = BsaScheduler::new(&machine);
    let iterations = 40u64;
    let start = Instant::now();
    for _ in 0..iterations {
        for graph in &corpus.loops {
            let sched = bsa.schedule(graph).expect("corpus loop must schedule");
            assert!(sched.ii() >= 1);
        }
    }
    let total_ms = start.elapsed().as_secs_f64() * 1e3;
    let jobs = iterations * corpus.loops.len() as u64;
    Micro {
        name: "BSA schedule (8 swim loops, 4-cluster/1-bus)".into(),
        iterations: jobs,
        total_ms,
        per_iter_us: total_ms * 1e3 / jobs as f64,
    }
}

fn micro_budgeted_bsa() -> Micro {
    let mut corpus = LoopCorpus::generate(SpecFp95::Swim);
    corpus.loops.truncate(8);
    let machine = MachineConfig::four_cluster(1, 1);
    let bsa = BsaScheduler::new(&machine).with_fuel(FuelBudget::probes(GENEROUS_PROBES));
    let iterations = 40u64;
    let start = Instant::now();
    for _ in 0..iterations {
        for graph in &corpus.loops {
            let sched = bsa.schedule(graph).expect("corpus loop must schedule");
            assert!(sched.ii() >= 1);
        }
    }
    let total_ms = start.elapsed().as_secs_f64() * 1e3;
    let jobs = iterations * corpus.loops.len() as u64;
    Micro {
        name: "BSA schedule, fuel-budgeted (8 swim loops, 4-cluster/1-bus)".into(),
        iterations: jobs,
        total_ms,
        per_iter_us: total_ms * 1e3 / jobs as f64,
    }
}

fn micro_resilient_ladder() -> Micro {
    // The full degradation ladder on loops its primary rung always wins: times the
    // per-loop cost of running under the ladder (fuel metering + post-schedule
    // certification) relative to the bare BSA micro above.
    let mut corpus = LoopCorpus::generate(SpecFp95::Swim);
    corpus.loops.truncate(8);
    let machine = MachineConfig::four_cluster(1, 1);
    let ladder =
        ResilientScheduler::new(&machine).with_rung_fuel(FuelBudget::probes(GENEROUS_PROBES));
    let iterations = 40u64;
    let start = Instant::now();
    for _ in 0..iterations {
        for graph in &corpus.loops {
            let out = ladder
                .schedule(graph)
                .expect("ladder must produce a schedule");
            assert_eq!(
                out.rung(),
                "bsa",
                "generous fuel should let the primary win"
            );
        }
    }
    let total_ms = start.elapsed().as_secs_f64() * 1e3;
    let jobs = iterations * corpus.loops.len() as u64;
    Micro {
        name: "resilient ladder schedule+certify (8 swim loops, 4-cluster/1-bus)".into(),
        iterations: jobs,
        total_ms,
        per_iter_us: total_ms * 1e3 / jobs as f64,
    }
}

fn micro_unified_sms() -> Micro {
    let mut corpus = LoopCorpus::generate(SpecFp95::Swim);
    corpus.loops.truncate(8);
    let machine = MachineConfig::unified();
    let sms = SmsScheduler::new(&machine);
    let iterations = 40u64;
    let start = Instant::now();
    for _ in 0..iterations {
        for graph in &corpus.loops {
            let sched = sms.schedule(graph).expect("corpus loop must schedule");
            assert!(sched.ii() >= 1);
        }
    }
    let total_ms = start.elapsed().as_secs_f64() * 1e3;
    let jobs = iterations * corpus.loops.len() as u64;
    Micro {
        name: "unified SMS schedule (8 swim loops)".into(),
        iterations: jobs,
        total_ms,
        per_iter_us: total_ms * 1e3 / jobs as f64,
    }
}

fn main() {
    let fast = std::env::var("FAST_EXPERIMENTS").is_ok();
    let mode = if fast { "fast" } else { "full" };
    let corpora = standard_corpora();
    let threads = rayon::current_num_threads();

    println!("perf harness — mode={mode}, threads={threads}");
    println!("Figure-8 sweep ({threads} threads):");
    let sweep_ms = time_sweep(&corpora);

    let serial_ms = if threads > 1 {
        println!("Figure-8 sweep (1 thread):");
        std::env::set_var("RAYON_NUM_THREADS", "1");
        let ms = time_sweep(&corpora);
        std::env::remove_var("RAYON_NUM_THREADS");
        Some(ms)
    } else {
        None
    };

    println!("Figure-8 sweep (fuel-budgeted BSA, {GENEROUS_PROBES} probes):");
    std::env::set_var("FUEL_BUDGET_PROBES", GENEROUS_PROBES.to_string());
    let budgeted_ms = time_sweep(&corpora);
    std::env::remove_var("FUEL_BUDGET_PROBES");

    println!("Figure-4 pipeline (memoized baselines):");
    let start = Instant::now();
    let output = figures::fig4(&corpora);
    let fig4_ms = start.elapsed().as_secs_f64() * 1e3;
    println!("  {} points in {fig4_ms:.0} ms", output.points.len());

    println!("Figure-4 cells, naive per-cell baselines (pre-sweep behaviour):");
    let start = Instant::now();
    let naive_points = fig4_naive(&corpora);
    let fig4_naive_ms = start.elapsed().as_secs_f64() * 1e3;
    println!("  {naive_points} points in {fig4_naive_ms:.0} ms");
    assert_eq!(naive_points, output.points.len());

    println!("Component microbenches:");
    let micro = vec![
        micro_mrt_probe(),
        micro_bsa_schedule(),
        micro_budgeted_bsa(),
        micro_resilient_ladder(),
        micro_unified_sms(),
    ];
    for m in &micro {
        println!(
            "  {}: {:.3} us/iter ({} iters)",
            m.name, m.per_iter_us, m.iterations
        );
    }

    let report = Report {
        mode: mode.to_string(),
        threads,
        baseline_fig8_sweep_ms: SEED_FIG8_SWEEP_MS,
        baseline_note: "seed commit 29284b4 (sequential rayon shim, counter MRT, \
                        clone-per-trial BSA), full sweep, 1-core container"
            .to_string(),
        fig8_sweep_ms: sweep_ms,
        fig8_sweep_serial_ms: serial_ms,
        fig8_sweep_budgeted_ms: budgeted_ms,
        fuel_metering_overhead: budgeted_ms / sweep_ms,
        speedup_vs_seed: (!fast).then(|| SEED_FIG8_SWEEP_MS / sweep_ms),
        fig4_sweep_ms: fig4_ms,
        fig4_naive_ms,
        fig4_memoization_speedup: fig4_naive_ms / fig4_ms,
        micro,
    };
    if let Some(s) = report.speedup_vs_seed {
        println!("Full sweep: {sweep_ms:.0} ms vs seed {SEED_FIG8_SWEEP_MS:.0} ms — {s:.2}x");
    }
    println!(
        "Figure-4 path: {fig4_ms:.0} ms memoized vs {fig4_naive_ms:.0} ms naive — {:.2}x",
        report.fig4_memoization_speedup
    );
    println!(
        "Fuel metering: {budgeted_ms:.0} ms budgeted vs {sweep_ms:.0} ms plain — {:.3}x",
        report.fuel_metering_overhead
    );
    let json = serde_json::to_string_pretty(&report).expect("report serializes");
    std::fs::write("BENCH_perf.json", json).expect("BENCH_perf.json is writable");
    println!("Report written to BENCH_perf.json");
}
