//! `perf` — the timing harness behind `BENCH_perf.json`.
//!
//! Times the experiment pipeline at three granularities so later performance work has
//! a trajectory to compare against:
//!
//! * **Figure-8 sweep** — the full `{benchmark × policy × clusters × buses ×
//!   bus-latency}` scheduling sweep (the most expensive reproduction in the repo)
//!   through the declarative sweep runner, wall-clock, once per point of a
//!   1/2/4/8-worker thread-scaling curve (`RAYON_NUM_THREADS` drives the vendored
//!   rayon shim, so the curve is meaningful on multi-core runners and flat on a
//!   1-core container);
//! * **Figure-4 baseline memoization** — the Figure-4 pipeline through the sweep
//!   runner (unified baselines scheduled once per structure) against a naive replica
//!   that reschedules the unified counterpart for every cell, exactly as the
//!   pre-sweep `relative_ipc` helper did;
//! * **Figure-8 sweep under fuel budgets** — the same sweep with every BSA search
//!   metered by a generous `FuelBudget` (via the `FUEL_BUDGET_PROBES` hook), so the
//!   cost of the robustness layer's fuel accounting is a committed number;
//! * **component microbenches** — the MRT multi-cycle probe/reserve/release cycle,
//!   a BSA clustered schedule (plain and fuel-budgeted), a unified SMS schedule, and
//!   the full `ResilientScheduler` degradation ladder, each over a fixed synthetic
//!   workload.
//!
//! All timing goes through one helper, [`fastest_ms`]: optional untimed warmup
//! passes, then the **minimum** over N timed passes.  Shared CI boxes jitter by
//! ±15%; the minimum is the statistic least sensitive to scheduling noise, so the
//! microbenches report min-of-5 (after one warmup) and the whole-sweep timings —
//! too expensive to repeat — report a single pass.
//!
//! `FAST_EXPERIMENTS=1` shrinks the corpora exactly as it does for the figure
//! binaries (CI runs the harness that way); the recorded seed baseline only applies
//! to the full sweep.  Results are written to `BENCH_perf.json` in the working
//! directory (the repo root under `cargo run`).

use cvliw_core::{BsaScheduler, ResilientScheduler, UnrollPolicy};
use serde::Serialize;
use std::time::Instant;
use vliw_arch::{MachineConfig, ResourcePool};
use vliw_bench::{figures, run_corpus, standard_corpora, Algorithm};
use vliw_sms::{FuelBudget, ModuloReservationTable, SmsScheduler};
use vliw_workloads::{LoopCorpus, SpecFp95};

/// Wall-clock of the full Figure-8 sweep at the seed commit (sequential rayon shim,
/// counter-based MRT, clone-per-trial BSA), measured on the same 1-core container
/// this PR was developed in.  Kept as the fixed "before" of the optimization work.
const SEED_FIG8_SWEEP_MS: f64 = 200_333.0;

/// Probe budget used for the fuel-overhead measurements: generous enough that no
/// search in the sweep ever exhausts it, so the timing isolates the cost of the
/// metering itself (every probe increments and checks a counter) rather than the
/// cost of budget-induced failures.
const GENEROUS_PROBES: u64 = 1 << 60;

/// Timed passes per microbench (the reported time is the fastest of these).
const MICRO_RUNS: u32 = 5;

/// Worker counts of the thread-scaling curve.
const SCALING_THREADS: [usize; 4] = [1, 2, 4, 8];

/// The one timing primitive of this harness: run `f` untimed `warmup` times, then
/// timed `runs` times, and return the **minimum** wall-clock in milliseconds.
/// `fastest_ms(0, 1, f)` is a plain single-pass measurement.
fn fastest_ms(warmup: u32, runs: u32, mut f: impl FnMut()) -> f64 {
    assert!(runs >= 1, "need at least one timed run");
    for _ in 0..warmup {
        f();
    }
    let mut best = f64::INFINITY;
    for _ in 0..runs {
        let start = Instant::now();
        f();
        best = best.min(start.elapsed().as_secs_f64() * 1e3);
    }
    best
}

#[derive(Debug, Serialize)]
struct Micro {
    name: String,
    /// Work units (schedules, probe cycles, …) per timed pass.
    iterations: u64,
    /// Timed passes; `total_ms` is the fastest one (after one untimed warmup pass).
    runs: u32,
    /// Minimum wall-clock of one pass over all `runs`.
    total_ms: f64,
    per_iter_us: f64,
}

/// Build a microbench result: one warmup pass, then min-of-[`MICRO_RUNS`].
fn micro(name: &str, jobs_per_run: u64, f: impl FnMut()) -> Micro {
    let total_ms = fastest_ms(1, MICRO_RUNS, f);
    Micro {
        name: name.into(),
        iterations: jobs_per_run,
        runs: MICRO_RUNS,
        total_ms,
        per_iter_us: total_ms * 1e3 / jobs_per_run as f64,
    }
}

#[derive(Debug, Serialize)]
struct ThreadScale {
    /// `RAYON_NUM_THREADS` for this point.
    threads: usize,
    /// Single-pass wall-clock of the full Figure-8 sweep at that worker count.
    fig8_sweep_ms: f64,
}

#[derive(Debug, Serialize)]
struct Report {
    /// "full" or "fast" (`FAST_EXPERIMENTS` shrinks the corpora).
    mode: String,
    threads: usize,
    /// Seed wall-clock of the full sweep (ms); the "before" of this trajectory.
    baseline_fig8_sweep_ms: f64,
    baseline_note: String,
    /// Optimized wall-clock of the sweep in `mode`, with `threads` workers.
    fig8_sweep_ms: f64,
    /// The sweep pinned to one worker — the `threads == 1` point of
    /// `thread_scaling`.
    fig8_sweep_serial_ms: Option<f64>,
    /// One sweep per point of [`SCALING_THREADS`], via `RAYON_NUM_THREADS`.
    thread_scaling: Vec<ThreadScale>,
    /// The same sweep with every BSA II search metered by a generous fuel budget
    /// (`FUEL_BUDGET_PROBES`); should sit within run-to-run noise of `fig8_sweep_ms`.
    fig8_sweep_budgeted_ms: f64,
    /// budgeted / unbudgeted — the relative cost of fuel metering on the full sweep.
    fuel_metering_overhead: f64,
    /// baseline / optimized; only meaningful (and only emitted) in full mode.
    speedup_vs_seed: Option<f64>,
    /// The Figure-4 pipeline through the sweep runner (memoized unified baselines).
    fig4_sweep_ms: f64,
    /// The same cells with the baseline rescheduled per cell (the pre-sweep
    /// `relative_ipc` behaviour).
    fig4_naive_ms: f64,
    /// naive / memoized — the measured win of the baseline memoization.
    fig4_memoization_speedup: f64,
    micro: Vec<Micro>,
}

/// The full Figure-8 reproduction through the sweep runner, without the reporting.
fn fig8_sweep(corpora: &[LoopCorpus]) -> usize {
    let bars = figures::fig8(corpora);
    assert_eq!(bars.len(), 2 * corpora.len() * 3 * 2 * 3);
    assert!(bars.iter().all(|b| b.ipc > 0.0));
    bars.len()
}

fn time_sweep(corpora: &[LoopCorpus]) -> f64 {
    let mut bars = 0usize;
    let ms = fastest_ms(0, 1, || bars = fig8_sweep(corpora));
    println!("  {bars} figure bars in {ms:.0} ms");
    ms
}

/// The Figure-4 cell grid as the pre-sweep code ran it: the unified counterpart is
/// rescheduled from scratch for every (algorithm, latency, bus-count) cell.
fn fig4_naive(corpora: &[LoopCorpus]) -> usize {
    let mut points = 0usize;
    for &clusters in &[2usize, 4] {
        for &alg in &[Algorithm::Bsa, Algorithm::NystromEichenberger] {
            for &lat in &[1u32, 2] {
                for &buses in &[1usize, 2, 3, 4, 6, 8, 12] {
                    let machine = MachineConfig::clustered(clusters, buses, lat);
                    let unified = machine.unified_counterpart();
                    for corpus in corpora {
                        let clustered = run_corpus(corpus, &machine, alg, UnrollPolicy::None);
                        let base =
                            run_corpus(corpus, &unified, Algorithm::UnifiedSms, UnrollPolicy::None);
                        assert!(clustered.ipc > 0.0 && base.ipc > 0.0);
                    }
                    points += 1;
                }
            }
        }
    }
    points
}

fn micro_mrt_probe() -> Micro {
    let machine = MachineConfig::two_cluster(2, 2);
    let pool = ResourcePool::new(&machine);
    let mut mrt = ModuloReservationTable::new(&pool, 8);
    let bus = pool.buses().next().unwrap();
    let iterations = 2_000_000u64;
    micro(
        "mrt probe+reserve+release (II=8, 2-cycle bus)",
        iterations,
        || {
            let mut hits = 0u64;
            for i in 0..iterations {
                let cycle = (i % 23) as i64 - 11;
                if mrt.is_free_for(bus, cycle, 2) {
                    let r = mrt.reserve_for(bus, cycle, 2);
                    hits += 1;
                    mrt.release(r);
                }
            }
            assert!(hits > 0);
        },
    )
}

/// The shared fixture of the scheduling microbenches: 8 Swim loops, scheduled 40
/// times per timed pass.
fn swim_fixture() -> (LoopCorpus, u64) {
    let mut corpus = LoopCorpus::generate(SpecFp95::Swim);
    corpus.loops.truncate(8);
    (corpus, 40)
}

fn micro_bsa_schedule() -> Micro {
    let (corpus, iterations) = swim_fixture();
    let machine = MachineConfig::four_cluster(1, 1);
    let bsa = BsaScheduler::new(&machine);
    micro(
        "BSA schedule (8 swim loops, 4-cluster/1-bus)",
        iterations * corpus.loops.len() as u64,
        || {
            for _ in 0..iterations {
                for graph in &corpus.loops {
                    let sched = bsa.schedule(graph).expect("corpus loop must schedule");
                    assert!(sched.ii() >= 1);
                }
            }
        },
    )
}

fn micro_budgeted_bsa() -> Micro {
    let (corpus, iterations) = swim_fixture();
    let machine = MachineConfig::four_cluster(1, 1);
    let bsa = BsaScheduler::new(&machine).with_fuel(FuelBudget::probes(GENEROUS_PROBES));
    micro(
        "BSA schedule, fuel-budgeted (8 swim loops, 4-cluster/1-bus)",
        iterations * corpus.loops.len() as u64,
        || {
            for _ in 0..iterations {
                for graph in &corpus.loops {
                    let sched = bsa.schedule(graph).expect("corpus loop must schedule");
                    assert!(sched.ii() >= 1);
                }
            }
        },
    )
}

fn micro_resilient_ladder() -> Micro {
    // The full degradation ladder on loops its primary rung always wins: times the
    // per-loop cost of running under the ladder (fuel metering + post-schedule
    // certification) relative to the bare BSA micro above.
    let (corpus, iterations) = swim_fixture();
    let machine = MachineConfig::four_cluster(1, 1);
    let ladder =
        ResilientScheduler::new(&machine).with_rung_fuel(FuelBudget::probes(GENEROUS_PROBES));
    micro(
        "resilient ladder schedule+certify (8 swim loops, 4-cluster/1-bus)",
        iterations * corpus.loops.len() as u64,
        || {
            for _ in 0..iterations {
                for graph in &corpus.loops {
                    let out = ladder
                        .schedule(graph)
                        .expect("ladder must produce a schedule");
                    assert_eq!(
                        out.rung(),
                        "bsa",
                        "generous fuel should let the primary win"
                    );
                }
            }
        },
    )
}

fn micro_unified_sms() -> Micro {
    let (corpus, iterations) = swim_fixture();
    let machine = MachineConfig::unified();
    let sms = SmsScheduler::new(&machine);
    micro(
        "unified SMS schedule (8 swim loops)",
        iterations * corpus.loops.len() as u64,
        || {
            for _ in 0..iterations {
                for graph in &corpus.loops {
                    let sched = sms.schedule(graph).expect("corpus loop must schedule");
                    assert!(sched.ii() >= 1);
                }
            }
        },
    )
}

fn main() {
    let fast = std::env::var("FAST_EXPERIMENTS").is_ok();
    let mode = if fast { "fast" } else { "full" };
    let corpora = standard_corpora();
    let threads = rayon::current_num_threads();

    println!("perf harness — mode={mode}, threads={threads}");
    let mut thread_scaling = Vec::new();
    for t in SCALING_THREADS {
        println!("Figure-8 sweep ({t} threads):");
        std::env::set_var("RAYON_NUM_THREADS", t.to_string());
        thread_scaling.push(ThreadScale {
            threads: t,
            fig8_sweep_ms: time_sweep(&corpora),
        });
    }
    std::env::remove_var("RAYON_NUM_THREADS");

    // The headline number uses the ambient worker count; reuse the matching curve
    // point rather than paying for another full sweep.
    let sweep_ms = match thread_scaling.iter().find(|p| p.threads == threads) {
        Some(p) => p.fig8_sweep_ms,
        None => {
            println!("Figure-8 sweep ({threads} threads):");
            time_sweep(&corpora)
        }
    };
    let serial_ms = thread_scaling
        .iter()
        .find(|p| p.threads == 1)
        .map(|p| p.fig8_sweep_ms);

    println!("Figure-8 sweep (fuel-budgeted BSA, {GENEROUS_PROBES} probes):");
    std::env::set_var("FUEL_BUDGET_PROBES", GENEROUS_PROBES.to_string());
    let budgeted_ms = time_sweep(&corpora);
    std::env::remove_var("FUEL_BUDGET_PROBES");

    println!("Figure-4 pipeline (memoized baselines):");
    let mut fig4_points = 0usize;
    let fig4_ms = fastest_ms(0, 1, || fig4_points = figures::fig4(&corpora).points.len());
    println!("  {fig4_points} points in {fig4_ms:.0} ms");

    println!("Figure-4 cells, naive per-cell baselines (pre-sweep behaviour):");
    let mut naive_points = 0usize;
    let fig4_naive_ms = fastest_ms(0, 1, || naive_points = fig4_naive(&corpora));
    println!("  {naive_points} points in {fig4_naive_ms:.0} ms");
    assert_eq!(naive_points, fig4_points);

    println!("Component microbenches (min of {MICRO_RUNS} runs):");
    let micro = vec![
        micro_mrt_probe(),
        micro_bsa_schedule(),
        micro_budgeted_bsa(),
        micro_resilient_ladder(),
        micro_unified_sms(),
    ];
    for m in &micro {
        println!(
            "  {}: {:.3} us/iter ({} iters)",
            m.name, m.per_iter_us, m.iterations
        );
    }

    let report = Report {
        mode: mode.to_string(),
        threads,
        baseline_fig8_sweep_ms: SEED_FIG8_SWEEP_MS,
        baseline_note: "seed commit 29284b4 (sequential rayon shim, counter MRT, \
                        clone-per-trial BSA), full sweep, 1-core container"
            .to_string(),
        fig8_sweep_ms: sweep_ms,
        fig8_sweep_serial_ms: serial_ms,
        thread_scaling,
        fig8_sweep_budgeted_ms: budgeted_ms,
        fuel_metering_overhead: budgeted_ms / sweep_ms,
        speedup_vs_seed: (!fast).then(|| SEED_FIG8_SWEEP_MS / sweep_ms),
        fig4_sweep_ms: fig4_ms,
        fig4_naive_ms,
        fig4_memoization_speedup: fig4_naive_ms / fig4_ms,
        micro,
    };
    if let Some(s) = report.speedup_vs_seed {
        println!("Full sweep: {sweep_ms:.0} ms vs seed {SEED_FIG8_SWEEP_MS:.0} ms — {s:.2}x");
    }
    println!(
        "Figure-4 path: {fig4_ms:.0} ms memoized vs {fig4_naive_ms:.0} ms naive — {:.2}x",
        report.fig4_memoization_speedup
    );
    println!(
        "Fuel metering: {budgeted_ms:.0} ms budgeted vs {sweep_ms:.0} ms plain — {:.3}x",
        report.fuel_metering_overhead
    );
    let json = serde_json::to_string_pretty(&report).expect("report serializes");
    std::fs::write("BENCH_perf.json", json).expect("BENCH_perf.json is writable");
    println!("Report written to BENCH_perf.json");
}
