//! Table 1 — the evaluated machine configurations and the operation latencies.

use vliw_arch::{FuKind, MachineConfig, OpClass};
use vliw_metrics::TextTable;

fn main() {
    let configs = [
        MachineConfig::unified(),
        MachineConfig::two_cluster(1, 1),
        MachineConfig::four_cluster(1, 1),
    ];
    let mut table = TextTable::new([
        "configuration",
        "clusters",
        "INT/cluster",
        "FP/cluster",
        "MEM/cluster",
        "regs/cluster",
        "total issue",
        "total regs",
    ]);
    for m in &configs {
        table.row([
            m.name.clone(),
            m.n_clusters.to_string(),
            m.cluster.fu_count(FuKind::Int).to_string(),
            m.cluster.fu_count(FuKind::Fp).to_string(),
            m.cluster.fu_count(FuKind::Mem).to_string(),
            m.cluster.registers.to_string(),
            m.total_issue_width().to_string(),
            m.total_registers().to_string(),
        ]);
    }
    println!("Table 1a — machine configurations");
    println!("{table}");
    println!(
        "Clustered configurations are evaluated with 1 or 2 buses of latency 1, 2 or 4 cycles.\n"
    );

    let machine = MachineConfig::unified();
    let mut latencies = TextTable::new(["operation class", "latency (cycles)"]);
    for class in OpClass::ALL {
        latencies.row([
            class.mnemonic().to_string(),
            machine.latency(class).to_string(),
        ]);
    }
    println!("Table 1b — operation latencies");
    println!("{latencies}");
}
