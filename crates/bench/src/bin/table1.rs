//! Table 1 — the evaluated machine configurations and the operation latencies.

use serde::Serialize;
use vliw_arch::{FuKind, MachineConfig, OpClass};
use vliw_bench::write_json;
use vliw_metrics::TextTable;

#[derive(Debug, Serialize)]
struct ConfigRow {
    configuration: String,
    clusters: usize,
    int_per_cluster: usize,
    fp_per_cluster: usize,
    mem_per_cluster: usize,
    regs_per_cluster: usize,
    total_issue: usize,
    total_regs: usize,
}

#[derive(Debug, Serialize)]
struct LatencyRow {
    class: String,
    latency: u32,
}

#[derive(Debug, Serialize)]
struct Table1 {
    configurations: Vec<ConfigRow>,
    latencies: Vec<LatencyRow>,
}

fn main() {
    let configs = [
        MachineConfig::unified(),
        MachineConfig::two_cluster(1, 1),
        MachineConfig::four_cluster(1, 1),
    ];
    let mut table = TextTable::new([
        "configuration",
        "clusters",
        "INT/cluster",
        "FP/cluster",
        "MEM/cluster",
        "regs/cluster",
        "total issue",
        "total regs",
    ]);
    let mut config_rows: Vec<ConfigRow> = Vec::new();
    for m in &configs {
        table.row([
            m.name.clone(),
            m.n_clusters.to_string(),
            m.cluster.fu_count(FuKind::Int).to_string(),
            m.cluster.fu_count(FuKind::Fp).to_string(),
            m.cluster.fu_count(FuKind::Mem).to_string(),
            m.cluster.registers.to_string(),
            m.total_issue_width().to_string(),
            m.total_registers().to_string(),
        ]);
        config_rows.push(ConfigRow {
            configuration: m.name.clone(),
            clusters: m.n_clusters,
            int_per_cluster: m.cluster.fu_count(FuKind::Int),
            fp_per_cluster: m.cluster.fu_count(FuKind::Fp),
            mem_per_cluster: m.cluster.fu_count(FuKind::Mem),
            regs_per_cluster: m.cluster.registers,
            total_issue: m.total_issue_width(),
            total_regs: m.total_registers(),
        });
    }
    println!("Table 1a — machine configurations");
    println!("{table}");
    println!(
        "Clustered configurations are evaluated with 1 or 2 buses of latency 1, 2 or 4 cycles.\n"
    );

    let machine = MachineConfig::unified();
    let mut latencies = TextTable::new(["operation class", "latency (cycles)"]);
    let mut latency_rows: Vec<LatencyRow> = Vec::new();
    for class in OpClass::ALL {
        latencies.row([
            class.mnemonic().to_string(),
            machine.latency(class).to_string(),
        ]);
        latency_rows.push(LatencyRow {
            class: class.mnemonic().to_string(),
            latency: machine.latency(class),
        });
    }
    println!("Table 1b — operation latencies");
    println!("{latencies}");

    let json = Table1 {
        configurations: config_rows,
        latencies: latency_rows,
    };
    if let Ok(path) = write_json("table1", &json) {
        println!("JSON written to {}", path.display());
    }
}
