//! Table 1 — the evaluated machine configurations and the operation latencies.
//!
//! The data comes from [`vliw_bench::figures::table1`]; this binary only prints it
//! and writes `results/table1.json` (the golden test regenerates the same rows).

use vliw_bench::{figures, write_json};
use vliw_metrics::TextTable;

fn main() {
    let out = figures::table1();

    let mut table = TextTable::new([
        "configuration",
        "clusters",
        "INT/cluster",
        "FP/cluster",
        "MEM/cluster",
        "regs/cluster",
        "total issue",
        "total regs",
    ]);
    for c in &out.configurations {
        table.row([
            c.configuration.clone(),
            c.clusters.to_string(),
            c.int_per_cluster.to_string(),
            c.fp_per_cluster.to_string(),
            c.mem_per_cluster.to_string(),
            c.regs_per_cluster.to_string(),
            c.total_issue.to_string(),
            c.total_regs.to_string(),
        ]);
    }
    println!("Table 1a — machine configurations");
    println!("{table}");
    println!(
        "Clustered configurations are evaluated with 1 or 2 buses of latency 1, 2 or 4 cycles.\n"
    );

    let mut latencies = TextTable::new(["operation class", "latency (cycles)"]);
    for l in &out.latencies {
        latencies.row([l.class.clone(), l.latency.to_string()]);
    }
    println!("Table 1b — operation latencies");
    println!("{latencies}");

    if let Ok(path) = write_json("table1", &out) {
        println!("JSON written to {}", path.display());
    }
}
