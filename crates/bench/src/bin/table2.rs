//! Table 2 — cycle times of the evaluated configurations (Palacharla delay model,
//! 0.18 µm).
//!
//! The data comes from [`vliw_bench::figures::table2`]; this binary only prints it
//! and writes `results/table2.json` (the golden test regenerates the same rows).

use vliw_bench::{figures, write_json};
use vliw_metrics::TextTable;

fn main() {
    let rows = figures::table2();
    let unified_ct = rows[0].3;
    let mut table = TextTable::new([
        "configuration",
        "bypass (ps)",
        "regfile (ps)",
        "cycle time (ps)",
        "vs unified",
    ]);
    for (name, bypass, rf, ct) in &rows {
        table.row([
            name.clone(),
            format!("{bypass:.0}"),
            format!("{rf:.0}"),
            format!("{ct:.0}"),
            format!("{:.2}x", unified_ct / ct),
        ]);
    }
    println!("Table 2 — cycle times (Palacharla model, 0.18um calibration)");
    println!("{table}");
    if let Ok(path) = write_json("table2", &rows) {
        println!("JSON written to {}", path.display());
    }
}
