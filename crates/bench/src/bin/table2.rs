//! Table 2 — cycle times of the evaluated configurations (Palacharla delay model,
//! 0.18 µm).

use vliw_arch::MachineConfig;
use vliw_bench::write_json;
use vliw_metrics::TextTable;
use vliw_timing::CycleTimeModel;

fn main() {
    let model = CycleTimeModel::new();
    let configs = [
        MachineConfig::unified(),
        MachineConfig::two_cluster(1, 1),
        MachineConfig::two_cluster(2, 1),
        MachineConfig::four_cluster(1, 1),
        MachineConfig::four_cluster(2, 1),
    ];
    let mut table = TextTable::new([
        "configuration",
        "bypass (ps)",
        "regfile (ps)",
        "cycle time (ps)",
        "vs unified",
    ]);
    let unified_ct = model.cycle_time_ps(&configs[0]);
    let mut rows = Vec::new();
    for m in &configs {
        let (rd, wr) = m.register_file_ports();
        let bypass = model.model().bypass_delay_ps(m.cluster.issue_width());
        let rf = model.model().register_file_ps(m.cluster.registers, rd, wr);
        let ct = model.cycle_time_ps(m);
        table.row([
            m.name.clone(),
            format!("{bypass:.0}"),
            format!("{rf:.0}"),
            format!("{ct:.0}"),
            format!("{:.2}x", unified_ct / ct),
        ]);
        rows.push((m.name.clone(), bypass, rf, ct));
    }
    println!("Table 2 — cycle times (Palacharla model, 0.18um calibration)");
    println!("{table}");
    if let Ok(path) = write_json("table2", &rows) {
        println!("JSON written to {}", path.display());
    }
}
