//! The figure pipelines: each of the paper's data figures as a plain function from
//! benchmark corpora to the serialisable rows its binary prints and writes to
//! `results/<name>.json`.
//!
//! All pipelines declare their cells on the [`Sweep`] runner, so the expensive
//! unified-machine baselines are scheduled once per (corpus, machine structure,
//! policy) instead of once per cell, and the whole cross-product runs rayon-parallel.
//! The row orders and numeric values of the paper figures are byte-identical to the
//! historical per-binary loops (guarded by `tests/golden.rs`): scheduling is
//! deterministic and the means are taken over the same values in the same order.
//!
//! [`fig_unroll`] goes beyond the paper: where Figure 8 evaluates unrolling only at
//! the single point `U = n_clusters`, the factor-exploration pipeline sweeps
//! `U ∈ 1..=8` (exact remainder accounting) on the Table-1 clustered machines and
//! adds an `Explore` row — the code-size-budgeted winner across all factors.

use crate::sweep::{Baseline, Sweep};
use crate::{mean, Algorithm, CellId};
use cvliw_core::UnrollPolicy;
use serde::Serialize;
use vliw_arch::MachineConfig;
use vliw_timing::{speedup, CycleTimeModel};
use vliw_workloads::LoopCorpus;

/// One point of Figure 4: average relative IPC of a clustered configuration.
#[derive(Debug, Serialize)]
pub struct Fig4Point {
    /// Number of clusters.
    pub clusters: usize,
    /// Number of buses.
    pub buses: usize,
    /// Bus latency in cycles.
    pub latency: u32,
    /// Algorithm label (`BSA` or `N&E`).
    pub algorithm: String,
    /// IPC relative to the unified counterpart, averaged over the benchmarks.
    pub relative_ipc: f64,
}

/// One row of the Figure 4 motivation check: BSA vs N&E at the configurations N&E
/// evaluated (bus latency 1).
#[derive(Debug, Serialize)]
pub struct Fig4Motivation {
    /// Number of clusters.
    pub clusters: usize,
    /// Number of buses.
    pub buses: usize,
    /// BSA's average relative IPC.
    pub bsa: f64,
    /// N&E's average relative IPC.
    pub ne: f64,
}

/// The Figure 4 pipeline output.
#[derive(Debug)]
pub struct Fig4Output {
    /// The figure's points (serialized to `results/fig4.json`).
    pub points: Vec<Fig4Point>,
    /// The motivation-section comparison rows.
    pub motivation: Vec<Fig4Motivation>,
}

/// A [`Sweep`] with both opt-in audit modes wired to their environment variables
/// (`VERIFY_CELLS` → execution validation, `LINT_CELLS` → static certification) —
/// the starting point of every figure pipeline.
fn audited_sweep() -> Sweep {
    let mut sweep = Sweep::new();
    sweep.verify_cells(crate::verify_from_env());
    sweep.lint_cells(crate::lint_from_env());
    sweep
}

/// Figure 4 grid cell: `(clusters, buses, latency, algorithm, cell)`.
type Fig4Cell = (usize, usize, u32, Algorithm, CellId);
/// Figure 4 motivation pair: `(clusters, buses, no-unroll cell, unrolled cell)`.
type Fig4MotivationCell = (usize, usize, CellId, CellId);

/// Declare Figure 4's cells on `sweep`, returning the grid cells and the
/// motivation-check cells.  Shared between [`fig4`] and
/// [`crate::lint_audit::figure_jobs`].
pub(crate) fn declare_fig4(sweep: &mut Sweep) -> (Vec<Fig4Cell>, Vec<Fig4MotivationCell>) {
    let bus_counts = [1usize, 2, 3, 4, 6, 8, 12];
    let latencies = [1u32, 2];
    let algorithms = [Algorithm::Bsa, Algorithm::NystromEichenberger];

    let mut point_cells: Vec<(usize, usize, u32, Algorithm, CellId)> = Vec::new();
    for &clusters in &[2usize, 4] {
        for &alg in &algorithms {
            for &lat in &latencies {
                for &buses in &bus_counts {
                    let machine = MachineConfig::clustered(clusters, buses, lat);
                    let id = sweep.cell_vs(
                        machine,
                        alg,
                        UnrollPolicy::None,
                        Baseline::UnifiedCounterpart,
                    );
                    point_cells.push((clusters, buses, lat, alg, id));
                }
            }
        }
    }
    // Motivation check cells ((2,2) and (4,4) at latency 1) are already part of the
    // grid above; the runner deduplicates them, so declaring them again costs
    // nothing and keeps the lookup simple.
    let mut motivation_cells: Vec<(usize, usize, CellId, CellId)> = Vec::new();
    for (clusters, buses) in [(2usize, 2usize), (4, 4)] {
        let machine = MachineConfig::clustered(clusters, buses, 1);
        let bsa = sweep.cell_vs(
            machine.clone(),
            Algorithm::Bsa,
            UnrollPolicy::None,
            Baseline::UnifiedCounterpart,
        );
        let ne = sweep.cell_vs(
            machine,
            Algorithm::NystromEichenberger,
            UnrollPolicy::None,
            Baseline::UnifiedCounterpart,
        );
        motivation_cells.push((clusters, buses, bsa, ne));
    }
    (point_cells, motivation_cells)
}

/// Figure 4 — relative performance (IPC of the clustered machine / IPC of the unified
/// machine with the same resources) as a function of the number of buses, for the
/// paper's single-pass scheduler (BSA) and the two-phase baseline (N&E), with bus
/// latencies of 1 and 2 cycles, on the 2-cluster and 4-cluster configurations.
/// No unrolling is applied (this figure motivates the unrolling technique).
pub fn fig4(corpora: &[LoopCorpus]) -> Fig4Output {
    let mut sweep = audited_sweep();
    let (point_cells, motivation_cells) = declare_fig4(&mut sweep);
    let results = sweep.run(corpora);
    let points = point_cells
        .into_iter()
        .map(|(clusters, buses, latency, alg, id)| Fig4Point {
            clusters,
            buses,
            latency,
            algorithm: alg.label().to_string(),
            relative_ipc: results.mean_relative_ipc(id),
        })
        .collect();
    let motivation = motivation_cells
        .into_iter()
        .map(|(clusters, buses, bsa, ne)| Fig4Motivation {
            clusters,
            buses,
            bsa: results.mean_relative_ipc(bsa),
            ne: results.mean_relative_ipc(ne),
        })
        .collect();
    Fig4Output { points, motivation }
}

/// One bar of Figure 8: IPC of one benchmark on one clustered configuration under one
/// unrolling policy, with its unified reference.
#[derive(Debug, Serialize)]
pub struct Fig8Bar {
    /// Benchmark name.
    pub benchmark: String,
    /// Number of clusters.
    pub clusters: usize,
    /// Unrolling-policy label.
    pub policy: String,
    /// Number of buses.
    pub buses: usize,
    /// Bus latency in cycles.
    pub latency: u32,
    /// IPC of the clustered configuration.
    pub ipc: f64,
    /// IPC of the paper's unified configuration under the same policy.
    pub unified_ipc: f64,
    /// `ipc / unified_ipc`.
    pub relative_ipc: f64,
    /// Loops the policy unrolled on the clustered machine.
    pub unrolled_loops: usize,
}

/// Declare Figure 8's cells on `sweep`.  Shared between [`fig8`] and
/// [`crate::lint_audit::figure_jobs`].
pub(crate) fn declare_fig8(sweep: &mut Sweep) -> Vec<(usize, UnrollPolicy, usize, u32, CellId)> {
    let bus_latencies = [1u32, 2, 4];
    let bus_counts = [1usize, 2];
    let unified = MachineConfig::unified();

    let mut cells: Vec<(usize, UnrollPolicy, usize, u32, CellId)> = Vec::new();
    for &clusters in &[2usize, 4] {
        for policy in UnrollPolicy::ALL {
            for &buses in &bus_counts {
                for &lat in &bus_latencies {
                    let machine = MachineConfig::clustered(clusters, buses, lat);
                    let id = sweep.cell_vs(
                        machine,
                        Algorithm::Bsa,
                        policy,
                        Baseline::Machine(unified.clone()),
                    );
                    cells.push((clusters, policy, buses, lat, id));
                }
            }
        }
    }
    cells
}

/// Figure 8 — IPC of every SPECfp95 benchmark on the unified and clustered
/// configurations, for the three unrolling policies (No unrolling / Unrolling /
/// Selective unrolling), with 1 or 2 buses and bus latencies of 1, 2 and 4 cycles.
pub fn fig8(corpora: &[LoopCorpus]) -> Vec<Fig8Bar> {
    let bus_latencies = [1u32, 2, 4];
    let bus_counts = [1usize, 2];
    let mut sweep = audited_sweep();
    let cells = declare_fig8(&mut sweep);
    let results = sweep.run(corpora);

    // Historical bar order: clusters → benchmark → policy → buses → latency.
    let mut bars = Vec::with_capacity(cells.len() * corpora.len());
    for &clusters in &[2usize, 4] {
        for (corpus_idx, corpus) in corpora.iter().enumerate() {
            for policy in UnrollPolicy::ALL {
                for &buses in &bus_counts {
                    for &lat in &bus_latencies {
                        let &(.., id) = cells
                            .iter()
                            .find(|&&(c, p, b, l, _)| {
                                c == clusters && p == policy && b == buses && l == lat
                            })
                            .expect("cell declared above");
                        let outcome = &results.cell(id)[corpus_idx];
                        bars.push(Fig8Bar {
                            benchmark: corpus.benchmark.name().to_string(),
                            clusters,
                            policy: policy.label(),
                            buses,
                            latency: lat,
                            ipc: outcome.result.ipc,
                            unified_ipc: outcome.baseline.ipc,
                            relative_ipc: outcome.relative_ipc,
                            unrolled_loops: outcome.result.unrolled_loops,
                        });
                    }
                }
            }
        }
    }
    bars
}

/// One bar of Figure 9: cycle-time-aware speed-up of a clustered configuration.
#[derive(Debug, Serialize)]
pub struct Fig9Bar {
    /// Number of clusters.
    pub clusters: usize,
    /// Number of buses.
    pub buses: usize,
    /// Policy label (`NU` = no unrolling, `SU` = selective unrolling).
    pub policy: String,
    /// Average IPC relative to the unified configuration.
    pub relative_ipc: f64,
    /// Cycle time of the unified machine over the clustered machine's (Palacharla
    /// model).
    pub cycle_time_ratio: f64,
    /// `relative_ipc × cycle_time_ratio`.
    pub speedup: f64,
}

/// Declare Figure 9's cells on `sweep`.  Shared between [`fig9`] and
/// [`crate::lint_audit::figure_jobs`].
pub(crate) fn declare_fig9(
    sweep: &mut Sweep,
) -> Vec<(usize, usize, &'static str, MachineConfig, CellId)> {
    let unified = MachineConfig::unified();
    let mut cells: Vec<(usize, usize, &'static str, MachineConfig, CellId)> = Vec::new();
    for &clusters in &[2usize, 4] {
        for &buses in &[1usize, 2] {
            let machine = MachineConfig::clustered(clusters, buses, 1);
            for (policy, label) in [(UnrollPolicy::None, "NU"), (UnrollPolicy::Selective, "SU")] {
                let id = sweep.cell_vs(
                    machine.clone(),
                    Algorithm::Bsa,
                    policy,
                    Baseline::Machine(unified.clone()),
                );
                cells.push((clusters, buses, label, machine.clone(), id));
            }
        }
    }
    cells
}

/// Figure 9 — speed-up of the clustered configurations over the unified one when the
/// cycle time (Table 2 / Palacharla model) is taken into account, for the No-unrolling
/// (NU) and Selective-unrolling (SU) policies with 1 or 2 buses (bus latency 1).
pub fn fig9(corpora: &[LoopCorpus]) -> Vec<Fig9Bar> {
    let model = CycleTimeModel::new();
    let unified = MachineConfig::unified();

    let mut sweep = audited_sweep();
    let cells = declare_fig9(&mut sweep);
    let results = sweep.run(corpora);

    cells
        .into_iter()
        .map(|(clusters, buses, label, machine, id)| {
            // Figure 9 historically skipped corpora whose unified baseline had zero
            // IPC (Figure 4 instead counts them as 0.0, via mean_relative_ipc).
            let rel = mean(&results.relative_ipcs(id));
            // speedup() wants absolute IPCs; feed the ratio directly.
            let row = speedup(&model, &unified, &machine, 1.0, rel);
            Fig9Bar {
                clusters,
                buses,
                policy: label.to_string(),
                relative_ipc: rel,
                cycle_time_ratio: row.cycle_time_ratio,
                speedup: row.speedup,
            }
        })
        .collect()
}

/// One bar of Figure 10: code size of a configuration normalised to the unified
/// machine without unrolling.
#[derive(Debug, Serialize)]
pub struct Fig10Bar {
    /// Number of clusters.
    pub clusters: usize,
    /// Unrolling-policy label.
    pub policy: String,
    /// Number of buses.
    pub buses: usize,
    /// Bus latency in cycles.
    pub latency: u32,
    /// Total operation slots (useful + NOP), normalised.
    pub normalized_total: f64,
    /// Useful operations only, normalised.
    pub normalized_useful: f64,
}

/// Declare Figure 10's cells on `sweep`, returning the unified baseline cell and
/// the grid cells.  Shared between [`fig10`] and
/// [`crate::lint_audit::figure_jobs`].
/// Figure 10 grid cell: `(clusters, policy, buses, latency, cell)`.
type Fig10Cell = (usize, UnrollPolicy, usize, u32, CellId);

pub(crate) fn declare_fig10(sweep: &mut Sweep) -> (CellId, Vec<Fig10Cell>) {
    let unified = MachineConfig::unified();
    let base_id = sweep.cell(unified, Algorithm::UnifiedSms, UnrollPolicy::None);
    let mut cells: Vec<(usize, UnrollPolicy, usize, u32, CellId)> = Vec::new();
    for &clusters in &[2usize, 4] {
        for policy in UnrollPolicy::ALL {
            for &buses in &[1usize, 2] {
                for &lat in &[1u32, 2, 4] {
                    let machine = MachineConfig::clustered(clusters, buses, lat);
                    let id = sweep.cell(machine, Algorithm::Bsa, policy);
                    cells.push((clusters, policy, buses, lat, id));
                }
            }
        }
    }
    (base_id, cells)
}

/// Figure 10 — impact of loop unrolling on code size: total operation slots (useful +
/// NOP) and useful operations only, normalised to the unified configuration without
/// unrolling, for the same scenarios as Figure 8.
pub fn fig10(corpora: &[LoopCorpus]) -> Vec<Fig10Bar> {
    let mut sweep = audited_sweep();
    let (base_id, cells) = declare_fig10(&mut sweep);
    let results = sweep.run(corpora);

    // Baseline: unified configuration, no unrolling, summed over all benchmarks.
    let (base_total, base_useful) = results.cell(base_id).iter().fold((0u64, 0u64), |acc, o| {
        (
            acc.0 + o.result.code_size.total_slots,
            acc.1 + o.result.code_size.useful_ops,
        )
    });

    cells
        .into_iter()
        .map(|(clusters, policy, buses, latency, id)| {
            let (total, useful) = results.cell(id).iter().fold((0u64, 0u64), |acc, o| {
                (
                    acc.0 + o.result.code_size.total_slots,
                    acc.1 + o.result.code_size.useful_ops,
                )
            });
            Fig10Bar {
                clusters,
                policy: policy.label(),
                buses,
                latency,
                normalized_total: total as f64 / base_total as f64,
                normalized_useful: useful as f64 / base_useful as f64,
            }
        })
        .collect()
}

/// One machine-configuration row of Table 1 (serialized into `results/table1.json`).
#[derive(Debug, Serialize)]
pub struct Table1Config {
    /// Configuration name.
    pub configuration: String,
    /// Number of clusters.
    pub clusters: usize,
    /// Integer units per cluster.
    pub int_per_cluster: usize,
    /// FP units per cluster.
    pub fp_per_cluster: usize,
    /// Memory units per cluster.
    pub mem_per_cluster: usize,
    /// Registers per cluster.
    pub regs_per_cluster: usize,
    /// Total issue width.
    pub total_issue: usize,
    /// Total registers.
    pub total_regs: usize,
}

/// One latency row of Table 1.
#[derive(Debug, Serialize)]
pub struct Table1Latency {
    /// Operation-class mnemonic.
    pub class: String,
    /// Result latency in cycles.
    pub latency: u32,
}

/// The Table 1 pipeline output: the evaluated machine configurations and the
/// operation latencies.
#[derive(Debug, Serialize)]
pub struct Table1Output {
    /// Table 1a — machine configurations.
    pub configurations: Vec<Table1Config>,
    /// Table 1b — operation latencies.
    pub latencies: Vec<Table1Latency>,
}

/// Table 1 — the evaluated machine configurations and the operation latencies.
pub fn table1() -> Table1Output {
    use vliw_arch::{FuKind, OpClass};
    let configs = [
        MachineConfig::unified(),
        MachineConfig::two_cluster(1, 1),
        MachineConfig::four_cluster(1, 1),
    ];
    let configurations = configs
        .iter()
        .map(|m| Table1Config {
            configuration: m.name.clone(),
            clusters: m.n_clusters,
            int_per_cluster: m.cluster.fu_count(FuKind::Int),
            fp_per_cluster: m.cluster.fu_count(FuKind::Fp),
            mem_per_cluster: m.cluster.fu_count(FuKind::Mem),
            regs_per_cluster: m.cluster.registers,
            total_issue: m.total_issue_width(),
            total_regs: m.total_registers(),
        })
        .collect();
    let machine = MachineConfig::unified();
    let latencies = OpClass::ALL
        .into_iter()
        .map(|class| Table1Latency {
            class: class.mnemonic().to_string(),
            latency: machine.latency(class),
        })
        .collect();
    Table1Output {
        configurations,
        latencies,
    }
}

/// One row of Table 2: `(configuration, bypass ps, register-file ps, cycle-time ps)`
/// (serialized as a tuple to keep `results/table2.json` byte-identical to the
/// historical binary output).
pub type Table2Row = (String, f64, f64, f64);

/// Table 2 — cycle times of the evaluated configurations (Palacharla delay model).
pub fn table2() -> Vec<Table2Row> {
    let model = CycleTimeModel::new();
    let configs = [
        MachineConfig::unified(),
        MachineConfig::two_cluster(1, 1),
        MachineConfig::two_cluster(2, 1),
        MachineConfig::four_cluster(1, 1),
        MachineConfig::four_cluster(2, 1),
    ];
    configs
        .iter()
        .map(|m| {
            let (rd, wr) = m.register_file_ports();
            let bypass = model.model().bypass_delay_ps(m.cluster.issue_width());
            let rf = model.model().register_file_ps(m.cluster.registers, rd, wr);
            let ct = model.cycle_time_ps(m);
            (m.name.clone(), bypass, rf, ct)
        })
        .collect()
}

/// One point of the unroll-factor exploration sweep (`fig_unroll`): one machine,
/// one unrolling policy (an explicit factor or the `Explore` winner), aggregated
/// over every benchmark corpus.
#[derive(Debug, Serialize)]
pub struct FigUnrollPoint {
    /// Machine name.
    pub machine: String,
    /// Number of clusters.
    pub clusters: usize,
    /// Number of buses.
    pub buses: usize,
    /// Bus latency in cycles.
    pub latency: u32,
    /// Unrolling-policy label (`Unroll xU` or `Explore <=xU`).
    pub policy: String,
    /// The swept unroll factor (for the `Explore` row: its `max_factor`).
    pub factor: u32,
    /// Aggregate IPC over all benchmarks (total useful ops / total cycles).
    pub ipc: f64,
    /// `ipc` relative to the same machine's factor-1 point.
    pub ipc_vs_no_unrolling: f64,
    /// Loops the policy actually unrolled.
    pub unrolled_loops: usize,
    /// Loops that could not be scheduled at all.
    pub failed_loops: usize,
    /// Loops whose II was pushed above MII by register pressure — the binding
    /// constraint as the factor grows.
    pub register_limited_loops: usize,
    /// Loops whose II was pushed above MII by bus saturation.
    pub bus_limited_loops: usize,
    /// The largest per-cluster `MaxLive` seen in any schedule.
    pub max_register_pressure: u32,
    /// Useful operation slots (kernel + remainder loops), summed over all loops.
    pub useful_ops: u64,
    /// Total operation slots including NOPs.
    pub total_slots: u64,
    /// `total_slots` relative to the same machine's factor-1 point.
    pub code_size_vs_no_unrolling: f64,
}

/// Aggregates of one `fig_unroll` cell over every corpus.
struct UnrollCellAggregate {
    ops: u64,
    cycles: u64,
    unrolled: usize,
    failed: usize,
    register_limited: usize,
    bus_limited: usize,
    max_pressure: u32,
    useful_ops: u64,
    total_slots: u64,
}

impl UnrollCellAggregate {
    fn of(outcomes: &[crate::CellOutcome]) -> Self {
        let mut agg = UnrollCellAggregate {
            ops: 0,
            cycles: 0,
            unrolled: 0,
            failed: 0,
            register_limited: 0,
            bus_limited: 0,
            max_pressure: 0,
            useful_ops: 0,
            total_slots: 0,
        };
        for o in outcomes {
            let r = &o.result;
            agg.ops += r.ipc_view().total_ops();
            agg.cycles += r.ipc_view().total_cycles();
            agg.unrolled += r.unrolled_loops;
            agg.failed += r.failed_loops;
            agg.register_limited += r.diagnostics.register_limited;
            agg.bus_limited += r.diagnostics.bus_limited;
            agg.max_pressure = agg.max_pressure.max(r.diagnostics.max_register_pressure);
            agg.useful_ops += r.code_size.useful_ops;
            agg.total_slots += r.code_size.total_slots;
        }
        agg
    }

    fn ipc(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.ops as f64 / self.cycles as f64
        }
    }
}

/// Declare the factor-exploration sweep's cells on `sweep`.  Shared between
/// [`fig_unroll`] and [`crate::lint_audit::figure_jobs`].
pub(crate) fn declare_fig_unroll(
    sweep: &mut Sweep,
) -> Vec<(MachineConfig, UnrollPolicy, u32, CellId)> {
    const MAX_FACTOR: u32 = 8;
    let machines = [
        MachineConfig::two_cluster(1, 1),
        MachineConfig::four_cluster(1, 1),
    ];

    let mut cells: Vec<(MachineConfig, UnrollPolicy, u32, CellId)> = Vec::new();
    for machine in &machines {
        for factor in 1..=MAX_FACTOR {
            let policy = UnrollPolicy::Fixed(factor);
            let id = sweep.cell(machine.clone(), Algorithm::Bsa, policy);
            cells.push((machine.clone(), policy, factor, id));
        }
        let policy = UnrollPolicy::Explore {
            max_factor: MAX_FACTOR,
        };
        let id = sweep.cell(machine.clone(), Algorithm::Bsa, policy);
        cells.push((machine.clone(), policy, MAX_FACTOR, id));
    }
    cells
}

/// The factor-exploration figure — IPC and code size as a function of the unroll
/// factor `U ∈ 1..=8` on the Table-1 clustered machines (exact remainder
/// accounting, BSA), plus one `Explore` row per machine: the best factor under the
/// default code-size budget.  The paper's Figure 8 only ever evaluates
/// `U = n_clusters`; this sweep exposes the structure across the whole factor axis
/// (register pressure taking over as the binding constraint as `U` grows).
pub fn fig_unroll(corpora: &[LoopCorpus]) -> Vec<FigUnrollPoint> {
    let mut sweep = audited_sweep();
    let cells = declare_fig_unroll(&mut sweep);
    let results = sweep.run(corpora);

    // Per-machine baseline: the factor-1 cell (identical to no unrolling).
    let mut points = Vec::with_capacity(cells.len());
    let mut baseline: Option<(String, f64, u64)> = None;
    for (machine, policy, factor, id) in cells {
        let agg = UnrollCellAggregate::of(results.cell(id));
        if baseline
            .as_ref()
            .is_none_or(|(name, _, _)| *name != machine.name)
        {
            debug_assert_eq!(factor, 1, "the first cell of every machine is factor 1");
            baseline = Some((machine.name.clone(), agg.ipc(), agg.total_slots));
        }
        let (_, base_ipc, base_slots) = baseline.as_ref().expect("baseline set above");
        points.push(FigUnrollPoint {
            machine: machine.name.clone(),
            clusters: machine.n_clusters,
            buses: machine.buses.count,
            latency: machine.buses.latency,
            policy: policy.label(),
            factor,
            ipc: agg.ipc(),
            ipc_vs_no_unrolling: if *base_ipc > 0.0 {
                agg.ipc() / base_ipc
            } else {
                0.0
            },
            unrolled_loops: agg.unrolled,
            failed_loops: agg.failed,
            register_limited_loops: agg.register_limited,
            bus_limited_loops: agg.bus_limited,
            max_register_pressure: agg.max_pressure,
            useful_ops: agg.useful_ops,
            total_slots: agg.total_slots,
            code_size_vs_no_unrolling: if *base_slots > 0 {
                agg.total_slots as f64 / *base_slots as f64
            } else {
                0.0
            },
        });
    }
    points
}

/// Average relative IPC per `(policy, buses, latency)` over the bars of one cluster
/// count — the AVERAGE panel of Figure 8 (used by the `fig8` binary's report).
pub fn fig8_averages(bars: &[Fig8Bar], clusters: usize) -> Vec<(String, usize, u32, f64)> {
    let mut rows = Vec::new();
    for policy in UnrollPolicy::ALL {
        for &buses in &[1usize, 2] {
            for &lat in &[1u32, 2, 4] {
                let rels: Vec<f64> = bars
                    .iter()
                    .filter(|b| {
                        b.clusters == clusters
                            && b.policy == policy.label()
                            && b.buses == buses
                            && b.latency == lat
                    })
                    .map(|b| b.relative_ipc)
                    .collect();
                rows.push((policy.label(), buses, lat, mean(&rels)));
            }
        }
    }
    rows
}
