//! # vliw-bench — the experiment harness
//!
//! One binary per table/figure of the paper (see `DESIGN.md` for the index):
//!
//! | target | reproduces |
//! |--------|------------|
//! | `table1` | Table 1 — machine configurations and operation latencies |
//! | `fig4`   | Figure 4 — relative IPC vs. number of buses, BSA vs. the two-phase baseline |
//! | `fig8`   | Figure 8 — per-benchmark IPC for the three unrolling policies |
//! | `table2` | Table 2 — cycle times from the Palacharla model |
//! | `fig9`   | Figure 9 — cycle-time-aware speed-up over the unified machine |
//! | `fig10`  | Figure 10 — code-size impact of unrolling |
//! | `fig_unroll` | beyond the paper: IPC and code size across unroll factors `U ∈ 1..=8` |
//! | `fig_optgap` | beyond the paper: certified optimality gaps of every policy on the Table-1 machines |
//!
//! plus the Criterion micro-benchmarks (`cargo bench -p vliw-bench`) measuring
//! scheduler throughput.
//!
//! The library is layered:
//!
//! * [`run_corpus`] schedules one whole [`LoopCorpus`] on one machine with one
//!   algorithm and unrolling policy, in parallel over loops, and aggregates IPC,
//!   code size and the engine's [`ScheduleDiagnostics`] into a [`CorpusResult`];
//! * [`sweep`] is the declarative runner on top: declare the cells of a
//!   `machines × algorithms × policies` cross-product once, and [`sweep::Sweep::run`]
//!   executes every `(cell, corpus)` job rayon-parallel with unified-machine
//!   baselines memoized per (corpus, machine, policy) — the figure binaries all
//!   drive it through [`figures`];
//! * [`figures`] holds the figure pipelines themselves (`fig4`, `fig8`, `fig9`,
//!   `fig10`) as plain functions from corpora to the serialisable rows the binaries
//!   print and write, which is also what the golden-output regression test calls.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod figures;
pub mod lint_audit;
pub mod optgap;
pub mod sweep;

use cvliw_core::{BsaScheduler, ClusterSchedule, NeScheduler, SelectiveUnroller, UnrollPolicy};
use rayon::prelude::*;
use serde::{Deserialize, Serialize};
use vliw_arch::MachineConfig;
use vliw_ddg::DepGraph;
use vliw_metrics::{CodeSizeModel, CodeSizeReport, IpcAccountant, IpcView, LoopContribution};
use vliw_sms::{LimitingResource, ScheduleDiagnostics, ScheduleError, SmsScheduler};
use vliw_workloads::LoopCorpus;

pub use sweep::{Baseline, CellId, CellOutcome, Sweep, SweepJob, SweepResults};

/// Which scheduling algorithm to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Algorithm {
    /// The unified-machine Swing Modulo Scheduler (reference).
    UnifiedSms,
    /// The paper's single-pass cluster scheduler (Figure 5).
    Bsa,
    /// The two-phase Nystrom & Eichenberger-style baseline.
    NystromEichenberger,
}

impl Algorithm {
    /// Short label used in reports.
    pub fn label(self) -> &'static str {
        match self {
            Algorithm::UnifiedSms => "unified",
            Algorithm::Bsa => "BSA",
            Algorithm::NystromEichenberger => "N&E",
        }
    }
}

/// Schedule one loop with the given algorithm and policy.
///
/// Measurement hook: when `FUEL_BUDGET_PROBES` is set in the environment the BSA
/// path runs under a [`vliw_sms::FuelBudget`] of that many probes.  The perf
/// harness uses this to time the cost of fuel metering on the full Figure 8
/// sweep; the experiment binaries never set it, so committed artifacts are
/// produced by the unbudgeted search.
pub fn schedule_loop(
    graph: &DepGraph,
    machine: &MachineConfig,
    algorithm: Algorithm,
    policy: UnrollPolicy,
) -> Result<ClusterSchedule, ScheduleError> {
    match algorithm {
        Algorithm::UnifiedSms => {
            SelectiveUnroller::new(SmsScheduler::new(machine)).schedule_with_policy(graph, policy)
        }
        Algorithm::Bsa => {
            let mut bsa = BsaScheduler::new(machine);
            if let Some(probes) = std::env::var("FUEL_BUDGET_PROBES")
                .ok()
                .and_then(|v| v.parse::<u64>().ok())
            {
                bsa = bsa.with_fuel(vliw_sms::FuelBudget::probes(probes));
            }
            SelectiveUnroller::new(bsa).schedule_with_policy(graph, policy)
        }
        Algorithm::NystromEichenberger => {
            SelectiveUnroller::new(NeScheduler::new(machine)).schedule_with_policy(graph, policy)
        }
    }
}

/// Aggregated engine diagnostics over every loop of a corpus run: how many loops each
/// resource limited, communication totals and search effort.  Serialized into every
/// [`CorpusResult`], so any result JSON carries the breakdown the single
/// `limited_by_bus` flag used to hide.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct CorpusDiagnostics {
    /// Loops that scheduled at their minimum II.
    pub at_mii: usize,
    /// Loops bounded by a dependence recurrence.
    pub recurrence_limited: usize,
    /// Loops bounded by functional-unit counts (at MII or above).
    pub fu_limited: usize,
    /// Loops whose II was pushed above MII by bus saturation (the selective
    /// unroller's candidates).
    pub bus_limited: usize,
    /// Loops whose II was pushed above MII by register pressure.
    pub register_limited: usize,
    /// Inter-cluster value transfers across all scheduled loops.
    pub total_comms: u64,
    /// Scheduling attempts (orderings tried) summed over all loops — the II-search
    /// effort behind the corpus.
    pub total_attempts: u64,
    /// The largest per-cluster `MaxLive` seen in any schedule.
    pub max_register_pressure: u32,
}

impl CorpusDiagnostics {
    /// Fold one loop's engine diagnostics into the aggregate.
    pub fn absorb(&mut self, d: &ScheduleDiagnostics) {
        if d.ii == d.mii {
            self.at_mii += 1;
        }
        match d.limiting {
            LimitingResource::Recurrence => self.recurrence_limited += 1,
            LimitingResource::FunctionalUnits => self.fu_limited += 1,
            LimitingResource::Bus => self.bus_limited += 1,
            LimitingResource::Registers => self.register_limited += 1,
        }
        self.total_comms += d.n_comms as u64;
        self.total_attempts += d.attempts() as u64;
        self.max_register_pressure = self
            .max_register_pressure
            .max(d.max_live_per_cluster.iter().copied().max().unwrap_or(0));
    }
}

/// The aggregate result of scheduling a whole corpus on one configuration.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CorpusResult {
    /// Benchmark name.
    pub benchmark: String,
    /// Machine name.
    pub machine: String,
    /// Algorithm used.
    pub algorithm: Algorithm,
    /// Unrolling policy used.
    pub policy: String,
    /// Aggregate IPC.
    pub ipc: f64,
    /// Number of loops that were unrolled.
    pub unrolled_loops: usize,
    /// Number of loops that could not be scheduled (counted, not silently dropped).
    pub failed_loops: usize,
    /// Static code size (useful ops and total slots) summed over all loops.
    pub code_size: CodeSizeReport,
    /// Per-loop IPC contributions (kept for drill-down output).
    pub contributions: Vec<LoopContribution>,
    /// Aggregated engine diagnostics (limiting resources, comms, search effort).
    pub diagnostics: CorpusDiagnostics,
}

impl CorpusResult {
    /// A borrowed IPC view over the stored contributions — the aggregate queries of
    /// an [`IpcAccountant`] without cloning a single contribution.
    pub fn ipc_view(&self) -> IpcView<'_> {
        IpcView::new(&self.contributions)
    }
}

/// Schedule every loop of `corpus` on `machine` with `algorithm` and `policy`,
/// in parallel, and aggregate IPC and code size.
///
/// The expensive per-loop post-processing (the IPC contribution and the code-size
/// model, which expands the pipelined program) happens *inside* the parallel map —
/// each job returns its `(contribution, code size, unrolled?, diagnostics)` tuple and
/// the serial tail merely folds those small values together.
pub fn run_corpus(
    corpus: &LoopCorpus,
    machine: &MachineConfig,
    algorithm: Algorithm,
    policy: UnrollPolicy,
) -> CorpusResult {
    run_corpus_impl(corpus, machine, algorithm, policy, false, false)
}

/// [`run_corpus`], with every produced schedule differentially audited by
/// [`vliw_sim::check_schedule`] — static validation, cycle-level replay and the
/// closed-form cycle cross-checks.  Panics with a full description on the first
/// failing loop — including a loop the scheduler cannot schedule at all, which a
/// plain run only counts in `failed_loops` — so an execution-validated pipeline is
/// a hard guarantee, not a best-effort log line.  The audit runs inside the parallel map and replays a
/// bounded iteration count per loop, so a validated sweep costs only a modest
/// constant factor over a plain one.
pub fn run_corpus_verified(
    corpus: &LoopCorpus,
    machine: &MachineConfig,
    algorithm: Algorithm,
    policy: UnrollPolicy,
) -> CorpusResult {
    run_corpus_impl(corpus, machine, algorithm, policy, true, false)
}

/// [`run_corpus`] with the audit modes selected by flags: `verify` replays every
/// schedule through `vliw_sim`'s differential oracle ([`run_corpus_verified`]);
/// `lint` certifies every schedule with `vliw_lint`'s static certifier and panics
/// on the first deny-level diagnostic.  Both audits only observe, so the corpus
/// result is identical in every mode; [`sweep::Sweep`] routes its `VERIFY_CELLS` /
/// `LINT_CELLS` opt-ins through here.
pub fn run_corpus_audited(
    corpus: &LoopCorpus,
    machine: &MachineConfig,
    algorithm: Algorithm,
    policy: UnrollPolicy,
    verify: bool,
    lint: bool,
) -> CorpusResult {
    run_corpus_impl(corpus, machine, algorithm, policy, verify, lint)
}

fn run_corpus_impl(
    corpus: &LoopCorpus,
    machine: &MachineConfig,
    algorithm: Algorithm,
    policy: UnrollPolicy,
    verify: bool,
    lint: bool,
) -> CorpusResult {
    let code_model = CodeSizeModel::new(machine);
    type PerLoop = (LoopContribution, CodeSizeReport, bool, ScheduleDiagnostics);
    let per_loop: Vec<Option<PerLoop>> = corpus
        .loops
        .par_iter()
        .map(|graph| {
            // The per-loop job boundary: a panic anywhere in the scheduling stack is
            // contained into `ScheduleError::PolicyPanic` instead of unwinding
            // through the rayon pool and killing the entire sweep.  A plain run then
            // counts the loop in `failed_loops` (visible in the result JSON); an
            // audited run still hard-fails below with the typed message.
            let scheduled =
                vliw_sms::contain_schedule(|| schedule_loop(graph, machine, algorithm, policy));
            let cs: ClusterSchedule = match scheduled {
                Ok(cs) => cs,
                // A plain run counts the loop in `failed_loops` and moves on; an
                // execution-validated run must not silently lose coverage — an
                // unschedulable loop on a figure machine is itself an anomaly.
                Err(e) if verify => panic!(
                    "verify_cells: loop {} failed to schedule on {} ({:?}, policy {}): {e}",
                    graph.name,
                    machine,
                    algorithm,
                    policy.label()
                ),
                Err(_) => return None,
            };
            if verify {
                // The schedule to audit is the one actually produced — of the
                // unrolled body when an unrolling policy kicked in.
                let report = vliw_sim::check_schedule(
                    machine,
                    &cs.scheduled_graph,
                    &cs.schedule,
                    vliw_sim::verification_iterations(&cs.scheduled_graph),
                );
                assert!(
                    report.is_clean(),
                    "verify_cells: loop {} on {} ({:?}, policy {}): {:?}",
                    cs.scheduled_graph.name,
                    machine,
                    algorithm,
                    policy.label(),
                    report.findings
                );
                // An exact-model unroll also emits a remainder loop (the original
                // body's schedule); audit that code too.
                if let Some(rem) = &cs.remainder {
                    let report = vliw_sim::check_schedule(
                        machine,
                        graph,
                        &rem.schedule,
                        vliw_sim::verification_iterations(graph),
                    );
                    assert!(
                        report.is_clean(),
                        "verify_cells: remainder epilogue of loop {} on {} ({:?}, policy {}): {:?}",
                        graph.name,
                        machine,
                        algorithm,
                        policy.label(),
                        report.findings
                    );
                }
            }
            if lint {
                // The static counterpart of the execution audit above: certify the
                // produced kernel (and the exact-unroll remainder) with the lint
                // framework's deny-level invariants, no replay involved.
                let report = vliw_lint::Certifier::new(machine).check(
                    &cs.scheduled_graph,
                    &cs.schedule,
                    vliw_sim::verification_iterations(&cs.scheduled_graph),
                );
                assert!(
                    report.is_certified(),
                    "lint_cells: loop {} on {} ({:?}, policy {}): {:?}",
                    cs.scheduled_graph.name,
                    machine,
                    algorithm,
                    policy.label(),
                    report.diagnostics
                );
                if let Some(rem) = &cs.remainder {
                    let report = vliw_lint::Certifier::new(machine).check(
                        graph,
                        &rem.schedule,
                        vliw_sim::verification_iterations(graph),
                    );
                    assert!(
                        report.is_certified(),
                        "lint_cells: remainder epilogue of loop {} on {} ({:?}, policy {}): {:?}",
                        graph.name,
                        machine,
                        algorithm,
                        policy.label(),
                        report.diagnostics
                    );
                }
            }
            let contribution = LoopContribution::new(
                &cs.schedule,
                cs.scheduled_graph.iterations,
                cs.original_ops,
                cs.original_iterations,
                cs.invocations,
                cs.unroll_factor,
            )
            .with_epilogue_cycles(cs.epilogue_cycles_per_invocation());
            let size = cs.code_size(&code_model);
            Some((contribution, size, cs.unroll_factor > 1, cs.diagnostics))
        })
        .collect();

    let mut acc = IpcAccountant::new();
    let mut code = CodeSizeReport::zero();
    let mut diagnostics = CorpusDiagnostics::default();
    let mut unrolled_loops = 0usize;
    let mut failed_loops = 0usize;
    for entry in per_loop {
        match entry {
            None => failed_loops += 1,
            Some((contribution, size, unrolled, diag)) => {
                if unrolled {
                    unrolled_loops += 1;
                }
                acc.add(contribution);
                code.accumulate(size);
                diagnostics.absorb(&diag);
            }
        }
    }
    CorpusResult {
        benchmark: corpus.benchmark.name().to_string(),
        machine: machine.name.clone(),
        algorithm,
        policy: policy.label(),
        ipc: acc.ipc(),
        unrolled_loops,
        failed_loops,
        code_size: code,
        contributions: acc.contributions().to_vec(),
        diagnostics,
    }
}

/// Average of a slice of f64 values (0 for an empty slice).
pub fn mean(values: &[f64]) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    values.iter().sum::<f64>() / values.len() as f64
}

/// Write a serialisable experiment result as pretty JSON under `results/<name>.json`
/// (creating the directory), returning the path.  Experiment binaries call this so
/// every figure has a machine-readable artifact next to the printed table.  One
/// report-writing policy for the whole workspace: this delegates to
/// [`vliw_lint::reportio`], which the `verify` and `lint` gate bins also use.
pub fn write_json<T: Serialize>(name: &str, value: &T) -> std::io::Result<std::path::PathBuf> {
    vliw_lint::reportio::write_results_json(name, value)
}

/// Whether figure pipelines should run execution-validated, from the
/// `VERIFY_CELLS` environment variable (set it to anything but `0`).  Every figure
/// pipeline feeds this into [`sweep::Sweep::verify_cells`], so
/// `VERIFY_CELLS=1 cargo run --release -p vliw-bench --bin fig9` reproduces the
/// figure with every schedule of every cell audited by the differential oracle.
pub fn verify_from_env() -> bool {
    std::env::var("VERIFY_CELLS").is_ok_and(|v| v != "0")
}

/// Whether figure pipelines should run statically certified, from the `LINT_CELLS`
/// environment variable (set it to anything but `0`) — the static mirror of
/// [`verify_from_env`].  Every figure pipeline feeds this into
/// [`sweep::Sweep::lint_cells`], so `LINT_CELLS=1 cargo run --release -p vliw-bench
/// --bin fig9` reproduces the figure with every schedule of every cell certified by
/// `vliw_lint` — no replay, just the dataflow proofs.
pub fn lint_from_env() -> bool {
    std::env::var("LINT_CELLS").is_ok_and(|v| v != "0")
}

/// The standard corpus used by all experiment binaries, optionally shrunk by the
/// `FAST_EXPERIMENTS` environment variable (useful in CI and in the Criterion benches).
pub fn standard_corpora() -> Vec<LoopCorpus> {
    let mut corpora = LoopCorpus::all();
    if std::env::var("FAST_EXPERIMENTS").is_ok() {
        for corpus in &mut corpora {
            corpus.loops.truncate(4);
        }
        corpora.truncate(4);
    }
    corpora
}

#[cfg(test)]
mod tests {
    use super::*;
    use vliw_workloads::SpecFp95;

    fn small_corpus() -> LoopCorpus {
        let mut c = LoopCorpus::generate(SpecFp95::Swim);
        c.loops.truncate(4);
        c
    }

    #[test]
    fn run_corpus_produces_positive_ipc_and_no_failures() {
        let corpus = small_corpus();
        let machine = MachineConfig::two_cluster(1, 1);
        let result = run_corpus(&corpus, &machine, Algorithm::Bsa, UnrollPolicy::None);
        assert_eq!(result.failed_loops, 0);
        assert!(result.ipc > 0.0);
        assert!(result.ipc <= machine.total_issue_width() as f64);
        assert_eq!(result.contributions.len(), corpus.len());
    }

    #[test]
    fn corpus_diagnostics_cover_every_scheduled_loop() {
        let corpus = small_corpus();
        let machine = MachineConfig::two_cluster(1, 1);
        let result = run_corpus(&corpus, &machine, Algorithm::Bsa, UnrollPolicy::None);
        let d = &result.diagnostics;
        let classified = d.recurrence_limited + d.fu_limited + d.bus_limited + d.register_limited;
        assert_eq!(classified, corpus.len() - result.failed_loops);
        assert!(d.total_attempts >= classified as u64);
        assert!(d.max_register_pressure > 0);
    }

    #[test]
    fn ipc_view_agrees_with_the_stored_aggregate() {
        let corpus = small_corpus();
        let machine = MachineConfig::two_cluster(2, 1);
        let result = run_corpus(&corpus, &machine, Algorithm::Bsa, UnrollPolicy::None);
        let view = result.ipc_view();
        assert_eq!(view.len(), result.contributions.len());
        assert!((view.ipc() - result.ipc).abs() < 1e-12);
    }

    #[test]
    fn bsa_beats_or_matches_ne_on_a_bus_starved_machine() {
        let corpus = small_corpus();
        let machine = MachineConfig::four_cluster(1, 2);
        let bsa = run_corpus(&corpus, &machine, Algorithm::Bsa, UnrollPolicy::None);
        let ne = run_corpus(
            &corpus,
            &machine,
            Algorithm::NystromEichenberger,
            UnrollPolicy::None,
        );
        assert!(
            bsa.ipc >= ne.ipc * 0.98,
            "BSA {} should not lose to N&E {}",
            bsa.ipc,
            ne.ipc
        );
    }

    #[test]
    fn unrolling_policy_is_tracked() {
        let corpus = small_corpus();
        let machine = MachineConfig::four_cluster(1, 1);
        let all = run_corpus(&corpus, &machine, Algorithm::Bsa, UnrollPolicy::ByClusters);
        // The ByClusters policy unrolls every loop it can still schedule afterwards
        // (the 16-register clusters reject a few very wide unrolled bodies, which then
        // fall back to their original schedule).
        assert!(all.unrolled_loops >= 1);
        assert_eq!(all.failed_loops, 0);
        let none = run_corpus(&corpus, &machine, Algorithm::Bsa, UnrollPolicy::None);
        assert_eq!(none.unrolled_loops, 0);
        assert_eq!(none.failed_loops, 0);
    }

    #[test]
    fn mean_helper() {
        assert_eq!(mean(&[]), 0.0);
        assert!((mean(&[1.0, 2.0, 3.0]) - 2.0).abs() < 1e-12);
    }
}
