//! The figure-artifact lint audit behind the `lint` binary.
//!
//! The committed `results/*.json` artifacts are each backed by a sweep of
//! scheduling jobs ([`crate::figures`] declares them).  This module enumerates
//! every deduplicated job behind all five figure pipelines ([`figure_jobs`]) and
//! statically certifies every schedule those jobs produce — kernel and exact-unroll
//! remainder alike — with `vliw_lint`'s [`Certifier`], folding the outcome into one
//! deterministic [`LintAuditReport`] written to `results/lint_report.json`.
//!
//! Everything is ordered (jobs in first-declaration order, corpora and loops in
//! input order, histograms in `BTreeMap`s), so the report is byte-identical across
//! runs and thread counts and sits in the golden byte-identity suite next to the
//! figure artifacts themselves.

use crate::sweep::{Sweep, SweepJob};
use crate::{figures, schedule_loop};
use rayon::prelude::*;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use vliw_ddg::DepGraph;
use vliw_lint::{Certifier, LintReport};
use vliw_sim::verification_iterations;
use vliw_sms::ModuloSchedule;
use vliw_workloads::LoopCorpus;

/// Every deduplicated `(machine, algorithm, policy)` job behind the five committed
/// figure pipelines (`fig4`, `fig8`, `fig9`, `fig10`, `fig_unroll`), baselines
/// included.  Declaring all figures on one [`Sweep`] deduplicates *across* figures
/// too (Figures 8 and 10 share their whole clustered grid), so this is exactly the
/// distinct scheduling work behind the committed artifacts.
pub fn figure_jobs() -> Vec<SweepJob> {
    let mut sweep = Sweep::new();
    figures::declare_fig4(&mut sweep);
    figures::declare_fig8(&mut sweep);
    figures::declare_fig9(&mut sweep);
    figures::declare_fig10(&mut sweep);
    figures::declare_fig_unroll(&mut sweep);
    sweep.jobs()
}

/// The lint audit of one scheduling job over every corpus.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct JobAudit {
    /// Machine name.
    pub machine: String,
    /// Algorithm label.
    pub algorithm: String,
    /// Unrolling-policy label.
    pub policy: String,
    /// Schedules certified (kernels plus exact-unroll remainder epilogues).
    pub schedules: u64,
    /// Schedules with zero deny-level diagnostics.
    pub certified: u64,
    /// Loops the scheduler could not schedule (no schedule to certify).
    pub unschedulable: u64,
    /// Histogram over warn-level lint ids across all certified schedules.
    pub warnings: BTreeMap<String, u64>,
    /// Full lint reports of every uncertified schedule (empty = job clean).
    pub deny_reports: Vec<LintReport>,
}

/// The full, deterministic output of the figure-artifact lint audit — written to
/// `results/lint_report.json` by the `lint` binary.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LintAuditReport {
    /// Names of the audited corpora, in input order.
    pub corpora: Vec<String>,
    /// One audit per deduplicated figure job, in declaration order.
    pub jobs: Vec<JobAudit>,
    /// Total schedules certified.
    pub schedules_audited: u64,
    /// Total schedules with zero deny-level diagnostics.
    pub certified: u64,
    /// Total uncertified schedules (the `lint` binary exits non-zero iff > 0).
    pub deny_schedules: u64,
    /// Aggregate warn-lint histogram over all jobs.
    pub warnings: BTreeMap<String, u64>,
}

impl LintAuditReport {
    /// Whether every audited schedule was certified.
    pub fn passed(&self) -> bool {
        self.deny_schedules == 0
    }
}

/// Audit `jobs` over `corpora`: schedule every loop of every corpus under each job
/// and certify every produced schedule (kernel and remainder).  Jobs run
/// rayon-parallel; the fold is in job order, so the report is deterministic.
pub fn audit_jobs(jobs: &[SweepJob], corpora: &[LoopCorpus]) -> LintAuditReport {
    let job_audits: Vec<JobAudit> = jobs
        .par_iter()
        .map(|(machine, algorithm, policy)| {
            let certifier = Certifier::new(machine);
            let mut audit = JobAudit {
                machine: machine.name.clone(),
                algorithm: algorithm.label().to_string(),
                policy: policy.label(),
                schedules: 0,
                certified: 0,
                unschedulable: 0,
                warnings: BTreeMap::new(),
                deny_reports: Vec::new(),
            };
            let certify = |audit: &mut JobAudit, graph: &DepGraph, sched: &ModuloSchedule| {
                let report = certifier.check(graph, sched, verification_iterations(graph));
                audit.schedules += 1;
                for id in report.warn_ids() {
                    *audit.warnings.entry(id).or_insert(0) += 1;
                }
                if report.is_certified() {
                    audit.certified += 1;
                } else {
                    audit.deny_reports.push(report);
                }
            };
            for corpus in corpora {
                for graph in &corpus.loops {
                    match schedule_loop(graph, machine, *algorithm, *policy) {
                        Err(_) => audit.unschedulable += 1,
                        Ok(cs) => {
                            certify(&mut audit, &cs.scheduled_graph, &cs.schedule);
                            if let Some(rem) = &cs.remainder {
                                certify(&mut audit, graph, &rem.schedule);
                            }
                        }
                    }
                }
            }
            audit
        })
        .collect();

    let mut report = LintAuditReport {
        corpora: corpora
            .iter()
            .map(|c| c.benchmark.name().to_string())
            .collect(),
        jobs: job_audits,
        schedules_audited: 0,
        certified: 0,
        deny_schedules: 0,
        warnings: BTreeMap::new(),
    };
    for job in &report.jobs {
        report.schedules_audited += job.schedules;
        report.certified += job.certified;
        report.deny_schedules += job.schedules - job.certified;
        for (id, n) in &job.warnings {
            *report.warnings.entry(id.clone()).or_insert(0) += n;
        }
    }
    report
}

/// Audit every schedule behind the committed figure artifacts ([`figure_jobs`])
/// over `corpora`.
pub fn audit_figures(corpora: &[LoopCorpus]) -> LintAuditReport {
    audit_jobs(&figure_jobs(), corpora)
}

#[cfg(test)]
mod tests {
    use super::*;
    use vliw_workloads::SpecFp95;

    fn small_corpus() -> Vec<LoopCorpus> {
        let mut c = LoopCorpus::generate(SpecFp95::Swim);
        c.loops.truncate(3);
        vec![c]
    }

    #[test]
    fn figure_jobs_cover_every_figure_without_duplicates() {
        let jobs = figure_jobs();
        // The five figures declare hundreds of cells; the deduplicated job list is
        // far smaller but still substantial (fig4's grid alone has 56 clustered
        // machines), and every entry is structurally unique.
        assert!(jobs.len() >= 60, "only {} jobs", jobs.len());
        let keys: std::collections::BTreeSet<String> = jobs
            .iter()
            .map(|(m, a, p)| {
                format!(
                    "{a:?}|{p:?}|{}",
                    serde_json::to_string(&(m.n_clusters, &m.cluster, &m.buses, &m.latencies))
                        .unwrap()
                )
            })
            .collect();
        assert_eq!(
            keys.len(),
            jobs.len(),
            "duplicate job escaped deduplication"
        );
    }

    #[test]
    fn a_small_audit_certifies_everything_and_is_deterministic() {
        let corpora = small_corpus();
        let jobs = &figure_jobs()[..4];
        let report = audit_jobs(jobs, &corpora);
        assert!(report.passed(), "{:?}", report.jobs);
        assert_eq!(report.certified, report.schedules_audited);
        assert!(
            report.schedules_audited >= 4 * 3 // every job schedules each of the 3 loops (remainders may add more)
        );
        let again = audit_jobs(jobs, &corpora);
        assert_eq!(
            serde_json::to_string(&report).unwrap(),
            serde_json::to_string(&again).unwrap()
        );
    }

    #[test]
    fn audit_reports_roundtrip_through_json() {
        let report = audit_jobs(&figure_jobs()[..1], &small_corpus());
        let json = serde_json::to_string_pretty(&report).unwrap();
        let back: LintAuditReport = serde_json::from_str(&json).unwrap();
        assert_eq!(report, back);
    }
}
