//! The optimality-gap pipeline (`fig_optgap`) — how far the heuristic schedulers
//! sit from the *certified* optimum.
//!
//! The paper (and every figure pipeline in this crate) evaluates the schedulers
//! against each other and against MII; the branch-and-bound solver in
//! [`vliw_lint::OptimalSolver`] turns that relative picture into an absolute one.
//! This pipeline runs a fixed-seed fuzz corpus through all five scheduling
//! policies (plus one exactly-unrolled kernel per case) on both Table-1 clustered
//! machines, certifies every `(loop, target machine)` pair with the solver, and
//! reports the certified gap `achieved II − certified lower bound` of every
//! schedule, histogrammed along four axes: policy, machine structure, limiting
//! resource and unroll factor.
//!
//! Everything is deterministic — the corpus is derived from a pinned seed, the
//! schedulers and the solver are deterministic, and every aggregate is folded in
//! case order over `BTreeMap`s — so `results/fig_optgap.json` is byte-stable and
//! golden-tested like every other committed artifact.  The `fig_optgap` binary
//! exits non-zero iff any schedule lands *below* its certified lower bound, which
//! would mean the solver or a scheduler is unsound (the sixth oracle's hard
//! invariant, here gating CI via the `optgap-smoke` job).

use rayon::prelude::*;
use serde::Serialize;
use std::collections::BTreeMap;
use vliw_arch::{MachineConfig, MachineSpace};
use vliw_lint::{OptVerdict, OptimalSolver};
use vliw_sms::FuelBudget;
use vliw_verify::{audit_scheduled, generate_case, Policy, PolicyOutcome};

/// The pinned campaign seed the corpus derives from.
pub const OPTGAP_SEED: u64 = 20_260_809;

/// Cases in the reduced corpus.  Each case contributes up to
/// `2 machines × (5 policies + 1 unrolled kernel)` audited schedules, so the
/// pipeline stays cheap enough for the CI smoke job while still covering every
/// policy × machine × factor combination.
pub const OPTGAP_CASES: u64 = 24;

/// Body-size cap of the reduced corpus: fuzz cases with more nodes are skipped
/// (they still get certified — as lower bounds — by the `verify` campaign; this
/// figure focuses on the region where *exact* certification is tractable, so
/// the headline exact-rate measures solver power rather than corpus size).
pub const OPTGAP_MAX_NODES: usize = 16;

/// Solver fuel for the pipeline: a deeper budget than the fuzz campaign's
/// default, because the report's headline number is the *exact*-certification
/// rate — the deeper search converts `LowerBound` verdicts into `Optimal` ones
/// on the mid-sized loops the campaign budget gives up on.
pub const OPTGAP_SOLVER_PROBES: u64 = 1_000_000;

/// One audited schedule: the achieved II next to its certificate.
#[derive(Debug, Serialize)]
pub struct OptGapRow {
    /// Position of the loop's case in the corpus.
    pub case: u64,
    /// Name of the scheduled loop (the unrolled kernel's name for unroll rows).
    pub loop_name: String,
    /// The Table-1 machine the case targets.
    pub machine: String,
    /// The scheduling policy.
    pub policy: String,
    /// The unroll factor of the scheduled body (1 = the original loop).
    pub unroll_factor: u32,
    /// The achieved initiation interval.
    pub ii: u32,
    /// The loop's MII on the policy's target machine.
    pub mii: u32,
    /// What bounded the II (the engine's diagnosis).
    pub limiting: String,
    /// The solver's verdict for this loop on the target machine.
    pub verdict: String,
    /// The certified lower bound (`None` = the solver claims infeasibility,
    /// which an achieved schedule immediately refutes).
    pub lower_bound: Option<u32>,
    /// `ii − lower_bound` (`None` when no bound was certified).
    pub gap: Option<i64>,
    /// Whether the verdict pins the exact optimum.
    pub exact: bool,
    /// Whether the solver's fuel ran out before the search concluded.
    pub fuel_exhausted: bool,
}

/// Aggregate counters of one pipeline run.
#[derive(Debug, Default, Serialize)]
pub struct OptGapSummary {
    /// Corpus cases audited.
    pub cases: u64,
    /// Schedules produced, certified and gap-measured.
    pub schedules_audited: u64,
    /// `(policy, machine)` pairs whose II search exhausted its budget — counted,
    /// not gap-measured.
    pub unschedulable: u64,
    /// Certificates that pinned the exact optimal II.
    pub solver_exact: u64,
    /// Certificates that only bounded the optimum from below.
    pub solver_lower_bounds: u64,
    /// Certificates whose solver fuel ran out.
    pub solver_fuel_exhausted: u64,
    /// Fraction of audited schedules with an exact certificate.
    pub exact_rate: f64,
    /// Schedules whose achieved II sits at the certified optimum.
    pub at_certified_optimum: u64,
    /// Schedules whose achieved II undercut the certified lower bound — any
    /// value but zero means the solver or a scheduler is unsound, and the
    /// `fig_optgap` binary exits non-zero.
    pub lower_bound_violations: u64,
}

/// The full pipeline output, serialized to `results/fig_optgap.json`.
#[derive(Debug, Serialize)]
pub struct OptGapReport {
    /// The corpus seed.
    pub seed: u64,
    /// Aggregate counters.
    pub summary: OptGapSummary,
    /// Gap histogram (`"gap<k>"` keys) per scheduling policy.
    pub gaps_by_policy: BTreeMap<String, BTreeMap<String, u64>>,
    /// Gap histogram per machine structure.
    pub gaps_by_machine: BTreeMap<String, BTreeMap<String, u64>>,
    /// Gap histogram per limiting resource.
    pub gaps_by_limiting: BTreeMap<String, BTreeMap<String, u64>>,
    /// Gap histogram per unroll factor (`"x<factor>"` keys; `x1` = not unrolled).
    pub gaps_by_unroll: BTreeMap<String, BTreeMap<String, u64>>,
    /// Every audited schedule, in case order.
    pub rows: Vec<OptGapRow>,
}

/// The reduced corpus: the first [`OPTGAP_CASES`] fuzz cases (drawn with the
/// Table-1 machine space, so edge latencies follow the paper's latency model)
/// whose bodies fit [`OPTGAP_MAX_NODES`], scheduled on the *fixed* Table-1
/// machines rather than each case's sampled one.  Deterministic: the scan order
/// over fuzz indices is fixed, so the kept case set is pinned by the seed.
pub fn reduced_corpus() -> Vec<vliw_verify::FuzzCase> {
    let space = MachineSpace::table1();
    let mut cases = Vec::new();
    let mut index = 0u64;
    while cases.len() < OPTGAP_CASES as usize {
        let case = generate_case(OPTGAP_SEED, index, &space);
        if case.graph.n_nodes() <= OPTGAP_MAX_NODES {
            cases.push(case);
        }
        index += 1;
    }
    cases
}

fn verdict_label(v: &OptVerdict) -> &'static str {
    match v {
        OptVerdict::Optimal { .. } => "optimal",
        OptVerdict::LowerBound { .. } => "lower-bound",
        OptVerdict::Infeasible => "infeasible",
    }
}

/// The audit of one `(case, machine)` pair: every policy on the original loop,
/// plus the case's sampled exactly-unrolled kernel under BSA.  `None` entries
/// are budget-exhausted II searches (counted as `unschedulable`).
///
/// Two passes, like `vliw_verify::check_case`: schedule every policy first,
/// then certify each distinct target machine with the *best* achieved II as the
/// solver's incumbent (the schedules the oracles validate are themselves
/// feasibility witnesses), and finally audit every schedule against its
/// machine's certificate.
fn audit_pair(
    case_index: u64,
    graph: &vliw_ddg::DepGraph,
    unroll_factor: u32,
    machine: &MachineConfig,
    solver: &OptimalSolver,
) -> Vec<Option<OptGapRow>> {
    let schedules: Vec<_> = Policy::ALL
        .iter()
        .map(|&policy| {
            (
                policy,
                vliw_sms::contain_schedule(|| policy.schedule(machine, graph)),
            )
        })
        .collect();
    // One solve per distinct target machine, shared across the policies — the
    // clustered policies target `machine` itself, the SMS reference its unified
    // counterpart.
    let unified_target = Policy::UnifiedSms.target_machine(machine);
    let best_ii = |target: &MachineConfig| {
        schedules
            .iter()
            .filter(|(p, _)| p.target_machine(machine) == *target)
            .filter_map(|(_, r)| r.as_ref().ok().map(|out| out.diagnostics.ii))
            .min()
    };
    let base_cert = solver.certify_with_incumbent(graph, machine, best_ii(machine));
    let unified_cert =
        solver.certify_with_incumbent(graph, &unified_target, best_ii(&unified_target));

    let mut rows = Vec::new();
    for (policy, result) in schedules {
        let cert = match policy {
            Policy::UnifiedSms => &unified_cert,
            _ => &base_cert,
        };
        let outcome = match result {
            Ok(out) => audit_scheduled(policy, machine, graph, &out, cert),
            Err(vliw_sms::ScheduleError::MaxIiExceeded { .. }) => PolicyOutcome::Unschedulable,
            Err(e) => PolicyOutcome::Rejected {
                error: e.to_string(),
            },
        };
        rows.push(row_of(case_index, machine, policy.label(), 1, &outcome));
    }
    // The unroll row: the exactly-unrolled kernel is a different loop, so it
    // gets its own schedule-then-solve on the clustered machine.
    if unroll_factor >= 2 && unroll_factor as u64 <= graph.iterations {
        let kernel = vliw_ddg::unroll_exact(graph, unroll_factor).kernel;
        let scheduled = vliw_sms::contain_schedule(|| Policy::Bsa.schedule(machine, &kernel));
        let incumbent = scheduled.as_ref().ok().map(|out| out.diagnostics.ii);
        let cert = solver.certify_with_incumbent(&kernel, machine, incumbent);
        let outcome = match scheduled {
            Ok(out) => audit_scheduled(Policy::Bsa, machine, &kernel, &out, &cert),
            Err(vliw_sms::ScheduleError::MaxIiExceeded { .. }) => PolicyOutcome::Unschedulable,
            Err(e) => PolicyOutcome::Rejected {
                error: e.to_string(),
            },
        };
        rows.push(row_of(case_index, machine, "bsa", unroll_factor, &outcome));
    }
    rows
}

fn row_of(
    case_index: u64,
    machine: &MachineConfig,
    policy: &str,
    unroll_factor: u32,
    outcome: &PolicyOutcome,
) -> Option<OptGapRow> {
    match outcome {
        PolicyOutcome::Scheduled {
            ii,
            mii,
            limiting,
            findings,
            certificate,
            ..
        } => {
            // The pipeline is an audit: any oracle disagreement on a committed
            // figure artifact is a hard failure, exactly like `VERIFY_CELLS`.
            assert!(
                findings.is_empty()
                    || findings
                        .iter()
                        .all(|f| matches!(f, vliw_sim::Finding::IiBelowCertifiedBound { .. })),
                "fig_optgap: case {case_index} on {}: non-optimality findings {findings:?}",
                machine.name
            );
            Some(OptGapRow {
                case: case_index,
                loop_name: certificate.loop_name.clone(),
                machine: machine.name.clone(),
                policy: policy.to_string(),
                unroll_factor,
                ii: *ii,
                mii: *mii,
                limiting: limiting.clone(),
                verdict: verdict_label(&certificate.verdict).to_string(),
                lower_bound: certificate.lower_bound(),
                gap: certificate.gap_to(*ii),
                exact: certificate.is_exact(),
                fuel_exhausted: certificate.exhausted,
            })
        }
        PolicyOutcome::Unschedulable => None,
        PolicyOutcome::Rejected { error } => {
            panic!("fig_optgap: case {case_index} on {}: scheduler rejected the generated loop: {error}", machine.name)
        }
    }
}

fn certificate_violated(row: &OptGapRow) -> bool {
    match row.lower_bound {
        Some(lb) => (row.ii as i64) < lb as i64,
        // An achieved schedule refutes an infeasibility verdict outright.
        None => true,
    }
}

/// Run the whole pipeline: generate the corpus, audit every
/// `(case, machine, policy)` cell rayon-parallel, and fold the deterministic
/// report.
pub fn fig_optgap() -> OptGapReport {
    let machines = [
        MachineConfig::two_cluster(1, 1),
        MachineConfig::four_cluster(1, 1),
    ];
    let solver = OptimalSolver::new(FuelBudget::probes(OPTGAP_SOLVER_PROBES));
    let corpus = reduced_corpus();
    let jobs: Vec<(&vliw_verify::FuzzCase, &MachineConfig)> = corpus
        .iter()
        .flat_map(|case| machines.iter().map(move |m| (case, m)))
        .collect();
    let audited: Vec<Vec<Option<OptGapRow>>> = jobs
        .par_iter()
        .map(|&(case, machine)| {
            audit_pair(
                case.index,
                &case.graph,
                case.unroll_factor,
                machine,
                &solver,
            )
        })
        .collect();

    let mut report = OptGapReport {
        seed: OPTGAP_SEED,
        summary: OptGapSummary {
            cases: OPTGAP_CASES,
            ..OptGapSummary::default()
        },
        gaps_by_policy: BTreeMap::new(),
        gaps_by_machine: BTreeMap::new(),
        gaps_by_limiting: BTreeMap::new(),
        gaps_by_unroll: BTreeMap::new(),
        rows: Vec::new(),
    };
    for row in audited.into_iter().flatten() {
        let Some(row) = row else {
            report.summary.unschedulable += 1;
            continue;
        };
        let s = &mut report.summary;
        s.schedules_audited += 1;
        if row.exact {
            s.solver_exact += 1;
        } else if row.lower_bound.is_some() {
            s.solver_lower_bounds += 1;
        }
        if row.fuel_exhausted {
            s.solver_fuel_exhausted += 1;
        }
        if certificate_violated(&row) {
            s.lower_bound_violations += 1;
        }
        if row.exact && Some(row.ii) == row.lower_bound {
            s.at_certified_optimum += 1;
        }
        if let Some(gap) = row.gap {
            let key = format!("gap{gap}");
            for (axis, label) in [
                (&mut report.gaps_by_policy, row.policy.clone()),
                (&mut report.gaps_by_machine, row.machine.clone()),
                (&mut report.gaps_by_limiting, row.limiting.clone()),
                (
                    &mut report.gaps_by_unroll,
                    format!("x{}", row.unroll_factor),
                ),
            ] {
                *axis
                    .entry(label)
                    .or_default()
                    .entry(key.clone())
                    .or_insert(0) += 1;
            }
        }
        report.rows.push(row);
    }
    report.summary.exact_rate = if report.summary.schedules_audited == 0 {
        0.0
    } else {
        report.summary.solver_exact as f64 / report.summary.schedules_audited as f64
    };
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn the_pipeline_is_deterministic_and_sound_on_a_slice() {
        // Two cases × one machine keeps the debug-mode solve affordable while
        // still exercising certificate sharing, the unroll row and the fold.
        let machine = MachineConfig::two_cluster(1, 1);
        let solver = OptimalSolver::new(FuelBudget::probes(20_000));
        for index in 0..2 {
            let case = generate_case(OPTGAP_SEED, index, &MachineSpace::table1());
            let a = audit_pair(index, &case.graph, case.unroll_factor, &machine, &solver);
            let b = audit_pair(index, &case.graph, case.unroll_factor, &machine, &solver);
            assert_eq!(a.len(), b.len());
            for (x, y) in a.iter().zip(&b) {
                match (x, y) {
                    (None, None) => {}
                    (Some(x), Some(y)) => {
                        assert_eq!((x.ii, x.lower_bound, x.gap), (y.ii, y.lower_bound, y.gap));
                        assert!(!certificate_violated(x), "{x:?}");
                    }
                    _ => panic!("determinism violated at case {index}"),
                }
            }
        }
    }
}
