//! The declarative sweep runner.
//!
//! Every figure of the paper is a cross-product of experiment *cells* — a machine
//! configuration, a scheduling algorithm and an unrolling policy, each evaluated over
//! every benchmark corpus and usually divided by a unified-machine baseline.  Before
//! this runner existed each figure binary hand-rolled those loops and rescheduled the
//! unified baseline from scratch for every cell that needed it (Figure 4 re-ran the
//! identical unified sweep once per `(algorithm, latency, bus-count)` combination —
//! 28 times per corpus).
//!
//! A [`Sweep`] instead *declares* the cells; [`Sweep::run`] then
//!
//! 1. deduplicates every `(machine, algorithm, policy)` job — machines compare by
//!    *structure*, not name, so the unified counterparts of `2-cluster/1-bus` and
//!    `2-cluster/2-bus` (identical total resources) collapse into one baseline job;
//! 2. executes the unique `(job, corpus)` pairs rayon-parallel (the nested per-loop
//!    parallelism inside [`crate::run_corpus`] automatically degrades to sequential on pool
//!    workers, so the machine is never oversubscribed);
//! 3. reassembles per-cell outcomes in declaration order, attaching the memoized
//!    baseline and the relative IPC.
//!
//! Scheduling is deterministic, so memoization is invisible in the output: the figure
//! JSONs are byte-identical to the pre-sweep implementation (guarded by the golden
//! test in `tests/golden.rs`).
//!
//! [`Sweep::verify_cells`] opts a sweep into **execution validation**: every
//! schedule of every cell is additionally audited by `vliw_sim`'s differential
//! oracle (static validation, cycle-level replay, closed-form cycle cross-checks),
//! turning any figure pipeline into an execution-validated experiment at the cost of
//! a bounded per-loop replay.  The audit only observes, so validated outputs remain
//! byte-identical; a violation aborts the run with the offending loop and machine.

use crate::{Algorithm, CorpusResult};
use cvliw_core::UnrollPolicy;
use rayon::prelude::*;
use std::collections::HashMap;
use std::sync::Arc;
use vliw_arch::MachineConfig;
use vliw_workloads::LoopCorpus;

/// Identifier of one declared cell, returned by [`Sweep::cell`] and accepted by
/// [`SweepResults::cell`].
pub type CellId = usize;

/// The unified-machine reference a cell's relative IPC is computed against.
#[derive(Debug, Clone, PartialEq)]
pub enum Baseline {
    /// No baseline: the cell stands alone (e.g. the code-size sweep of Figure 10).
    None,
    /// The unified counterpart of the cell's machine (same total resources, one
    /// cluster) scheduled with unified SMS under the cell's unrolling policy — the
    /// reference of Figure 4.
    UnifiedCounterpart,
    /// An explicit machine scheduled with unified SMS under the cell's policy — the
    /// reference of Figures 8 and 9 (the paper's fixed `unified` configuration).
    Machine(MachineConfig),
}

/// One declared experiment cell.
#[derive(Debug, Clone)]
pub struct CellSpec {
    /// The machine to schedule for.
    pub machine: MachineConfig,
    /// The scheduling algorithm.
    pub algorithm: Algorithm,
    /// The unrolling policy.
    pub policy: UnrollPolicy,
    /// The reference the cell's relative IPC is computed against.
    pub baseline: Baseline,
}

/// The outcome of one cell on one corpus.
#[derive(Debug, Clone)]
pub struct CellOutcome {
    /// The cell's own corpus result.
    pub result: Arc<CorpusResult>,
    /// The memoized baseline result; for cells declared with [`Baseline::None`] this
    /// is the cell's own result.
    pub baseline: Arc<CorpusResult>,
    /// `result.ipc / baseline.ipc` (0 when the baseline IPC is 0; 1 for cells
    /// without a baseline).
    pub relative_ipc: f64,
}

/// One deduplicated scheduling job of a sweep: a machine structure, an algorithm
/// and an unrolling policy, evaluated over every corpus.
pub type SweepJob = (MachineConfig, Algorithm, UnrollPolicy);

/// A declarative `machines × algorithms × policies` sweep (see module docs).
#[derive(Debug, Clone, Default)]
pub struct Sweep {
    cells: Vec<CellSpec>,
    verify: bool,
    lint: bool,
}

impl Sweep {
    /// An empty sweep.
    pub fn new() -> Self {
        Self::default()
    }

    /// Opt this sweep into execution validation: every schedule of every `(job,
    /// corpus)` pair is audited by the differential oracle of `vliw_sim` (static
    /// validation, cycle-level replay, closed-form cycle cross-checks) and the run
    /// panics on the first failing loop.  Off by default — validation replays every
    /// loop in the simulator, and the figure outputs are byte-identical either way
    /// (the audit only observes).  The figure pipelines wire this to the
    /// `VERIFY_CELLS` environment variable via [`crate::verify_from_env`].
    pub fn verify_cells(&mut self, on: bool) -> &mut Self {
        self.verify = on;
        self
    }

    /// Whether execution validation is enabled.
    pub fn is_verified(&self) -> bool {
        self.verify
    }

    /// Opt this sweep into **static certification** — the static mirror of
    /// [`Sweep::verify_cells`]: every schedule of every `(job, corpus)` pair is
    /// checked by `vliw_lint`'s deny-level certifier (dependences, resource
    /// conflicts, register pressure, the `NCYCLES` window and the code-size clamp,
    /// all proven without replaying a cycle) and the run panics on the first
    /// uncertified schedule.  Off by default; the figure pipelines wire this to the
    /// `LINT_CELLS` environment variable via [`crate::lint_from_env`].  The audit
    /// only observes, so outputs stay byte-identical.
    pub fn lint_cells(&mut self, on: bool) -> &mut Self {
        self.lint = on;
        self
    }

    /// Whether static certification is enabled.
    pub fn is_linted(&self) -> bool {
        self.lint
    }

    /// Declare a cell with no baseline.
    pub fn cell(
        &mut self,
        machine: MachineConfig,
        algorithm: Algorithm,
        policy: UnrollPolicy,
    ) -> CellId {
        self.cell_vs(machine, algorithm, policy, Baseline::None)
    }

    /// Declare a cell with an explicit [`Baseline`].
    pub fn cell_vs(
        &mut self,
        machine: MachineConfig,
        algorithm: Algorithm,
        policy: UnrollPolicy,
        baseline: Baseline,
    ) -> CellId {
        self.cells.push(CellSpec {
            machine,
            algorithm,
            policy,
            baseline,
        });
        self.cells.len() - 1
    }

    /// The declared cells, in declaration order.
    pub fn cells(&self) -> &[CellSpec] {
        &self.cells
    }

    /// Deduplicate the declared cells into the unique `(machine, algorithm, policy)`
    /// jobs (structural machine identity, first-declaration order, baseline jobs
    /// included) plus each cell's `(main, baseline)` job indices.
    fn dedup_jobs(&self) -> (Vec<SweepJob>, Vec<(usize, Option<usize>)>) {
        let mut job_index: HashMap<String, usize> = HashMap::new();
        let mut jobs: Vec<SweepJob> = Vec::new();
        let mut intern = |machine: &MachineConfig, algorithm: Algorithm, policy: UnrollPolicy| {
            let key = job_key(machine, algorithm, policy);
            *job_index.entry(key).or_insert_with(|| {
                jobs.push((machine.clone(), algorithm, policy));
                jobs.len() - 1
            })
        };
        let mut cell_jobs: Vec<(usize, Option<usize>)> = Vec::with_capacity(self.cells.len());
        for cell in &self.cells {
            let main = intern(&cell.machine, cell.algorithm, cell.policy);
            let base = match &cell.baseline {
                Baseline::None => None,
                Baseline::UnifiedCounterpart => Some(intern(
                    &cell.machine.unified_counterpart(),
                    Algorithm::UnifiedSms,
                    cell.policy,
                )),
                Baseline::Machine(machine) => {
                    Some(intern(machine, Algorithm::UnifiedSms, cell.policy))
                }
            };
            cell_jobs.push((main, base));
        }
        (jobs, cell_jobs)
    }

    /// The deduplicated jobs behind the declared cells, in first-declaration order
    /// and including every baseline job — the exact scheduling work [`Sweep::run`]
    /// would execute.  [`crate::lint_audit`] uses this to enumerate every schedule
    /// behind the committed figure artifacts without running the figures.
    pub fn jobs(&self) -> Vec<SweepJob> {
        self.dedup_jobs().0
    }

    /// Execute every `(cell, corpus)` job (rayon-parallel over the deduplicated job
    /// list) and assemble the outcomes.
    pub fn run(&self, corpora: &[LoopCorpus]) -> SweepResults {
        // 1. Deduplicate (machine, algorithm, policy) jobs structurally.  Job order —
        // and therefore execution order — follows first declaration, keeping runs
        // deterministic.
        let (jobs, cell_jobs) = self.dedup_jobs();

        // 2. Run the unique (job, corpus) pairs in parallel.  One flat list gives the
        // chunked scheduler enough cells to balance the very uneven job costs.
        let pairs: Vec<(usize, usize)> = (0..jobs.len())
            .flat_map(|j| (0..corpora.len()).map(move |c| (j, c)))
            .collect();
        let (verify, lint) = (self.verify, self.lint);
        let flat: Vec<Arc<CorpusResult>> = pairs
            .par_iter()
            .map(|&(j, c)| {
                let (machine, algorithm, policy) = &jobs[j];
                Arc::new(crate::run_corpus_audited(
                    &corpora[c],
                    machine,
                    *algorithm,
                    *policy,
                    verify,
                    lint,
                ))
            })
            .collect();
        let result_of = |job: usize, corpus: usize| flat[job * corpora.len() + corpus].clone();

        // 3. Assemble the per-cell outcomes in declaration order.
        let cells = cell_jobs
            .iter()
            .map(|&(main, base)| {
                (0..corpora.len())
                    .map(|c| {
                        let result = result_of(main, c);
                        let baseline = result_of(base.unwrap_or(main), c);
                        let relative_ipc = if base.is_some() && baseline.ipc > 0.0 {
                            result.ipc / baseline.ipc
                        } else if base.is_some() {
                            0.0
                        } else {
                            1.0
                        };
                        CellOutcome {
                            result,
                            baseline,
                            relative_ipc,
                        }
                    })
                    .collect()
            })
            .collect();
        SweepResults { cells }
    }
}

/// Structural job key: the machine *configuration* (name excluded — two differently
/// named but identical machines schedule identically), the algorithm and the policy.
fn job_key(machine: &MachineConfig, algorithm: Algorithm, policy: UnrollPolicy) -> String {
    let structure = serde_json::to_string(&(
        machine.n_clusters,
        &machine.cluster,
        &machine.buses,
        &machine.latencies,
    ))
    .expect("machine structure serializes");
    format!("{algorithm:?}|{policy:?}|{structure}")
}

/// The outcomes of a [`Sweep::run`], indexed by [`CellId`] and corpus position.
#[derive(Debug, Clone)]
pub struct SweepResults {
    /// `cells[cell][corpus]`, both in declaration/input order.
    cells: Vec<Vec<CellOutcome>>,
}

impl SweepResults {
    /// The outcomes of `cell`, one per corpus in input order.
    pub fn cell(&self, id: CellId) -> &[CellOutcome] {
        &self.cells[id]
    }

    /// The per-corpus relative IPCs of `cell`, *skipping* corpora whose baseline IPC
    /// was 0 (Figure 9's historical guard against a degenerate division; Figure 4
    /// instead keeps those corpora as 0.0 — see
    /// [`SweepResults::mean_relative_ipc`]).
    pub fn relative_ipcs(&self, id: CellId) -> Vec<f64> {
        self.cells[id]
            .iter()
            .filter(|o| o.baseline.ipc > 0.0)
            .map(|o| o.relative_ipc)
            .collect()
    }

    /// Mean relative IPC of `cell` over **all** corpora, counting a corpus with a
    /// zero-IPC baseline as 0.0 — exactly how Figure 4 has always averaged (the
    /// deleted `relative_ipc` helper returned 0.0 for that case and the mean
    /// included it).
    pub fn mean_relative_ipc(&self, id: CellId) -> f64 {
        let rels: Vec<f64> = self.cells[id].iter().map(|o| o.relative_ipc).collect();
        crate::mean(&rels)
    }

    /// Number of cells.
    pub fn len(&self) -> usize {
        self.cells.len()
    }

    /// Whether the sweep had no cells.
    pub fn is_empty(&self) -> bool {
        self.cells.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::run_corpus;
    use vliw_workloads::SpecFp95;

    fn small_corpora() -> Vec<LoopCorpus> {
        let mut a = LoopCorpus::generate(SpecFp95::Swim);
        a.loops.truncate(3);
        let mut b = LoopCorpus::generate(SpecFp95::Tomcatv);
        b.loops.truncate(3);
        vec![a, b]
    }

    #[test]
    fn sweep_outcomes_match_direct_run_corpus_calls() {
        let corpora = small_corpora();
        let machine = MachineConfig::two_cluster(2, 1);
        let mut sweep = Sweep::new();
        let id = sweep.cell_vs(
            machine.clone(),
            Algorithm::Bsa,
            UnrollPolicy::None,
            Baseline::UnifiedCounterpart,
        );
        let results = sweep.run(&corpora);
        for (corpus, outcome) in corpora.iter().zip(results.cell(id)) {
            let direct = run_corpus(corpus, &machine, Algorithm::Bsa, UnrollPolicy::None);
            assert_eq!(outcome.result.ipc, direct.ipc);
            let unified = run_corpus(
                corpus,
                &machine.unified_counterpart(),
                Algorithm::UnifiedSms,
                UnrollPolicy::None,
            );
            assert_eq!(outcome.baseline.ipc, unified.ipc);
            assert_eq!(outcome.relative_ipc, direct.ipc / unified.ipc);
        }
    }

    #[test]
    fn relative_ipc_is_at_most_slightly_above_one() {
        let corpora = small_corpora();
        let mut sweep = Sweep::new();
        let id = sweep.cell_vs(
            MachineConfig::two_cluster(2, 1),
            Algorithm::Bsa,
            UnrollPolicy::None,
            Baseline::UnifiedCounterpart,
        );
        let rel = sweep.run(&corpora).mean_relative_ipc(id);
        assert!(rel > 0.3, "relative IPC suspiciously low: {rel}");
        assert!(rel < 1.3, "relative IPC suspiciously high: {rel}");
    }

    #[test]
    fn structurally_identical_baselines_are_shared() {
        // The unified counterparts of every 2-cluster bus variant (and of the
        // 4-cluster ones) have identical total resources, so the whole sweep needs
        // exactly one baseline job; sharing must not change any outcome.
        let corpora = small_corpora();
        let mut sweep = Sweep::new();
        let a = sweep.cell_vs(
            MachineConfig::two_cluster(1, 1),
            Algorithm::Bsa,
            UnrollPolicy::None,
            Baseline::UnifiedCounterpart,
        );
        let b = sweep.cell_vs(
            MachineConfig::two_cluster(2, 4),
            Algorithm::NystromEichenberger,
            UnrollPolicy::None,
            Baseline::UnifiedCounterpart,
        );
        let c = sweep.cell_vs(
            MachineConfig::four_cluster(1, 2),
            Algorithm::Bsa,
            UnrollPolicy::None,
            Baseline::Machine(MachineConfig::unified()),
        );
        let results = sweep.run(&corpora);
        for corpus_idx in 0..corpora.len() {
            let base_a = &results.cell(a)[corpus_idx].baseline;
            let base_b = &results.cell(b)[corpus_idx].baseline;
            let base_c = &results.cell(c)[corpus_idx].baseline;
            // Same Arc: the job was deduplicated, not recomputed.
            assert!(Arc::ptr_eq(base_a, base_b));
            assert!(Arc::ptr_eq(base_a, base_c));
            assert!(base_a.ipc > 0.0);
        }
    }

    #[test]
    fn verified_sweeps_produce_identical_outcomes() {
        let corpora = small_corpora();
        let declare = |sweep: &mut Sweep| {
            sweep.cell_vs(
                MachineConfig::four_cluster(1, 2),
                Algorithm::Bsa,
                UnrollPolicy::Selective,
                Baseline::UnifiedCounterpart,
            )
        };
        let mut plain = Sweep::new();
        let id = declare(&mut plain);
        let mut verified = Sweep::new();
        verified.verify_cells(true);
        assert!(verified.is_verified());
        let vid = declare(&mut verified);
        // The audit only observes: a verified run must neither change a number nor
        // panic on schedules the engine actually produces.
        let a = plain.run(&corpora);
        let b = verified.run(&corpora);
        for (x, y) in a.cell(id).iter().zip(b.cell(vid)) {
            assert_eq!(x.result.ipc, y.result.ipc);
            assert_eq!(x.relative_ipc, y.relative_ipc);
        }
    }

    #[test]
    fn linted_sweeps_produce_identical_outcomes() {
        let corpora = small_corpora();
        let declare = |sweep: &mut Sweep| {
            sweep.cell_vs(
                MachineConfig::two_cluster(1, 1),
                Algorithm::Bsa,
                UnrollPolicy::Selective,
                Baseline::UnifiedCounterpart,
            )
        };
        let mut plain = Sweep::new();
        let id = declare(&mut plain);
        let mut linted = Sweep::new();
        linted.lint_cells(true);
        assert!(linted.is_linted());
        let lid = declare(&mut linted);
        // The static certifier only observes: a linted run must neither change a
        // number nor panic on schedules the engine actually produces.
        let a = plain.run(&corpora);
        let b = linted.run(&corpora);
        for (x, y) in a.cell(id).iter().zip(b.cell(lid)) {
            assert_eq!(x.result.ipc, y.result.ipc);
            assert_eq!(x.relative_ipc, y.relative_ipc);
        }
    }

    #[test]
    fn jobs_enumerates_the_deduplicated_work_list() {
        let mut sweep = Sweep::new();
        sweep.cell_vs(
            MachineConfig::two_cluster(1, 1),
            Algorithm::Bsa,
            UnrollPolicy::None,
            Baseline::UnifiedCounterpart,
        );
        sweep.cell_vs(
            MachineConfig::two_cluster(2, 4),
            Algorithm::Bsa,
            UnrollPolicy::None,
            Baseline::UnifiedCounterpart,
        );
        let jobs = sweep.jobs();
        // Two mains plus ONE shared baseline (the unified counterparts of the two
        // bus variants are structurally identical).  First-declaration order: the
        // first cell interns its main, then its baseline.
        assert_eq!(jobs.len(), 3);
        assert_eq!(jobs[0].1, Algorithm::Bsa);
        assert_eq!(jobs[1].1, Algorithm::UnifiedSms);
        assert_eq!(jobs[2].1, Algorithm::Bsa);
    }

    #[test]
    fn cells_without_baseline_report_neutral_relative_ipc() {
        let corpora = small_corpora();
        let mut sweep = Sweep::new();
        let id = sweep.cell(
            MachineConfig::two_cluster(1, 1),
            Algorithm::Bsa,
            UnrollPolicy::None,
        );
        let results = sweep.run(&corpora);
        for outcome in results.cell(id) {
            assert_eq!(outcome.relative_ipc, 1.0);
            // Without a baseline the slot holds the cell's own result.
            assert!(Arc::ptr_eq(&outcome.result, &outcome.baseline));
        }
    }
}
