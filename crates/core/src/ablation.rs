//! Ablation schedulers: strip individual heuristics out of the cluster-assignment
//! problem to quantify how much each one contributes.
//!
//! `DESIGN.md` calls out two design choices of the paper's scheduler whose value is
//! worth measuring separately:
//!
//! 1. doing assignment and scheduling **in a single pass** (vs. any two-phase split) —
//!    measured by comparing [`crate::BsaScheduler`] against [`crate::NeScheduler`];
//! 2. choosing clusters by the **communication-profit heuristic** (vs. ignoring the
//!    dependence structure entirely) — measured here by two deliberately naive
//!    assignment policies plugged into the same phase-2 scheduling machinery:
//!
//! * [`RoundRobinScheduler`] — node *i* goes to cluster `i mod n`, spreading work
//!   evenly but cutting almost every dependence edge;
//! * [`LoadBalancedScheduler`] — each node goes to the cluster with the lowest load of
//!   its functional-unit kind, the classic "balance-only" policy.
//!
//! Both usually need far more inter-cluster communications than BSA or N&E; the
//! `ablation` Criterion bench and the integration tests quantify the gap.

use crate::ne::NeScheduler;
use crate::result::LoopScheduler;
use vliw_arch::MachineConfig;
use vliw_ddg::DepGraph;
use vliw_sms::{ModuloSchedule, ScheduleError, ScheduledLoop};

/// Ablation: assign node `i` to cluster `i mod n_clusters`, then schedule.
#[derive(Debug, Clone)]
pub struct RoundRobinScheduler {
    inner: NeScheduler,
}

impl RoundRobinScheduler {
    /// A round-robin-assignment scheduler for `machine`.
    pub fn new(machine: &MachineConfig) -> Self {
        Self {
            inner: NeScheduler::new(machine),
        }
    }

    /// Toggle the engine's incremental register-pressure tracking (used by the
    /// equivalence property tests; results are identical either way).
    #[must_use]
    pub fn incremental(mut self, on: bool) -> Self {
        self.inner = self.inner.incremental(on);
        self
    }

    /// Schedule `graph` with the round-robin assignment.
    pub fn schedule(&self, graph: &DepGraph) -> Result<ModuloSchedule, ScheduleError> {
        self.schedule_diag(graph).map(|out| out.schedule)
    }

    /// Like [`RoundRobinScheduler::schedule`], but also return the engine's
    /// [`vliw_sms::ScheduleDiagnostics`].
    pub fn schedule_diag(&self, graph: &DepGraph) -> Result<ScheduledLoop, ScheduleError> {
        let n = self.inner.machine().n_clusters;
        let assignment: Vec<usize> = (0..graph.n_nodes()).map(|i| i % n).collect();
        self.inner.schedule_with_assignment(graph, &assignment)
    }
}

impl LoopScheduler for RoundRobinScheduler {
    fn machine(&self) -> &MachineConfig {
        self.inner.machine()
    }

    fn schedule_loop(&self, graph: &DepGraph) -> Result<ScheduledLoop, ScheduleError> {
        self.schedule_diag(graph)
    }

    fn name(&self) -> &'static str {
        "round-robin"
    }
}

/// Ablation: assign every node to the cluster currently holding the fewest operations
/// of its functional-unit kind (pure load balancing, no communication awareness).
#[derive(Debug, Clone)]
pub struct LoadBalancedScheduler {
    inner: NeScheduler,
}

impl LoadBalancedScheduler {
    /// A balance-only-assignment scheduler for `machine`.
    pub fn new(machine: &MachineConfig) -> Self {
        Self {
            inner: NeScheduler::new(machine),
        }
    }

    /// Toggle the engine's incremental register-pressure tracking (used by the
    /// equivalence property tests; results are identical either way).
    #[must_use]
    pub fn incremental(mut self, on: bool) -> Self {
        self.inner = self.inner.incremental(on);
        self
    }

    /// Schedule `graph` with the balance-only assignment.
    pub fn schedule(&self, graph: &DepGraph) -> Result<ModuloSchedule, ScheduleError> {
        self.schedule_diag(graph).map(|out| out.schedule)
    }

    /// Like [`LoadBalancedScheduler::schedule`], but also return the engine's
    /// [`vliw_sms::ScheduleDiagnostics`].
    pub fn schedule_diag(&self, graph: &DepGraph) -> Result<ScheduledLoop, ScheduleError> {
        let assignment = load_balanced_assignment(self.inner.machine(), graph);
        self.inner.schedule_with_assignment(graph, &assignment)
    }
}

/// The balance-only cluster assignment: each node goes to the cluster currently
/// holding the fewest operations of its functional-unit kind (total load, then the
/// lowest index, as tie-breaks).  Exposed as a free function because the resilient
/// degradation ladder reuses it as a communication-blind fallback rung.  On a
/// zero-cluster machine (rejected by the engine before any policy runs) every node
/// maps to cluster 0.
pub fn load_balanced_assignment(machine: &MachineConfig, graph: &DepGraph) -> Vec<usize> {
    let n = machine.n_clusters;
    let mut load = vec![[0usize; 3]; n];
    let mut assignment = Vec::with_capacity(graph.n_nodes());
    for node in graph.nodes() {
        let k = node.class.fu_kind().index();
        let cluster = (0..n)
            .min_by_key(|&c| (load[c][k], load[c].iter().sum::<usize>(), c))
            .unwrap_or(0);
        if let Some(l) = load.get_mut(cluster) {
            l[k] += 1;
        }
        assignment.push(cluster);
    }
    assignment
}

impl LoopScheduler for LoadBalancedScheduler {
    fn machine(&self) -> &MachineConfig {
        self.inner.machine()
    }

    fn schedule_loop(&self, graph: &DepGraph) -> Result<ScheduledLoop, ScheduleError> {
        self.schedule_diag(graph)
    }

    fn name(&self) -> &'static str {
        "load-balanced"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::BsaScheduler;
    use vliw_arch::OpClass;
    use vliw_ddg::GraphBuilder;

    fn chain_loop() -> DepGraph {
        GraphBuilder::new("chain")
            .iterations(200)
            .node("ld", OpClass::Load)
            .node("m0", OpClass::FpMul)
            .node("a0", OpClass::FpAdd)
            .node("a1", OpClass::FpAdd)
            .node("st", OpClass::Store)
            .flow("ld", "m0")
            .flow("m0", "a0")
            .flow("a0", "a1")
            .flow("a1", "st")
            .build()
    }

    #[test]
    fn round_robin_schedules_legally_but_needs_more_communication() {
        let machine = MachineConfig::two_cluster(2, 1);
        let g = chain_loop();
        let rr = RoundRobinScheduler::new(&machine).schedule(&g).unwrap();
        let bsa = BsaScheduler::new(&machine).schedule(&g).unwrap();
        assert!(rr.is_complete());
        // Round-robin cuts the chain at every edge; BSA keeps it in one cluster.
        assert!(rr.comms().len() >= bsa.comms().len());
        assert!(rr.ii() >= bsa.ii());
    }

    #[test]
    fn load_balanced_respects_fu_kinds() {
        let machine = MachineConfig::four_cluster(2, 1);
        let g = chain_loop();
        let sched = LoadBalancedScheduler::new(&machine).schedule(&g).unwrap();
        assert!(sched.is_complete());
    }

    #[test]
    fn ablation_schedulers_expose_the_loop_scheduler_interface() {
        let machine = MachineConfig::two_cluster(1, 1);
        let rr: &dyn LoopScheduler = &RoundRobinScheduler::new(&machine);
        let lb: &dyn LoopScheduler = &LoadBalancedScheduler::new(&machine);
        assert_eq!(rr.name(), "round-robin");
        assert_eq!(lb.name(), "load-balanced");
        let g = chain_loop();
        assert!(rr.schedule_loop(&g).is_ok());
        assert!(lb.schedule_loop(&g).is_ok());
    }

    #[test]
    fn bsa_is_at_least_as_good_as_both_ablations_on_a_bus_poor_machine() {
        let machine = MachineConfig::four_cluster(1, 2);
        let g = chain_loop();
        let bsa = BsaScheduler::new(&machine).schedule(&g).unwrap();
        let rr = RoundRobinScheduler::new(&machine).schedule(&g).unwrap();
        let lb = LoadBalancedScheduler::new(&machine).schedule(&g).unwrap();
        assert!(bsa.ii() <= rr.ii());
        assert!(bsa.ii() <= lb.ii());
    }

    #[test]
    fn wrong_assignment_length_is_a_typed_error_not_a_panic() {
        let machine = MachineConfig::two_cluster(1, 1);
        let g = chain_loop();
        let err = NeScheduler::new(&machine)
            .schedule_with_assignment(&g, &[0, 1])
            .unwrap_err();
        assert!(matches!(err, ScheduleError::RoguePolicy(_)), "{err}");
    }

    #[test]
    fn out_of_range_assignment_is_a_typed_error_not_a_panic() {
        let machine = MachineConfig::two_cluster(1, 1);
        let g = chain_loop();
        let assignment = vec![7; g.n_nodes()];
        let err = NeScheduler::new(&machine)
            .schedule_with_assignment(&g, &assignment)
            .unwrap_err();
        assert!(matches!(err, ScheduleError::RoguePolicy(_)), "{err}");
    }
}
