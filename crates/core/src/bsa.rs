//! The Basic Scheduling Algorithm (BSA) — Figure 5 of the paper.
//!
//! BSA is a *unified assign-and-schedule* modulo scheduler: for every node (visited in
//! Swing Modulo Scheduling order) the algorithm tries every cluster, measures how many
//! outgoing cross-cluster edges the cluster would be left with, and commits the node to
//! the most profitable feasible cluster together with its cycle, functional unit and
//! any bus transfers the placement needs.  Cluster choice and cycle choice therefore
//! inform each other, which is the paper's key difference from the earlier two-phase
//! (assign, then schedule) approaches.
//!
//! Since the engine refactor the II search, ordering fallbacks, scratch reuse and
//! register checking all live in the shared [`IiSearchDriver`]; this module only
//! contains [`BsaPolicy`] — the cluster-selection strategy of Figure 5:
//!
//! 1. nodes that start a new connected subgraph rotate the *default cluster*;
//! 2. every cluster with a free slot (functional unit + buses + registers) is tried
//!    (via [`EngineView::probe`]) and its **profit** computed — the reduction in
//!    outgoing edges of that cluster;
//! 3. among the clusters with the best profit: a single candidate wins outright; then a
//!    candidate already holding a predecessor or successor of the node; then the
//!    default cluster; finally the candidate with the lowest register requirements;
//! 4. if no cluster is feasible the engine increases the initiation interval and
//!    restarts the whole schedule.

use crate::result::LoopScheduler;
use vliw_arch::MachineConfig;
use vliw_ddg::{DepGraph, NodeId};
use vliw_sms::{
    ClusterPolicy, EngineView, FuelBudget, IiSearchDriver, ModuloSchedule, ScheduleError,
    ScheduledLoop, Trial,
};

/// The paper's cluster-oriented modulo scheduler.
#[derive(Debug, Clone)]
pub struct BsaScheduler {
    machine: MachineConfig,
    /// Check per-cluster register pressure (`MaxLive`) when choosing clusters.  On by
    /// default, matching the paper (no spill code is generated).
    pub check_registers: bool,
    /// Optional fuel budget for the II search.  `None` (the default) preserves the
    /// unbudgeted search exactly, so all committed figure artifacts are unaffected.
    fuel: Option<FuelBudget>,
    /// Use the engine's incremental register-pressure tracker (on by default; the
    /// results are guaranteed identical either way — see the engine docs).
    incremental: bool,
}

impl BsaScheduler {
    /// A BSA scheduler for `machine`.
    pub fn new(machine: &MachineConfig) -> Self {
        Self {
            machine: machine.clone(),
            check_registers: true,
            fuel: None,
            incremental: true,
        }
    }

    /// Run the II search under a deterministic [`FuelBudget`].  When the budget is
    /// exhausted the search stops with [`ScheduleError::BudgetExhausted`] instead of
    /// continuing toward `max_ii`.
    #[must_use]
    pub fn with_fuel(mut self, budget: FuelBudget) -> Self {
        self.fuel = Some(budget);
        self
    }

    /// Toggle the engine's incremental register-pressure tracking (used by the
    /// equivalence property tests; results are identical either way).
    #[must_use]
    pub fn incremental(mut self, on: bool) -> Self {
        self.incremental = on;
        self
    }

    /// The machine being scheduled for.
    pub fn machine(&self) -> &MachineConfig {
        &self.machine
    }

    /// Modulo schedule `graph`, performing cluster assignment and scheduling in a
    /// single pass.
    pub fn schedule(&self, graph: &DepGraph) -> Result<ModuloSchedule, ScheduleError> {
        self.schedule_diag(graph).map(|out| out.schedule)
    }

    /// Like [`BsaScheduler::schedule`], but also return the engine's
    /// [`vliw_sms::ScheduleDiagnostics`].
    pub fn schedule_diag(&self, graph: &DepGraph) -> Result<ScheduledLoop, ScheduleError> {
        let mut driver = IiSearchDriver::new(&self.machine)
            .check_registers(self.check_registers)
            .incremental(self.incremental);
        if let Some(fuel) = self.fuel {
            driver = driver.with_fuel(fuel);
        }
        driver.schedule(graph, &mut BsaPolicy::new())
    }
}

/// One feasible trial together with its communication profit.
#[derive(Debug, Clone)]
struct ScoredTrial {
    trial: Trial,
    /// Profit: outgoing cross-cluster edges saved by placing the node here.
    profit: i64,
}

/// The cluster-selection strategy of Figure 5, as a [`ClusterPolicy`] on the shared
/// engine.
#[derive(Debug, Clone)]
pub struct BsaPolicy {
    /// The rotating default cluster (Figure 5, step 2).
    defcluster: usize,
    /// Feasible per-cluster trials of the node currently being placed (buffer reused
    /// across nodes).
    trials: Vec<ScoredTrial>,
    /// Cluster count of the machine of the current attempt.
    n_clusters: usize,
    /// Memoized `profit_of(graph, assignment, n, c)` for every (node, cluster),
    /// flat `[node × n_clusters]`.  The assignment only ever changes by one node
    /// per engine commit, so the table is delta-updated in O(degree of the
    /// committed node) instead of recomputed per trial: committing `m` to `c`
    /// raises by one the profit on `c` of every value neighbour of `m` (an
    /// incoming edge from `m` stops leaving `c`, an outgoing edge to `m` stops
    /// being cross-cluster).  Initial value: −(out value degree), since nothing
    /// is assigned yet.
    profit: Vec<i64>,
    /// The trial returned by the previous `select_placement`, folded into the
    /// table once the engine's commit shows up in `view.assignment()`.
    pending: Option<(NodeId, usize)>,
}

impl BsaPolicy {
    /// A fresh policy (state resets at every attempt anyway).
    pub fn new() -> Self {
        Self {
            defcluster: 0,
            trials: Vec::new(),
            n_clusters: 0,
            profit: Vec::new(),
            pending: None,
        }
    }

    /// Fold the engine's commit of node `m` to cluster `c` into the profit table.
    fn fold_commit(&mut self, graph: &DepGraph, m: NodeId, c: usize) {
        let k = self.n_clusters;
        for e in graph.out_edges(m) {
            if e.kind.carries_value() && e.dst != m {
                self.profit[e.dst.index() * k + c] += 1;
            }
        }
        for e in graph.in_edges(m) {
            if e.kind.carries_value() && e.src != m {
                self.profit[e.src.index() * k + c] += 1;
            }
        }
    }
}

impl Default for BsaPolicy {
    fn default() -> Self {
        Self::new()
    }
}

impl ClusterPolicy for BsaPolicy {
    fn name(&self) -> &'static str {
        "bsa"
    }

    fn begin_attempt(&mut self, graph: &DepGraph, machine: &MachineConfig, _ii: u32) {
        // Figure 5 initialises the default cluster before the loop; starting at the
        // last cluster makes the first new subgraph use cluster 0.
        self.defcluster = machine.n_clusters - 1;
        // Rebuild the profit table for the empty assignment: every out value edge
        // of a node is cross-cluster wherever the node goes, nothing is saved yet.
        self.n_clusters = machine.n_clusters;
        self.pending = None;
        self.profit.clear();
        self.profit.resize(graph.n_nodes() * machine.n_clusters, 0);
        for node in graph.node_ids() {
            let outs = graph
                .out_edges(node)
                .filter(|e| e.kind.carries_value() && e.dst != node)
                .count() as i64;
            if outs != 0 {
                let row = &mut self.profit
                    [node.index() * machine.n_clusters..(node.index() + 1) * machine.n_clusters];
                row.fill(-outs);
            }
        }
    }

    fn select_placement(&mut self, node: NodeId, view: &mut EngineView<'_>) -> Option<Trial> {
        let n_clusters = view.machine().n_clusters;

        // Catch up with the engine: the trial returned last time is committed by
        // now (visible in the assignment); fold it into the profit table.
        if let Some((m, c)) = self.pending.take() {
            if view.assignment()[m.index()] == Some(c) {
                self.fold_commit(view.graph(), m, c);
            }
        }

        // (2) New subgraph: rotate the default cluster.
        if view.starts_new_subgraph(node) {
            self.defcluster = (self.defcluster + 1) % n_clusters;
        }

        // (3) Try the node on every cluster.
        self.trials.clear();
        let mut node_bus_blocked = false;
        for cluster in 0..n_clusters {
            let probe = view.probe(node, cluster);
            match probe.trial {
                Some(trial) => {
                    let profit = self.profit[node.index() * n_clusters + cluster];
                    debug_assert_eq!(
                        profit,
                        profit_of(view.graph(), view.assignment(), node, cluster),
                        "memoized profit diverged for {node} on cluster {cluster}"
                    );
                    self.trials.push(ScoredTrial { trial, profit });
                }
                // A cluster counts as bus-blocked only when its whole cycle scan
                // failed with a bus saturation (a register rejection wins over an
                // earlier bus rejection, exactly as in Figure 5's accounting).
                None if !probe.register_blocked && probe.saw_bus_block => node_bus_blocked = true,
                None => {}
            }
        }
        if node_bus_blocked {
            view.record_bus_failure();
        }

        // (4) Keep only the clusters with the best profit.
        let best_profit = self.trials.iter().map(|t| t.profit).max()?;
        let is_best = |t: &ScoredTrial| t.profit == best_profit;
        let n_best = self.trials.iter().filter(|t| is_best(t)).count();

        // (6)-(9) Choose among the candidates (all with the best profit): a single
        // candidate wins outright; then one already holding a neighbour of the
        // node; then the default cluster; finally the lowest register pressure.
        let chosen_idx = if n_best == 1 {
            self.trials.iter().position(is_best).expect("n_best == 1")
        } else if let Some(i) = self.trials.iter().position(|t| {
            is_best(t)
                && cluster_holds_neighbour(view.graph(), view.assignment(), node, t.trial.cluster)
        }) {
            i
        } else if let Some(i) = self
            .trials
            .iter()
            .position(|t| is_best(t) && t.trial.cluster == self.defcluster)
        {
            i
        } else {
            self.trials
                .iter()
                .enumerate()
                .filter(|(_, t)| is_best(t))
                .min_by_key(|(_, t)| (t.trial.max_live, t.trial.cluster))
                .expect("candidates non-empty")
                .0
        };

        // (10) The engine commits the chosen trial; fold it into the profit table
        // at the next call, once the commit is visible in the assignment.
        let trial = self.trials.swap_remove(chosen_idx).trial;
        self.pending = Some((node, trial.cluster));
        Some(trial)
    }
}

/// Profit of putting `node` on `cluster` (Figure 5, fragment 3): the outgoing
/// cross-cluster edge count of the cluster *before* minus *after* the hypothetical
/// placement.  Higher is better; the value is usually ≤ 0 for nodes with no
/// neighbours in the cluster and > −(out-degree) when neighbours are present.
///
/// Only edges incident to `node` change between the two counts (the node is the
/// only assignment that differs), so the difference is computed directly from the
/// node's adjacency in O(degree) instead of scanning the whole edge list twice:
/// every value edge arriving from a node already in `cluster` stops leaving the
/// cluster (+1), and every value edge towards a node *not* in `cluster` — placed
/// elsewhere or still unscheduled, exactly as the paper counts "the rest of the
/// nodes" — starts leaving it (−1).
fn profit_of(graph: &DepGraph, assignment: &[Option<usize>], node: NodeId, cluster: usize) -> i64 {
    let saved = graph
        .in_edges(node)
        .filter(|e| e.kind.carries_value() && e.src != node)
        .filter(|e| assignment[e.src.index()] == Some(cluster))
        .count() as i64;
    let added = graph
        .out_edges(node)
        .filter(|e| e.kind.carries_value() && e.dst != node)
        .filter(|e| assignment[e.dst.index()] != Some(cluster))
        .count() as i64;
    saved - added
}

/// Whether `cluster` already holds a direct predecessor or successor of `node`.
fn cluster_holds_neighbour(
    graph: &DepGraph,
    assignment: &[Option<usize>],
    node: NodeId,
    cluster: usize,
) -> bool {
    graph
        .predecessors(node)
        .chain(graph.successors(node))
        .filter(|&n| n != node)
        .any(|n| assignment[n.index()] == Some(cluster))
}

impl LoopScheduler for BsaScheduler {
    fn machine(&self) -> &MachineConfig {
        &self.machine
    }

    fn schedule_loop(&self, graph: &DepGraph) -> Result<ScheduledLoop, ScheduleError> {
        self.schedule_diag(graph)
    }

    fn name(&self) -> &'static str {
        "bsa"
    }
}
#[cfg(test)]
mod tests {
    use super::*;
    use vliw_arch::{BusConfig, ClusterConfig, LatencyModel, OpClass};
    use vliw_ddg::{DepKind, GraphBuilder};
    use vliw_sms::SmsScheduler;

    fn saxpy() -> DepGraph {
        GraphBuilder::new("saxpy")
            .iterations(1000)
            .node("lx", OpClass::Load)
            .node("ly", OpClass::Load)
            .node("mul", OpClass::FpMul)
            .node("add", OpClass::FpAdd)
            .node("st", OpClass::Store)
            .flow("lx", "mul")
            .flow("mul", "add")
            .flow("ly", "add")
            .flow("add", "st")
            .build()
    }

    /// A wider loop body: two independent computation strands plus a reduction.
    fn wide_loop() -> DepGraph {
        GraphBuilder::new("wide")
            .iterations(500)
            .node("l0", OpClass::Load)
            .node("l1", OpClass::Load)
            .node("l2", OpClass::Load)
            .node("l3", OpClass::Load)
            .node("m0", OpClass::FpMul)
            .node("m1", OpClass::FpMul)
            .node("a0", OpClass::FpAdd)
            .node("a1", OpClass::FpAdd)
            .node("acc", OpClass::FpAdd)
            .node("s0", OpClass::Store)
            .node("s1", OpClass::Store)
            .flow("l0", "m0")
            .flow("l1", "m0")
            .flow("l2", "m1")
            .flow("l3", "m1")
            .flow("m0", "a0")
            .flow("m1", "a1")
            .flow("a0", "s0")
            .flow("a1", "s1")
            .flow("m0", "acc")
            .flow_at("acc", "acc", 1)
            .build()
    }

    fn assert_valid(graph: &DepGraph, sched: &ModuloSchedule, machine: &MachineConfig) {
        use std::collections::HashSet;
        assert!(sched.is_complete());
        // Dependences (with bus latency for cross-cluster value edges).
        for e in graph.edges() {
            let pu = sched.placement(e.src).unwrap();
            let pv = sched.placement(e.dst).unwrap();
            let mut lat = e.latency as i64;
            if e.kind.carries_value() && e.src != e.dst && pu.cluster != pv.cluster {
                lat += machine.buses.latency as i64;
            }
            assert!(
                pv.cycle >= pu.cycle + lat - sched.ii() as i64 * e.distance as i64,
                "edge {}->{} violated (II={})",
                graph.node(e.src).label(),
                graph.node(e.dst).label(),
                sched.ii()
            );
        }
        // FU conflicts.
        let mut used = HashSet::new();
        for p in sched.placements() {
            assert!(used.insert((p.fu, p.cycle.rem_euclid(sched.ii() as i64))));
        }
        // Bus conflicts: each (bus, column) used at most once.
        let mut bus_used = HashSet::new();
        for c in sched.comms() {
            for d in 0..c.duration {
                let col = (c.start_cycle + d as i64).rem_euclid(sched.ii() as i64);
                assert!(
                    bus_used.insert((c.bus, col)),
                    "bus {:?} double-booked at column {col}",
                    c.bus
                );
            }
        }
        // A cross-cluster flow edge must be backed by a communication of its value to
        // the consumer's cluster.
        for e in graph
            .edges()
            .filter(|e| e.kind.carries_value() && e.src != e.dst)
        {
            let pu = sched.placement(e.src).unwrap();
            let pv = sched.placement(e.dst).unwrap();
            if pu.cluster != pv.cluster {
                assert!(
                    sched
                        .comms()
                        .iter()
                        .any(|c| c.src_node == e.src && c.to_cluster == pv.cluster),
                    "missing communication for {}->{}",
                    graph.node(e.src).label(),
                    graph.node(e.dst).label()
                );
            }
        }
    }

    #[test]
    fn saxpy_on_two_clusters_matches_unified_ii() {
        let machine = MachineConfig::two_cluster(1, 1);
        let g = saxpy();
        let sched = BsaScheduler::new(&machine).schedule(&g).unwrap();
        assert_valid(&g, &sched, &machine);
        let unified = SmsScheduler::new(&machine.unified_counterpart())
            .schedule(&g)
            .unwrap();
        assert_eq!(
            sched.ii(),
            unified.ii(),
            "clustered II should match unified"
        );
    }

    #[test]
    fn wide_loop_schedules_on_every_paper_configuration() {
        let g = wide_loop();
        for machine in [
            MachineConfig::two_cluster(1, 1),
            MachineConfig::two_cluster(2, 1),
            MachineConfig::two_cluster(1, 2),
            MachineConfig::four_cluster(1, 1),
            MachineConfig::four_cluster(2, 2),
            MachineConfig::four_cluster(1, 4),
        ] {
            let sched = BsaScheduler::new(&machine).schedule(&g).unwrap();
            assert_valid(&g, &sched, &machine);
        }
    }

    #[test]
    fn connected_nodes_prefer_the_same_cluster() {
        // The profit heuristic keeps neighbours together: the 5-op saxpy chain reaches
        // the unified II (here 1, bounded by the 3 memory ops on 4 memory units) with
        // at most one value crossing clusters (the body has 4 value edges, so a naive
        // assignment could easily need 2 or more).
        let machine = MachineConfig::two_cluster(2, 1);
        let g = saxpy();
        let sched = BsaScheduler::new(&machine).schedule(&g).unwrap();
        assert_valid(&g, &sched, &machine);
        let unified = SmsScheduler::new(&machine.unified_counterpart())
            .schedule(&g)
            .unwrap();
        assert_eq!(sched.ii(), unified.ii());
        assert!(
            sched.comms().len() <= 1,
            "expected at most one communication, got {}",
            sched.comms().len()
        );
    }

    #[test]
    fn disconnected_subgraphs_rotate_clusters() {
        // Two independent chains on a 2-cluster machine: the default-cluster rotation
        // sends them to different clusters, and no communication is needed.
        let machine = MachineConfig::two_cluster(1, 1);
        let g = GraphBuilder::new("two-chains")
            .node("a1", OpClass::Load)
            .node("a2", OpClass::FpMul)
            .node("a3", OpClass::Store)
            .node("b1", OpClass::Load)
            .node("b2", OpClass::FpMul)
            .node("b3", OpClass::Store)
            .flow("a1", "a2")
            .flow("a2", "a3")
            .flow("b1", "b2")
            .flow("b2", "b3")
            .build();
        let sched = BsaScheduler::new(&machine).schedule(&g).unwrap();
        assert_valid(&g, &sched, &machine);
        let cluster_a = sched.cluster_of(g.node_ids().next().unwrap()).unwrap();
        let cluster_b = sched.cluster_of(vliw_ddg::NodeId(3)).unwrap();
        assert_ne!(cluster_a, cluster_b);
        assert_eq!(sched.comms().len(), 0);
    }

    #[test]
    fn unrolled_iterations_land_on_different_clusters() {
        // The behaviour the paper builds on: unrolling a dependence-free body by the
        // number of clusters lets BSA put each copy on its own cluster.
        let machine = MachineConfig::two_cluster(1, 1);
        let g = saxpy();
        let unrolled = vliw_ddg::unroll(&g, 2);
        let sched = BsaScheduler::new(&machine).schedule(&unrolled).unwrap();
        assert_valid(&unrolled, &sched, &machine);
        let copy0_cluster = sched.cluster_of(vliw_ddg::NodeId(0)).unwrap();
        let copy1_cluster = sched
            .cluster_of(vliw_ddg::NodeId(g.n_nodes() as u32))
            .unwrap();
        assert_ne!(copy0_cluster, copy1_cluster);
        assert_eq!(sched.comms().len(), 0);
    }

    #[test]
    fn figure7_example_unrolling_hides_communications() {
        // The worked example of Figure 7: 6 unit-latency ops, 2 clusters with two
        // general-purpose (modelled as integer) units each, one 1-cycle bus.
        let machine = MachineConfig::new(
            "fig7",
            2,
            ClusterConfig::new(2, 0, 0, 32),
            BusConfig::new(1, 1),
            LatencyModel::unit(),
        );
        let g = GraphBuilder::new("fig7")
            .with_latencies(LatencyModel::unit())
            .iterations(100)
            .node("A", OpClass::IntAlu)
            .node("B", OpClass::IntAlu)
            .node("C", OpClass::IntAlu)
            .node("D", OpClass::IntAlu)
            .node("E", OpClass::IntAlu)
            .node("F", OpClass::IntAlu)
            .flow("A", "C")
            .flow("B", "C")
            .flow("C", "E")
            .flow("A", "E")
            .flow("D", "F")
            .flow("A", "F")
            .flow_at("E", "D", 1)
            .flow_at("D", "A", 1)
            .build();
        // MII is 2 (ResMII = 6/4, RecMII = 3/2); the paper shows the non-unrolled loop
        // needs II = 3 on this machine while the unrolled-by-2 loop reaches its minimum
        // II of 4 (i.e. 2 per original iteration).
        let bsa = BsaScheduler::new(&machine);
        let plain = bsa.schedule(&g).unwrap();
        assert_valid(&g, &plain, &machine);
        assert!(plain.ii() >= 2);
        let unrolled = vliw_ddg::unroll(&g, 2);
        let unrolled_sched = bsa.schedule(&unrolled).unwrap();
        assert_valid(&unrolled, &unrolled_sched, &machine);
        // Per original iteration the unrolled schedule must be at least as good.
        assert!(
            (unrolled_sched.ii() as f64) / 2.0 <= plain.ii() as f64 + 1e-9,
            "unrolled II {} vs plain II {}",
            unrolled_sched.ii(),
            plain.ii()
        );
    }

    #[test]
    fn bus_latency_hurts_only_when_communication_is_needed() {
        // A loop too wide for one cluster (forces communication): higher bus latency
        // must never *reduce* the II.
        let g = wide_loop();
        let fast = BsaScheduler::new(&MachineConfig::four_cluster(1, 1))
            .schedule(&g)
            .unwrap();
        let slow = BsaScheduler::new(&MachineConfig::four_cluster(1, 4))
            .schedule(&g)
            .unwrap();
        assert!(slow.ii() >= fast.ii());
    }

    #[test]
    fn more_buses_never_hurt() {
        let g = wide_loop();
        let one_bus = BsaScheduler::new(&MachineConfig::four_cluster(1, 2))
            .schedule(&g)
            .unwrap();
        let two_bus = BsaScheduler::new(&MachineConfig::four_cluster(2, 2))
            .schedule(&g)
            .unwrap();
        assert!(two_bus.ii() <= one_bus.ii());
    }

    #[test]
    fn back_off_path_leaves_no_tentative_state_behind() {
        // The Figure-7 machine (two 2-wide clusters, a single 1-cycle bus) saturates
        // its bus on the Figure-7 loop: the II search fails at MII because placements
        // that find a free functional unit cannot get their communications onto the
        // bus, driving the trial loop through its back-off path.  Since the clone-free
        // rewrite the trial works on the *live* schedule via checkpoint/rollback, so
        // any leak would corrupt later placements (or the next II attempt, which
        // reuses the same reservation table).
        let machine = MachineConfig::new(
            "fig7",
            2,
            ClusterConfig::new(2, 0, 0, 32),
            BusConfig::new(1, 1),
            LatencyModel::unit(),
        );
        let g = GraphBuilder::new("fig7")
            .with_latencies(LatencyModel::unit())
            .iterations(100)
            .node("A", OpClass::IntAlu)
            .node("B", OpClass::IntAlu)
            .node("C", OpClass::IntAlu)
            .node("D", OpClass::IntAlu)
            .node("E", OpClass::IntAlu)
            .node("F", OpClass::IntAlu)
            .flow("A", "C")
            .flow("B", "C")
            .flow("C", "E")
            .flow("A", "E")
            .flow("D", "F")
            .flow("A", "F")
            .flow_at("E", "D", 1)
            .flow_at("D", "A", 1)
            .build();
        let bsa = BsaScheduler::new(&machine);
        let first = bsa.schedule(&g).unwrap();
        assert_valid(&g, &first, &machine);
        // The back-off path was genuinely taken: the II had to be raised above MII
        // *because of the bus*, which is exactly the `LimitedByBus` predicate.
        assert!(first.ii() > first.mii);
        assert!(first.limited_by_bus);
        // Re-scheduling with the same scheduler and with a fresh one must agree —
        // this catches state leaking across the reused scratch buffers.
        let second = bsa.schedule(&g).unwrap();
        assert_eq!(first, second);
        let fresh = BsaScheduler::new(&machine).schedule(&g).unwrap();
        assert_eq!(first, fresh);
        // And a trial that *does* commit communications still rolls back cleanly on
        // the clusters it rejects: the unrolled body schedules with real transfers.
        let unrolled = vliw_ddg::unroll(&g, 2);
        let usched = bsa.schedule(&unrolled).unwrap();
        assert_valid(&unrolled, &usched, &machine);
    }

    #[test]
    fn register_pressure_check_can_be_disabled() {
        let machine = MachineConfig::four_cluster(1, 1);
        let g = wide_loop();
        let mut relaxed = BsaScheduler::new(&machine);
        relaxed.check_registers = false;
        let strict = BsaScheduler::new(&machine);
        let r = relaxed.schedule(&g).unwrap();
        let s = strict.schedule(&g).unwrap();
        assert!(s.ii() >= r.ii());
    }

    #[test]
    fn invalid_graph_is_rejected() {
        let machine = MachineConfig::two_cluster(1, 1);
        let mut g = DepGraph::new("bad");
        let a = g.add_node(OpClass::IntAlu);
        g.add_edge(a, a, 1, 0, DepKind::Flow);
        assert!(matches!(
            BsaScheduler::new(&machine).schedule(&g),
            Err(ScheduleError::InvalidGraph(_))
        ));
    }

    #[test]
    fn empty_graph_schedules() {
        let machine = MachineConfig::four_cluster(1, 1);
        let sched = BsaScheduler::new(&machine)
            .schedule(&DepGraph::new("empty"))
            .unwrap();
        assert!(sched.is_complete());
    }

    #[test]
    fn loop_scheduler_trait_name() {
        let machine = MachineConfig::two_cluster(1, 1);
        assert_eq!(LoopScheduler::name(&BsaScheduler::new(&machine)), "bsa");
    }
}
