//! Inter-cluster communication allocation.
//!
//! The implementation moved into [`vliw_sms::comm`] so the shared scheduling engine
//! ([`vliw_sms::engine`]) can allocate buses itself; this module re-exports it under
//! the historical `cvliw_core::comm` path.

pub use vliw_sms::comm::{allocate_comms, required_comms, CommAllocation, CommRequest};
