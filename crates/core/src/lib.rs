//! # cvliw-core — cluster-oriented modulo scheduling with selective loop unrolling
//!
//! This crate implements the contribution of *"The Effectiveness of Loop Unrolling for
//! Modulo Scheduling in Clustered VLIW Architectures"* (Sánchez & González, ICPP 2000):
//!
//! * [`BsaScheduler`] — the **Basic Scheduling Algorithm** of Figure 5, a modulo
//!   scheduler that performs cluster assignment and instruction scheduling in a single
//!   pass, choosing for every node the cluster that minimises the outgoing
//!   communication edges while a functional-unit slot, the needed bus transfers and the
//!   register file all fit;
//! * [`SelectiveUnroller`] / [`UnrollPolicy`] — the loop-unrolling policies of
//!   Section 5.2, including the **selective unrolling** heuristic of Figure 6 that
//!   unrolls (by the number of clusters) only the loops whose schedule is limited by
//!   the communication buses, generalized to a factor-parameterized space
//!   (`Fixed(u)` with exact remainder accounting, and `Explore { max_factor }`,
//!   which schedules candidate factors and keeps the best one under a code-size
//!   budget);
//! * [`NeScheduler`] — the two-phase (cluster assignment, then scheduling) baseline in
//!   the style of Nystrom & Eichenberger used for the comparison in Figure 4;
//! * [`ClusterSchedule`] / [`LoopScheduler`] — result type and scheduler abstraction
//!   shared by the experiment harness.
//!
//! ## Quick example
//!
//! ```
//! use cvliw_core::{BsaScheduler, SelectiveUnroller, UnrollPolicy};
//! use vliw_arch::{MachineConfig, OpClass};
//! use vliw_ddg::GraphBuilder;
//!
//! // The 4-cluster machine of Table 1 with one 1-cycle bus.
//! let machine = MachineConfig::four_cluster(1, 1);
//!
//! // A small dependence graph: y[i] = a*x[i] + y[i].
//! let graph = GraphBuilder::new("saxpy")
//!     .iterations(1000)
//!     .node("lx", OpClass::Load)
//!     .node("ly", OpClass::Load)
//!     .node("mul", OpClass::FpMul)
//!     .node("add", OpClass::FpAdd)
//!     .node("st", OpClass::Store)
//!     .flow("lx", "mul")
//!     .flow("mul", "add")
//!     .flow("ly", "add")
//!     .flow("add", "st")
//!     .build();
//!
//! let driver = SelectiveUnroller::new(BsaScheduler::new(&machine));
//! let result = driver.schedule_with_policy(&graph, UnrollPolicy::Selective).unwrap();
//! assert!(result.schedule.is_complete());
//! assert!(result.ipc() > 0.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod ablation;
pub mod bsa;
pub mod comm;
pub mod ne;
pub mod resilient;
pub mod result;
pub mod unroll_policy;

pub use ablation::{load_balanced_assignment, LoadBalancedScheduler, RoundRobinScheduler};
pub use bsa::BsaScheduler;
pub use comm::{allocate_comms, required_comms, CommAllocation, CommRequest};
pub use ne::NeScheduler;
pub use resilient::{
    LadderFailure, ResilientOutcome, ResilientScheduler, RungError, RungFailure, FALLBACK_RUNGS,
};
pub use result::{ClusterSchedule, LoopScheduler, RemainderEpilogue};
pub use unroll_policy::{SelectiveUnroller, UnrollPolicy, DEFAULT_EXPLORE_CODE_GROWTH};
