//! The two-phase baseline: cluster assignment first, scheduling second.
//!
//! This reproduces the approach of Nystrom & Eichenberger (MICRO'98) that the paper
//! compares against in Figure 4: a first phase partitions the dependence graph across
//! the clusters, and a second phase modulo-schedules every node on its pre-assigned
//! cluster.  If the second phase fails, the initiation interval is incremented and
//! *both* phases are redone ("If any of them fails, the algorithm is re-started by
//! incrementing the initiation interval").
//!
//! The assignment phase follows the published heuristics at the level of detail the
//! paper relies on:
//!
//! * nodes of a recurrence are assigned **as a unit**, so loop-carried dependences
//!   never cross clusters (the aspect N&E emphasise);
//! * super-nodes (recurrences and remaining single nodes) are visited in topological
//!   order of the condensation and placed on the cluster that maximises the number of
//!   value edges to already-assigned nodes in that cluster (minimising the cut), with
//!   the least-loaded cluster as tie-break;
//! * a cluster is only eligible while its estimated functional-unit usage stays within
//!   `fu_count × II` slots per kind ("the negative impact of aggressively filling
//!   clusters" is avoided by capping the load at a fraction of the capacity, as N&E
//!   do); the cap is relaxed if no cluster is eligible.
//!
//! The scheduling phase is the shared engine ([`IiSearchDriver`]) with the cluster
//! forced through [`NePolicy`] (a [`FixedAssignmentPolicy`] whose assignment is
//! recomputed at every candidate II, since the fill cap depends on the II); the
//! crucial difference — and the one responsible for the Figure 4 gap — is that the
//! assignment was made without seeing the partial schedule or the bus occupancy.

use crate::result::LoopScheduler;
use vliw_arch::{FuKind, MachineConfig};
use vliw_ddg::{sccs, DepGraph, NodeId};
use vliw_sms::{
    ClusterPolicy, EngineView, FixedAssignmentPolicy, IiSearchDriver, ModuloSchedule,
    ScheduleError, ScheduledLoop, Trial,
};

/// Fraction of a cluster's capacity the assignment phase is willing to fill before
/// looking at other clusters (N&E avoid aggressively filling clusters).
const FILL_CAP: f64 = 0.85;

/// Two-phase (assign, then schedule) modulo scheduler, in the style of Nystrom &
/// Eichenberger.
#[derive(Debug, Clone)]
pub struct NeScheduler {
    machine: MachineConfig,
    /// Check per-cluster register pressure during scheduling (as in BSA).
    pub check_registers: bool,
    /// Use the engine's incremental register-pressure tracker (on by default).
    incremental: bool,
}

/// The [`ClusterPolicy`] of the two-phase baseline: recompute the phase-1 assignment
/// at every candidate II, then force each node onto its assigned cluster.
pub struct NePolicy<'s> {
    scheduler: &'s NeScheduler,
    fixed: FixedAssignmentPolicy,
}

impl ClusterPolicy for NePolicy<'_> {
    fn name(&self) -> &'static str {
        "nystrom-eichenberger"
    }

    fn begin_ii(&mut self, graph: &DepGraph, _machine: &MachineConfig, ii: u32) {
        // Phase 1 is redone from scratch at every II, exactly as N&E restart both
        // phases when scheduling fails.
        self.fixed
            .set_assignment(self.scheduler.assign_clusters(graph, ii));
    }

    fn select_placement(&mut self, node: NodeId, view: &mut EngineView<'_>) -> Option<Trial> {
        self.fixed.select_placement(node, view)
    }
}

impl NeScheduler {
    /// A two-phase scheduler for `machine`.
    pub fn new(machine: &MachineConfig) -> Self {
        Self {
            machine: machine.clone(),
            check_registers: true,
            incremental: true,
        }
    }

    /// Toggle the engine's incremental register-pressure tracking (used by the
    /// equivalence property tests; results are identical either way).
    #[must_use]
    pub fn incremental(mut self, on: bool) -> Self {
        self.incremental = on;
        self
    }

    /// The machine being scheduled for.
    pub fn machine(&self) -> &MachineConfig {
        &self.machine
    }

    /// Modulo schedule `graph` with the two-phase approach.
    pub fn schedule(&self, graph: &DepGraph) -> Result<ModuloSchedule, ScheduleError> {
        self.schedule_diag(graph).map(|out| out.schedule)
    }

    /// Like [`NeScheduler::schedule`], but also return the engine's
    /// [`vliw_sms::ScheduleDiagnostics`].
    pub fn schedule_diag(&self, graph: &DepGraph) -> Result<ScheduledLoop, ScheduleError> {
        let mut policy = NePolicy {
            scheduler: self,
            fixed: FixedAssignmentPolicy::new("nystrom-eichenberger", Vec::new()),
        };
        self.driver().schedule(graph, &mut policy)
    }

    /// Modulo schedule `graph` with a *fixed*, caller-supplied cluster assignment
    /// (one cluster index per node).  This is the building block for the ablation
    /// schedulers in [`crate::ablation`]: any assignment policy can be plugged in
    /// front of the same engine.
    pub fn schedule_with_assignment(
        &self,
        graph: &DepGraph,
        assignment: &[usize],
    ) -> Result<ScheduledLoop, ScheduleError> {
        if assignment.len() != graph.n_nodes() {
            return Err(ScheduleError::RoguePolicy(format!(
                "fixed assignment covers {} nodes but the graph has {}",
                assignment.len(),
                graph.n_nodes()
            )));
        }
        if let Some(&c) = assignment.iter().find(|&&c| c >= self.machine.n_clusters) {
            return Err(ScheduleError::RoguePolicy(format!(
                "fixed assignment references cluster {c} on a {}-cluster machine",
                self.machine.n_clusters
            )));
        }
        let mut policy = FixedAssignmentPolicy::new("fixed-assignment", assignment.to_vec());
        self.driver().schedule(graph, &mut policy)
    }

    /// The shared engine configured for this scheduler.
    fn driver(&self) -> IiSearchDriver<'_> {
        IiSearchDriver::new(&self.machine)
            .check_registers(self.check_registers)
            .incremental(self.incremental)
    }

    /// Phase 1: partition the nodes across the clusters (see module docs).
    pub fn assign_clusters(&self, graph: &DepGraph, ii: u32) -> Vec<usize> {
        let machine = &self.machine;
        let n_clusters = machine.n_clusters;
        let mut assignment = vec![usize::MAX; graph.n_nodes()];
        if n_clusters <= 1 {
            // Zero clusters is rejected by the engine before any policy runs; one
            // cluster has a single possible assignment.  Either way there is nothing
            // to partition (and the affinity selection below would have no candidate).
            return vec![0; graph.n_nodes()];
        }

        // Super-nodes: SCCs in reverse topological order -> process in topological
        // order (sources first) so most value producers are assigned before consumers.
        let mut components = sccs(graph);
        components.reverse();

        // Per-cluster, per-kind load (in reservation slots) and capacity.
        let mut load = vec![[0usize; 3]; n_clusters];
        let capacity: [usize; 3] = [
            machine.cluster.fu_count(FuKind::Int) * ii as usize,
            machine.cluster.fu_count(FuKind::Fp) * ii as usize,
            machine.cluster.fu_count(FuKind::Mem) * ii as usize,
        ];

        for component in components {
            // Demand of the whole component.
            let mut demand = [0usize; 3];
            for &n in &component {
                demand[graph.node(n).class.fu_kind().index()] += 1;
            }

            // Eligible clusters: those that stay under the fill cap for every kind.
            let eligible = |relaxed: bool| -> Vec<usize> {
                (0..n_clusters)
                    .filter(|&c| {
                        (0..3).all(|k| {
                            if capacity[k] == 0 {
                                return demand[k] == 0;
                            }
                            let cap = if relaxed {
                                capacity[k]
                            } else {
                                (((capacity[k] as f64) * FILL_CAP).floor() as usize).max(1)
                            };
                            load[c][k] + demand[k] <= cap
                        })
                    })
                    .collect()
            };
            let mut candidates = eligible(false);
            if candidates.is_empty() {
                candidates = eligible(true);
            }
            if candidates.is_empty() {
                candidates = (0..n_clusters).collect();
            }

            // Affinity: value edges between the component and nodes already assigned to
            // each candidate cluster (either direction).
            let chosen = candidates
                .iter()
                .copied()
                .max_by_key(|&c| {
                    let affinity: i64 = graph
                        .edges()
                        .filter(|e| e.kind.carries_value())
                        .filter(|e| {
                            let src_in = component.contains(&e.src);
                            let dst_in = component.contains(&e.dst);
                            (src_in && assignment[e.dst.index()] == c)
                                || (dst_in && assignment[e.src.index()] == c)
                        })
                        .count() as i64;
                    let total_load: i64 = load[c].iter().sum::<usize>() as i64;
                    (affinity, -total_load, -(c as i64))
                })
                .expect("candidates non-empty");

            for &n in &component {
                assignment[n.index()] = chosen;
                load[chosen][graph.node(n).class.fu_kind().index()] += 1;
            }
        }
        assignment
    }
}

impl LoopScheduler for NeScheduler {
    fn machine(&self) -> &MachineConfig {
        &self.machine
    }

    fn schedule_loop(&self, graph: &DepGraph) -> Result<ScheduledLoop, ScheduleError> {
        self.schedule_diag(graph)
    }

    fn name(&self) -> &'static str {
        "nystrom-eichenberger"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vliw_arch::OpClass;
    use vliw_ddg::GraphBuilder;

    fn two_independent_chains() -> DepGraph {
        GraphBuilder::new("chains")
            .node("a1", OpClass::Load)
            .node("a2", OpClass::FpMul)
            .node("a3", OpClass::Store)
            .node("b1", OpClass::Load)
            .node("b2", OpClass::FpMul)
            .node("b3", OpClass::Store)
            .flow("a1", "a2")
            .flow("a2", "a3")
            .flow("b1", "b2")
            .flow("b2", "b3")
            .build()
    }

    #[test]
    fn assignment_keeps_recurrences_together() {
        let machine = MachineConfig::two_cluster(1, 1);
        let g = GraphBuilder::new("rec")
            .node("a", OpClass::FpAdd)
            .node("b", OpClass::FpMul)
            .node("c", OpClass::Load)
            .flow("a", "b")
            .flow_at("b", "a", 1)
            .flow("c", "a")
            .build();
        let ne = NeScheduler::new(&machine);
        let assignment = ne.assign_clusters(&g, 7);
        // a and b form a recurrence: same cluster.
        assert_eq!(assignment[0], assignment[1]);
    }

    #[test]
    fn assignment_covers_every_node_with_a_valid_cluster() {
        let machine = MachineConfig::four_cluster(1, 1);
        let g = two_independent_chains();
        let ne = NeScheduler::new(&machine);
        let assignment = ne.assign_clusters(&g, 2);
        assert_eq!(assignment.len(), g.n_nodes());
        assert!(assignment.iter().all(|&c| c < machine.n_clusters));
    }

    #[test]
    fn single_cluster_machine_assigns_everything_to_cluster_zero() {
        let machine = MachineConfig::unified();
        let g = two_independent_chains();
        let ne = NeScheduler::new(&machine);
        let assignment = ne.assign_clusters(&g, 1);
        assert!(assignment.iter().all(|&c| c == 0));
    }

    #[test]
    fn connected_nodes_attract_each_other() {
        let machine = MachineConfig::two_cluster(2, 1);
        let g = two_independent_chains();
        let ne = NeScheduler::new(&machine);
        let assignment = ne.assign_clusters(&g, 3);
        // Each chain should stay within one cluster (affinity beats balance for these
        // tiny loads).
        assert_eq!(assignment[0], assignment[1]);
        assert_eq!(assignment[1], assignment[2]);
        assert_eq!(assignment[3], assignment[4]);
        assert_eq!(assignment[4], assignment[5]);
    }

    #[test]
    fn schedules_respect_dependences_and_assignment() {
        let machine = MachineConfig::two_cluster(2, 1);
        let g = two_independent_chains();
        let ne = NeScheduler::new(&machine);
        let sched = ne.schedule(&g).unwrap();
        assert!(sched.is_complete());
        for e in g.edges() {
            let tu = sched.placement(e.src).unwrap().cycle;
            let tv = sched.placement(e.dst).unwrap().cycle;
            assert!(tv >= tu + e.latency as i64 - sched.ii() as i64 * e.distance as i64);
        }
    }

    #[test]
    fn unified_machine_matches_sms_behaviour() {
        let machine = MachineConfig::unified();
        let g = two_independent_chains();
        let ne_sched = NeScheduler::new(&machine).schedule(&g).unwrap();
        let sms_sched = vliw_sms::SmsScheduler::new(&machine).schedule(&g).unwrap();
        assert_eq!(ne_sched.ii(), sms_sched.ii());
    }

    #[test]
    fn loop_scheduler_trait_name() {
        let machine = MachineConfig::two_cluster(1, 1);
        let ne = NeScheduler::new(&machine);
        assert_eq!(LoopScheduler::name(&ne), "nystrom-eichenberger");
    }
}
