//! The robustness layer: a degradation ladder over the scheduling stack.
//!
//! [`ResilientScheduler`] wraps the whole scheduler catalogue into a service-grade
//! contract: *every call terminates with either a certified schedule or a typed
//! error, never a panic and never an uncertified schedule*.  It tries a ladder of
//! strategies from best to safest, each rung isolated behind
//! [`vliw_sms::contain`] (so a panicking policy is converted into
//! [`ScheduleError::PolicyPanic`] and merely fails its rung) and each rung's output
//! gated by the static certifier of `vliw-lint` (so a rung that *claims* success
//! with an illegal schedule is refused and the ladder descends):
//!
//! 1. **primary** — the paper's BSA by default; the fault-injection campaign in
//!    `vliw-verify` substitutes deliberately sabotaged policies here;
//! 2. **`unified-sms`** — every node on cluster 0 with the unified scheduler's
//!    whole-schedule register check, trading all cluster parallelism for the
//!    certainty that no inter-cluster communication is needed;
//! 3. **`load-balanced`** — the communication-blind balance-only assignment from
//!    [`crate::ablation`], which survives pathologies in the communication-aware
//!    heuristics;
//! 4. **`sequential`** — a directly *constructed* (not searched) non-pipelined
//!    schedule: one operation per cycle on cluster 0 in dependence order.  No search
//!    can fail and no policy code runs, so this rung succeeds whenever the machine
//!    can execute the graph at all.
//!
//! Every rung runs under its own deterministic [`FuelBudget`] slice (when one is
//! configured), the winning rung and its fuel are recorded in
//! [`ScheduleDiagnostics::rung`] / [`ScheduleDiagnostics::fuel`], and every failed
//! rung — including every contained panic — is reported in the outcome so a
//! campaign can assert that no fault escaped silently.

use crate::ablation::load_balanced_assignment;
use crate::bsa::BsaPolicy;
use crate::result::LoopScheduler;
use std::collections::BTreeSet;
use std::fmt;
use vliw_arch::{MachineConfig, ResourcePool};
use vliw_ddg::{rec_mii, res_mii, DepGraph, NodeId};
use vliw_sms::{
    cluster_max_live, contain_schedule, ClusterPolicy, FixedAssignmentPolicy, FuelBudget,
    IiSearchDriver, LimitingResource, ModuloSchedule, PlacedOp, RegisterCheckMode,
    ScheduleDiagnostics, ScheduleError, ScheduledLoop,
};

/// Rung names, in descent order (the primary rung's name is caller-chosen).
pub const FALLBACK_RUNGS: [&str; 3] = ["unified-sms", "load-balanced", "sequential"];

/// Why one rung of the ladder was passed over.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RungError {
    /// The rung's scheduler returned a typed error (this includes contained panics,
    /// exhausted fuel slices and rogue-trial refusals).
    Schedule(ScheduleError),
    /// The rung produced a schedule but the static certifier refused it — the rung's
    /// claim of success was a lie and the ladder does not forward it.
    NotCertified {
        /// The deny-level lints that fired.
        denies: Vec<String>,
    },
}

impl fmt::Display for RungError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RungError::Schedule(e) => write!(f, "{e}"),
            RungError::NotCertified { denies } => {
                write!(f, "schedule refused by the certifier: {denies:?}")
            }
        }
    }
}

impl RungError {
    /// Whether this failure was a contained panic.
    pub fn is_contained_panic(&self) -> bool {
        matches!(self, RungError::Schedule(ScheduleError::PolicyPanic { .. }))
    }
}

/// One failed rung, in descent order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RungFailure {
    /// The rung that failed.
    pub rung: String,
    /// Why.
    pub error: RungError,
}

/// A certified schedule plus the ladder's account of how it was reached.
#[derive(Debug, Clone, PartialEq)]
pub struct ResilientOutcome {
    /// The certified schedule; `diagnostics.rung` names the winning rung and
    /// `diagnostics.fuel` carries the winning rung's fuel (when budgeted).
    pub result: ScheduledLoop,
    /// Every rung that was tried and failed before the winner, in order.
    pub failures: Vec<RungFailure>,
}

impl ResilientOutcome {
    /// The rung that produced the schedule.
    pub fn rung(&self) -> &str {
        self.result.diagnostics.rung.as_deref().unwrap_or("unknown")
    }

    /// How many of the failed rungs were contained panics.
    pub fn contained_panics(&self) -> usize {
        self.failures
            .iter()
            .filter(|f| f.error.is_contained_panic())
            .count()
    }
}

/// The whole ladder failed: a hard input error, or every rung exhausted.
///
/// The per-rung record is preserved so callers (the fault campaign in particular)
/// can still verify that every failure along the way was typed and contained.
#[derive(Debug, Clone, PartialEq)]
pub struct LadderFailure {
    /// The error that stopped the ladder: an input error that no rung can repair
    /// (invalid graph / invalid machine), or the sequential rung's own failure.
    pub error: ScheduleError,
    /// Rungs attempted before the stop, in order.
    pub failures: Vec<RungFailure>,
}

impl fmt::Display for LadderFailure {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} ({} rungs failed before)",
            self.error,
            self.failures.len()
        )
    }
}

impl std::error::Error for LadderFailure {}

/// The degradation-ladder scheduler (see module docs).
#[derive(Debug, Clone)]
pub struct ResilientScheduler {
    machine: MachineConfig,
    rung_fuel: Option<FuelBudget>,
    check_registers: bool,
}

impl ResilientScheduler {
    /// A ladder over `machine` with unlimited fuel per rung.
    pub fn new(machine: &MachineConfig) -> Self {
        Self {
            machine: machine.clone(),
            rung_fuel: None,
            check_registers: true,
        }
    }

    /// Give every searching rung its own copy of `budget` (the sequential rung is a
    /// direct construction and consumes no fuel).  Identical budgets make the whole
    /// ladder deterministic: same inputs, same winning rung, same schedule.
    #[must_use]
    pub fn with_rung_fuel(mut self, budget: FuelBudget) -> Self {
        self.rung_fuel = Some(budget);
        self
    }

    /// Enable or disable register checking in the searching rungs (the sequential
    /// rung always checks, since nothing can catch an overflow after it).
    #[must_use]
    pub fn check_registers(mut self, on: bool) -> Self {
        self.check_registers = on;
        self
    }

    /// The machine being scheduled for.
    pub fn machine(&self) -> &MachineConfig {
        &self.machine
    }

    /// Run the ladder with BSA as the primary rung.
    pub fn schedule(&self, graph: &DepGraph) -> Result<ResilientOutcome, LadderFailure> {
        self.schedule_with_primary(&mut BsaPolicy::new(), "bsa", graph)
    }

    /// Run the ladder with a caller-supplied primary policy (the fault-injection
    /// campaign wires sabotaged policies in here; `primary_rung` names the rung in
    /// diagnostics and failure records).
    pub fn schedule_with_primary<P: ClusterPolicy + ?Sized>(
        &self,
        primary: &mut P,
        primary_rung: &str,
        graph: &DepGraph,
    ) -> Result<ResilientOutcome, LadderFailure> {
        let certifier = vliw_lint::Certifier::new(&self.machine);
        let mut failures: Vec<RungFailure> = Vec::new();

        // Rung 1: the primary policy on the full clustered engine.
        match self.engine_rung(graph, primary, RegisterCheckMode::PerPlacement, &certifier) {
            Ok(out) => {
                return Ok(ResilientOutcome {
                    result: Self::stamp(out, primary_rung),
                    failures,
                })
            }
            Err(RungError::Schedule(e)) if Self::is_input_error(&e) => {
                // No rung can repair a malformed graph or an impossible machine —
                // descending would just repeat the same rejection.
                return Err(LadderFailure { error: e, failures });
            }
            Err(error) => failures.push(RungFailure {
                rung: primary_rung.to_string(),
                error,
            }),
        }

        // Rung 2: everything on cluster 0, with the unified scheduler's
        // whole-schedule register check.  No communications can be needed.
        let mut unified = FixedAssignmentPolicy::new("unified-sms", vec![0; graph.n_nodes()]);
        match self.engine_rung(
            graph,
            &mut unified,
            RegisterCheckMode::WholeSchedule,
            &certifier,
        ) {
            Ok(out) => {
                return Ok(ResilientOutcome {
                    result: Self::stamp(out, "unified-sms"),
                    failures,
                })
            }
            Err(error) => failures.push(RungFailure {
                rung: "unified-sms".to_string(),
                error,
            }),
        }

        // Rung 3: the communication-blind balance-only assignment.
        let mut balanced = FixedAssignmentPolicy::new(
            "load-balanced",
            load_balanced_assignment(&self.machine, graph),
        );
        match self.engine_rung(
            graph,
            &mut balanced,
            RegisterCheckMode::PerPlacement,
            &certifier,
        ) {
            Ok(out) => {
                return Ok(ResilientOutcome {
                    result: Self::stamp(out, "load-balanced"),
                    failures,
                })
            }
            Err(error) => failures.push(RungFailure {
                rung: "load-balanced".to_string(),
                error,
            }),
        }

        // Rung 4: the constructed sequential schedule.  `contain` is kept around it
        // anyway — the guarantee is "no panic escapes", not "this code is perfect".
        let out = match contain_schedule(|| self.sequential_fallback(graph)) {
            Ok(out) => out,
            Err(e) => return Err(LadderFailure { error: e, failures }),
        };
        match Self::certify(&certifier, graph, &out.schedule) {
            Ok(()) => Ok(ResilientOutcome {
                result: Self::stamp(out, "sequential"),
                failures,
            }),
            // By construction this is unreachable for machines that can execute the
            // graph; surfaced as a typed error rather than an uncertified schedule.
            Err(denies) => Err(LadderFailure {
                error: ScheduleError::InvalidMachine(format!(
                    "sequential fallback refused by the certifier: {denies:?}"
                )),
                failures,
            }),
        }
    }

    /// Input errors stop the ladder: every rung would reject them identically.
    fn is_input_error(e: &ScheduleError) -> bool {
        matches!(
            e,
            ScheduleError::InvalidGraph(_) | ScheduleError::InvalidMachine(_)
        )
    }

    fn stamp(mut out: ScheduledLoop, rung: &str) -> ScheduledLoop {
        out.diagnostics.rung = Some(rung.to_string());
        out
    }

    /// One searching rung: the shared engine under this ladder's fuel slice, panic
    /// containment, and the certifier gate.
    fn engine_rung<P: ClusterPolicy + ?Sized>(
        &self,
        graph: &DepGraph,
        policy: &mut P,
        mode: RegisterCheckMode,
        certifier: &vliw_lint::Certifier,
    ) -> Result<ScheduledLoop, RungError> {
        let mut driver = IiSearchDriver::new(&self.machine)
            .check_registers(self.check_registers)
            .register_mode(mode);
        if let Some(fuel) = self.rung_fuel {
            driver = driver.with_fuel(fuel);
        }
        let out =
            contain_schedule(|| driver.schedule(graph, policy)).map_err(RungError::Schedule)?;
        match Self::certify(certifier, graph, &out.schedule) {
            Ok(()) => Ok(out),
            Err(denies) => Err(RungError::NotCertified { denies }),
        }
    }

    /// The certifier gate.  An empty graph is trivially certified: its schedule has
    /// no events, so the lints' makespan model (and nothing else) degenerates.
    fn certify(
        certifier: &vliw_lint::Certifier,
        graph: &DepGraph,
        sched: &ModuloSchedule,
    ) -> Result<(), Vec<String>> {
        if graph.n_nodes() == 0 {
            return Ok(());
        }
        let report = certifier.check(graph, sched, graph.iterations);
        if report.is_certified() {
            Ok(())
        } else {
            Err(report.deny_ids())
        }
    }

    /// The bottom rung: construct (don't search) a non-pipelined schedule — every
    /// operation on cluster 0, one per cycle in dependence order, II wide enough
    /// that nothing overlaps and every loop-carried dependence is slack.
    fn sequential_fallback(&self, graph: &DepGraph) -> Result<ScheduledLoop, ScheduleError> {
        graph.validate().map_err(ScheduleError::InvalidGraph)?;
        if self.machine.n_clusters == 0 {
            return Err(ScheduleError::InvalidMachine(
                "machine has no clusters".to_string(),
            ));
        }
        let n = graph.n_nodes();

        // Dependence order over the zero-distance subgraph (Kahn's algorithm, lowest
        // node id first for determinism), one strictly increasing cycle per node.
        let mut indeg = vec![0usize; n];
        for e in graph.edges() {
            if e.distance == 0 {
                indeg[e.dst.index()] += 1;
            }
        }
        let mut ready: BTreeSet<u32> = (0..n as u32).filter(|&i| indeg[i as usize] == 0).collect();
        let mut cycle = vec![0i64; n];
        let mut placed = 0usize;
        let mut next_cycle = 0i64;
        while let Some(&u) = ready.iter().next() {
            ready.remove(&u);
            let node = NodeId(u);
            let mut t = next_cycle;
            for e in graph.in_edges(node) {
                if e.distance == 0 {
                    t = t.max(cycle[e.src.index()] + e.latency as i64);
                }
            }
            cycle[u as usize] = t;
            next_cycle = t + 1;
            placed += 1;
            for e in graph.out_edges(node) {
                if e.distance == 0 {
                    indeg[e.dst.index()] -= 1;
                    if indeg[e.dst.index()] == 0 {
                        ready.insert(e.dst.0);
                    }
                }
            }
        }
        if placed != n {
            return Err(ScheduleError::DegenerateGraph(format!(
                "sequential order covered {placed} of {n} nodes"
            )));
        }

        // II: at least the span (so each op owns its kernel row) and enough slack
        // for every loop-carried dependence:  t(dst) + II·d  ≥  t(src) + latency.
        let mut ii = next_cycle.max(1);
        for e in graph.edges() {
            if e.distance > 0 {
                let need = cycle[e.src.index()] + e.latency as i64 - cycle[e.dst.index()];
                if need > 0 {
                    ii = ii.max((need + e.distance as i64 - 1) / e.distance as i64);
                }
            }
        }
        let ii = u32::try_from(ii).map_err(|_| {
            ScheduleError::DegenerateGraph("sequential schedule span overflows u32".to_string())
        })?;

        let res = res_mii(graph, &self.machine);
        let rec = rec_mii(graph);
        let mii = res.max(rec).max(1);
        let pool = ResourcePool::new(&self.machine);
        let mut sched = ModuloSchedule::new(&graph.name, n, ii, mii);
        for node in graph.nodes() {
            let kind = node.class.fu_kind();
            let Some(fu) = pool.fus(0, kind).next() else {
                return Err(ScheduleError::InvalidMachine(format!(
                    "graph uses {kind} units but the machine has none"
                )));
            };
            sched.place(PlacedOp {
                node: node.id,
                cycle: cycle[node.id.index()],
                cluster: 0,
                fu,
            });
        }

        // No spill code exists in this model: a register overflow here means the
        // machine cannot hold the loop's values at all.
        let max_live = cluster_max_live(graph, &sched, &self.machine);
        if max_live.first().copied().unwrap_or(0) as usize > self.machine.cluster.registers {
            return Err(ScheduleError::InvalidMachine(format!(
                "sequential fallback needs {} live values on cluster 0 but the register \
                 file holds {}",
                max_live[0], self.machine.cluster.registers
            )));
        }

        let limiting = if ii == mii && rec >= res {
            LimitingResource::Recurrence
        } else {
            LimitingResource::FunctionalUnits
        };
        Ok(ScheduledLoop {
            schedule: sched,
            diagnostics: ScheduleDiagnostics {
                ii,
                mii,
                res_mii: res,
                rec_mii: rec,
                limiting,
                ii_trajectory: Vec::new(),
                n_comms: 0,
                max_live_per_cluster: max_live,
                fuel: None,
                rung: None,
            },
        })
    }
}

impl LoopScheduler for ResilientScheduler {
    fn machine(&self) -> &MachineConfig {
        &self.machine
    }

    fn schedule_loop(&self, graph: &DepGraph) -> Result<ScheduledLoop, ScheduleError> {
        self.schedule(graph)
            .map(|out| out.result)
            .map_err(|fail| fail.error)
    }

    fn name(&self) -> &'static str {
        "resilient"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vliw_arch::OpClass;
    use vliw_ddg::GraphBuilder;
    use vliw_sms::{EngineView, Trial};

    fn saxpy() -> DepGraph {
        GraphBuilder::new("saxpy")
            .iterations(100)
            .node("lx", OpClass::Load)
            .node("ly", OpClass::Load)
            .node("mul", OpClass::FpMul)
            .node("add", OpClass::FpAdd)
            .node("st", OpClass::Store)
            .flow("lx", "mul")
            .flow("mul", "add")
            .flow("ly", "add")
            .flow("add", "st")
            .build()
    }

    #[test]
    fn healthy_primary_wins_the_top_rung() {
        let machine = MachineConfig::four_cluster(1, 1);
        let out = ResilientScheduler::new(&machine)
            .schedule(&saxpy())
            .unwrap();
        assert_eq!(out.rung(), "bsa");
        assert!(out.failures.is_empty());
        assert!(out.result.schedule.is_complete());
    }

    struct PanickingPolicy;
    impl ClusterPolicy for PanickingPolicy {
        fn name(&self) -> &'static str {
            "panicking"
        }
        fn select_placement(&mut self, _node: NodeId, _view: &mut EngineView<'_>) -> Option<Trial> {
            panic!("injected policy bug")
        }
    }

    #[test]
    fn panicking_primary_is_contained_and_the_ladder_descends() {
        let machine = MachineConfig::four_cluster(1, 1);
        let g = saxpy();
        let out = ResilientScheduler::new(&machine)
            .schedule_with_primary(&mut PanickingPolicy, "sabotaged", &g)
            .unwrap();
        assert_eq!(out.rung(), "unified-sms");
        assert_eq!(out.contained_panics(), 1);
        assert_eq!(out.failures[0].rung, "sabotaged");
        assert!(matches!(
            out.failures[0].error,
            RungError::Schedule(ScheduleError::PolicyPanic { .. })
        ));
    }

    struct RefusingPolicy;
    impl ClusterPolicy for RefusingPolicy {
        fn name(&self) -> &'static str {
            "refusing"
        }
        fn select_placement(&mut self, _node: NodeId, _view: &mut EngineView<'_>) -> Option<Trial> {
            None
        }
    }

    #[test]
    fn exhausted_primary_falls_through_with_a_typed_error() {
        let machine = MachineConfig::four_cluster(1, 1);
        let g = saxpy();
        let out = ResilientScheduler::new(&machine)
            .schedule_with_primary(&mut RefusingPolicy, "refuser", &g)
            .unwrap();
        assert_eq!(out.rung(), "unified-sms");
        assert!(matches!(
            out.failures[0].error,
            RungError::Schedule(ScheduleError::MaxIiExceeded { .. })
        ));
    }

    #[test]
    fn sequential_fallback_is_legal_and_certified() {
        let machine = MachineConfig::four_cluster(1, 1);
        let g = GraphBuilder::new("carried")
            .iterations(50)
            .node("a", OpClass::FpAdd)
            .node("b", OpClass::FpMul)
            .node("c", OpClass::Store)
            .flow("a", "b")
            .flow("b", "c")
            .flow_at("b", "a", 1)
            .build();
        let out = ResilientScheduler::new(&machine)
            .sequential_fallback(&g)
            .unwrap();
        assert!(out.schedule.is_complete());
        assert_eq!(out.diagnostics.n_comms, 0);
        let report = vliw_lint::Certifier::new(&machine).check(&g, &out.schedule, g.iterations);
        assert!(report.is_certified(), "{:?}", report.deny_ids());
        // Non-pipelined: a single stage.
        assert_eq!(out.schedule.stage_count(), 1);
    }

    #[test]
    fn empty_graph_takes_the_top_rung() {
        let machine = MachineConfig::two_cluster(1, 1);
        let g = DepGraph::new("empty");
        let out = ResilientScheduler::new(&machine).schedule(&g).unwrap();
        assert_eq!(out.rung(), "bsa");
    }

    #[test]
    fn invalid_graph_is_a_hard_error_not_a_descent() {
        use vliw_ddg::DepKind;
        let machine = MachineConfig::two_cluster(1, 1);
        let mut g = DepGraph::new("bad");
        let a = g.add_node(OpClass::IntAlu);
        g.add_edge(a, a, 1, 0, DepKind::Flow);
        let fail = ResilientScheduler::new(&machine).schedule(&g).unwrap_err();
        assert!(matches!(fail.error, ScheduleError::InvalidGraph(_)));
        assert!(fail.failures.is_empty());
    }

    #[test]
    fn tiny_fuel_exhausts_every_searching_rung_down_to_sequential() {
        let machine = MachineConfig::four_cluster(1, 1);
        let g = saxpy();
        let out = ResilientScheduler::new(&machine)
            .with_rung_fuel(FuelBudget::probes(1))
            .schedule(&g)
            .unwrap();
        assert_eq!(out.rung(), "sequential");
        // All three searching rungs failed on fuel.
        assert_eq!(out.failures.len(), 3);
        for f in &out.failures {
            assert!(
                matches!(
                    f.error,
                    RungError::Schedule(ScheduleError::BudgetExhausted { .. })
                ),
                "{}: {}",
                f.rung,
                f.error
            );
        }
        // The certified sequential result is flagged as such.
        assert_eq!(out.result.diagnostics.rung.as_deref(), Some("sequential"));
        let report =
            vliw_lint::Certifier::new(&machine).check(&g, &out.result.schedule, g.iterations);
        assert!(report.is_certified());
    }
}
