//! Result types shared by the clustered schedulers and the unrolling policies.

use serde::{Deserialize, Serialize};
use vliw_arch::MachineConfig;
use vliw_ddg::DepGraph;
use vliw_metrics::{CodeSizeModel, CodeSizeReport};
use vliw_sms::{ModuloSchedule, ScheduleDiagnostics, ScheduleError, ScheduledLoop, SmsScheduler};

/// The epilogue that drains the `NITER mod U` iterations an exactly-unrolled kernel
/// does not cover: one invocation of the *original* body's modulo schedule, run
/// `iterations` times (see [`vliw_ddg::unroll_exact`]).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RemainderEpilogue {
    /// The original (non-unrolled) body's schedule.
    pub schedule: ModuloSchedule,
    /// `NITER mod U` — how many iterations the epilogue executes.
    pub iterations: u64,
}

impl RemainderEpilogue {
    /// Cycles the epilogue invocation takes: `(r + SC − 1) · II` of the original
    /// body's schedule.
    pub fn cycles(&self) -> u64 {
        self.schedule.cycles_for(self.iterations)
    }
}

/// The outcome of scheduling one loop (possibly after unrolling).
///
/// Keeps the graph that was actually scheduled (which is the unrolled graph when an
/// unrolling policy kicked in) together with enough provenance to account IPC and code
/// size in terms of the *original* loop: the paper's IPC numbers always count original
/// useful operations, so unrolling can never inflate the numerator.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ClusterSchedule {
    /// The modulo schedule of `scheduled_graph`.
    pub schedule: ModuloSchedule,
    /// The engine's account of the II search that produced `schedule` (limiting
    /// resource, II trajectory, communication counts, per-cluster pressure).
    pub diagnostics: ScheduleDiagnostics,
    /// The graph that was scheduled (original or unrolled).
    pub scheduled_graph: DepGraph,
    /// The unroll factor applied (1 = not unrolled).
    pub unroll_factor: u32,
    /// Number of operations in the original (pre-unrolling) loop body.
    pub original_ops: usize,
    /// Iteration count of the original loop (`NITER`).
    pub original_iterations: u64,
    /// Number of invocations of the loop per program run.
    pub invocations: u64,
    /// Exact-model remainder epilogue: present only when the loop was unrolled under
    /// the exact iteration model (`UnrollPolicy::Fixed` / `UnrollPolicy::Explore`)
    /// and the factor does not divide `NITER`.  The paper-model policies
    /// (`ByClusters` / `Selective`) charge the kernel for the overshoot instead and
    /// leave this `None`.
    pub remainder: Option<RemainderEpilogue>,
}

impl ClusterSchedule {
    /// Wrap a schedule of the original (non-unrolled) graph.
    pub fn from_original(graph: &DepGraph, scheduled: ScheduledLoop) -> Self {
        Self {
            schedule: scheduled.schedule,
            diagnostics: scheduled.diagnostics,
            scheduled_graph: graph.clone(),
            unroll_factor: 1,
            original_ops: graph.n_nodes(),
            original_iterations: graph.iterations,
            invocations: graph.invocations,
            remainder: None,
        }
    }

    /// Wrap a schedule of an unrolled copy of `original` under the paper's
    /// iteration model (`⌈NITER/U⌉` kernel iterations, overshoot charged to the
    /// kernel; see [`vliw_ddg::unroll`](fn@vliw_ddg::unroll)).
    pub fn from_unrolled(
        original: &DepGraph,
        unrolled: DepGraph,
        scheduled: ScheduledLoop,
        factor: u32,
    ) -> Self {
        Self {
            schedule: scheduled.schedule,
            diagnostics: scheduled.diagnostics,
            scheduled_graph: unrolled,
            unroll_factor: factor,
            original_ops: original.n_nodes(),
            original_iterations: original.iterations,
            invocations: original.invocations,
            remainder: None,
        }
    }

    /// Wrap a schedule of an exactly-unrolled kernel of `original`
    /// ([`vliw_ddg::unroll_exact`]): the kernel covers `⌊NITER/U⌋` iterations and
    /// `remainder` (the original body's schedule, `NITER mod U` iterations) drains
    /// the leftover — `None` when the factor divides `NITER`.
    pub fn from_unrolled_exact(
        original: &DepGraph,
        kernel: DepGraph,
        scheduled: ScheduledLoop,
        factor: u32,
        remainder: Option<RemainderEpilogue>,
    ) -> Self {
        debug_assert_eq!(
            kernel.iterations * factor as u64 + remainder.as_ref().map_or(0, |r| r.iterations),
            original.iterations,
            "exact unrolling must cover NITER exactly"
        );
        Self {
            schedule: scheduled.schedule,
            diagnostics: scheduled.diagnostics,
            scheduled_graph: kernel,
            unroll_factor: factor,
            original_ops: original.n_nodes(),
            original_iterations: original.iterations,
            invocations: original.invocations,
            remainder,
        }
    }

    /// Cycles for one invocation of the loop: `NCYCLES = (NITER + SC − 1)·II` of the
    /// *scheduled* (possibly unrolled) graph, plus the remainder epilogue's cycles
    /// when the exact unrolling model left one.
    pub fn cycles_per_invocation(&self) -> u64 {
        self.schedule.cycles_for(self.scheduled_graph.iterations)
            + self.epilogue_cycles_per_invocation()
    }

    /// Cycles per invocation spent in the remainder epilogue (0 without one).
    pub fn epilogue_cycles_per_invocation(&self) -> u64 {
        self.remainder.as_ref().map_or(0, RemainderEpilogue::cycles)
    }

    /// Static code size of this loop's generated code: the pipelined kernel code
    /// plus, under the exact unrolling model, the remainder loop's own pipelined
    /// code (prologue + kernel + epilogue of the original body's schedule).
    pub fn code_size(&self, model: &CodeSizeModel) -> CodeSizeReport {
        let mut size = model.loop_size(&self.schedule, self.scheduled_graph.n_nodes());
        if let Some(rem) = &self.remainder {
            size.accumulate(model.loop_size(&rem.schedule, self.original_ops));
        }
        size
    }

    /// Total cycles over all invocations.
    pub fn total_cycles(&self) -> u64 {
        self.cycles_per_invocation() * self.invocations
    }

    /// Useful (original) operations executed over all invocations.
    pub fn total_useful_ops(&self) -> u64 {
        self.original_ops as u64 * self.original_iterations * self.invocations
    }

    /// Instructions-per-cycle of this loop alone.
    pub fn ipc(&self) -> f64 {
        let cycles = self.total_cycles();
        if cycles == 0 {
            return 0.0;
        }
        self.total_useful_ops() as f64 / cycles as f64
    }
}

/// Anything that can modulo-schedule a loop for a fixed machine.
///
/// Implemented by the unified SMS scheduler, the paper's BSA, the N&E baseline and the
/// ablation schedulers — all of them thin policies on the shared
/// [`vliw_sms::IiSearchDriver`] — so that unrolling policies and the experiment
/// harness can be written once.  Scheduling returns a [`ScheduledLoop`]: the schedule
/// plus the engine's [`ScheduleDiagnostics`].
pub trait LoopScheduler {
    /// The machine being scheduled for.
    fn machine(&self) -> &MachineConfig;

    /// Produce a modulo schedule of `graph`, with diagnostics.
    fn schedule_loop(&self, graph: &DepGraph) -> Result<ScheduledLoop, ScheduleError>;

    /// Human-readable name of the scheduling algorithm (used in experiment reports).
    fn name(&self) -> &'static str;
}

impl LoopScheduler for SmsScheduler {
    fn machine(&self) -> &MachineConfig {
        self.machine()
    }

    fn schedule_loop(&self, graph: &DepGraph) -> Result<ScheduledLoop, ScheduleError> {
        self.schedule_diag(graph)
    }

    fn name(&self) -> &'static str {
        "unified-sms"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vliw_arch::OpClass;
    use vliw_ddg::GraphBuilder;

    fn small_loop() -> DepGraph {
        GraphBuilder::new("small")
            .iterations(100)
            .invocations(3)
            .node("l", OpClass::Load)
            .node("a", OpClass::FpAdd)
            .node("s", OpClass::Store)
            .flow("l", "a")
            .flow("a", "s")
            .build()
    }

    #[test]
    fn ipc_accounts_original_ops_only() {
        let machine = MachineConfig::unified();
        let g = small_loop();
        let sched = SmsScheduler::new(&machine).schedule_diag(&g).unwrap();
        let cs = ClusterSchedule::from_original(&g, sched);
        assert_eq!(cs.unroll_factor, 1);
        assert_eq!(cs.total_useful_ops(), 3 * 100 * 3);
        assert!(cs.ipc() > 0.0);
        assert!(cs.ipc() <= machine.total_issue_width() as f64);
    }

    #[test]
    fn unrolled_wrapper_keeps_original_accounting() {
        let machine = MachineConfig::unified();
        let g = small_loop();
        let unrolled = vliw_ddg::unroll(&g, 2);
        let sched = SmsScheduler::new(&machine)
            .schedule_diag(&unrolled)
            .unwrap();
        let cs = ClusterSchedule::from_unrolled(&g, unrolled, sched, 2);
        assert_eq!(cs.unroll_factor, 2);
        // Useful work is unchanged by unrolling.
        assert_eq!(cs.total_useful_ops(), 3 * 100 * 3);
        // The scheduled graph runs half the iterations.
        assert_eq!(cs.scheduled_graph.iterations, 50);
    }

    #[test]
    fn scheduler_trait_is_object_safe() {
        let machine = MachineConfig::unified();
        let sms = SmsScheduler::new(&machine);
        let as_dyn: &dyn LoopScheduler = &sms;
        assert_eq!(as_dyn.name(), "unified-sms");
        let g = small_loop();
        assert!(as_dyn.schedule_loop(&g).is_ok());
    }

    #[test]
    fn cluster_schedule_carries_the_engine_diagnostics() {
        let machine = MachineConfig::unified();
        let g = small_loop();
        let sched = SmsScheduler::new(&machine).schedule_diag(&g).unwrap();
        let cs = ClusterSchedule::from_original(&g, sched);
        assert_eq!(cs.diagnostics.ii, cs.schedule.ii());
        assert_eq!(cs.diagnostics.n_comms, cs.schedule.comms().len());
        assert_eq!(cs.diagnostics.limited_by_bus(), cs.schedule.limited_by_bus);
    }
}
