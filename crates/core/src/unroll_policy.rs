//! Loop-unrolling policies (Section 5.2 and Figure 6 of the paper), generalized to a
//! factor-parameterized policy space.
//!
//! Three policies are evaluated in the paper's Figure 8:
//!
//! * **No unrolling** ([`UnrollPolicy::None`]) — schedule the loop body as-is;
//! * **Unrolling** ([`UnrollPolicy::ByClusters`]) — unroll *every* loop by the number
//!   of clusters before scheduling;
//! * **Selective unrolling** ([`UnrollPolicy::Selective`]) — schedule the original
//!   body first and unroll (by the number of clusters) only when (a) the schedule was
//!   limited by the communication buses and (b) a quick analytical estimate says the
//!   communications of the unrolled body fit inside its initiation interval
//!   (Figure 6).
//!
//! The paper only ever answers its titular question at the single point
//! `U = n_clusters`.  Two additional policies open the factor dimension:
//!
//! * [`UnrollPolicy::Fixed`]`(u)` — unroll every loop by an explicit factor `u`,
//!   under the **exact** iteration model ([`vliw_ddg::unroll_exact`]): the kernel
//!   covers `⌊NITER/u⌋` iterations and the leftover `NITER mod u` iterations run as
//!   a remainder epilogue (the original body's schedule).  This is the sweep axis of
//!   the `fig_unroll` experiment.
//! * [`UnrollPolicy::Explore`]`{ max_factor }` — schedule every candidate factor
//!   `1..=max_factor` and keep the best IPC whose static code size stays within a
//!   budget (a multiple of the non-unrolled loop's code, see
//!   [`SelectiveUnroller::with_explore_code_growth`]).  The engine's
//!   [`ScheduleDiagnostics`](vliw_sms::ScheduleDiagnostics) prune the search: once a
//!   candidate is register-limited and fails to win, larger factors are not tried —
//!   `MaxLive` pressure only grows with the factor.
//!
//! `ByClusters` and `Selective` deliberately keep the paper's iteration model
//! ([`vliw_ddg::unroll`](fn@vliw_ddg::unroll), `⌈NITER/U⌉` kernel iterations with the overshoot charged
//! to the kernel): the committed figure artifacts reproduce the paper's published
//! accounting byte-for-byte.  The factor-exploration policies use the exact model.
//!
//! The estimate of Figure 6 works as follows.  Unrolling by `U = n_clusters` and
//! scheduling one copy of the body per cluster leaves only the loop-carried
//! dependences whose distance is not a multiple of `U` crossing clusters; each such
//! dependence crosses once per copy, so `comneeded = NDepsNotMult(G, U) × U`
//! transfers are needed per unrolled iteration, taking
//! `cycneeded = ⌈comneeded / nbuses⌉ × latbus` bus cycles.  If `cycneeded` is below
//! the initiation interval of the (non-unrolled) schedule, unrolling is worthwhile.
//! The predicate is **strict** (`cycneeded < II`): at equality the transfers exactly
//! fill the window and unrolling buys nothing, so the original schedule is kept
//! (pinned by a boundary test below).

use crate::result::{ClusterSchedule, LoopScheduler, RemainderEpilogue};
use serde::{Deserialize, Serialize};
use vliw_ddg::{unroll, unroll_exact, unroll_exact_with, DepGraph, UnrollScratch};
use vliw_metrics::CodeSizeModel;
use vliw_sms::{LimitingResource, ScheduleError};

/// Which unrolling policy to apply before scheduling a loop.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum UnrollPolicy {
    /// Schedule the original loop body.
    None,
    /// Unroll every loop by an explicit factor, with exact remainder accounting.
    Fixed(u32),
    /// Unroll every loop by the number of clusters (the paper's "Unrolling" bars).
    ByClusters,
    /// Unroll only bus-limited loops, by the number of clusters (Figure 6).
    Selective,
    /// Schedule candidate factors `1..=max_factor` and keep the best admissible one.
    Explore {
        /// The largest unroll factor to try.
        max_factor: u32,
    },
}

impl UnrollPolicy {
    /// The paper's three policies, in the order Figure 8 presents them.
    pub const ALL: [UnrollPolicy; 3] = [
        UnrollPolicy::None,
        UnrollPolicy::ByClusters,
        UnrollPolicy::Selective,
    ];

    /// Human-readable label; the paper policies keep the labels of the paper's
    /// figures (the committed artifacts key on them).
    pub fn label(self) -> String {
        match self {
            UnrollPolicy::None => "No unrolling".to_string(),
            UnrollPolicy::Fixed(factor) => format!("Unroll x{factor}"),
            UnrollPolicy::ByClusters => "Unrolling".to_string(),
            UnrollPolicy::Selective => "Selective unrolling".to_string(),
            UnrollPolicy::Explore { max_factor } => format!("Explore <=x{max_factor}"),
        }
    }
}

impl std::fmt::Display for UnrollPolicy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.label())
    }
}

/// Default [`SelectiveUnroller::with_explore_code_growth`] budget: an explored
/// winner may spend at most this multiple of the non-unrolled loop's static code.
pub const DEFAULT_EXPLORE_CODE_GROWTH: f64 = 4.0;

/// The unrolling driver: the selective algorithm of Figure 6 plus the generalized
/// factor policies, generic over the underlying scheduler (BSA in the paper; the
/// N&E baseline and the unified scheduler are also accepted so ablations can be
/// run).
#[derive(Debug, Clone)]
pub struct SelectiveUnroller<S> {
    scheduler: S,
    explore_code_growth: f64,
}

impl<S: LoopScheduler> SelectiveUnroller<S> {
    /// Wrap `scheduler` with the unrolling policies.
    pub fn new(scheduler: S) -> Self {
        Self {
            scheduler,
            explore_code_growth: DEFAULT_EXPLORE_CODE_GROWTH,
        }
    }

    /// The wrapped scheduler.
    pub fn scheduler(&self) -> &S {
        &self.scheduler
    }

    /// Set the [`UnrollPolicy::Explore`] code-size budget: a candidate factor is
    /// admissible only while its static code (kernel + remainder loop) stays within
    /// `ratio ×` the non-unrolled loop's code.  Defaults to
    /// [`DEFAULT_EXPLORE_CODE_GROWTH`].
    pub fn with_explore_code_growth(mut self, ratio: f64) -> Self {
        self.explore_code_growth = ratio;
        self
    }

    /// Schedule `graph` with the given policy.
    pub fn schedule_with_policy(
        &self,
        graph: &DepGraph,
        policy: UnrollPolicy,
    ) -> Result<ClusterSchedule, ScheduleError> {
        match policy {
            UnrollPolicy::None => self.schedule_original(graph),
            UnrollPolicy::Fixed(factor) => self.schedule_fixed(graph, factor),
            UnrollPolicy::ByClusters => self.schedule_unrolled(graph),
            UnrollPolicy::Selective => self.schedule_selective(graph),
            UnrollPolicy::Explore { max_factor } => self.schedule_explore(graph, max_factor),
        }
    }

    /// Schedule the original body.
    pub fn schedule_original(&self, graph: &DepGraph) -> Result<ClusterSchedule, ScheduleError> {
        let scheduled = self.scheduler.schedule_loop(graph)?;
        Ok(ClusterSchedule::from_original(graph, scheduled))
    }

    /// Unroll by the number of clusters unconditionally, then schedule (the paper's
    /// iteration model).
    ///
    /// If the unrolled body cannot be scheduled at all (e.g. the per-cluster register
    /// file cannot hold its live values at any initiation interval), the original body
    /// is scheduled instead — a compiler would never trade a working loop for an
    /// unschedulable one.
    pub fn schedule_unrolled(&self, graph: &DepGraph) -> Result<ClusterSchedule, ScheduleError> {
        let factor = self.unroll_factor();
        if factor <= 1 {
            return self.schedule_original(graph);
        }
        let unrolled = unroll(graph, factor);
        match self.scheduler.schedule_loop(&unrolled) {
            Ok(scheduled) => Ok(ClusterSchedule::from_unrolled(
                graph, unrolled, scheduled, factor,
            )),
            Err(_) => self.schedule_original(graph),
        }
    }

    /// Unroll by an explicit `factor` under the exact iteration model: the kernel
    /// covers `⌊NITER/factor⌋` iterations; the leftover `NITER mod factor`
    /// iterations are drained by a remainder epilogue running the *original* body's
    /// schedule.
    ///
    /// Falls back to the original body when the factor is trivial, exceeds the trip
    /// count (the kernel would never run), or the unrolled kernel cannot be
    /// scheduled.
    ///
    /// When the factor does not divide the trip count, producing the epilogue costs
    /// one scheduling of the original body on top of the kernel's.  A sweep over
    /// many factors of the same loop pays that per factor — sweep cells are
    /// independent by design; [`Self::schedule_explore`] is the entry point that
    /// shares the original-body schedule across all candidate factors.
    pub fn schedule_fixed(
        &self,
        graph: &DepGraph,
        factor: u32,
    ) -> Result<ClusterSchedule, ScheduleError> {
        if factor <= 1 || factor as u64 > graph.iterations {
            return self.schedule_original(graph);
        }
        let unrolled = unroll_exact(graph, factor);
        match self.scheduler.schedule_loop(&unrolled.kernel) {
            Ok(scheduled) => {
                let remainder = self.remainder_epilogue(graph, unrolled.remainder_iterations)?;
                Ok(ClusterSchedule::from_unrolled_exact(
                    graph,
                    unrolled.kernel,
                    scheduled,
                    factor,
                    remainder,
                ))
            }
            Err(_) => self.schedule_original(graph),
        }
    }

    /// Schedule every candidate factor `1..=max_factor` and keep the best one.
    ///
    /// The winner maximizes IPC (exact remainder accounting included) among the
    /// candidates whose static code size — kernel plus remainder loop, from the
    /// machine's [`CodeSizeModel`] — stays within the
    /// [`SelectiveUnroller::with_explore_code_growth`] budget.  The factor-1
    /// schedule is always a candidate, so `Explore` never returns a schedule worse
    /// than [`UnrollPolicy::None`]; it is computed once and reused both as the
    /// fallback winner and as every candidate's remainder epilogue.  Candidate
    /// factors that cannot be scheduled are skipped; the engine's diagnostics cut
    /// the search short once a register-limited candidate fails to win (register
    /// pressure only grows with the factor).
    pub fn schedule_explore(
        &self,
        graph: &DepGraph,
        max_factor: u32,
    ) -> Result<ClusterSchedule, ScheduleError> {
        let base = self.schedule_original(graph)?;
        if max_factor <= 1 {
            return Ok(base);
        }
        let model = CodeSizeModel::new(self.scheduler.machine());
        let budget = base.code_size(&model).total_slots as f64 * self.explore_code_growth;
        // The factor-1 schedule doubles as every candidate's remainder epilogue.
        let base_schedule = base.schedule.clone();
        let mut best_ipc = base.ipc();
        let mut best = base;
        // One allocation arena for the whole sweep: every candidate kernel draws its
        // adjacency storage from the scratch and donates it back when it loses.
        let mut scratch = UnrollScratch::new();
        for factor in 2..=max_factor {
            if factor as u64 > graph.iterations {
                break;
            }
            let unrolled = unroll_exact_with(&mut scratch, graph, factor);
            let Ok(scheduled) = self.scheduler.schedule_loop(&unrolled.kernel) else {
                // Unschedulable at this factor (typically the register file); larger
                // factors may still differ, so keep scanning within the budget.
                scratch.recycle(unrolled.kernel);
                continue;
            };
            let remainder = (unrolled.remainder_iterations > 0).then(|| RemainderEpilogue {
                schedule: base_schedule.clone(),
                iterations: unrolled.remainder_iterations,
            });
            let candidate = ClusterSchedule::from_unrolled_exact(
                graph,
                unrolled.kernel,
                scheduled,
                factor,
                remainder,
            );
            let register_limited =
                matches!(candidate.diagnostics.limiting, LimitingResource::Registers);
            let within_budget = candidate.code_size(&model).total_slots as f64 <= budget;
            let ipc = candidate.ipc();
            if within_budget && ipc > best_ipc {
                best_ipc = ipc;
                scratch.recycle(std::mem::replace(&mut best, candidate).scheduled_graph);
            } else {
                scratch.recycle(candidate.scheduled_graph);
                if register_limited {
                    break;
                }
            }
        }
        Ok(best)
    }

    /// The selective-unrolling algorithm of Figure 6.
    pub fn schedule_selective(&self, graph: &DepGraph) -> Result<ClusterSchedule, ScheduleError> {
        // (1) Compute the schedule of the original graph.
        let scheduled = self.scheduler.schedule_loop(graph)?;
        // (2) Only bus-limited schedules are candidates for unrolling.  The predicate
        // comes from the engine's structured diagnostics: the II search had to leave
        // MII behind because of bus saturation (`LimitingResource::Bus`).
        if !scheduled.diagnostics.limited_by_bus() {
            return Ok(ClusterSchedule::from_original(graph, scheduled));
        }
        let machine = self.scheduler.machine();
        let ufactor = self.unroll_factor();
        if ufactor <= 1 || machine.buses.count == 0 {
            return Ok(ClusterSchedule::from_original(graph, scheduled));
        }
        // (4)-(5) The analytical estimate of the unrolled body's bus traffic.
        let cycneeded = self.fig6_cycneeded(graph, ufactor);
        // (6) Unroll only if the communications fit *strictly* under the current II
        // (at equality the transfers exactly fill the window — nothing is gained).
        // Keep the original schedule when the unrolled body turns out to be
        // unschedulable.
        if cycneeded < scheduled.schedule.ii() as u64 {
            let unrolled = unroll(graph, ufactor);
            if let Ok(unrolled_sched) = self.scheduler.schedule_loop(&unrolled) {
                return Ok(ClusterSchedule::from_unrolled(
                    graph,
                    unrolled,
                    unrolled_sched,
                    ufactor,
                ));
            }
        }
        Ok(ClusterSchedule::from_original(graph, scheduled))
    }

    /// The Figure-6 estimate of the bus cycles one unrolled iteration needs:
    /// `comneeded = NDepsNotMult(G, U) × U` transfers over the machine's buses,
    /// `cycneeded = ⌈comneeded / nbuses⌉ × latbus`.
    pub fn fig6_cycneeded(&self, graph: &DepGraph, ufactor: u32) -> u64 {
        let machine = self.scheduler.machine();
        let comneeded = graph.deps_not_multiple_of(ufactor) as u64 * ufactor as u64;
        comneeded.div_ceil(machine.buses.count as u64) * machine.buses.latency as u64
    }

    /// The unroll factor used by the cluster-count policies: the number of clusters
    /// (Figure 6, line 3).
    pub fn unroll_factor(&self) -> u32 {
        self.scheduler.machine().n_clusters as u32
    }

    /// Schedule the remainder epilogue (the original body, `r` iterations), or
    /// `None` when there is nothing left over.
    fn remainder_epilogue(
        &self,
        graph: &DepGraph,
        r: u64,
    ) -> Result<Option<RemainderEpilogue>, ScheduleError> {
        if r == 0 {
            return Ok(None);
        }
        let original = self.scheduler.schedule_loop(graph)?;
        Ok(Some(RemainderEpilogue {
            schedule: original.schedule,
            iterations: r,
        }))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bsa::BsaScheduler;
    use vliw_arch::{MachineConfig, OpClass};
    use vliw_ddg::GraphBuilder;
    use vliw_sms::{ModuloSchedule, ScheduleDiagnostics, ScheduledLoop};

    /// A loop body with plenty of intra-iteration value traffic but no loop-carried
    /// dependences: the classic case where unrolling lets each cluster run its own
    /// iteration.
    fn parallel_loop() -> DepGraph {
        GraphBuilder::new("parallel")
            .iterations(400)
            .node("l0", OpClass::Load)
            .node("l1", OpClass::Load)
            .node("m0", OpClass::FpMul)
            .node("a0", OpClass::FpAdd)
            .node("a1", OpClass::FpAdd)
            .node("s0", OpClass::Store)
            .flow("l0", "m0")
            .flow("l1", "a0")
            .flow("m0", "a0")
            .flow("a0", "a1")
            .flow("m0", "a1")
            .flow("a1", "s0")
            .build()
    }

    #[test]
    fn policy_labels_match_the_paper() {
        assert_eq!(UnrollPolicy::None.label(), "No unrolling");
        assert_eq!(UnrollPolicy::ByClusters.label(), "Unrolling");
        assert_eq!(UnrollPolicy::Selective.label(), "Selective unrolling");
        assert_eq!(UnrollPolicy::Fixed(3).label(), "Unroll x3");
        assert_eq!(
            UnrollPolicy::Explore { max_factor: 8 }.label(),
            "Explore <=x8"
        );
        assert_eq!(UnrollPolicy::ALL.len(), 3);
    }

    #[test]
    fn no_unrolling_keeps_factor_one() {
        let machine = MachineConfig::two_cluster(1, 1);
        let driver = SelectiveUnroller::new(BsaScheduler::new(&machine));
        let g = parallel_loop();
        let r = driver.schedule_with_policy(&g, UnrollPolicy::None).unwrap();
        assert_eq!(r.unroll_factor, 1);
        assert_eq!(r.scheduled_graph.n_nodes(), g.n_nodes());
        assert!(r.remainder.is_none());
    }

    #[test]
    fn by_clusters_policy_unrolls_by_cluster_count() {
        let machine = MachineConfig::four_cluster(1, 1);
        let driver = SelectiveUnroller::new(BsaScheduler::new(&machine));
        let g = parallel_loop();
        let r = driver
            .schedule_with_policy(&g, UnrollPolicy::ByClusters)
            .unwrap();
        assert_eq!(r.unroll_factor, 4);
        assert_eq!(r.scheduled_graph.n_nodes(), g.n_nodes() * 4);
        // Accounting still refers to the original loop.
        assert_eq!(r.original_ops, g.n_nodes());
        assert_eq!(r.original_iterations, 400);
    }

    #[test]
    fn by_clusters_policy_on_unified_machine_is_a_no_op() {
        let machine = MachineConfig::unified();
        let driver = SelectiveUnroller::new(vliw_sms::SmsScheduler::new(&machine));
        let g = parallel_loop();
        let r = driver
            .schedule_with_policy(&g, UnrollPolicy::ByClusters)
            .unwrap();
        assert_eq!(r.unroll_factor, 1);
    }

    #[test]
    fn selective_policy_skips_loops_that_are_not_bus_limited() {
        // With 2 buses of latency 1 the parallel loop is not bus limited, so the
        // selective policy must not unroll it.
        let machine = MachineConfig::two_cluster(2, 1);
        let driver = SelectiveUnroller::new(BsaScheduler::new(&machine));
        let g = parallel_loop();
        let r = driver
            .schedule_with_policy(&g, UnrollPolicy::Selective)
            .unwrap();
        assert_eq!(r.unroll_factor, 1);
    }

    #[test]
    fn selective_policy_never_loses_to_no_unrolling_by_much() {
        // On a bus-starved machine the selective policy must perform at least as well
        // as never unrolling (same loop, same scheduler).
        let machine = MachineConfig::four_cluster(1, 2);
        let driver = SelectiveUnroller::new(BsaScheduler::new(&machine));
        let g = parallel_loop();
        let none = driver.schedule_with_policy(&g, UnrollPolicy::None).unwrap();
        let sel = driver
            .schedule_with_policy(&g, UnrollPolicy::Selective)
            .unwrap();
        assert!(
            sel.ipc() + 1e-9 >= none.ipc() * 0.99,
            "selective {} vs none {}",
            sel.ipc(),
            none.ipc()
        );
    }

    #[test]
    fn unroll_factor_tracks_cluster_count() {
        for n in [2usize, 4] {
            let machine = MachineConfig::clustered(n, 1, 1);
            let driver = SelectiveUnroller::new(BsaScheduler::new(&machine));
            assert_eq!(driver.unroll_factor(), n as u32);
        }
    }

    /// The remainder-accounting bugfix, pinned: `NITER = 100`, `U = 3` must execute
    /// 33 kernel iterations of the unrolled body plus exactly one epilogue iteration
    /// of the original body — not 34 kernel iterations charging a phantom
    /// 2-iteration overshoot.
    #[test]
    fn fixed_policy_models_the_remainder_exactly() {
        let machine = MachineConfig::two_cluster(2, 1);
        let driver = SelectiveUnroller::new(BsaScheduler::new(&machine));
        let g = parallel_loop().with_iterations(100);
        let r = driver
            .schedule_with_policy(&g, UnrollPolicy::Fixed(3))
            .unwrap();
        assert_eq!(r.unroll_factor, 3);
        assert_eq!(r.scheduled_graph.iterations, 33);
        let rem = r.remainder.as_ref().expect("3 does not divide 100");
        assert_eq!(rem.iterations, 1);

        // Cross-check the pinned accounting against independently produced
        // schedules of the kernel and the original body (scheduling is
        // deterministic): cycles = (33 + SC_k − 1)·II_k + (1 + SC_o − 1)·II_o,
        // useful ops = the original 6 ops × 100 iterations.
        let scheduler = BsaScheduler::new(&machine);
        let kernel = scheduler
            .schedule_loop(&vliw_ddg::unroll_exact(&g, 3).kernel)
            .unwrap();
        let original = scheduler.schedule_loop(&g).unwrap();
        let expected_cycles = kernel.schedule.cycles_for(33) + original.schedule.cycles_for(1);
        assert_eq!(r.cycles_per_invocation(), expected_cycles);
        assert_eq!(
            r.epilogue_cycles_per_invocation(),
            original.schedule.cycles_for(1)
        );
        assert_eq!(r.total_useful_ops(), 6 * 100);
        let expected_ipc = 600.0 / expected_cycles as f64;
        assert!((r.ipc() - expected_ipc).abs() < 1e-12);
    }

    #[test]
    fn fixed_policy_with_a_dividing_factor_has_no_epilogue() {
        let machine = MachineConfig::two_cluster(2, 1);
        let driver = SelectiveUnroller::new(BsaScheduler::new(&machine));
        let g = parallel_loop(); // 400 iterations
        let r = driver
            .schedule_with_policy(&g, UnrollPolicy::Fixed(4))
            .unwrap();
        assert_eq!(r.unroll_factor, 4);
        assert_eq!(r.scheduled_graph.iterations, 100);
        assert!(r.remainder.is_none());
    }

    #[test]
    fn fixed_policy_degenerate_factors_fall_back_to_the_original() {
        let machine = MachineConfig::two_cluster(2, 1);
        let driver = SelectiveUnroller::new(BsaScheduler::new(&machine));
        let g = parallel_loop().with_iterations(5);
        for factor in [0u32, 1, 6, 100] {
            let r = driver
                .schedule_with_policy(&g, UnrollPolicy::Fixed(factor))
                .unwrap();
            assert_eq!(r.unroll_factor, 1, "factor {factor}");
            assert!(r.remainder.is_none());
        }
    }

    #[test]
    fn explore_picks_a_factor_no_worse_than_none() {
        for machine in [
            MachineConfig::two_cluster(1, 1),
            MachineConfig::four_cluster(1, 2),
        ] {
            let driver = SelectiveUnroller::new(BsaScheduler::new(&machine));
            let g = parallel_loop();
            let none = driver.schedule_with_policy(&g, UnrollPolicy::None).unwrap();
            let explored = driver
                .schedule_with_policy(&g, UnrollPolicy::Explore { max_factor: 6 })
                .unwrap();
            assert!(
                explored.ipc() >= none.ipc(),
                "{}: explore {} < none {}",
                machine.name,
                explored.ipc(),
                none.ipc()
            );
            assert!(explored.unroll_factor >= 1);
            assert!(explored.unroll_factor <= 6);
        }
    }

    #[test]
    fn explore_respects_the_code_size_budget() {
        // A zero budget rules every unrolled candidate out: the winner must be the
        // factor-1 schedule no matter how profitable unrolling would be.
        let machine = MachineConfig::four_cluster(1, 1);
        let driver =
            SelectiveUnroller::new(BsaScheduler::new(&machine)).with_explore_code_growth(0.0);
        let g = parallel_loop();
        let r = driver
            .schedule_with_policy(&g, UnrollPolicy::Explore { max_factor: 8 })
            .unwrap();
        assert_eq!(r.unroll_factor, 1);
    }

    #[test]
    fn explore_with_trivial_max_factor_is_none() {
        let machine = MachineConfig::two_cluster(1, 1);
        let driver = SelectiveUnroller::new(BsaScheduler::new(&machine));
        let g = parallel_loop();
        let none = driver.schedule_with_policy(&g, UnrollPolicy::None).unwrap();
        let r = driver
            .schedule_with_policy(&g, UnrollPolicy::Explore { max_factor: 1 })
            .unwrap();
        assert_eq!(r.unroll_factor, 1);
        assert_eq!(r.ipc(), none.ipc());
    }

    /// A canned scheduler that reports a fixed II with bus-limited diagnostics, so
    /// the Figure-6 decision can be pinned at the exact boundary `cycneeded == II`.
    struct StubScheduler {
        machine: MachineConfig,
        ii: u32,
    }

    impl LoopScheduler for StubScheduler {
        fn machine(&self) -> &MachineConfig {
            &self.machine
        }

        fn schedule_loop(&self, graph: &DepGraph) -> Result<ScheduledLoop, ScheduleError> {
            Ok(ScheduledLoop {
                schedule: ModuloSchedule::new(&graph.name, graph.n_nodes(), self.ii, 1),
                diagnostics: ScheduleDiagnostics {
                    ii: self.ii,
                    mii: 1,
                    res_mii: 1,
                    rec_mii: 1,
                    limiting: LimitingResource::Bus,
                    ii_trajectory: Vec::new(),
                    n_comms: 0,
                    max_live_per_cluster: vec![0; self.machine.n_clusters],
                    fuel: None,
                    rung: None,
                },
            })
        }

        fn name(&self) -> &'static str {
            "stub"
        }
    }

    /// One loop-carried flow dependence at odd distance on a 2-cluster, 1-bus,
    /// latency-1 machine: `comneeded = 1 × 2`, `cycneeded = ⌈2/1⌉ × 1 = 2`.
    fn boundary_graph() -> DepGraph {
        let mut g = DepGraph::new("boundary");
        let a = g.add_named_node(OpClass::FpAdd, Some("a"));
        let b = g.add_named_node(OpClass::FpMul, Some("b"));
        g.add_edge(a, b, 1, 0, vliw_ddg::DepKind::Flow);
        g.add_edge(b, a, 1, 1, vliw_ddg::DepKind::Flow);
        g.with_iterations(64)
    }

    /// Figure-6 boundary: the predicate is strictly `cycneeded < II`, so a
    /// bus-limited schedule whose II *equals* the estimated bus cycles must NOT be
    /// unrolled — and one cycle of headroom must flip the decision.
    #[test]
    fn selective_predicate_is_strict_at_the_boundary() {
        let machine = MachineConfig::two_cluster(1, 1);
        let g = boundary_graph();
        let at_boundary = SelectiveUnroller::new(StubScheduler {
            machine: machine.clone(),
            ii: 2,
        });
        assert_eq!(at_boundary.fig6_cycneeded(&g, 2), 2);
        let r = at_boundary
            .schedule_with_policy(&g, UnrollPolicy::Selective)
            .unwrap();
        assert_eq!(r.unroll_factor, 1, "cycneeded == II must keep the original");

        let above_boundary = SelectiveUnroller::new(StubScheduler { machine, ii: 3 });
        let r = above_boundary
            .schedule_with_policy(&g, UnrollPolicy::Selective)
            .unwrap();
        assert_eq!(r.unroll_factor, 2, "cycneeded < II must unroll");
    }
}
