//! Loop-unrolling policies (Section 5.2 and Figure 6 of the paper).
//!
//! Three policies are evaluated in the paper's Figure 8:
//!
//! * **No unrolling** — schedule the loop body as-is;
//! * **Unrolling** — unroll *every* loop by the number of clusters before scheduling;
//! * **Selective unrolling** — schedule the original body first and unroll (by the
//!   number of clusters) only when (a) the schedule was limited by the communication
//!   buses and (b) a quick analytical estimate says the communications of the unrolled
//!   body fit inside its initiation interval (Figure 6).
//!
//! The estimate of Figure 6 works as follows.  Unrolling by `U = n_clusters` and
//! scheduling one copy of the body per cluster leaves only the loop-carried
//! dependences whose distance is not a multiple of `U` crossing clusters; each such
//! dependence crosses once per copy, so `comneeded = NDepsNotMult(G, U) × U`
//! transfers are needed per unrolled iteration, taking
//! `cycneeded = ⌈comneeded / nbuses⌉ × latbus` bus cycles.  If `cycneeded` is below
//! the initiation interval of the (non-unrolled) schedule, unrolling is worthwhile.

use crate::result::{ClusterSchedule, LoopScheduler};
use serde::{Deserialize, Serialize};
use vliw_ddg::{unroll, DepGraph};
use vliw_sms::ScheduleError;

/// Which unrolling policy to apply before scheduling a loop.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum UnrollPolicy {
    /// Schedule the original loop body.
    None,
    /// Unroll every loop by the number of clusters.
    All,
    /// Unroll only bus-limited loops (Figure 6).
    Selective,
}

impl UnrollPolicy {
    /// All policies, in the order the paper's Figure 8 presents them.
    pub const ALL: [UnrollPolicy; 3] = [
        UnrollPolicy::None,
        UnrollPolicy::All,
        UnrollPolicy::Selective,
    ];

    /// Human-readable label matching the paper's figures.
    pub fn label(self) -> &'static str {
        match self {
            UnrollPolicy::None => "No unrolling",
            UnrollPolicy::All => "Unrolling",
            UnrollPolicy::Selective => "Selective unrolling",
        }
    }
}

impl std::fmt::Display for UnrollPolicy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// The selective unrolling driver of Figure 6, generic over the underlying scheduler
/// (BSA in the paper; the N&E baseline and the unified scheduler are also accepted so
/// ablations can be run).
#[derive(Debug, Clone)]
pub struct SelectiveUnroller<S> {
    scheduler: S,
}

impl<S: LoopScheduler> SelectiveUnroller<S> {
    /// Wrap `scheduler` with the selective unrolling policy.
    pub fn new(scheduler: S) -> Self {
        Self { scheduler }
    }

    /// The wrapped scheduler.
    pub fn scheduler(&self) -> &S {
        &self.scheduler
    }

    /// Schedule `graph` with the given policy.
    pub fn schedule_with_policy(
        &self,
        graph: &DepGraph,
        policy: UnrollPolicy,
    ) -> Result<ClusterSchedule, ScheduleError> {
        match policy {
            UnrollPolicy::None => self.schedule_original(graph),
            UnrollPolicy::All => self.schedule_unrolled(graph),
            UnrollPolicy::Selective => self.schedule_selective(graph),
        }
    }

    /// Schedule the original body.
    pub fn schedule_original(&self, graph: &DepGraph) -> Result<ClusterSchedule, ScheduleError> {
        let scheduled = self.scheduler.schedule_loop(graph)?;
        Ok(ClusterSchedule::from_original(graph, scheduled))
    }

    /// Unroll by the number of clusters unconditionally, then schedule.
    ///
    /// If the unrolled body cannot be scheduled at all (e.g. the per-cluster register
    /// file cannot hold its live values at any initiation interval), the original body
    /// is scheduled instead — a compiler would never trade a working loop for an
    /// unschedulable one.
    pub fn schedule_unrolled(&self, graph: &DepGraph) -> Result<ClusterSchedule, ScheduleError> {
        let factor = self.unroll_factor();
        if factor <= 1 {
            return self.schedule_original(graph);
        }
        let unrolled = unroll(graph, factor);
        match self.scheduler.schedule_loop(&unrolled) {
            Ok(scheduled) => Ok(ClusterSchedule::from_unrolled(
                graph, unrolled, scheduled, factor,
            )),
            Err(_) => self.schedule_original(graph),
        }
    }

    /// The selective-unrolling algorithm of Figure 6.
    pub fn schedule_selective(&self, graph: &DepGraph) -> Result<ClusterSchedule, ScheduleError> {
        // (1) Compute the schedule of the original graph.
        let scheduled = self.scheduler.schedule_loop(graph)?;
        // (2) Only bus-limited schedules are candidates for unrolling.  The predicate
        // comes from the engine's structured diagnostics: the II search had to leave
        // MII behind because of bus saturation (`LimitingResource::Bus`).
        if !scheduled.diagnostics.limited_by_bus() {
            return Ok(ClusterSchedule::from_original(graph, scheduled));
        }
        let machine = self.scheduler.machine();
        let ufactor = self.unroll_factor();
        if ufactor <= 1 || machine.buses.count == 0 {
            return Ok(ClusterSchedule::from_original(graph, scheduled));
        }
        // (4) comneeded = NDepsNotMult(G) * ufactor
        let comneeded = graph.deps_not_multiple_of(ufactor) as u64 * ufactor as u64;
        // (5) cycneeded = ceil(comneeded / nbuses) * latbus
        let cycneeded =
            comneeded.div_ceil(machine.buses.count as u64) * machine.buses.latency as u64;
        // (6) Unroll only if the communications fit under the current II.  Keep the
        // original schedule when the unrolled body turns out to be unschedulable.
        if cycneeded < scheduled.schedule.ii() as u64 {
            let unrolled = unroll(graph, ufactor);
            if let Ok(unrolled_sched) = self.scheduler.schedule_loop(&unrolled) {
                return Ok(ClusterSchedule::from_unrolled(
                    graph,
                    unrolled,
                    unrolled_sched,
                    ufactor,
                ));
            }
        }
        Ok(ClusterSchedule::from_original(graph, scheduled))
    }

    /// The unroll factor used by the policies: the number of clusters (Figure 6,
    /// line 3).
    pub fn unroll_factor(&self) -> u32 {
        self.scheduler.machine().n_clusters as u32
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bsa::BsaScheduler;
    use vliw_arch::{MachineConfig, OpClass};
    use vliw_ddg::GraphBuilder;

    /// A loop body with plenty of intra-iteration value traffic but no loop-carried
    /// dependences: the classic case where unrolling lets each cluster run its own
    /// iteration.
    fn parallel_loop() -> DepGraph {
        GraphBuilder::new("parallel")
            .iterations(400)
            .node("l0", OpClass::Load)
            .node("l1", OpClass::Load)
            .node("m0", OpClass::FpMul)
            .node("a0", OpClass::FpAdd)
            .node("a1", OpClass::FpAdd)
            .node("s0", OpClass::Store)
            .flow("l0", "m0")
            .flow("l1", "a0")
            .flow("m0", "a0")
            .flow("a0", "a1")
            .flow("m0", "a1")
            .flow("a1", "s0")
            .build()
    }

    #[test]
    fn policy_labels_match_the_paper() {
        assert_eq!(UnrollPolicy::None.label(), "No unrolling");
        assert_eq!(UnrollPolicy::All.label(), "Unrolling");
        assert_eq!(UnrollPolicy::Selective.label(), "Selective unrolling");
        assert_eq!(UnrollPolicy::ALL.len(), 3);
    }

    #[test]
    fn no_unrolling_keeps_factor_one() {
        let machine = MachineConfig::two_cluster(1, 1);
        let driver = SelectiveUnroller::new(BsaScheduler::new(&machine));
        let g = parallel_loop();
        let r = driver.schedule_with_policy(&g, UnrollPolicy::None).unwrap();
        assert_eq!(r.unroll_factor, 1);
        assert_eq!(r.scheduled_graph.n_nodes(), g.n_nodes());
    }

    #[test]
    fn all_policy_unrolls_by_cluster_count() {
        let machine = MachineConfig::four_cluster(1, 1);
        let driver = SelectiveUnroller::new(BsaScheduler::new(&machine));
        let g = parallel_loop();
        let r = driver.schedule_with_policy(&g, UnrollPolicy::All).unwrap();
        assert_eq!(r.unroll_factor, 4);
        assert_eq!(r.scheduled_graph.n_nodes(), g.n_nodes() * 4);
        // Accounting still refers to the original loop.
        assert_eq!(r.original_ops, g.n_nodes());
        assert_eq!(r.original_iterations, 400);
    }

    #[test]
    fn all_policy_on_unified_machine_is_a_no_op() {
        let machine = MachineConfig::unified();
        let driver = SelectiveUnroller::new(vliw_sms::SmsScheduler::new(&machine));
        let g = parallel_loop();
        let r = driver.schedule_with_policy(&g, UnrollPolicy::All).unwrap();
        assert_eq!(r.unroll_factor, 1);
    }

    #[test]
    fn selective_policy_skips_loops_that_are_not_bus_limited() {
        // With 2 buses of latency 1 the parallel loop is not bus limited, so the
        // selective policy must not unroll it.
        let machine = MachineConfig::two_cluster(2, 1);
        let driver = SelectiveUnroller::new(BsaScheduler::new(&machine));
        let g = parallel_loop();
        let r = driver
            .schedule_with_policy(&g, UnrollPolicy::Selective)
            .unwrap();
        assert_eq!(r.unroll_factor, 1);
    }

    #[test]
    fn selective_policy_never_loses_to_no_unrolling_by_much() {
        // On a bus-starved machine the selective policy must perform at least as well
        // as never unrolling (same loop, same scheduler).
        let machine = MachineConfig::four_cluster(1, 2);
        let driver = SelectiveUnroller::new(BsaScheduler::new(&machine));
        let g = parallel_loop();
        let none = driver.schedule_with_policy(&g, UnrollPolicy::None).unwrap();
        let sel = driver
            .schedule_with_policy(&g, UnrollPolicy::Selective)
            .unwrap();
        assert!(
            sel.ipc() + 1e-9 >= none.ipc() * 0.99,
            "selective {} vs none {}",
            sel.ipc(),
            none.ipc()
        );
    }

    #[test]
    fn unroll_factor_tracks_cluster_count() {
        for n in [2usize, 4] {
            let machine = MachineConfig::clustered(n, 1, 1);
            let driver = SelectiveUnroller::new(BsaScheduler::new(&machine));
            assert_eq!(driver.unroll_factor(), n as u32);
        }
    }
}
