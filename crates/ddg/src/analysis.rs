//! Scheduling-priority metrics: ASAP, ALAP, mobility, depth and height.
//!
//! These are the per-node quantities the Swing Modulo Scheduling ordering and slot
//! selection use.  They are computed for a *candidate initiation interval* `II`: every
//! edge `u → v` contributes the constraint `t(v) ≥ t(u) + latency − II·distance`, and
//! as long as `II ≥ RecMII` the constraint system has a (finite) least solution, found
//! here with a longest-path fixpoint iteration.

use crate::graph::{DepGraph, NodeId};
use serde::{Deserialize, Serialize};

/// Per-node scheduling metrics for a given candidate II.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct GraphAnalysis {
    /// The candidate initiation interval the metrics were computed for.
    pub ii: u32,
    /// Earliest legal start cycle of each node (`ASAP`).
    pub asap: Vec<i64>,
    /// Latest start cycle of each node that does not stretch the critical path
    /// (`ALAP`).
    pub alap: Vec<i64>,
    /// Length of the critical path (`max ASAP + 1` over all nodes); the schedule of one
    /// iteration cannot be shorter than this.
    pub critical_path: i64,
}

impl GraphAnalysis {
    /// Compute the metrics of `graph` for candidate initiation interval `ii`.
    ///
    /// `ii` must be at least `RecMII`, otherwise the constraint system diverges; in
    /// that case the iteration is cut off and the routine panics, pointing at the
    /// scheduling bug that passed an infeasible II.
    pub fn new(graph: &DepGraph, ii: u32) -> Self {
        let n = graph.n_nodes();
        let mut asap = vec![0i64; n];
        // Longest path from virtual source (all nodes start at 0).
        let mut iterations = 0usize;
        loop {
            let mut changed = false;
            for e in graph.edges() {
                let w = e.latency as i64 - ii as i64 * e.distance as i64;
                let cand = asap[e.src.index()] + w;
                if cand > asap[e.dst.index()] {
                    asap[e.dst.index()] = cand;
                    changed = true;
                }
            }
            if !changed {
                break;
            }
            iterations += 1;
            assert!(
                iterations <= n + 1,
                "ASAP computation diverged: II={ii} is below RecMII for loop '{}'",
                graph.name
            );
        }
        let critical_path = asap.iter().copied().max().unwrap_or(0) + 1;
        // ALAP: longest path *to* the virtual sink, i.e. run the same relaxation on the
        // reversed graph starting from `critical_path - 1`.
        let mut alap = vec![critical_path - 1; n];
        let mut iterations = 0usize;
        loop {
            let mut changed = false;
            for e in graph.edges() {
                let w = e.latency as i64 - ii as i64 * e.distance as i64;
                let cand = alap[e.dst.index()] - w;
                if cand < alap[e.src.index()] {
                    alap[e.src.index()] = cand;
                    changed = true;
                }
            }
            if !changed {
                break;
            }
            iterations += 1;
            assert!(
                iterations <= n + 1,
                "ALAP computation diverged: II={ii} is below RecMII for loop '{}'",
                graph.name
            );
        }
        Self {
            ii,
            asap,
            alap,
            critical_path,
        }
    }

    /// Earliest start of `node`.
    #[inline]
    pub fn asap(&self, node: NodeId) -> i64 {
        self.asap[node.index()]
    }

    /// Latest start of `node`.
    #[inline]
    pub fn alap(&self, node: NodeId) -> i64 {
        self.alap[node.index()]
    }

    /// Mobility (slack) of `node`: `ALAP − ASAP`.  Critical nodes have mobility 0.
    #[inline]
    pub fn mobility(&self, node: NodeId) -> i64 {
        self.alap(node) - self.asap(node)
    }

    /// Depth of `node`: its ASAP time (distance from the graph sources).
    #[inline]
    pub fn depth(&self, node: NodeId) -> i64 {
        self.asap(node)
    }

    /// Height of `node`: distance from the graph sinks, `critical_path − 1 − ALAP`.
    #[inline]
    pub fn height(&self, node: NodeId) -> i64 {
        self.critical_path - 1 - self.alap(node)
    }

    /// Whether `node` lies on a critical path (zero mobility).
    #[inline]
    pub fn is_critical(&self, node: NodeId) -> bool {
        self.mobility(node) == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::{DepGraph, DepKind};
    use vliw_arch::OpClass;

    fn chain() -> DepGraph {
        // load(2) -> fmul(4) -> fadd(3) -> store
        let mut g = DepGraph::new("chain");
        let a = g.add_node(OpClass::Load);
        let b = g.add_node(OpClass::FpMul);
        let c = g.add_node(OpClass::FpAdd);
        let d = g.add_node(OpClass::Store);
        g.add_edge(a, b, 2, 0, DepKind::Flow);
        g.add_edge(b, c, 4, 0, DepKind::Flow);
        g.add_edge(c, d, 3, 0, DepKind::Flow);
        g
    }

    #[test]
    fn asap_follows_latencies_on_a_chain() {
        let g = chain();
        let a = GraphAnalysis::new(&g, 1);
        assert_eq!(a.asap, vec![0, 2, 6, 9]);
        assert_eq!(a.critical_path, 10);
    }

    #[test]
    fn alap_equals_asap_on_a_pure_chain() {
        let g = chain();
        let a = GraphAnalysis::new(&g, 1);
        for n in g.node_ids() {
            assert_eq!(a.asap(n), a.alap(n));
            assert!(a.is_critical(n));
            assert_eq!(a.mobility(n), 0);
        }
    }

    #[test]
    fn mobility_appears_on_off_critical_branches() {
        // a -> b(slow) -> d ; a -> c(fast) -> d
        let mut g = DepGraph::new("diamond");
        let a = g.add_node(OpClass::Load);
        let b = g.add_node(OpClass::FpDiv); // 17
        let c = g.add_node(OpClass::FpAdd); // 3
        let d = g.add_node(OpClass::Store);
        g.add_edge(a, b, 2, 0, DepKind::Flow);
        g.add_edge(a, c, 2, 0, DepKind::Flow);
        g.add_edge(b, d, 17, 0, DepKind::Flow);
        g.add_edge(c, d, 3, 0, DepKind::Flow);
        let an = GraphAnalysis::new(&g, 1);
        assert!(an.is_critical(a));
        assert!(an.is_critical(b));
        assert!(an.is_critical(d));
        assert!(!an.is_critical(c));
        assert_eq!(an.mobility(c), 14); // can slide by 17 - 3

        // heights decrease towards the sinks
        assert!(an.height(a) > an.height(b));
        assert_eq!(an.height(d), 0);
    }

    #[test]
    fn loop_carried_edges_relax_with_larger_ii() {
        // recurrence a -> b -> a (distance 1), latencies 3 + 4 = 7, so RecMII = 7.
        let mut g = DepGraph::new("rec");
        let a = g.add_node(OpClass::FpAdd);
        let b = g.add_node(OpClass::FpMul);
        g.add_edge(a, b, 3, 0, DepKind::Flow);
        g.add_edge(b, a, 4, 1, DepKind::Flow);
        let an7 = GraphAnalysis::new(&g, 7);
        assert_eq!(an7.asap(a), 0);
        assert_eq!(an7.asap(b), 3);
        // With a larger II the back edge is even less constraining; ASAP stays put.
        let an10 = GraphAnalysis::new(&g, 10);
        assert_eq!(an10.asap(b), 3);
    }

    #[test]
    #[should_panic(expected = "diverged")]
    fn infeasible_ii_is_detected() {
        let mut g = DepGraph::new("bad");
        let a = g.add_node(OpClass::FpDiv);
        g.add_edge(a, a, 17, 1, DepKind::Flow);
        let _ = GraphAnalysis::new(&g, 3); // RecMII is 17
    }

    #[test]
    fn empty_graph_has_trivial_analysis() {
        let g = DepGraph::new("empty");
        let a = GraphAnalysis::new(&g, 1);
        assert_eq!(a.critical_path, 1);
        assert!(a.asap.is_empty());
    }
}
