//! A small fluent builder for dependence graphs.
//!
//! Hand-written kernels (the Figure 7 example, the Livermore-style loops in
//! `vliw-workloads`) are much more readable when nodes can be referred to by name and
//! edge latencies default to the producer's latency on a given machine.

use crate::graph::{DepGraph, DepKind, NodeId};
use std::collections::HashMap;
use vliw_arch::{LatencyModel, OpClass};

/// Fluent builder over [`DepGraph`] with named nodes and latency defaulting.
#[derive(Debug, Clone)]
pub struct GraphBuilder {
    graph: DepGraph,
    names: HashMap<String, NodeId>,
    latencies: LatencyModel,
}

impl GraphBuilder {
    /// Start building a loop called `name`, using [`LatencyModel::table1`] to default
    /// edge latencies.
    pub fn new(name: impl Into<String>) -> Self {
        Self {
            graph: DepGraph::new(name),
            names: HashMap::new(),
            latencies: LatencyModel::table1(),
        }
    }

    /// Use a custom latency model for defaulted edge latencies.
    pub fn with_latencies(mut self, latencies: LatencyModel) -> Self {
        self.latencies = latencies;
        self
    }

    /// Set the loop's iteration count.
    pub fn iterations(mut self, n: u64) -> Self {
        self.graph.iterations = n;
        self
    }

    /// Set the loop's invocation count.
    pub fn invocations(mut self, n: u64) -> Self {
        self.graph.invocations = n;
        self
    }

    /// Add a named node.  Panics if the name is already taken.
    pub fn node(mut self, name: &str, class: OpClass) -> Self {
        assert!(
            !self.names.contains_key(name),
            "node name '{name}' used twice"
        );
        let id = self.graph.add_named_node(class, Some(name));
        self.names.insert(name.to_string(), id);
        self
    }

    /// Add a flow dependence `src → dst` at iteration distance 0, with the producer's
    /// default latency.
    pub fn flow(self, src: &str, dst: &str) -> Self {
        self.flow_at(src, dst, 0)
    }

    /// Add a flow dependence `src → dst` at the given iteration distance, with the
    /// producer's default latency.
    pub fn flow_at(mut self, src: &str, dst: &str, distance: u32) -> Self {
        let s = self.id(src);
        let d = self.id(dst);
        let latency = self.latencies.latency(self.graph.node(s).class);
        self.graph.add_edge(s, d, latency, distance, DepKind::Flow);
        self
    }

    /// Add an arbitrary dependence with an explicit latency.
    pub fn dep(mut self, src: &str, dst: &str, latency: u32, distance: u32, kind: DepKind) -> Self {
        let s = self.id(src);
        let d = self.id(dst);
        self.graph.add_edge(s, d, latency, distance, kind);
        self
    }

    /// Add a memory-ordering dependence (latency 1) at the given distance.
    pub fn mem_dep(self, src: &str, dst: &str, distance: u32) -> Self {
        self.dep(src, dst, 1, distance, DepKind::Memory)
    }

    /// The node id registered for `name`.  Panics on unknown names.
    pub fn id(&self, name: &str) -> NodeId {
        *self
            .names
            .get(name)
            .unwrap_or_else(|| panic!("unknown node name '{name}'"))
    }

    /// Finish building; validates the graph.
    pub fn build(self) -> DepGraph {
        self.graph
            .validate()
            .unwrap_or_else(|e| panic!("invalid graph '{}': {e}", self.graph.name));
        self.graph
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builds_a_named_graph() {
        let g = GraphBuilder::new("saxpy")
            .iterations(1000)
            .invocations(10)
            .node("load_x", OpClass::Load)
            .node("load_y", OpClass::Load)
            .node("mul", OpClass::FpMul)
            .node("add", OpClass::FpAdd)
            .node("store", OpClass::Store)
            .flow("load_x", "mul")
            .flow("load_y", "add")
            .flow("mul", "add")
            .flow("add", "store")
            .build();
        assert_eq!(g.n_nodes(), 5);
        assert_eq!(g.n_edges(), 4);
        assert_eq!(g.iterations, 1000);
        assert_eq!(g.invocations, 10);
        // The mul -> add edge carries the fmul latency from Table 1.
        let mul_edge = g
            .edges()
            .find(|e| g.node(e.src).label() == "mul" && g.node(e.dst).label() == "add")
            .unwrap();
        assert_eq!(mul_edge.latency, 4);
    }

    #[test]
    fn loop_carried_edges_via_flow_at() {
        let g = GraphBuilder::new("acc")
            .node("add", OpClass::FpAdd)
            .flow_at("add", "add", 1)
            .build();
        assert_eq!(g.loop_carried_edges(), 1);
    }

    #[test]
    fn custom_latency_model_is_used() {
        let g = GraphBuilder::new("unit")
            .with_latencies(LatencyModel::unit())
            .node("mul", OpClass::FpMul)
            .node("st", OpClass::Store)
            .flow("mul", "st")
            .build();
        assert_eq!(g.edges().next().unwrap().latency, 1);
    }

    #[test]
    fn mem_dep_has_unit_latency_and_memory_kind() {
        let g = GraphBuilder::new("mem")
            .node("st", OpClass::Store)
            .node("ld", OpClass::Load)
            .mem_dep("st", "ld", 1)
            .build();
        let e = g.edges().next().unwrap();
        assert_eq!(e.kind, DepKind::Memory);
        assert_eq!(e.latency, 1);
        assert_eq!(e.distance, 1);
    }

    #[test]
    #[should_panic(expected = "used twice")]
    fn duplicate_names_panic() {
        let _ = GraphBuilder::new("dup")
            .node("a", OpClass::IntAlu)
            .node("a", OpClass::IntAlu);
    }

    #[test]
    #[should_panic(expected = "unknown node name")]
    fn unknown_name_panics() {
        let _ = GraphBuilder::new("x")
            .node("a", OpClass::IntAlu)
            .flow("a", "b");
    }
}
