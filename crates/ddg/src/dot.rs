//! Graphviz (DOT) export of dependence graphs, for debugging and documentation.

use crate::graph::{DepGraph, DepKind};
use std::fmt::Write as _;

/// Render `graph` as a Graphviz `digraph`.
///
/// Loop-carried edges are dashed and annotated with their distance; flow edges are
/// solid, other kinds dotted.  Node labels show the symbolic name (if any) and the
/// operation class.
pub fn to_dot(graph: &DepGraph) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "digraph \"{}\" {{", graph.name.replace('"', "'"));
    let _ = writeln!(out, "  rankdir=TB;");
    let _ = writeln!(out, "  node [shape=box, fontname=\"monospace\"];");
    for node in graph.nodes() {
        let _ = writeln!(
            out,
            "  n{} [label=\"{}\\n{}\"];",
            node.id.0,
            node.label().replace('"', "'"),
            node.class
        );
    }
    for e in graph.edges() {
        let style = match (e.kind, e.distance) {
            (_, d) if d > 0 => "dashed",
            (DepKind::Flow, _) => "solid",
            _ => "dotted",
        };
        let mut label = format!("{}", e.latency);
        if e.distance > 0 {
            let _ = write!(label, ",d{}", e.distance);
        }
        let _ = writeln!(
            out,
            "  n{} -> n{} [label=\"{}\", style={}];",
            e.src.0, e.dst.0, label, style
        );
    }
    let _ = writeln!(out, "}}");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::GraphBuilder;
    use vliw_arch::OpClass;

    #[test]
    fn dot_output_contains_nodes_and_edges() {
        let g = GraphBuilder::new("dot-test")
            .node("ld", OpClass::Load)
            .node("st", OpClass::Store)
            .flow("ld", "st")
            .flow_at("st", "ld", 1)
            .build();
        let dot = to_dot(&g);
        assert!(dot.starts_with("digraph"));
        assert!(dot.contains("n0 ["));
        assert!(dot.contains("n0 -> n1"));
        assert!(dot.contains("dashed")); // the loop-carried edge
        assert!(dot.ends_with("}\n"));
    }

    #[test]
    fn dot_escapes_quotes_in_names() {
        let mut g = crate::DepGraph::new("quo\"te");
        g.add_named_node(OpClass::IntAlu, Some("a\"b"));
        let dot = to_dot(&g);
        assert!(!dot.contains("\"quo\"te\""));
    }
}
