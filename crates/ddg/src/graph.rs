//! The dependence-graph representation.

use serde::{Deserialize, Serialize};
use std::fmt;
use vliw_arch::{MachineConfig, OpClass};

/// Identifier of a node (operation) within a [`DepGraph`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct NodeId(pub u32);

impl NodeId {
    /// The node id as a `usize`, for indexing.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// Identifier of an edge within a [`DepGraph`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct EdgeId(pub u32);

impl EdgeId {
    /// The edge id as a `usize`, for indexing.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// The kind of a dependence edge.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum DepKind {
    /// True (flow / read-after-write) data dependence: the consumer reads the register
    /// value produced by the producer.  Only flow dependences require an inter-cluster
    /// communication when producer and consumer land in different clusters.
    Flow,
    /// Anti (write-after-read) dependence; pure ordering constraint.
    Anti,
    /// Output (write-after-write) dependence; pure ordering constraint.
    Output,
    /// Memory ordering dependence (store→load, store→store, …).
    Memory,
}

impl DepKind {
    /// Whether the edge carries a register value (and therefore may need a bus
    /// transfer on a clustered machine).
    #[inline]
    pub fn carries_value(self) -> bool {
        matches!(self, DepKind::Flow)
    }
}

/// A node: one operation of the loop body.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Node {
    /// This node's identifier (equal to its position in the node vector).
    pub id: NodeId,
    /// Operation class (determines functional-unit kind and latency).
    pub class: OpClass,
    /// Optional symbolic name (used by hand-written kernels and DOT dumps).
    pub name: Option<String>,
    /// Which unrolled copy of the original loop body this node belongs to (0 when the
    /// loop has not been unrolled).  Kept so schedulers and metrics can reason about
    /// iterations of an unrolled body.
    pub copy: u32,
    /// The node id in the *original* (pre-unrolling) graph.
    pub original: NodeId,
}

impl Node {
    /// The display name of the node (`name` if set, otherwise `n<id>`).
    pub fn label(&self) -> String {
        match &self.name {
            Some(n) => n.clone(),
            None => self.id.to_string(),
        }
    }
}

/// A dependence edge `src → dst`.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Edge {
    /// This edge's identifier.
    pub id: EdgeId,
    /// Producer node.
    pub src: NodeId,
    /// Consumer node.
    pub dst: NodeId,
    /// Minimum issue-to-issue latency in cycles.
    pub latency: u32,
    /// Iteration distance (0 = same iteration).
    pub distance: u32,
    /// Dependence kind.
    pub kind: DepKind,
}

/// A data dependence graph of an innermost loop body.
///
/// Nodes and edges are stored in dense vectors; adjacency lists are maintained
/// incrementally so predecessor/successor queries are O(degree).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DepGraph {
    /// Loop name (used in reports).
    pub name: String,
    nodes: Vec<Node>,
    edges: Vec<Edge>,
    succs: Vec<Vec<EdgeId>>,
    preds: Vec<Vec<EdgeId>>,
    /// Number of iterations the loop executes per invocation (NITER in the paper's
    /// cycle-count formula).  Innermost SPECfp95 loops with fewer than 4 iterations are
    /// excluded by the paper; the corpus generator respects that.
    pub iterations: u64,
    /// How many times the loop is invoked during the whole program run; used to weight
    /// per-loop results when aggregating IPC over a benchmark.
    pub invocations: u64,
}

impl DepGraph {
    /// Create an empty graph.
    pub fn new(name: impl Into<String>) -> Self {
        Self {
            name: name.into(),
            nodes: Vec::new(),
            edges: Vec::new(),
            succs: Vec::new(),
            preds: Vec::new(),
            iterations: 100,
            invocations: 1,
        }
    }

    /// Add a node of the given class; returns its id.
    pub fn add_node(&mut self, class: OpClass) -> NodeId {
        self.add_named_node(class, None::<String>)
    }

    /// Add a node with a symbolic name.
    pub fn add_named_node(&mut self, class: OpClass, name: Option<impl Into<String>>) -> NodeId {
        let id = NodeId(self.nodes.len() as u32);
        self.nodes.push(Node {
            id,
            class,
            name: name.map(Into::into),
            copy: 0,
            original: id,
        });
        self.ensure_adjacency();
        id
    }

    /// Grow the adjacency vectors to match the node count, unless
    /// [`DepGraph::arena_prepare`] already installed (recycled) rows for this node.
    #[inline]
    fn ensure_adjacency(&mut self) {
        if self.succs.len() < self.nodes.len() {
            self.succs.push(Vec::new());
            self.preds.push(Vec::new());
        }
    }

    /// Reserve storage for `n_nodes` nodes and `n_edges` edges, installing adjacency
    /// rows recycled from `pool` (cleared rows donated by retired graphs via
    /// [`DepGraph::recycle_into`]).  Arena primitive of `unroll::UnrollScratch`: the
    /// factor-exploration path re-unrolls the same loop once per candidate factor,
    /// and without reuse every attempt pays two heap allocations per copied node for
    /// adjacency alone.  Callable only on an empty graph; the caller must then add
    /// exactly `n_nodes` nodes so the installed rows line up with the node vector
    /// (the unroller knows both counts up front).
    pub(crate) fn arena_prepare(
        &mut self,
        n_nodes: usize,
        n_edges: usize,
        pool: &mut Vec<Vec<EdgeId>>,
    ) {
        assert!(self.nodes.is_empty(), "arena_prepare on a non-empty graph");
        self.nodes.reserve(n_nodes);
        self.edges.reserve(n_edges);
        self.succs.reserve(n_nodes);
        self.preds.reserve(n_nodes);
        for _ in 0..n_nodes {
            self.succs.push(pool.pop().unwrap_or_default());
            self.preds.push(pool.pop().unwrap_or_default());
        }
    }

    /// Dismantle the graph, donating its (cleared) adjacency vectors to `pool` for a
    /// later [`DepGraph::arena_prepare`] to reuse.
    pub(crate) fn recycle_into(mut self, pool: &mut Vec<Vec<EdgeId>>) {
        for mut v in self.succs.drain(..).chain(self.preds.drain(..)) {
            v.clear();
            pool.push(v);
        }
    }

    /// Add a node copied from `node` (used by the unroller), preserving class and
    /// recording provenance **relative to the root graph**: `copy` is the flat
    /// root-relative copy index and `original` composes through `node.original`, so
    /// unrolling an already-unrolled graph keeps attributing every node to the
    /// pre-unrolling loop body (useful-op accounting depends on this).
    ///
    /// The display name is derived from the node's *base* name (its own copy suffix,
    /// which this function produced, is stripped first), so copy 3 of `a` is named
    /// `a'3` no matter how many unrolling steps created it.
    pub fn add_copy_of(&mut self, node: &Node, copy: u32) -> NodeId {
        let id = NodeId(self.nodes.len() as u32);
        let base_name = node.name.as_deref().map(|n| {
            if node.copy == 0 {
                n
            } else {
                // Copies are only ever named by this function, so the suffix is
                // exactly `'<copy>`.
                n.strip_suffix(&format!("'{}", node.copy)).unwrap_or(n)
            }
        });
        self.nodes.push(Node {
            id,
            class: node.class,
            name: base_name.map(|n| {
                if copy == 0 {
                    n.to_string()
                } else {
                    format!("{n}'{copy}")
                }
            }),
            copy,
            original: node.original,
        });
        self.ensure_adjacency();
        id
    }

    /// How many copies of the original loop body this graph holds: 1 for a graph that
    /// was never unrolled, the cumulative unroll factor otherwise.  Unrolling copies
    /// every node uniformly, so the largest flat copy index determines the count.
    pub fn copies_per_original(&self) -> u32 {
        self.nodes.iter().map(|n| n.copy).max().unwrap_or(0) + 1
    }

    /// Add a dependence edge.  Panics if either endpoint does not exist.
    pub fn add_edge(
        &mut self,
        src: NodeId,
        dst: NodeId,
        latency: u32,
        distance: u32,
        kind: DepKind,
    ) -> EdgeId {
        assert!(src.index() < self.nodes.len(), "unknown source node {src}");
        assert!(
            dst.index() < self.nodes.len(),
            "unknown destination node {dst}"
        );
        let id = EdgeId(self.edges.len() as u32);
        self.edges.push(Edge {
            id,
            src,
            dst,
            latency,
            distance,
            kind,
        });
        self.succs[src.index()].push(id);
        self.preds[dst.index()].push(id);
        id
    }

    /// Add a flow (true data) dependence whose latency is the producer's latency on
    /// `machine`.
    pub fn add_flow_edge(
        &mut self,
        machine: &MachineConfig,
        src: NodeId,
        dst: NodeId,
        distance: u32,
    ) -> EdgeId {
        let latency = machine.latency(self.node(src).class);
        self.add_edge(src, dst, latency, distance, DepKind::Flow)
    }

    /// Number of nodes.
    #[inline]
    pub fn n_nodes(&self) -> usize {
        self.nodes.len()
    }

    /// Number of edges.
    #[inline]
    pub fn n_edges(&self) -> usize {
        self.edges.len()
    }

    /// The node with the given id.
    #[inline]
    pub fn node(&self, id: NodeId) -> &Node {
        &self.nodes[id.index()]
    }

    /// The edge with the given id.
    #[inline]
    pub fn edge(&self, id: EdgeId) -> &Edge {
        &self.edges[id.index()]
    }

    /// All nodes, in id order.
    pub fn nodes(&self) -> impl Iterator<Item = &Node> {
        self.nodes.iter()
    }

    /// All node ids, in order.
    pub fn node_ids(&self) -> impl Iterator<Item = NodeId> {
        (0..self.nodes.len() as u32).map(NodeId)
    }

    /// All edges, in id order.
    pub fn edges(&self) -> impl Iterator<Item = &Edge> {
        self.edges.iter()
    }

    /// Outgoing edges of `node`.
    pub fn out_edges(&self, node: NodeId) -> impl Iterator<Item = &Edge> {
        self.succs[node.index()].iter().map(|&e| self.edge(e))
    }

    /// Incoming edges of `node`.
    pub fn in_edges(&self, node: NodeId) -> impl Iterator<Item = &Edge> {
        self.preds[node.index()].iter().map(|&e| self.edge(e))
    }

    /// Successor nodes of `node` (one entry per edge; may repeat).
    pub fn successors(&self, node: NodeId) -> impl Iterator<Item = NodeId> + '_ {
        self.out_edges(node).map(|e| e.dst)
    }

    /// Predecessor nodes of `node` (one entry per edge; may repeat).
    pub fn predecessors(&self, node: NodeId) -> impl Iterator<Item = NodeId> + '_ {
        self.in_edges(node).map(|e| e.src)
    }

    /// Number of operations of each functional-unit kind, indexed by
    /// [`vliw_arch::FuKind::index`].
    pub fn ops_per_fu_kind(&self) -> [usize; 3] {
        let mut counts = [0usize; 3];
        for node in &self.nodes {
            counts[node.class.fu_kind().index()] += 1;
        }
        counts
    }

    /// Number of loop-carried dependences (edges with distance > 0).
    pub fn loop_carried_edges(&self) -> usize {
        self.edges.iter().filter(|e| e.distance > 0).count()
    }

    /// Number of loop-carried **flow** dependences whose distance is not a multiple of
    /// `factor`.  This is `NDepsNotMult` in the selective-unrolling algorithm
    /// (Figure 6): those are the dependences that will still cross iteration copies —
    /// and therefore clusters — after unrolling by `factor`.
    pub fn deps_not_multiple_of(&self, factor: u32) -> usize {
        assert!(factor >= 1);
        self.edges
            .iter()
            .filter(|e| e.kind.carries_value() && e.distance > 0 && e.distance % factor != 0)
            .count()
    }

    /// Set the iteration count (NITER) of the loop.
    pub fn with_iterations(mut self, iterations: u64) -> Self {
        self.iterations = iterations;
        self
    }

    /// Set how many times the loop is invoked per program run.
    pub fn with_invocations(mut self, invocations: u64) -> Self {
        self.invocations = invocations;
        self
    }

    /// Basic structural sanity checks; returns a description of the first violation.
    ///
    /// * every edge endpoint exists (enforced at construction, re-checked here);
    /// * no zero-distance self loop (an operation cannot depend on itself within the
    ///   same iteration);
    /// * no cycle consisting solely of zero-distance edges (such a loop body could not
    ///   be executed at all).
    pub fn validate(&self) -> Result<(), String> {
        for e in &self.edges {
            if e.src.index() >= self.nodes.len() || e.dst.index() >= self.nodes.len() {
                return Err(format!("edge {:?} references a missing node", e.id));
            }
            if e.src == e.dst && e.distance == 0 {
                return Err(format!(
                    "node {} has a zero-distance self dependence",
                    self.node(e.src).label()
                ));
            }
        }
        if self.has_zero_distance_cycle() {
            return Err("graph has a cycle of zero-distance edges".to_string());
        }
        Ok(())
    }

    /// Whether the subgraph of zero-distance edges contains a cycle.
    fn has_zero_distance_cycle(&self) -> bool {
        // Kahn's algorithm on the zero-distance subgraph.
        let n = self.n_nodes();
        let mut indeg = vec![0usize; n];
        for e in &self.edges {
            if e.distance == 0 {
                indeg[e.dst.index()] += 1;
            }
        }
        let mut stack: Vec<usize> = (0..n).filter(|&i| indeg[i] == 0).collect();
        let mut visited = 0usize;
        while let Some(u) = stack.pop() {
            visited += 1;
            for e in self.out_edges(NodeId(u as u32)) {
                if e.distance == 0 {
                    indeg[e.dst.index()] -= 1;
                    if indeg[e.dst.index()] == 0 {
                        stack.push(e.dst.index());
                    }
                }
            }
        }
        visited != n
    }
}

impl fmt::Display for DepGraph {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "loop '{}': {} nodes, {} edges ({} loop-carried), {} iterations",
            self.name,
            self.n_nodes(),
            self.n_edges(),
            self.loop_carried_edges(),
            self.iterations
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vliw_arch::MachineConfig;

    fn diamond() -> DepGraph {
        // a -> b, a -> c, b -> d, c -> d
        let mut g = DepGraph::new("diamond");
        let a = g.add_named_node(OpClass::Load, Some("a"));
        let b = g.add_named_node(OpClass::FpMul, Some("b"));
        let c = g.add_named_node(OpClass::FpAdd, Some("c"));
        let d = g.add_named_node(OpClass::Store, Some("d"));
        g.add_edge(a, b, 2, 0, DepKind::Flow);
        g.add_edge(a, c, 2, 0, DepKind::Flow);
        g.add_edge(b, d, 4, 0, DepKind::Flow);
        g.add_edge(c, d, 3, 0, DepKind::Flow);
        g
    }

    #[test]
    fn node_and_edge_counts() {
        let g = diamond();
        assert_eq!(g.n_nodes(), 4);
        assert_eq!(g.n_edges(), 4);
        assert_eq!(g.loop_carried_edges(), 0);
        assert!(g.validate().is_ok());
    }

    #[test]
    fn adjacency_is_consistent() {
        let g = diamond();
        let a = NodeId(0);
        let d = NodeId(3);
        assert_eq!(g.successors(a).count(), 2);
        assert_eq!(g.predecessors(a).count(), 0);
        assert_eq!(g.predecessors(d).count(), 2);
        assert_eq!(g.successors(d).count(), 0);
        // every out edge of a appears as an in edge of its destination
        for e in g.out_edges(a) {
            assert!(g.in_edges(e.dst).any(|e2| e2.id == e.id));
        }
    }

    #[test]
    fn ops_per_fu_kind_counts_kinds() {
        let g = diamond();
        let counts = g.ops_per_fu_kind();
        // load + store on MEM, fmul + fadd on FP, nothing on INT
        assert_eq!(counts, [0, 2, 2]);
    }

    #[test]
    fn flow_edge_latency_comes_from_machine() {
        let machine = MachineConfig::unified();
        let mut g = DepGraph::new("lat");
        let a = g.add_node(OpClass::FpMul);
        let b = g.add_node(OpClass::Store);
        let e = g.add_flow_edge(&machine, a, b, 0);
        assert_eq!(g.edge(e).latency, machine.latency(OpClass::FpMul));
    }

    #[test]
    fn deps_not_multiple_counts_only_carried_flow_edges() {
        let mut g = diamond();
        let a = NodeId(0);
        let d = NodeId(3);
        g.add_edge(d, a, 1, 1, DepKind::Flow); // distance 1
        g.add_edge(d, a, 1, 2, DepKind::Flow); // distance 2
        g.add_edge(d, a, 1, 2, DepKind::Memory); // memory edges never count
        assert_eq!(g.deps_not_multiple_of(2), 1);
        assert_eq!(g.deps_not_multiple_of(1), 0);
        assert_eq!(g.deps_not_multiple_of(3), 2);
    }

    #[test]
    fn zero_distance_self_loop_is_invalid() {
        let mut g = DepGraph::new("bad");
        let a = g.add_node(OpClass::IntAlu);
        g.add_edge(a, a, 1, 0, DepKind::Flow);
        assert!(g.validate().is_err());
    }

    #[test]
    fn positive_distance_self_loop_is_valid() {
        let mut g = DepGraph::new("acc");
        let a = g.add_node(OpClass::FpAdd);
        g.add_edge(a, a, 3, 1, DepKind::Flow);
        assert!(g.validate().is_ok());
    }

    #[test]
    fn zero_distance_cycle_is_invalid() {
        let mut g = DepGraph::new("cycle");
        let a = g.add_node(OpClass::IntAlu);
        let b = g.add_node(OpClass::IntAlu);
        g.add_edge(a, b, 1, 0, DepKind::Flow);
        g.add_edge(b, a, 1, 0, DepKind::Flow);
        assert!(g.validate().is_err());
    }

    #[test]
    fn recurrence_through_distance_is_valid() {
        let mut g = DepGraph::new("rec");
        let a = g.add_node(OpClass::FpAdd);
        let b = g.add_node(OpClass::FpMul);
        g.add_edge(a, b, 3, 0, DepKind::Flow);
        g.add_edge(b, a, 4, 1, DepKind::Flow);
        assert!(g.validate().is_ok());
    }

    #[test]
    fn builder_style_setters() {
        let g = DepGraph::new("x").with_iterations(250).with_invocations(7);
        assert_eq!(g.iterations, 250);
        assert_eq!(g.invocations, 7);
    }

    #[test]
    #[should_panic(expected = "unknown destination node")]
    fn edge_to_missing_node_panics() {
        let mut g = DepGraph::new("bad");
        let a = g.add_node(OpClass::IntAlu);
        g.add_edge(a, NodeId(42), 1, 0, DepKind::Flow);
    }
}
