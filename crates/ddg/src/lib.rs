//! # vliw-ddg — data dependence graphs for innermost loops
//!
//! Modulo scheduling consumes a *data dependence graph* (DDG) of the loop body: one
//! node per operation, one edge per dependence.  Every edge carries
//!
//! * a **latency** — the minimum number of cycles that must elapse between the issue of
//!   the producer and the issue of the consumer, and
//! * a **distance** — the number of loop iterations separating producer and consumer
//!   (0 for intra-iteration dependences, ≥ 1 for loop-carried ones).
//!
//! Under an initiation interval `II` a schedule `σ` is legal iff, for every edge
//! `u → v`, `σ(v) ≥ σ(u) + latency(u→v) − II · distance(u→v)`.
//!
//! This crate provides:
//!
//! * the graph representation itself ([`DepGraph`], [`Node`], [`Edge`], [`DepKind`])
//!   with a fluent [`builder::GraphBuilder`];
//! * lower bounds on the initiation interval ([`mii()`]): the resource-constrained
//!   `ResMII` and the recurrence-constrained `RecMII`;
//! * strongly-connected-component / recurrence analysis ([`scc`]);
//! * scheduling-priority metrics (ASAP/ALAP/depth/height, [`analysis`]);
//! * the **loop unrolling** transform used by the paper's selective-unrolling policy
//!   ([`unroll()`]);
//! * Graphviz export for debugging ([`dot`]).

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod analysis;
pub mod builder;
pub mod dot;
pub mod graph;
pub mod mii;
pub mod scc;
pub mod unroll;

pub use analysis::GraphAnalysis;
pub use builder::GraphBuilder;
pub use graph::{DepGraph, DepKind, Edge, EdgeId, Node, NodeId};
pub use mii::{mii, rec_mii, res_mii};
pub use scc::{recurrences, sccs, Recurrence};
pub use unroll::{unroll, unroll_exact, unroll_exact_with, UnrollScratch, UnrolledLoop};
