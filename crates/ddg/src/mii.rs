//! Lower bounds on the initiation interval.
//!
//! * `ResMII` — the resource-constrained minimum II: for every functional-unit kind,
//!   the number of operations of that kind divided by the number of units of that kind
//!   available in the whole machine, rounded up.  Buses are *not* part of `ResMII`
//!   (the paper accounts for them through the scheduling itself).
//! * `RecMII` — the recurrence-constrained minimum II: the smallest II for which no
//!   dependence cycle requires more latency than `II ×` (its total distance).
//!
//! `MII = max(ResMII, RecMII)` is the starting II of every modulo scheduler in this
//! repository, exactly as in the paper ("The minimum II is computed as
//! `max(ResMII, RecMII)`", Section 5.2 example).

use crate::graph::{DepGraph, NodeId};
use vliw_arch::{FuKind, MachineConfig};

/// Resource-constrained minimum initiation interval for `graph` on `machine`.
///
/// The machine-wide number of units of each kind is used (i.e. cluster boundaries are
/// ignored); this matches the paper, where the clustered machine is expected to reach
/// the *same* II as the unified machine whenever communication does not interfere.
pub fn res_mii(graph: &DepGraph, machine: &MachineConfig) -> u32 {
    let counts = graph.ops_per_fu_kind();
    let mut best = 1u32;
    for kind in FuKind::ALL {
        let ops = counts[kind.index()];
        let units = machine.total_fus(kind);
        if ops == 0 {
            continue;
        }
        assert!(
            units > 0,
            "graph uses {kind} units but the machine has none"
        );
        let bound = ops.div_ceil(units) as u32;
        best = best.max(bound);
    }
    best
}

/// Recurrence-constrained minimum initiation interval.
///
/// Uses a binary search over candidate IIs.  For a candidate II, an edge `u → v`
/// contributes weight `latency − II · distance`; the II is feasible iff the graph has
/// no positive-weight cycle, which is detected with a Bellman-Ford-style longest-path
/// relaxation (n·m work per check).
pub fn rec_mii(graph: &DepGraph) -> u32 {
    if graph.n_nodes() == 0 {
        return 1;
    }
    // Upper bound: the sum of all edge latencies is always feasible (any cycle has
    // distance >= 1, so weight <= sum(lat) - II <= 0 once II reaches that sum).
    let hi_bound: u64 = graph.edges().map(|e| e.latency as u64).sum::<u64>().max(1);
    let mut lo = 1u64;
    let mut hi = hi_bound;
    // Quick exit: acyclic graphs (no loop-carried edge can close a cycle) => RecMII 1.
    if !has_positive_cycle(graph, 1) {
        return 1;
    }
    while lo < hi {
        let mid = (lo + hi) / 2;
        if has_positive_cycle(graph, mid as u32) {
            lo = mid + 1;
        } else {
            hi = mid;
        }
    }
    lo as u32
}

/// The minimum initiation interval: `max(ResMII, RecMII)`.
pub fn mii(graph: &DepGraph, machine: &MachineConfig) -> u32 {
    res_mii(graph, machine).max(rec_mii(graph))
}

/// Whether `graph` has a dependence cycle with positive total weight
/// `Σ latency − II · Σ distance` under the candidate initiation interval `ii`.
fn has_positive_cycle(graph: &DepGraph, ii: u32) -> bool {
    let n = graph.n_nodes();
    if n == 0 {
        return false;
    }
    // Longest-path Bellman-Ford from a virtual source connected to every node with
    // weight 0.  If any distance still improves after n iterations there is a positive
    // cycle.
    let mut dist = vec![0i64; n];
    for _ in 0..n {
        let mut changed = false;
        for e in graph.edges() {
            let w = e.latency as i64 - (ii as i64) * (e.distance as i64);
            let cand = dist[e.src.index()] + w;
            if cand > dist[e.dst.index()] {
                dist[e.dst.index()] = cand;
                changed = true;
            }
        }
        if !changed {
            return false;
        }
    }
    // One more relaxation round: any further improvement proves a positive cycle.
    for e in graph.edges() {
        let w = e.latency as i64 - (ii as i64) * (e.distance as i64);
        if dist[e.src.index()] + w > dist[e.dst.index()] {
            return true;
        }
    }
    false
}

/// The tightest recurrence bound `ceil(Σ latency / Σ distance)` over the cycle through
/// the given nodes, if they form a simple cycle in order.  Utility used by tests and by
/// the recurrence analysis to report per-recurrence RecMII values.
pub fn cycle_bound(graph: &DepGraph, cycle: &[NodeId]) -> Option<u32> {
    if cycle.is_empty() {
        return None;
    }
    let mut latency = 0u64;
    let mut distance = 0u64;
    for (i, &u) in cycle.iter().enumerate() {
        let v = cycle[(i + 1) % cycle.len()];
        // Pick the edge u->v with the highest latency/lowest distance contribution; if
        // several exist any of them closes the cycle, so take the max latency and the
        // min distance to get the tightest bound.
        let mut best: Option<(u32, u32)> = None;
        for e in graph.out_edges(u).filter(|e| e.dst == v) {
            best = Some(match best {
                None => (e.latency, e.distance),
                Some((l, d)) => (l.max(e.latency), d.min(e.distance)),
            });
        }
        let (l, d) = best?;
        latency += l as u64;
        distance += d as u64;
    }
    if distance == 0 {
        return None;
    }
    Some(latency.div_ceil(distance) as u32)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::{DepGraph, DepKind};
    use vliw_arch::{MachineConfig, OpClass};

    /// The worked example of Figure 7: 6 single-cycle operations, RecMII = ceil(3/2),
    /// ResMII on a 2x2-FU machine = ceil(6/4) = 2.
    fn figure7_graph() -> DepGraph {
        let mut g = DepGraph::new("fig7");
        let a = g.add_named_node(OpClass::IntAlu, Some("A"));
        let b = g.add_named_node(OpClass::IntAlu, Some("B"));
        let c = g.add_named_node(OpClass::IntAlu, Some("C"));
        let d = g.add_named_node(OpClass::IntAlu, Some("D"));
        let e = g.add_named_node(OpClass::IntAlu, Some("E"));
        let f = g.add_named_node(OpClass::IntAlu, Some("F"));
        for (s, t) in [(a, c), (b, c), (c, e), (a, e), (d, f), (a, f)] {
            g.add_edge(s, t, 1, 0, DepKind::Flow);
        }
        // recurrence of length 3 latency over distance 2
        g.add_edge(e, d, 1, 1, DepKind::Flow);
        g.add_edge(d, a, 1, 1, DepKind::Flow);
        g.add_edge(a, e, 1, 0, DepKind::Flow);
        g
    }

    #[test]
    fn res_mii_of_figure7_on_paper_machine() {
        // "two general-purpose functional units per cluster" and 2 clusters: model it
        // as a 4-int-unit unified machine.
        let machine = MachineConfig::new(
            "fig7-machine",
            1,
            vliw_arch::ClusterConfig::new(4, 0, 0, 64),
            vliw_arch::BusConfig::none(),
            vliw_arch::LatencyModel::unit(),
        );
        let g = figure7_graph();
        assert_eq!(res_mii(&g, &machine), 2); // ceil(6/4)
    }

    #[test]
    fn rec_mii_of_figure7_is_two() {
        let g = figure7_graph();
        // cycle E -> D -> A -> E: latency 3 over distance 2 => ceil(3/2) = 2
        assert_eq!(rec_mii(&g), 2);
    }

    #[test]
    fn acyclic_graph_has_rec_mii_one() {
        let mut g = DepGraph::new("chain");
        let a = g.add_node(OpClass::Load);
        let b = g.add_node(OpClass::FpMul);
        let c = g.add_node(OpClass::Store);
        g.add_edge(a, b, 2, 0, DepKind::Flow);
        g.add_edge(b, c, 4, 0, DepKind::Flow);
        assert_eq!(rec_mii(&g), 1);
    }

    #[test]
    fn self_recurrence_bound() {
        // An accumulator a += x with fadd latency 3 at distance 1 forces RecMII 3.
        let mut g = DepGraph::new("acc");
        let a = g.add_node(OpClass::FpAdd);
        g.add_edge(a, a, 3, 1, DepKind::Flow);
        assert_eq!(rec_mii(&g), 3);
    }

    #[test]
    fn distance_two_recurrence_halves_the_bound() {
        let mut g = DepGraph::new("acc2");
        let a = g.add_node(OpClass::FpAdd);
        g.add_edge(a, a, 3, 2, DepKind::Flow);
        assert_eq!(rec_mii(&g), 2); // ceil(3/2)
    }

    #[test]
    fn res_mii_uses_the_busiest_fu_kind() {
        let machine = MachineConfig::unified(); // 4 of each kind
        let mut g = DepGraph::new("membound");
        for _ in 0..9 {
            g.add_node(OpClass::Load);
        }
        g.add_node(OpClass::FpAdd);
        assert_eq!(res_mii(&g, &machine), 3); // ceil(9/4)
        assert_eq!(mii(&g, &machine), 3);
    }

    #[test]
    fn mii_takes_the_max_of_both_bounds() {
        let machine = MachineConfig::unified();
        let mut g = DepGraph::new("recbound");
        let a = g.add_node(OpClass::FpDiv);
        g.add_edge(a, a, 17, 1, DepKind::Flow);
        assert_eq!(res_mii(&g, &machine), 1);
        assert_eq!(rec_mii(&g), 17);
        assert_eq!(mii(&g, &machine), 17);
    }

    #[test]
    fn cycle_bound_matches_rec_mii_on_simple_cycle() {
        let g = figure7_graph();
        let cycle = [crate::NodeId(4), crate::NodeId(3), crate::NodeId(0)]; // E, D, A
        assert_eq!(cycle_bound(&g, &cycle), Some(2));
    }

    #[test]
    fn empty_graph_bounds_are_one() {
        let g = DepGraph::new("empty");
        assert_eq!(rec_mii(&g), 1);
        assert_eq!(res_mii(&g, &MachineConfig::unified()), 1);
    }

    #[test]
    fn rec_mii_on_multi_node_recurrence_with_long_latencies() {
        let mut g = DepGraph::new("long");
        let a = g.add_node(OpClass::FpMul); // 4
        let b = g.add_node(OpClass::FpAdd); // 3
        let c = g.add_node(OpClass::FpAdd); // 3
        g.add_edge(a, b, 4, 0, DepKind::Flow);
        g.add_edge(b, c, 3, 0, DepKind::Flow);
        g.add_edge(c, a, 3, 1, DepKind::Flow);
        // total latency 10 over distance 1
        assert_eq!(rec_mii(&g), 10);
    }
}
