//! Strongly connected components and recurrence analysis.
//!
//! A *recurrence* is a non-trivial strongly connected component of the dependence
//! graph: a set of operations linked by a dependence cycle (necessarily through at
//! least one loop-carried edge).  The SMS node ordering gives the highest priority to
//! the recurrence with the largest per-cycle latency requirement (its `RecMII`), so the
//! scheduler needs per-recurrence bounds, which this module computes.

use crate::graph::{DepGraph, NodeId};
use serde::{Deserialize, Serialize};

/// A recurrence: a non-trivial strongly connected component.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Recurrence {
    /// The nodes in the recurrence, in discovery order.
    pub nodes: Vec<NodeId>,
    /// The recurrence-constrained minimum II imposed by this component alone.
    pub rec_mii: u32,
}

/// Compute the strongly connected components of `graph` (Tarjan's algorithm,
/// iterative).  Components are returned in reverse topological order of the
/// condensation (callees before callers), each as a list of node ids.
pub fn sccs(graph: &DepGraph) -> Vec<Vec<NodeId>> {
    let n = graph.n_nodes();
    let mut index = vec![usize::MAX; n];
    let mut low = vec![usize::MAX; n];
    let mut on_stack = vec![false; n];
    let mut stack: Vec<usize> = Vec::new();
    let mut next_index = 0usize;
    let mut result: Vec<Vec<NodeId>> = Vec::new();

    // Iterative Tarjan: each frame is (node, next-successor-position).
    for start in 0..n {
        if index[start] != usize::MAX {
            continue;
        }
        let mut call_stack: Vec<(usize, usize)> = vec![(start, 0)];
        while let Some(&mut (v, ref mut succ_pos)) = call_stack.last_mut() {
            if *succ_pos == 0 {
                index[v] = next_index;
                low[v] = next_index;
                next_index += 1;
                stack.push(v);
                on_stack[v] = true;
            }
            let succs: Vec<usize> = graph
                .successors(NodeId(v as u32))
                .map(super::graph::NodeId::index)
                .collect();
            if *succ_pos < succs.len() {
                let w = succs[*succ_pos];
                *succ_pos += 1;
                if index[w] == usize::MAX {
                    call_stack.push((w, 0));
                } else if on_stack[w] {
                    low[v] = low[v].min(index[w]);
                }
            } else {
                // All successors processed: pop the frame.
                if low[v] == index[v] {
                    let mut component = Vec::new();
                    loop {
                        let w = stack.pop().expect("stack non-empty");
                        on_stack[w] = false;
                        component.push(NodeId(w as u32));
                        if w == v {
                            break;
                        }
                    }
                    result.push(component);
                }
                call_stack.pop();
                if let Some(&mut (parent, _)) = call_stack.last_mut() {
                    low[parent] = low[parent].min(low[v]);
                }
            }
        }
    }
    result
}

/// The recurrences of `graph`: every SCC that contains a cycle (more than one node, or
/// a single node with a self-edge), together with its recurrence-constrained minimum
/// II, sorted by decreasing `rec_mii` (the priority order used by the SMS ordering).
pub fn recurrences(graph: &DepGraph) -> Vec<Recurrence> {
    let mut recs: Vec<Recurrence> = sccs(graph)
        .into_iter()
        .filter(|component| {
            component.len() > 1 || graph.out_edges(component[0]).any(|e| e.dst == component[0])
        })
        .map(|nodes| {
            let rec_mii = component_rec_mii(graph, &nodes);
            Recurrence { nodes, rec_mii }
        })
        .collect();
    recs.sort_by(|a, b| {
        b.rec_mii
            .cmp(&a.rec_mii)
            .then(a.nodes.len().cmp(&b.nodes.len()))
    });
    recs
}

/// RecMII restricted to the subgraph induced by `nodes`: smallest II with no positive
/// cycle among edges internal to the component.
fn component_rec_mii(graph: &DepGraph, nodes: &[NodeId]) -> u32 {
    let mut member = vec![false; graph.n_nodes()];
    for &n in nodes {
        member[n.index()] = true;
    }
    let internal_edges: Vec<_> = graph
        .edges()
        .filter(|e| member[e.src.index()] && member[e.dst.index()])
        .collect();
    if internal_edges.is_empty() {
        return 1;
    }
    let hi_bound: u64 = internal_edges
        .iter()
        .map(|e| e.latency as u64)
        .sum::<u64>()
        .max(1);
    let positive_cycle = |ii: u32| -> bool {
        let mut dist = vec![0i64; graph.n_nodes()];
        for _ in 0..nodes.len() {
            let mut changed = false;
            for e in &internal_edges {
                let w = e.latency as i64 - ii as i64 * e.distance as i64;
                if dist[e.src.index()] + w > dist[e.dst.index()] {
                    dist[e.dst.index()] = dist[e.src.index()] + w;
                    changed = true;
                }
            }
            if !changed {
                return false;
            }
        }
        for e in &internal_edges {
            let w = e.latency as i64 - ii as i64 * e.distance as i64;
            if dist[e.src.index()] + w > dist[e.dst.index()] {
                return true;
            }
        }
        false
    };
    let mut lo = 1u64;
    let mut hi = hi_bound;
    if !positive_cycle(1) {
        return 1;
    }
    while lo < hi {
        let mid = (lo + hi) / 2;
        if positive_cycle(mid as u32) {
            lo = mid + 1;
        } else {
            hi = mid;
        }
    }
    lo as u32
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::{DepGraph, DepKind};
    use vliw_arch::OpClass;

    #[test]
    fn chain_has_singleton_sccs_and_no_recurrence() {
        let mut g = DepGraph::new("chain");
        let a = g.add_node(OpClass::Load);
        let b = g.add_node(OpClass::FpAdd);
        let c = g.add_node(OpClass::Store);
        g.add_edge(a, b, 2, 0, DepKind::Flow);
        g.add_edge(b, c, 3, 0, DepKind::Flow);
        assert_eq!(sccs(&g).len(), 3);
        assert!(recurrences(&g).is_empty());
    }

    #[test]
    fn self_loop_is_a_recurrence() {
        let mut g = DepGraph::new("acc");
        let a = g.add_node(OpClass::FpAdd);
        g.add_edge(a, a, 3, 1, DepKind::Flow);
        let recs = recurrences(&g);
        assert_eq!(recs.len(), 1);
        assert_eq!(recs[0].nodes, vec![a]);
        assert_eq!(recs[0].rec_mii, 3);
    }

    #[test]
    fn two_node_cycle_is_one_scc() {
        let mut g = DepGraph::new("cyc");
        let a = g.add_node(OpClass::FpAdd);
        let b = g.add_node(OpClass::FpMul);
        let c = g.add_node(OpClass::Store);
        g.add_edge(a, b, 3, 0, DepKind::Flow);
        g.add_edge(b, a, 4, 1, DepKind::Flow);
        g.add_edge(b, c, 4, 0, DepKind::Flow);
        let comps = sccs(&g);
        assert_eq!(comps.len(), 2);
        let recs = recurrences(&g);
        assert_eq!(recs.len(), 1);
        assert_eq!(recs[0].nodes.len(), 2);
        assert_eq!(recs[0].rec_mii, 7); // (3 + 4) / 1
    }

    #[test]
    fn recurrences_sorted_by_decreasing_rec_mii() {
        let mut g = DepGraph::new("two-recs");
        // slow recurrence: fdiv self loop (17)
        let d = g.add_node(OpClass::FpDiv);
        g.add_edge(d, d, 17, 1, DepKind::Flow);
        // fast recurrence: ialu self loop (1)
        let i = g.add_node(OpClass::IntAlu);
        g.add_edge(i, i, 1, 1, DepKind::Flow);
        let recs = recurrences(&g);
        assert_eq!(recs.len(), 2);
        assert_eq!(recs[0].rec_mii, 17);
        assert_eq!(recs[1].rec_mii, 1);
    }

    #[test]
    fn every_node_appears_in_exactly_one_scc() {
        let mut g = DepGraph::new("mixed");
        let nodes: Vec<_> = (0..8).map(|_| g.add_node(OpClass::IntAlu)).collect();
        g.add_edge(nodes[0], nodes[1], 1, 0, DepKind::Flow);
        g.add_edge(nodes[1], nodes[2], 1, 0, DepKind::Flow);
        g.add_edge(nodes[2], nodes[0], 1, 1, DepKind::Flow);
        g.add_edge(nodes[3], nodes[4], 1, 0, DepKind::Flow);
        g.add_edge(nodes[5], nodes[6], 1, 0, DepKind::Flow);
        g.add_edge(nodes[6], nodes[5], 1, 2, DepKind::Flow);
        let comps = sccs(&g);
        let mut seen = vec![0usize; g.n_nodes()];
        for comp in &comps {
            for n in comp {
                seen[n.index()] += 1;
            }
        }
        assert!(seen.iter().all(|&c| c == 1));
    }

    #[test]
    fn scc_order_is_reverse_topological() {
        // a -> b (both singletons): b's component must be emitted before a's.
        let mut g = DepGraph::new("order");
        let a = g.add_node(OpClass::IntAlu);
        let b = g.add_node(OpClass::IntAlu);
        g.add_edge(a, b, 1, 0, DepKind::Flow);
        let comps = sccs(&g);
        let pos_a = comps.iter().position(|c| c.contains(&a)).unwrap();
        let pos_b = comps.iter().position(|c| c.contains(&b)).unwrap();
        assert!(pos_b < pos_a);
    }
}
