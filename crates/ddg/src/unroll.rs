//! Loop unrolling on dependence graphs.
//!
//! Unrolling by a factor `U` replaces the loop body by `U` consecutive copies of
//! itself; the new loop executes `⌈NITER / U⌉` iterations.  Dependences are remapped as
//! follows: a dependence `u → v` at distance `d` in the original loop connects copy `i`
//! of `u` to copy `(i + d) mod U` of `v` at distance `(i + d) div U`.
//!
//! The paper uses unrolling (Section 5.2) because the iterations of most SPECfp95
//! innermost loops are almost independent: after unrolling by the number of clusters,
//! each copy can be scheduled on its own cluster and only the few dependences whose
//! distance is not a multiple of `U` still require inter-cluster communication.

use crate::graph::{DepGraph, NodeId};

/// Unroll `graph` by `factor`, returning the new graph.
///
/// * `factor == 1` returns a plain clone.
/// * The returned graph's `iterations` is `⌈iterations / factor⌉` and its name is
///   suffixed with `xU`.
/// * Node `copy`/`original` fields record the provenance of every copy so that IPC
///   accounting can keep counting *original* operations.
pub fn unroll(graph: &DepGraph, factor: u32) -> DepGraph {
    assert!(factor >= 1, "unroll factor must be at least 1");
    if factor == 1 {
        return graph.clone();
    }
    let mut out = DepGraph::new(format!("{}x{}", graph.name, factor));
    out.iterations = graph.iterations.div_ceil(factor as u64);
    out.invocations = graph.invocations;

    // Node mapping: copy c of original node n gets id  c * n_nodes + n.
    let n = graph.n_nodes();
    let mut ids: Vec<Vec<NodeId>> = Vec::with_capacity(factor as usize);
    for copy in 0..factor {
        let mut row = Vec::with_capacity(n);
        for node in graph.nodes() {
            row.push(out.add_copy_of(node, copy));
        }
        ids.push(row);
    }

    for copy in 0..factor {
        for e in graph.edges() {
            let target_copy = (copy + e.distance) % factor;
            let new_distance = (copy + e.distance) / factor;
            out.add_edge(
                ids[copy as usize][e.src.index()],
                ids[target_copy as usize][e.dst.index()],
                e.latency,
                new_distance,
                e.kind,
            );
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::{DepGraph, DepKind};
    use crate::mii::rec_mii;
    use vliw_arch::OpClass;

    fn simple_loop() -> DepGraph {
        // load -> fmul -> store, plus fmul -> fmul at distance 1 (accumulator-like).
        let mut g = DepGraph::new("simple");
        let a = g.add_named_node(OpClass::Load, Some("a"));
        let b = g.add_named_node(OpClass::FpMul, Some("b"));
        let c = g.add_named_node(OpClass::Store, Some("c"));
        g.add_edge(a, b, 2, 0, DepKind::Flow);
        g.add_edge(b, c, 4, 0, DepKind::Flow);
        g.add_edge(b, b, 4, 1, DepKind::Flow);
        g.with_iterations(100)
    }

    #[test]
    fn factor_one_is_identity() {
        let g = simple_loop();
        let u = unroll(&g, 1);
        assert_eq!(u, g);
    }

    #[test]
    fn node_and_edge_counts_scale_with_factor() {
        let g = simple_loop();
        for factor in [2u32, 3, 4] {
            let u = unroll(&g, factor);
            assert_eq!(u.n_nodes(), g.n_nodes() * factor as usize);
            assert_eq!(u.n_edges(), g.n_edges() * factor as usize);
            assert!(u.validate().is_ok());
        }
    }

    #[test]
    fn iterations_divide_by_factor() {
        let g = simple_loop();
        assert_eq!(unroll(&g, 2).iterations, 50);
        assert_eq!(unroll(&g, 3).iterations, 34); // ceil(100/3)
        assert_eq!(unroll(&g, 4).iterations, 25);
    }

    #[test]
    fn original_intra_iteration_edges_stay_inside_their_copy() {
        let g = simple_loop();
        let factor = 2u32;
        let u = unroll(&g, factor);
        // Each original distance-0 edge yields `factor` copies, all within one copy of
        // the body; original distance-d edges go from copy i to copy (i+d) mod factor.
        let same_copy_zero_dist = u
            .edges()
            .filter(|e| e.distance == 0 && u.node(e.src).copy == u.node(e.dst).copy)
            .count();
        let original_zero_dist = g.edges().filter(|e| e.distance == 0).count();
        assert_eq!(same_copy_zero_dist, original_zero_dist * factor as usize);
        for e in u.edges() {
            let orig_src = u.node(e.src).original;
            let orig_dst = u.node(e.dst).original;
            // Provenance: the unrolled edge maps back to an original edge.
            assert!(g
                .edges()
                .any(|oe| oe.src == orig_src && oe.dst == orig_dst && oe.kind == e.kind));
        }
    }

    #[test]
    fn distance_one_edge_connects_consecutive_copies() {
        let g = simple_loop();
        let u = unroll(&g, 2);
        // The accumulator edge b->b (distance 1) must appear as copy0 -> copy1 at
        // distance 0 and copy1 -> copy0 at distance 1.
        let acc_edges: Vec<_> = u
            .edges()
            .filter(|e| u.node(e.src).original == u.node(e.dst).original && e.src != e.dst)
            .collect();
        assert_eq!(acc_edges.len(), 2);
        let zero_dist = acc_edges.iter().find(|e| e.distance == 0).unwrap();
        assert_eq!(u.node(zero_dist.src).copy, 0);
        assert_eq!(u.node(zero_dist.dst).copy, 1);
        let one_dist = acc_edges.iter().find(|e| e.distance == 1).unwrap();
        assert_eq!(u.node(one_dist.src).copy, 1);
        assert_eq!(u.node(one_dist.dst).copy, 0);
    }

    #[test]
    fn distance_multiple_of_factor_stays_within_copy_with_reduced_distance() {
        let mut g = DepGraph::new("dist2");
        let a = g.add_node(OpClass::FpAdd);
        g.add_edge(a, a, 3, 2, DepKind::Flow);
        let u = unroll(&g, 2);
        // Each copy keeps a self edge at distance 1.
        assert_eq!(u.n_edges(), 2);
        for e in u.edges() {
            assert_eq!(e.src, e.dst);
            assert_eq!(e.distance, 1);
        }
    }

    #[test]
    fn per_iteration_rec_mii_does_not_increase() {
        // RecMII of the unrolled graph, divided by the factor, can only improve
        // (Lavery & Hwu's observation): here RecMII = 4 and unrolled-by-2 RecMII = 8,
        // i.e. exactly 4 per original iteration.
        let g = simple_loop();
        let r1 = rec_mii(&g);
        let u = unroll(&g, 2);
        let r2 = rec_mii(&u);
        assert!(r2 <= r1 * 2);
        assert_eq!(r1, 4);
        assert_eq!(r2, 8);
    }

    #[test]
    fn provenance_is_recorded() {
        let g = simple_loop();
        let u = unroll(&g, 3);
        for node in u.nodes() {
            assert!(node.copy < 3);
            assert!(node.original.index() < g.n_nodes());
            assert_eq!(node.class, g.node(node.original).class);
        }
        // Exactly `factor` copies of each original node.
        for orig in g.node_ids() {
            assert_eq!(u.nodes().filter(|n| n.original == orig).count(), 3);
        }
    }

    #[test]
    fn names_of_copies_get_a_suffix() {
        let g = simple_loop();
        let u = unroll(&g, 2);
        let names: Vec<String> = u.nodes().map(|n| n.label()).collect();
        assert!(names.contains(&"a".to_string()));
        assert!(names.contains(&"a'1".to_string()));
    }

    #[test]
    #[should_panic(expected = "at least 1")]
    fn zero_factor_panics() {
        let g = simple_loop();
        let _ = unroll(&g, 0);
    }
}
