//! Loop unrolling on dependence graphs.
//!
//! Unrolling by a factor `U` replaces the loop body by `U` consecutive copies of
//! itself.  Dependences are remapped as follows: a dependence `u → v` at distance `d`
//! in the original loop connects copy `i` of `u` to copy `(i + d) mod U` of `v` at
//! distance `(i + d) div U`.
//!
//! The paper uses unrolling (Section 5.2) because the iterations of most SPECfp95
//! innermost loops are almost independent: after unrolling by the number of clusters,
//! each copy can be scheduled on its own cluster and only the few dependences whose
//! distance is not a multiple of `U` still require inter-cluster communication.
//!
//! Two iteration-count models are provided:
//!
//! * [`unroll`] — the paper's model: the unrolled kernel runs `⌈NITER / U⌉`
//!   iterations.  When `U ∤ NITER` this **overshoots**: the kernel executes
//!   `U·⌈NITER/U⌉ > NITER` body copies, and the cycle accounting charges the extra
//!   copies while the useful-op accounting (correctly) credits only the original
//!   `NITER` iterations.  The figure pipelines keep this model because it is the one
//!   behind the paper's published numbers.
//! * [`unroll_exact`] — the exact model: the kernel runs `⌊NITER / U⌋` iterations and
//!   the leftover `NITER mod U` iterations are reported separately, to be executed as
//!   an epilogue invocation of the *original* body's schedule (see
//!   `ClusterSchedule::remainder` in `cvliw_core`).  The factor-exploration policies
//!   (`UnrollPolicy::Fixed` / `UnrollPolicy::Explore`) use this model, as does the
//!   verification campaign.
//!
//! Unrolling **composes**: every copy records its flat root-relative copy index and
//! its node id in the root (pre-unrolling) graph, so `unroll(unroll(g, a), b)` is
//! structurally identical to `unroll(g, a·b)` — same node order, same provenance,
//! same remapped edges (guarded by tests below).

use crate::graph::{DepGraph, EdgeId, NodeId};

/// An exactly-unrolled loop: the kernel graph plus the leftover iteration count.
#[derive(Debug, Clone, PartialEq)]
pub struct UnrolledLoop {
    /// The unrolled body; its `iterations` is `⌊NITER / U⌋`.
    pub kernel: DepGraph,
    /// `NITER mod U` — iterations the kernel does not cover.  They must be executed
    /// by an epilogue invocation of the original loop body (the original body's
    /// modulo schedule, run `remainder_iterations` times).
    pub remainder_iterations: u64,
}

/// Reusable allocation arena for repeated unrolling of the same loop.
///
/// The factor-exploration policy (`UnrollPolicy::Explore` in `cvliw_core`) unrolls
/// one loop once per candidate factor; each unroll builds a graph of `U·n` nodes
/// whose adjacency lists alone cost two heap allocations per node.  The scratch
/// keeps the copy→node-id table and a pool of retired adjacency vectors alive
/// across [`unroll_exact_with`] calls, so a factor sweep allocates adjacency rows
/// once instead of once per factor.  Graphs produced *with* the scratch are
/// byte-identical (`==`, and under serde) to graphs produced without it — the
/// arena only recycles backing storage, never contents.
#[derive(Debug, Default)]
pub struct UnrollScratch {
    /// `ids[copy][original_index]` — the node-id table of the copy being built.
    ids: Vec<Vec<NodeId>>,
    /// Cleared adjacency vectors donated by retired kernels, ready for reuse.
    adjacency: Vec<Vec<EdgeId>>,
}

impl UnrollScratch {
    /// An empty arena.
    pub fn new() -> Self {
        Self::default()
    }

    /// Donate a retired graph's allocations (typically a losing candidate kernel
    /// from a factor sweep) back to the arena.
    pub fn recycle(&mut self, graph: DepGraph) {
        graph.recycle_into(&mut self.adjacency);
    }
}

/// Build the `factor`-times-replicated body of `graph` (nodes, edges, invocations —
/// everything except the iteration count, which the two public entry points model
/// differently), drawing backing storage from `scratch`.
fn unrolled_body(graph: &DepGraph, factor: u32, scratch: &mut UnrollScratch) -> DepGraph {
    let mut out = DepGraph::new(format!("{}x{}", graph.name, factor));
    out.invocations = graph.invocations;
    let n = graph.n_nodes();
    out.arena_prepare(
        n * factor as usize,
        graph.n_edges() * factor as usize,
        &mut scratch.adjacency,
    );

    // Flat copy indices compose across repeated unrolling: copying copy `c_prev` of a
    // graph that already holds `prev` copies per original as the `c`-th copy yields
    // flat copy `c * prev + c_prev` — iteration `c` of the new body is iterations
    // `[c·prev, (c+1)·prev)` of the root loop.
    let prev = graph.copies_per_original();
    let ids = &mut scratch.ids;
    for row in ids.iter_mut() {
        row.clear();
    }
    while ids.len() < factor as usize {
        ids.push(Vec::new());
    }
    for copy in 0..factor {
        let row = &mut ids[copy as usize];
        row.reserve(n);
        for node in graph.nodes() {
            row.push(out.add_copy_of(node, copy * prev + node.copy));
        }
    }

    for copy in 0..factor {
        for e in graph.edges() {
            let target_copy = (copy + e.distance) % factor;
            let new_distance = (copy + e.distance) / factor;
            out.add_edge(
                ids[copy as usize][e.src.index()],
                ids[target_copy as usize][e.dst.index()],
                e.latency,
                new_distance,
                e.kind,
            );
        }
    }
    out
}

/// Unroll `graph` by `factor` under the paper's iteration model, returning the new
/// graph.
///
/// * `factor == 1` returns a plain clone.
/// * The returned graph's `iterations` is `⌈iterations / factor⌉` — the overshoot
///   model of Section 5.2 (see the module docs; [`unroll_exact`] models the
///   remainder exactly).  Its name is suffixed with `xU`.
/// * Node `copy`/`original` fields record the provenance of every copy relative to
///   the **root** graph so that IPC accounting can keep counting *original*
///   operations even across composed unrolling steps.
pub fn unroll(graph: &DepGraph, factor: u32) -> DepGraph {
    assert!(factor >= 1, "unroll factor must be at least 1");
    if factor == 1 {
        return graph.clone();
    }
    let mut out = unrolled_body(graph, factor, &mut UnrollScratch::new());
    out.iterations = graph.iterations.div_ceil(factor as u64);
    out
}

/// Unroll `graph` by `factor` under the exact iteration model: the kernel runs
/// `⌊NITER / U⌋` iterations and the leftover `NITER mod U` iterations are returned
/// in [`UnrolledLoop::remainder_iterations`], to be drained by an epilogue
/// invocation of the original body.
///
/// `factor == 1` returns a clone with no remainder.  A `factor` larger than the
/// iteration count yields a kernel with zero iterations — callers should treat that
/// as "do not unroll" (the whole trip count would run in the epilogue).
pub fn unroll_exact(graph: &DepGraph, factor: u32) -> UnrolledLoop {
    unroll_exact_with(&mut UnrollScratch::new(), graph, factor)
}

/// [`unroll_exact`] drawing backing storage from a reusable [`UnrollScratch`] — the
/// entry point for factor sweeps that unroll the same loop many times.  The result
/// is identical to [`unroll_exact`]'s; only the allocation traffic differs.
pub fn unroll_exact_with(
    scratch: &mut UnrollScratch,
    graph: &DepGraph,
    factor: u32,
) -> UnrolledLoop {
    assert!(factor >= 1, "unroll factor must be at least 1");
    if factor == 1 {
        return UnrolledLoop {
            kernel: graph.clone(),
            remainder_iterations: 0,
        };
    }
    let mut kernel = unrolled_body(graph, factor, scratch);
    kernel.iterations = graph.iterations / factor as u64;
    UnrolledLoop {
        kernel,
        remainder_iterations: graph.iterations % factor as u64,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::{DepGraph, DepKind};
    use crate::mii::rec_mii;
    use vliw_arch::OpClass;

    fn simple_loop() -> DepGraph {
        // load -> fmul -> store, plus fmul -> fmul at distance 1 (accumulator-like).
        let mut g = DepGraph::new("simple");
        let a = g.add_named_node(OpClass::Load, Some("a"));
        let b = g.add_named_node(OpClass::FpMul, Some("b"));
        let c = g.add_named_node(OpClass::Store, Some("c"));
        g.add_edge(a, b, 2, 0, DepKind::Flow);
        g.add_edge(b, c, 4, 0, DepKind::Flow);
        g.add_edge(b, b, 4, 1, DepKind::Flow);
        g.with_iterations(100)
    }

    #[test]
    fn factor_one_is_identity() {
        let g = simple_loop();
        let u = unroll(&g, 1);
        assert_eq!(u, g);
        let exact = unroll_exact(&g, 1);
        assert_eq!(exact.kernel, g);
        assert_eq!(exact.remainder_iterations, 0);
    }

    #[test]
    fn node_and_edge_counts_scale_with_factor() {
        let g = simple_loop();
        for factor in [2u32, 3, 4] {
            let u = unroll(&g, factor);
            assert_eq!(u.n_nodes(), g.n_nodes() * factor as usize);
            assert_eq!(u.n_edges(), g.n_edges() * factor as usize);
            assert!(u.validate().is_ok());
        }
    }

    #[test]
    fn iterations_divide_by_factor() {
        let g = simple_loop();
        assert_eq!(unroll(&g, 2).iterations, 50);
        assert_eq!(unroll(&g, 3).iterations, 34); // ceil(100/3): the paper's overshoot
        assert_eq!(unroll(&g, 4).iterations, 25);
    }

    #[test]
    fn exact_unrolling_models_the_remainder() {
        let g = simple_loop();
        // 100 = 3·33 + 1: the kernel covers 99 iterations, the epilogue 1.
        let exact = unroll_exact(&g, 3);
        assert_eq!(exact.kernel.iterations, 33);
        assert_eq!(exact.remainder_iterations, 1);
        // Covered iterations always add up to NITER exactly.
        for factor in 2..=8u32 {
            let e = unroll_exact(&g, factor);
            assert_eq!(
                e.kernel.iterations * factor as u64 + e.remainder_iterations,
                g.iterations,
                "factor {factor}"
            );
            assert!(e.remainder_iterations < factor as u64);
        }
        // Dividing factors have no remainder and agree with the paper model.
        let even = unroll_exact(&g, 4);
        assert_eq!(even.remainder_iterations, 0);
        assert_eq!(even.kernel, unroll(&g, 4));
    }

    #[test]
    fn exact_factor_above_niter_yields_an_empty_kernel() {
        let g = simple_loop().with_iterations(3);
        let e = unroll_exact(&g, 4);
        assert_eq!(e.kernel.iterations, 0);
        assert_eq!(e.remainder_iterations, 3);
    }

    #[test]
    fn original_intra_iteration_edges_stay_inside_their_copy() {
        let g = simple_loop();
        let factor = 2u32;
        let u = unroll(&g, factor);
        // Each original distance-0 edge yields `factor` copies, all within one copy of
        // the body; original distance-d edges go from copy i to copy (i+d) mod factor.
        let same_copy_zero_dist = u
            .edges()
            .filter(|e| e.distance == 0 && u.node(e.src).copy == u.node(e.dst).copy)
            .count();
        let original_zero_dist = g.edges().filter(|e| e.distance == 0).count();
        assert_eq!(same_copy_zero_dist, original_zero_dist * factor as usize);
        for e in u.edges() {
            let orig_src = u.node(e.src).original;
            let orig_dst = u.node(e.dst).original;
            // Provenance: the unrolled edge maps back to an original edge.
            assert!(g
                .edges()
                .any(|oe| oe.src == orig_src && oe.dst == orig_dst && oe.kind == e.kind));
        }
    }

    #[test]
    fn distance_one_edge_connects_consecutive_copies() {
        let g = simple_loop();
        let u = unroll(&g, 2);
        // The accumulator edge b->b (distance 1) must appear as copy0 -> copy1 at
        // distance 0 and copy1 -> copy0 at distance 1.
        let acc_edges: Vec<_> = u
            .edges()
            .filter(|e| u.node(e.src).original == u.node(e.dst).original && e.src != e.dst)
            .collect();
        assert_eq!(acc_edges.len(), 2);
        let zero_dist = acc_edges.iter().find(|e| e.distance == 0).unwrap();
        assert_eq!(u.node(zero_dist.src).copy, 0);
        assert_eq!(u.node(zero_dist.dst).copy, 1);
        let one_dist = acc_edges.iter().find(|e| e.distance == 1).unwrap();
        assert_eq!(u.node(one_dist.src).copy, 1);
        assert_eq!(u.node(one_dist.dst).copy, 0);
    }

    #[test]
    fn distance_multiple_of_factor_stays_within_copy_with_reduced_distance() {
        let mut g = DepGraph::new("dist2");
        let a = g.add_node(OpClass::FpAdd);
        g.add_edge(a, a, 3, 2, DepKind::Flow);
        let u = unroll(&g, 2);
        // Each copy keeps a self edge at distance 1.
        assert_eq!(u.n_edges(), 2);
        for e in u.edges() {
            assert_eq!(e.src, e.dst);
            assert_eq!(e.distance, 1);
        }
    }

    #[test]
    fn per_iteration_rec_mii_does_not_increase() {
        // RecMII of the unrolled graph, divided by the factor, can only improve
        // (Lavery & Hwu's observation): here RecMII = 4 and unrolled-by-2 RecMII = 8,
        // i.e. exactly 4 per original iteration.
        let g = simple_loop();
        let r1 = rec_mii(&g);
        let u = unroll(&g, 2);
        let r2 = rec_mii(&u);
        assert!(r2 <= r1 * 2);
        assert_eq!(r1, 4);
        assert_eq!(r2, 8);
    }

    #[test]
    fn provenance_is_recorded() {
        let g = simple_loop();
        let u = unroll(&g, 3);
        for node in u.nodes() {
            assert!(node.copy < 3);
            assert!(node.original.index() < g.n_nodes());
            assert_eq!(node.class, g.node(node.original).class);
        }
        // Exactly `factor` copies of each original node, with distinct copy indices.
        for orig in g.node_ids() {
            let copies: Vec<u32> = u
                .nodes()
                .filter(|n| n.original == orig)
                .map(|n| n.copy)
                .collect();
            assert_eq!(copies.len(), 3);
            let distinct: std::collections::BTreeSet<u32> = copies.iter().copied().collect();
            assert_eq!(distinct.len(), 3);
        }
        assert_eq!(u.copies_per_original(), 3);
    }

    /// The provenance-composition guard of the factor-exploration subsystem:
    /// unrolling an unrolled graph must attribute every node to the *root* graph
    /// with a flat copy index, exactly as a single unroll by the product factor
    /// would.  (A provenance scheme rebased on the intermediate graph would collapse
    /// the four copies onto two copy indices and corrupt useful-op accounting.)
    #[test]
    fn double_unroll_composes_to_the_product_factor() {
        let g = simple_loop();
        let composed = unroll(&unroll(&g, 2), 2);
        let direct = unroll(&g, 4);

        assert_eq!(composed.iterations, direct.iterations);
        assert_eq!(composed.n_nodes(), direct.n_nodes());
        assert_eq!(composed.n_edges(), direct.n_edges());
        assert_eq!(composed.copies_per_original(), 4);

        // Node-by-node: same class, same root original, same flat copy, same name.
        for (a, b) in composed.nodes().zip(direct.nodes()) {
            assert_eq!(a.class, b.class);
            assert_eq!(a.original, b.original, "original must refer to the root");
            assert_eq!(a.copy, b.copy, "copy must be the flat root-relative index");
            assert_eq!(a.name, b.name);
        }
        // Edge-by-edge: identical remapping.
        for (a, b) in composed.edges().zip(direct.edges()) {
            assert_eq!(
                (a.src, a.dst, a.latency, a.distance, a.kind),
                (b.src, b.dst, b.latency, b.distance, b.kind)
            );
        }
        // Exact model composes too: floor(floor(100/2)/2) == floor(100/4).
        let composed_exact = unroll_exact(&unroll_exact(&g, 2).kernel, 2);
        assert_eq!(
            composed_exact.kernel.iterations,
            unroll_exact(&g, 4).kernel.iterations
        );
    }

    #[test]
    fn names_of_copies_get_a_suffix() {
        let g = simple_loop();
        let u = unroll(&g, 2);
        let names: Vec<String> = u.nodes().map(super::super::graph::Node::label).collect();
        assert!(names.contains(&"a".to_string()));
        assert!(names.contains(&"a'1".to_string()));
        // Composed unrolling suffixes from the root base name, not the intermediate.
        let uu = unroll(&u, 2);
        let names: Vec<String> = uu.nodes().map(super::super::graph::Node::label).collect();
        for expected in ["a", "a'1", "a'2", "a'3"] {
            assert!(names.contains(&expected.to_string()), "missing {expected}");
        }
        assert!(!names
            .iter()
            .any(|n| n.contains("''") || n.matches('\'').count() > 1));
    }

    /// The arena must be invisible in the result: a factor sweep through one scratch
    /// — with losing kernels recycled between factors, as `UnrollPolicy::Explore`
    /// does — produces graphs `==` to freshly-allocated ones (and therefore
    /// identical under serde: `succs`/`preds` lengths line up exactly).
    #[test]
    fn scratch_reuse_is_observationally_identical() {
        let g = simple_loop();
        let mut scratch = UnrollScratch::new();
        for factor in [2u32, 4, 3, 8, 2, 5] {
            let pooled = unroll_exact_with(&mut scratch, &g, factor);
            let fresh = unroll_exact(&g, factor);
            assert_eq!(pooled, fresh, "factor {factor}");
            assert_eq!(
                serde_json::to_string(&pooled.kernel).unwrap(),
                serde_json::to_string(&fresh.kernel).unwrap(),
                "factor {factor}"
            );
            scratch.recycle(pooled.kernel);
        }
        // Recycling also accepts graphs the scratch never built (the factor-1 base).
        scratch.recycle(g.clone());
        assert_eq!(unroll_exact_with(&mut scratch, &g, 4), unroll_exact(&g, 4));
    }

    #[test]
    #[should_panic(expected = "at least 1")]
    fn zero_factor_panics() {
        let g = simple_loop();
        let _ = unroll(&g, 0);
    }

    #[test]
    #[should_panic(expected = "at least 1")]
    fn zero_factor_panics_exactly_too() {
        let g = simple_loop();
        let _ = unroll_exact(&g, 0);
    }
}
