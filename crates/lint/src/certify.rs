//! The static schedule certifier.
//!
//! [`Certifier::check`] proves, without executing anything, the same four
//! invariants the dynamic verifier establishes by replay — and must *agree* with
//! it: the fuzz campaign treats any static-pass/dynamic-fail (or the reverse) as a
//! hard violation.  That contract pins the arithmetic here to
//! `vliw_sim::ScheduleValidator` exactly:
//!
//! * **dependence legality** — per-edge slack `t_dst + d·II − (t_src + latency)`,
//!   with cross-cluster value edges routed through the earliest bus-transfer
//!   instance `start + k·II` that does not start before the value exists (and the
//!   validator's early return on unscheduled nodes, self-edge skip included);
//! * **MRT/bus conflict freedom** — at most one reservation per `(resource, row)`;
//! * **register-pressure bounds** — per-cluster MaxLive vs the register file, via
//!   [`ModuloLiveness`]'s independent fold (property-tested equal to the
//!   `LifetimeMap` numbers the validator uses);
//! * **`NCYCLES` window** — the dynamic `IpcModelDrift` check against the
//!   closed-form makespan, which equals the replayed makespan whenever the replay
//!   is clean.
//!
//! Plus the code-size clamp (`ops·SC ≤ (2(SC−1)+1)·II·width`) promoted from a
//! `debug_assert!` to a deny lint: by pigeonhole a kernel with more operations
//! than `II·width` slots also has an FU conflict, so this lint can never disagree
//! with the dynamic oracles — it only fails faster, and on release builds too.
//!
//! Warn-level quality lints (dead values, II slack, cluster imbalance, register
//! cliff) ride along in the same report; they never affect certification.

use crate::diagnostics::{Diagnostic, LintReport};
use crate::lints::{self, LintDescriptor};
use crate::liveness::ModuloLiveness;
use crate::makespan::{ncycles_drift_ok, static_makespan, static_ncycles, static_stage_count};
use crate::optimal::OptCertificate;
use std::collections::{BTreeMap, BTreeSet};
use vliw_arch::{MachineConfig, ResourceIndex, ResourceKind, ResourcePool};
use vliw_ddg::DepGraph;
use vliw_sms::ModuloSchedule;

/// How close (in registers) MaxLive may come to the file size before the
/// register-cliff warning fires — the regime where the next unroll copy tips a
/// schedulable loop into rejection (the `fig_unroll` U = 8 collapse).
pub const CLIFF_MARGIN: usize = 2;

/// Cluster-occupancy imbalance thresholds: warn when the busiest cluster holds at
/// least [`IMBALANCE_GAP`] more operations than the idlest *and* at least twice as
/// many.
pub const IMBALANCE_GAP: usize = 4;

/// Statically certifies modulo schedules against one machine.
#[derive(Debug, Clone)]
pub struct Certifier {
    machine: MachineConfig,
    suppressed: BTreeSet<String>,
    certificate: Option<OptCertificate>,
}

impl Certifier {
    /// A certifier for `machine`.
    pub fn new(machine: &MachineConfig) -> Self {
        Self {
            machine: machine.clone(),
            suppressed: BTreeSet::new(),
            certificate: None,
        }
    }

    /// Attach an optimality certificate from [`crate::optimal::OptimalSolver`].
    /// When the certified loop matches the schedule under check, the heuristic
    /// `ii-slack` warning is upgraded to `certified-ii-gap`: slack is measured
    /// against the solver's lower bound instead of the MII.
    #[must_use]
    pub fn with_certificate(mut self, certificate: OptCertificate) -> Self {
        self.certificate = Some(certificate);
        self
    }

    /// Suppress `lint_id` for this certifier's runs.  Panics on an unknown id so a
    /// typo cannot silently suppress nothing.
    #[must_use]
    pub fn allow(mut self, lint_id: &str) -> Self {
        assert!(
            lints::find(lint_id).is_some(),
            "unknown lint id {lint_id:?}; known lints: {:?}",
            lints::ALL.map(|l| l.id)
        );
        self.suppressed.insert(lint_id.to_string());
        self
    }

    /// Certify `sched` against `graph`, checking the `NCYCLES` window for
    /// `iterations` iterations (use `vliw_sim::verification_iterations` to match
    /// the dynamic oracles).
    pub fn check(&self, graph: &DepGraph, sched: &ModuloSchedule, iterations: u64) -> LintReport {
        let pool = ResourcePool::new(&self.machine);
        let ii = sched.ii() as i64;
        let mut diags: Vec<Diagnostic> = Vec::new();
        let emit = |diags: &mut Vec<Diagnostic>, lint: LintDescriptor, message: String| {
            if !self.suppressed.contains(lint.id) {
                diags.push(Diagnostic {
                    lint: lint.id.to_string(),
                    severity: lint.severity,
                    message,
                });
            }
        };

        // Completeness and placement sanity (mirrors the validator's first pass,
        // including its early return: nothing else is provable about a schedule
        // with holes in it).
        let mut incomplete = false;
        for node in graph.nodes() {
            match sched.placement(node.id) {
                None => {
                    incomplete = true;
                    emit(
                        &mut diags,
                        lints::UNSCHEDULED_NODE,
                        format!("node {} has no placement", node.label()),
                    );
                }
                Some(p) => {
                    if p.cluster >= self.machine.n_clusters {
                        emit(
                            &mut diags,
                            lints::BAD_PLACEMENT,
                            format!(
                                "node {}: cluster {} does not exist",
                                node.label(),
                                p.cluster
                            ),
                        );
                        continue;
                    }
                    match pool.kind(p.fu) {
                        ResourceKind::Fu { cluster, kind, .. } => {
                            if cluster != p.cluster {
                                emit(
                                    &mut diags,
                                    lints::BAD_PLACEMENT,
                                    format!(
                                        "node {}: functional unit belongs to cluster {cluster}, \
                                         node placed on {}",
                                        node.label(),
                                        p.cluster
                                    ),
                                );
                            }
                            if kind != node.class.fu_kind() {
                                emit(
                                    &mut diags,
                                    lints::BAD_PLACEMENT,
                                    format!(
                                        "node {}: operation of kind {} placed on a {} unit",
                                        node.label(),
                                        node.class.fu_kind(),
                                        kind
                                    ),
                                );
                            }
                        }
                        ResourceKind::Bus { .. } => emit(
                            &mut diags,
                            lints::BAD_PLACEMENT,
                            format!("node {}: operation placed on a bus row", node.label()),
                        ),
                    }
                }
            }
        }
        if incomplete {
            return self.finish(graph, sched, iterations, diags);
        }

        // Dependence legality (cross-cluster value edges must ride a transfer).
        for e in graph.edges() {
            let pu = sched.placement(e.src).expect("checked above");
            let pv = sched.placement(e.dst).expect("checked above");
            if e.src == e.dst {
                // Self edges constrain II (RecMII), not individual placements.
                continue;
            }
            if e.kind.carries_value() && pu.cluster != pv.cluster {
                let comms: Vec<_> = sched
                    .comms()
                    .iter()
                    .filter(|c| c.src_node == e.src && c.to_cluster == pv.cluster)
                    .collect();
                if comms.is_empty() {
                    emit(
                        &mut diags,
                        lints::MISSING_COMMUNICATION,
                        format!(
                            "value {} → {} crosses clusters without a communication",
                            graph.node(e.src).label(),
                            graph.node(e.dst).label()
                        ),
                    );
                } else {
                    // Transfers repeat every II: the edge holds iff some instance
                    // `start + k·II` fits between production and consumption.
                    let mut best_slack = i64::MIN;
                    for c in &comms {
                        let produced_at = pu.cycle + e.latency as i64;
                        let consumed_at = pv.cycle + e.distance as i64 * ii;
                        let k = (produced_at - c.start_cycle + ii - 1).div_euclid(ii);
                        let start = c.start_cycle + k * ii;
                        let slack = consumed_at - (start + c.duration as i64);
                        best_slack = best_slack.max(slack);
                    }
                    if best_slack < 0 {
                        emit(
                            &mut diags,
                            lints::DEPENDENCE,
                            format!(
                                "edge {} → {} missed through every transfer instance \
                                 (best slack {best_slack})",
                                graph.node(e.src).label(),
                                graph.node(e.dst).label()
                            ),
                        );
                    }
                }
            } else {
                let slack = pv.cycle + e.distance as i64 * ii - (pu.cycle + e.latency as i64);
                if slack < 0 {
                    emit(
                        &mut diags,
                        lints::DEPENDENCE,
                        format!(
                            "edge {} → {} violated (slack {slack})",
                            graph.node(e.src).label(),
                            graph.node(e.dst).label()
                        ),
                    );
                }
            }
        }

        // Reservation-table conflict freedom (BTreeMaps for deterministic output;
        // the counting is the validator's).
        let mut fu_rows: BTreeMap<(usize, i64), usize> = BTreeMap::new();
        for p in sched.placements() {
            *fu_rows.entry((p.fu.0, p.cycle.rem_euclid(ii))).or_insert(0) += 1;
        }
        for ((fu, row), count) in &fu_rows {
            if *count > 1 {
                emit(
                    &mut diags,
                    lints::FU_CONFLICT,
                    format!(
                        "{} reserved {count} times in kernel row {row}",
                        pool.kind(ResourceIndex(*fu))
                    ),
                );
            }
        }
        let mut bus_rows: BTreeMap<(usize, i64), usize> = BTreeMap::new();
        for c in sched.comms() {
            for d in 0..c.duration {
                *bus_rows
                    .entry((c.bus.0, (c.start_cycle + d as i64).rem_euclid(ii)))
                    .or_insert(0) += 1;
            }
        }
        for ((bus, row), count) in &bus_rows {
            if *count > 1 {
                emit(
                    &mut diags,
                    lints::BUS_CONFLICT,
                    format!(
                        "{} reserved {count} times in kernel row {row}",
                        pool.kind(ResourceIndex(*bus))
                    ),
                );
            }
        }

        // Register-pressure bounds, via the independent liveness fold.
        let live = ModuloLiveness::new(graph, sched, &self.machine);
        for (cluster, &max_live) in live.max_live().iter().enumerate() {
            let capacity = self.machine.cluster.registers;
            if max_live as usize > capacity {
                emit(
                    &mut diags,
                    lints::REGISTER_PRESSURE,
                    format!("cluster {cluster}: MaxLive {max_live} exceeds {capacity} registers"),
                );
            } else if max_live as usize + CLIFF_MARGIN >= capacity {
                emit(
                    &mut diags,
                    lints::REGISTER_CLIFF,
                    format!(
                        "cluster {cluster}: MaxLive {max_live} within {CLIFF_MARGIN} of the \
                         {capacity}-register file"
                    ),
                );
            }
        }

        // NCYCLES window: statically the closed-form makespan stands in for the
        // replayed one (they are equal whenever the replay is clean).
        let makespan = static_makespan(graph, sched, &self.machine, iterations);
        let ncycles = static_ncycles(sched, iterations);
        let max_latency = self.machine.latencies.max_latency();
        let drift = ncycles as i128 - makespan as i128;
        if !ncycles_drift_ok(drift, sched.ii(), max_latency) {
            emit(
                &mut diags,
                lints::NCYCLES_WINDOW,
                format!(
                    "NCYCLES {ncycles} drifted {drift} from the makespan {makespan} \
                     (window −{max_latency} < drift < {})",
                    2 * ii
                ),
            );
        }

        // Code-size clamp, checked in release builds too.
        let sc = static_stage_count(sched) as u64;
        let width = self.machine.total_issue_width() as u64;
        let ops = sched.placements().count() as u64;
        let useful_ops = ops * sc;
        let total_slots = (2 * (sc - 1) + 1) * sched.ii() as u64 * width;
        if useful_ops > total_slots {
            emit(
                &mut diags,
                lints::CODE_SIZE_CLAMP,
                format!(
                    "useful slots {useful_ops} exceed total slots {total_slots} \
                     ({ops} ops do not fit the II·width = {} kernel)",
                    sched.ii() as u64 * width
                ),
            );
        }

        // Quality lints.
        for node in graph.nodes() {
            if !node.class.defines_value() {
                continue;
            }
            let read = graph
                .out_edges(node.id)
                .any(|e| e.kind.carries_value() && sched.placement(e.dst).is_some());
            if !read {
                emit(
                    &mut diags,
                    lints::DEAD_VALUE,
                    format!("value of {} is never read", node.label()),
                );
            }
        }
        let certified_bound = self
            .certificate
            .as_ref()
            .filter(|c| c.loop_name == sched.loop_name && c.machine == self.machine.name)
            .and_then(|c| c.lower_bound().map(|lb| (lb, c.is_exact())));
        if let Some((lower_bound, exact)) = certified_bound {
            if sched.ii() > lower_bound {
                emit(
                    &mut diags,
                    lints::CERTIFIED_II_GAP,
                    format!(
                        "II {} is {} above the certified {} {}",
                        sched.ii(),
                        sched.ii() - lower_bound,
                        if exact { "optimum" } else { "lower bound" },
                        lower_bound
                    ),
                );
            }
        } else if sched.ii() > sched.mii {
            emit(
                &mut diags,
                lints::II_SLACK,
                format!(
                    "II {} is {} above the MII lower bound {}",
                    sched.ii(),
                    sched.ii() - sched.mii,
                    sched.mii
                ),
            );
        }
        if self.machine.is_clustered() {
            let mut per_cluster = vec![0usize; self.machine.n_clusters];
            for p in sched.placements() {
                if p.cluster < per_cluster.len() {
                    per_cluster[p.cluster] += 1;
                }
            }
            let max = per_cluster.iter().copied().max().unwrap_or(0);
            let min = per_cluster.iter().copied().min().unwrap_or(0);
            if max - min >= IMBALANCE_GAP && max >= 2 * min.max(1) {
                emit(
                    &mut diags,
                    lints::CLUSTER_IMBALANCE,
                    format!("cluster occupancy spread {per_cluster:?}"),
                );
            }
        }

        self.finish(graph, sched, iterations, diags)
    }

    /// Convenience: whether `sched` is free of deny-level findings.
    pub fn is_certified(&self, graph: &DepGraph, sched: &ModuloSchedule, iterations: u64) -> bool {
        self.check(graph, sched, iterations).is_certified()
    }

    fn finish(
        &self,
        _graph: &DepGraph,
        sched: &ModuloSchedule,
        iterations: u64,
        diagnostics: Vec<Diagnostic>,
    ) -> LintReport {
        let mut report = LintReport {
            loop_name: sched.loop_name.clone(),
            machine: self.machine.name.clone(),
            ii: sched.ii(),
            mii: sched.mii,
            stage_count: static_stage_count(sched),
            iterations,
            diagnostics,
            suppressed: self.suppressed.iter().cloned().collect(),
        };
        report.sort_diagnostics();
        report
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vliw_arch::OpClass;
    use vliw_sms::SmsScheduler;

    fn saxpy() -> DepGraph {
        use vliw_ddg::GraphBuilder;
        GraphBuilder::new("saxpy")
            .iterations(64)
            .node("lx", OpClass::Load)
            .node("ly", OpClass::Load)
            .node("mul", OpClass::FpMul)
            .node("add", OpClass::FpAdd)
            .node("st", OpClass::Store)
            .flow("lx", "mul")
            .flow("mul", "add")
            .flow("ly", "add")
            .flow("add", "st")
            .build()
    }

    #[test]
    fn a_correct_schedule_is_certified() {
        let machine = MachineConfig::unified();
        let g = saxpy();
        let sched = SmsScheduler::new(&machine).schedule(&g).unwrap();
        let report = Certifier::new(&machine).check(&g, &sched, 8);
        assert!(report.is_certified(), "{:?}", report.diagnostics);
        assert_eq!(report.loop_name, "saxpy");
        assert_eq!(report.stage_count, sched.stage_count());
    }

    #[test]
    fn suppression_silences_a_lint() {
        let machine = MachineConfig::unified();
        let g = saxpy();
        let sched = vliw_sms::ModuloSchedule::new("saxpy", g.n_nodes(), 2, 1);
        let certifier = Certifier::new(&machine).allow("unscheduled-node");
        let report = certifier.check(&g, &sched, 8);
        assert!(
            !report
                .diagnostics
                .iter()
                .any(|d| d.lint == "unscheduled-node"),
            "suppressed lint still fired"
        );
        assert_eq!(report.suppressed, vec!["unscheduled-node".to_string()]);
    }

    #[test]
    #[should_panic(expected = "unknown lint id")]
    fn unknown_suppression_panics() {
        let _ = Certifier::new(&MachineConfig::unified()).allow("no-such-lint");
    }
}
