//! Structured, deterministic lint diagnostics.
//!
//! Every certifier run produces one [`LintReport`]: a serialisable record of the
//! schedule's identity, the diagnostics that fired (deny first, then warn, each
//! group sorted by lint id then message) and which lints were suppressed.  The
//! ordering is part of the format — reports for the same schedule are
//! byte-identical across runs, which is what lets `results/lint_report.json` sit
//! in the golden byte-identity suite next to the figure artifacts.

use serde::{Deserialize, Serialize};

/// How severe a lint finding is.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Serialize, Deserialize)]
pub enum Severity {
    /// A quality observation; never fails certification.
    Warn,
    /// A broken invariant; the schedule is not certified.
    Deny,
}

/// One lint finding.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Diagnostic {
    /// Stable lint id (see [`crate::lints`]).
    pub lint: String,
    /// The lint's severity.
    pub severity: Severity,
    /// Human-readable description of the finding.
    pub message: String,
}

/// The outcome of statically certifying one schedule.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct LintReport {
    /// Name of the checked loop.
    pub loop_name: String,
    /// Name of the machine the schedule targets.
    pub machine: String,
    /// The schedule's initiation interval.
    pub ii: u32,
    /// The schedule's minimum initiation interval.
    pub mii: u32,
    /// Stage count (statically re-derived).
    pub stage_count: u32,
    /// Iteration count the `NCYCLES` window was checked for.
    pub iterations: u64,
    /// Findings: deny first, then warn; each group sorted by (lint, message).
    pub diagnostics: Vec<Diagnostic>,
    /// Lint ids suppressed for this run, sorted.
    pub suppressed: Vec<String>,
}

impl LintReport {
    /// Number of deny-level findings.
    pub fn deny_count(&self) -> usize {
        self.diagnostics
            .iter()
            .filter(|d| d.severity == Severity::Deny)
            .count()
    }

    /// Number of warn-level findings.
    pub fn warn_count(&self) -> usize {
        self.diagnostics
            .iter()
            .filter(|d| d.severity == Severity::Warn)
            .count()
    }

    /// Whether the schedule is statically certified (no deny-level findings).
    pub fn is_certified(&self) -> bool {
        self.deny_count() == 0
    }

    /// Sorted, deduplicated ids of the deny-level lints that fired.
    pub fn deny_ids(&self) -> Vec<String> {
        let mut ids: Vec<String> = self
            .diagnostics
            .iter()
            .filter(|d| d.severity == Severity::Deny)
            .map(|d| d.lint.clone())
            .collect();
        ids.sort();
        ids.dedup();
        ids
    }

    /// Sorted, deduplicated ids of the warn-level lints that fired.
    pub fn warn_ids(&self) -> Vec<String> {
        let mut ids: Vec<String> = self
            .diagnostics
            .iter()
            .filter(|d| d.severity == Severity::Warn)
            .map(|d| d.lint.clone())
            .collect();
        ids.sort();
        ids.dedup();
        ids
    }

    /// Canonical ordering: deny before warn, then by lint id, then message.
    pub(crate) fn sort_diagnostics(&mut self) {
        self.diagnostics.sort_by(|a, b| {
            b.severity
                .cmp(&a.severity)
                .then_with(|| a.lint.cmp(&b.lint))
                .then_with(|| a.message.cmp(&b.message))
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn diag(lint: &str, severity: Severity, message: &str) -> Diagnostic {
        Diagnostic {
            lint: lint.into(),
            severity,
            message: message.into(),
        }
    }

    #[test]
    fn counting_and_certification() {
        let mut report = LintReport {
            loop_name: "l".into(),
            machine: "m".into(),
            ii: 2,
            mii: 2,
            stage_count: 1,
            iterations: 4,
            diagnostics: vec![
                diag("ii-slack", Severity::Warn, "w"),
                diag("fu-conflict", Severity::Deny, "b"),
                diag("fu-conflict", Severity::Deny, "a"),
            ],
            suppressed: vec![],
        };
        assert_eq!(report.deny_count(), 2);
        assert_eq!(report.warn_count(), 1);
        assert!(!report.is_certified());
        assert_eq!(report.deny_ids(), vec!["fu-conflict".to_string()]);
        report.sort_diagnostics();
        let order: Vec<&str> = report
            .diagnostics
            .iter()
            .map(|d| d.message.as_str())
            .collect();
        assert_eq!(order, vec!["a", "b", "w"], "deny first, then message order");
    }

    #[test]
    fn reports_roundtrip_through_json() {
        let report = LintReport {
            loop_name: "l".into(),
            machine: "m".into(),
            ii: 3,
            mii: 2,
            stage_count: 2,
            iterations: 8,
            diagnostics: vec![diag("dead-value", Severity::Warn, "x")],
            suppressed: vec!["ii-slack".into()],
        };
        let json = serde_json::to_string(&report).unwrap();
        let back: LintReport = serde_json::from_str(&json).unwrap();
        assert_eq!(report, back);
    }
}
