//! The dataflow domain: dense bit lattices.
//!
//! Every analysis in this crate works over the powerset lattice of a small, dense
//! universe (the value-defining nodes of one loop), ordered by inclusion with union
//! as join.  [`BitSet`] is that lattice element: a fixed-width bit vector whose
//! mutating operations report whether they changed anything, which is exactly the
//! signal the fixpoint driver in [`crate::engine`] needs to detect convergence.

use std::fmt;

/// A fixed-universe bit set (one lattice element).
#[derive(Clone, PartialEq, Eq)]
pub struct BitSet {
    words: Vec<u64>,
    bits: usize,
}

impl BitSet {
    /// The empty set over a universe of `bits` elements (the lattice bottom).
    pub fn new(bits: usize) -> Self {
        Self {
            words: vec![0; bits.div_ceil(64)],
            bits,
        }
    }

    /// Size of the universe (not the number of members).
    #[inline]
    pub fn universe(&self) -> usize {
        self.bits
    }

    /// Insert `bit`; returns `true` if the set changed.
    #[inline]
    pub fn insert(&mut self, bit: usize) -> bool {
        debug_assert!(bit < self.bits, "bit {bit} outside universe {}", self.bits);
        let word = &mut self.words[bit / 64];
        let mask = 1u64 << (bit % 64);
        let changed = *word & mask == 0;
        *word |= mask;
        changed
    }

    /// Remove `bit`; returns `true` if the set changed.
    #[inline]
    pub fn remove(&mut self, bit: usize) -> bool {
        debug_assert!(bit < self.bits, "bit {bit} outside universe {}", self.bits);
        let word = &mut self.words[bit / 64];
        let mask = 1u64 << (bit % 64);
        let changed = *word & mask != 0;
        *word &= !mask;
        changed
    }

    /// Membership test.
    #[inline]
    pub fn contains(&self, bit: usize) -> bool {
        debug_assert!(bit < self.bits, "bit {bit} outside universe {}", self.bits);
        self.words[bit / 64] & (1u64 << (bit % 64)) != 0
    }

    /// Join: `self ∪= other`; returns `true` if `self` grew.  This is the lattice
    /// merge at row boundaries, and its change signal drives fixpoint detection.
    pub fn union_with(&mut self, other: &BitSet) -> bool {
        debug_assert_eq!(self.bits, other.bits, "universe mismatch");
        let mut changed = false;
        for (w, o) in self.words.iter_mut().zip(&other.words) {
            let merged = *w | o;
            changed |= merged != *w;
            *w = merged;
        }
        changed
    }

    /// Number of members.
    pub fn count(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Whether the set has no members.
    pub fn is_empty(&self) -> bool {
        self.words.iter().all(|&w| w == 0)
    }

    /// Members in increasing order.
    pub fn iter(&self) -> impl Iterator<Item = usize> + '_ {
        (0..self.bits).filter(|&b| self.contains(b))
    }

    /// Remove every member.
    pub fn clear(&mut self) {
        self.words.fill(0);
    }
}

impl fmt::Debug for BitSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_set().entries(self.iter()).finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_remove_contains() {
        let mut s = BitSet::new(130);
        assert!(s.insert(0));
        assert!(s.insert(129));
        assert!(!s.insert(129), "second insert is a no-op");
        assert!(s.contains(0) && s.contains(129) && !s.contains(64));
        assert_eq!(s.count(), 2);
        assert!(s.remove(0));
        assert!(!s.remove(0));
        assert_eq!(s.iter().collect::<Vec<_>>(), vec![129]);
    }

    #[test]
    fn union_reports_growth() {
        let mut a = BitSet::new(70);
        let mut b = BitSet::new(70);
        b.insert(3);
        b.insert(69);
        assert!(a.union_with(&b));
        assert!(!a.union_with(&b), "second union adds nothing");
        assert_eq!(a.count(), 2);
    }

    #[test]
    fn empty_universe_is_fine() {
        let mut s = BitSet::new(0);
        assert!(s.is_empty());
        assert_eq!(s.count(), 0);
        let other = BitSet::new(0);
        assert!(!s.union_with(&other));
    }
}
