//! The kernel dataflow engine: gen/kill fixpoint over the `II` rows of a modulo
//! schedule.
//!
//! A software-pipelined kernel is a *ring* of `II` rows — row `II − 1` feeds back
//! into row `0` of the next kernel iteration — so every dataflow problem over it is
//! a fixpoint over a single-cycle CFG, in the style of rustc's MIR dataflow layer:
//! an analysis supplies a transfer function per row, the engine iterates sweeps
//! around the ring (in the analysis' direction) until no boundary state changes.
//! Loop-carried dependences need no special casing — a fact generated late in the
//! kernel simply propagates across the wraparound into the early rows, which is
//! exactly how a value produced in stage `s` is consumed in stage `s + d`.
//!
//! Convergence is guaranteed for monotone transfer functions because the domain is
//! a finite powerset lattice ([`BitSet`]) joined by union: every sweep that changes
//! anything strictly grows some boundary set, so at most `universe · rows` sweeps
//! can change anything.  The driver enforces that bound and panics past it, turning
//! an accidentally non-monotone transfer function into a loud failure instead of a
//! hang.

use crate::domain::BitSet;

/// Direction a dataflow analysis travels around the kernel ring.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Direction {
    /// Facts flow with execution: row `r` feeds row `(r + 1) mod II`.
    Forward,
    /// Facts flow against execution: row `r` feeds row `(r − 1) mod II`.
    Backward,
}

/// One dataflow problem over the kernel rows of a modulo schedule.
pub trait KernelAnalysis {
    /// Number of kernel rows (the schedule's `II`).
    fn rows(&self) -> usize;

    /// Size of the bit universe (lattice width).
    fn universe(&self) -> usize;

    /// Which way facts travel.
    fn direction(&self) -> Direction;

    /// Apply row `row`'s transfer function to `state` in place.
    ///
    /// For a [`Direction::Forward`] analysis `state` is the entry state of the row
    /// and becomes its exit state; for [`Direction::Backward`] it is the exit
    /// (live-out) state and becomes the entry (live-in) state.
    fn transfer(&self, row: usize, state: &mut BitSet);
}

/// Solve `analysis` to fixpoint; returns one boundary state per row.
///
/// The returned vector holds, for row `r`:
///
/// * [`Direction::Forward`]: the state *entering* row `r` (facts that survived the
///   wraparound from previous rows);
/// * [`Direction::Backward`]: the state *leaving* row `r` (the live-out set).
///
/// The complementary state of a row is obtained by applying
/// [`KernelAnalysis::transfer`] to a clone of its boundary state.
pub fn fixpoint<A: KernelAnalysis + ?Sized>(analysis: &A) -> Vec<BitSet> {
    let rows = analysis.rows();
    let universe = analysis.universe();
    let mut boundary: Vec<BitSet> = (0..rows).map(|_| BitSet::new(universe)).collect();
    if rows == 0 || universe == 0 {
        return boundary;
    }
    // Each sweep that reports a change grew at least one boundary set by at least
    // one bit, so `universe · rows` changing sweeps exhaust the lattice.
    let cap = universe * rows + 1;
    let mut scratch = BitSet::new(universe);
    for sweep in 0.. {
        assert!(
            sweep <= cap,
            "dataflow fixpoint did not converge after {cap} sweeps: \
             a transfer function is not monotone"
        );
        let mut changed = false;
        match analysis.direction() {
            Direction::Forward => {
                for r in 0..rows {
                    scratch.clear();
                    scratch.union_with(&boundary[r]);
                    analysis.transfer(r, &mut scratch);
                    changed |= boundary[(r + 1) % rows].union_with(&scratch);
                }
            }
            Direction::Backward => {
                for r in (0..rows).rev() {
                    scratch.clear();
                    scratch.union_with(&boundary[r]);
                    analysis.transfer(r, &mut scratch);
                    changed |= boundary[(r + rows - 1) % rows].union_with(&scratch);
                }
            }
        }
        if !changed {
            break;
        }
    }
    boundary
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A toy forward analysis: bit `b` is generated at row `b` and killed at row
    /// `(b + k) mod rows`, i.e. each fact lives `k` rows then dies.
    struct GenThenKill {
        rows: usize,
        lifetime: usize,
    }

    impl KernelAnalysis for GenThenKill {
        fn rows(&self) -> usize {
            self.rows
        }
        fn universe(&self) -> usize {
            self.rows
        }
        fn direction(&self) -> Direction {
            Direction::Forward
        }
        fn transfer(&self, row: usize, state: &mut BitSet) {
            // Kill before gen so a fact killed and regenerated in one row survives.
            let dead = (row + self.rows - self.lifetime) % self.rows;
            state.remove(dead);
            state.insert(row);
        }
    }

    #[test]
    fn forward_facts_wrap_around_the_kernel() {
        // 5 rows, lifetime 2: entry state of row r must hold exactly the facts
        // generated in the previous 2 rows (they wrap past row 0).
        let a = GenThenKill {
            rows: 5,
            lifetime: 2,
        };
        let states = fixpoint(&a);
        for (r, s) in states.iter().enumerate() {
            let expect: Vec<usize> = vec![(r + 3) % 5, (r + 4) % 5];
            let mut got: Vec<usize> = s.iter().collect();
            got.sort_unstable();
            let mut want = expect;
            want.sort_unstable();
            assert_eq!(got, want, "entry state of row {r}");
        }
    }

    #[test]
    fn backward_mirrors_forward() {
        struct Live {
            rows: usize,
        }
        impl KernelAnalysis for Live {
            fn rows(&self) -> usize {
                self.rows
            }
            fn universe(&self) -> usize {
                1
            }
            fn direction(&self) -> Direction {
                Direction::Backward
            }
            fn transfer(&self, row: usize, state: &mut BitSet) {
                // Value defined at row 0, used at row 2: live-in of rows 1..=2.
                if row == 0 {
                    state.remove(0);
                }
                if row == 2 {
                    state.insert(0);
                }
            }
        }
        let states = fixpoint(&Live { rows: 4 });
        // Boundary = live-out per row: live-out of rows 0 and 1 (the value is on
        // its way to the use in row 2), dead after its use and across the wrap.
        assert!(states[0].contains(0));
        assert!(states[1].contains(0));
        assert!(!states[2].contains(0));
        assert!(!states[3].contains(0));
    }

    #[test]
    fn empty_problem_converges_immediately() {
        struct Empty;
        impl KernelAnalysis for Empty {
            fn rows(&self) -> usize {
                3
            }
            fn universe(&self) -> usize {
                0
            }
            fn direction(&self) -> Direction {
                Direction::Forward
            }
            fn transfer(&self, _row: usize, _state: &mut BitSet) {}
        }
        let states = fixpoint(&Empty);
        assert_eq!(states.len(), 3);
        assert!(states.iter().all(BitSet::is_empty));
    }
}
