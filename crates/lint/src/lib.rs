//! # vliw-lint — static schedule certification and dataflow lints
//!
//! A gen/kill dataflow framework over the `II` rows of a modulo-scheduled kernel
//! (in the style of rustc's MIR dataflow layer), plus the analyses and lints built
//! on it:
//!
//! * [`domain`] / [`engine`] — bit lattices and the fixpoint driver across the II
//!   wraparound (loop-carried facts propagate around the kernel ring);
//! * [`liveness`] — modulo liveness: per-cluster live sets and an independent
//!   recomputation of the `MaxLive` register-pressure numbers;
//! * [`reaching`] — reaching definitions across loop-carried dependences;
//! * [`makespan`] — closed-form makespan / `NCYCLES` re-derivation and the IPC
//!   drift window;
//! * [`lints`] / [`diagnostics`] — the lint registry (stable ids, fixed
//!   severities, per-lint suppression) and deterministic structured reports;
//! * [`certify`] — the deny-level certifier proving the dynamic verifier's four
//!   invariants without execution, plus warn-level schedule-quality lints;
//! * [`optimal`] — the budgeted branch-and-bound exact modulo scheduler whose
//!   certificates bound how far a schedule's II sits from the true optimum;
//! * [`reportio`] — the report-writing/exit-code tail shared by the gate bins.
//!
//! The certifier is wired into `vliw-verify` as a fifth, *static* oracle
//! (cross-checked against the dynamic four on every fuzz case) and into
//! `vliw_bench::Sweep` as the `LINT_CELLS=1` audit mode; the `lint` binary audits
//! every schedule behind the committed figure artifacts into
//! `results/lint_report.json`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod certify;
pub mod diagnostics;
pub mod domain;
pub mod engine;
pub mod lints;
pub mod liveness;
pub mod makespan;
pub mod optimal;
pub mod reaching;
pub mod reportio;

pub use certify::{Certifier, CLIFF_MARGIN, IMBALANCE_GAP};
pub use diagnostics::{Diagnostic, LintReport, Severity};
pub use domain::BitSet;
pub use engine::{fixpoint, Direction, KernelAnalysis};
pub use liveness::{ModuloLiveness, ValueInterval};
pub use makespan::{ncycles_drift_ok, static_makespan, static_ncycles, static_stage_count};
pub use optimal::{OptCertificate, OptVerdict, OptimalSolver, DEFAULT_SOLVER_PROBES};
pub use reaching::ReachingDefs;
