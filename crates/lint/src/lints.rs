//! The lint registry: every lint this crate can emit, with a stable id and a
//! fixed severity.
//!
//! Deny-level lints are the *certification* set — together they statically prove
//! the four invariants the dynamic verifier checks by replay (dependence legality,
//! reservation-table conflict freedom, register-pressure bounds, the
//! `NCYCLES`-window) plus the code-size clamp promoted from a `debug_assert!`.
//! Warn-level lints are *quality* observations that never fail certification.
//! Ids are stable API: suppression (`Certifier::allow`), reports and CI assertions
//! key on them.

use crate::diagnostics::Severity;

/// A registered lint.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LintDescriptor {
    /// Stable kebab-case id.
    pub id: &'static str,
    /// Fixed severity.
    pub severity: Severity,
    /// One-line description.
    pub summary: &'static str,
}

/// A node was never placed.
pub const UNSCHEDULED_NODE: LintDescriptor = LintDescriptor {
    id: "unscheduled-node",
    severity: Severity::Deny,
    summary: "a graph node has no placement in the schedule",
};

/// A placement names a nonexistent cluster, a foreign cluster's unit, a unit of
/// the wrong kind, or a bus row.
pub const BAD_PLACEMENT: LintDescriptor = LintDescriptor {
    id: "bad-placement",
    severity: Severity::Deny,
    summary: "an operation is placed on an impossible resource",
};

/// A dependence edge is violated (negative slack).
pub const DEPENDENCE: LintDescriptor = LintDescriptor {
    id: "dependence-violated",
    severity: Severity::Deny,
    summary: "a dependence edge misses its latency by a negative slack",
};

/// A cross-cluster value edge has no recorded bus transfer.
pub const MISSING_COMMUNICATION: LintDescriptor = LintDescriptor {
    id: "missing-communication",
    severity: Severity::Deny,
    summary: "a value consumed in another cluster has no communication",
};

/// Two operations share a functional unit in the same kernel row.
pub const FU_CONFLICT: LintDescriptor = LintDescriptor {
    id: "fu-conflict",
    severity: Severity::Deny,
    summary: "two operations reserve the same functional unit in one kernel row",
};

/// Two transfers overlap on one bus in the same kernel row.
pub const BUS_CONFLICT: LintDescriptor = LintDescriptor {
    id: "bus-conflict",
    severity: Severity::Deny,
    summary: "two transfers reserve the same bus in one kernel row",
};

/// A cluster's MaxLive exceeds its register file.
pub const REGISTER_PRESSURE: LintDescriptor = LintDescriptor {
    id: "register-pressure",
    severity: Severity::Deny,
    summary: "a cluster needs more simultaneously live registers than it has",
};

/// `NCYCLES` drifted outside its provable window around the makespan.
pub const NCYCLES_WINDOW: LintDescriptor = LintDescriptor {
    id: "ncycles-window",
    severity: Severity::Deny,
    summary: "the IPC denominator NCYCLES drifted outside the makespan window",
};

/// The code-size accounting invariant `ops·SC ≤ (2(SC−1)+1)·II·width` is broken
/// (promoted from a `debug_assert!` so release builds check it too).
pub const CODE_SIZE_CLAMP: LintDescriptor = LintDescriptor {
    id: "code-size-clamp",
    severity: Severity::Deny,
    summary: "useful operation slots exceed the loop's total code-size slots",
};

/// The achieved II exceeds the *solver-certified* lower bound — the
/// certificate-backed upgrade of [`II_SLACK`], emitted instead of it when an
/// [`crate::optimal::OptCertificate`] is attached to the certifier.
pub const CERTIFIED_II_GAP: LintDescriptor = LintDescriptor {
    id: "certified-ii-gap",
    severity: Severity::Warn,
    summary: "the schedule's II is above the solver-certified lower bound",
};

/// A value is computed but never read by any placed consumer.
pub const DEAD_VALUE: LintDescriptor = LintDescriptor {
    id: "dead-value",
    severity: Severity::Warn,
    summary: "a computed value has no reader (dead copy after unrolling?)",
};

/// The achieved II exceeds the lower bound MII.
pub const II_SLACK: LintDescriptor = LintDescriptor {
    id: "ii-slack",
    severity: Severity::Warn,
    summary: "the schedule's II is above the MII lower bound",
};

/// Operation counts are lopsided across clusters.
pub const CLUSTER_IMBALANCE: LintDescriptor = LintDescriptor {
    id: "cluster-imbalance",
    severity: Severity::Warn,
    summary: "operations are distributed very unevenly across clusters",
};

/// A cluster's MaxLive sits within the cliff margin of its register file — the
/// regime where one more unroll copy collapses the schedule (fig_unroll, U = 8).
pub const REGISTER_CLIFF: LintDescriptor = LintDescriptor {
    id: "register-cliff",
    severity: Severity::Warn,
    summary: "register pressure is within the cliff margin of the file size",
};

/// Every registered lint, deny set first, each group in id order.
pub const ALL: [LintDescriptor; 14] = [
    BAD_PLACEMENT,
    BUS_CONFLICT,
    CODE_SIZE_CLAMP,
    DEPENDENCE,
    FU_CONFLICT,
    MISSING_COMMUNICATION,
    NCYCLES_WINDOW,
    REGISTER_PRESSURE,
    UNSCHEDULED_NODE,
    CERTIFIED_II_GAP,
    CLUSTER_IMBALANCE,
    DEAD_VALUE,
    II_SLACK,
    REGISTER_CLIFF,
];

/// Look a lint up by id.
pub fn find(id: &str) -> Option<&'static LintDescriptor> {
    ALL.iter().find(|l| l.id == id)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_are_unique_and_findable() {
        for (i, a) in ALL.iter().enumerate() {
            assert_eq!(find(a.id), Some(a));
            for b in &ALL[i + 1..] {
                assert_ne!(a.id, b.id, "duplicate lint id");
            }
        }
        assert_eq!(find("no-such-lint"), None);
    }

    #[test]
    fn registry_is_deny_first_then_sorted() {
        let deny: Vec<&str> = ALL
            .iter()
            .filter(|l| l.severity == Severity::Deny)
            .map(|l| l.id)
            .collect();
        let warn: Vec<&str> = ALL
            .iter()
            .filter(|l| l.severity == Severity::Warn)
            .map(|l| l.id)
            .collect();
        assert_eq!(deny.len() + warn.len(), ALL.len());
        let mut sorted = deny.clone();
        sorted.sort_unstable();
        assert_eq!(deny, sorted);
        let mut sorted = warn.clone();
        sorted.sort_unstable();
        assert_eq!(warn, sorted);
        // The deny block precedes the warn block.
        let first_warn = ALL
            .iter()
            .position(|l| l.severity == Severity::Warn)
            .unwrap();
        assert!(ALL[..first_warn]
            .iter()
            .all(|l| l.severity == Severity::Deny));
        assert!(ALL[first_warn..]
            .iter()
            .all(|l| l.severity == Severity::Warn));
    }
}
