//! Modulo liveness: per-cluster live values and register pressure, recomputed
//! independently of `vliw_sms::LifetimeMap`.
//!
//! Two views of the same lifetimes are built here:
//!
//! 1. **Intervals + pressure.**  Each value's live ranges (producer-side and
//!    receiver-side, following the lifetime model documented on `LifetimeMap`) are
//!    re-derived and folded into per-row pressure counts by *walking the covered
//!    rows* — `row = (start + k) mod II` for each covered cycle `k` — instead of
//!    `LifetimeMap`'s closed-form full-wraps-plus-split-remainder arithmetic.  The
//!    two folds must agree bit for bit on `MaxLive`; the certifier's
//!    register-pressure lint uses *this* fold, so the dynamic validator
//!    (`LifetimeMap`-based) and the static certifier check the same invariant
//!    through different arithmetic.
//!
//! 2. **Dataflow live sets.**  A backward [`KernelAnalysis`] per cluster (gen at a
//!    value's last-read row, kill at its definition row) solved to fixpoint across
//!    the II wraparound.  Bit sets cannot count multiplicity — a value whose
//!    lifetime exceeds `II` is live several times per row but sets one bit — which
//!    is exactly why the pressure numbers come from the interval fold and the live
//!    sets only answer membership queries (the dead-value lint, debugging).

use crate::domain::BitSet;
use crate::engine::{fixpoint, Direction, KernelAnalysis};
use std::collections::BTreeMap;
use vliw_arch::MachineConfig;
use vliw_ddg::{DepGraph, NodeId};
use vliw_sms::ModuloSchedule;

/// One re-derived live range: `node`'s value occupies a register of `cluster` from
/// cycle `start` (inclusive) to `end` (exclusive, clamped to one cycle minimum).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ValueInterval {
    /// The producing node.
    pub node: NodeId,
    /// The cluster whose register file holds the value.
    pub cluster: usize,
    /// First occupied cycle.
    pub start: i64,
    /// One past the last occupied cycle.
    pub end: i64,
}

impl ValueInterval {
    /// Occupied cycles (at least 1: a value with no reader still holds a register
    /// for its definition cycle).
    pub fn len(&self) -> i64 {
        (self.end - self.start).max(1)
    }

    /// Whether the range was clamped to the one-cycle minimum.
    pub fn is_empty(&self) -> bool {
        self.end <= self.start
    }
}

/// Backward liveness over one cluster's kernel rows.
struct ClusterLiveness {
    rows: usize,
    universe: usize,
    /// `defs[row]` = bits whose value is defined (issued / arrives) at `row`.
    defs: Vec<Vec<usize>>,
    /// `uses[row]` = bits whose value is last read from this register file at `row`.
    uses: Vec<Vec<usize>>,
}

impl KernelAnalysis for ClusterLiveness {
    fn rows(&self) -> usize {
        self.rows
    }
    fn universe(&self) -> usize {
        self.universe
    }
    fn direction(&self) -> Direction {
        Direction::Backward
    }
    fn transfer(&self, row: usize, state: &mut BitSet) {
        // live-in = (live-out − defs) ∪ uses
        for &d in &self.defs[row] {
            state.remove(d);
        }
        for &u in &self.uses[row] {
            state.insert(u);
        }
    }
}

/// Liveness and register pressure of one modulo schedule.
#[derive(Debug, Clone)]
pub struct ModuloLiveness {
    ii: u32,
    intervals: Vec<ValueInterval>,
    /// `pressure[cluster][row]` = simultaneously live values.
    pressure: Vec<Vec<u32>>,
    /// `live_in[cluster][row]` = dataflow live-in sets over the dense value bits.
    live_in: Vec<Vec<BitSet>>,
    /// Dense bit index of each value-defining node.
    value_bits: BTreeMap<u32, usize>,
}

impl ModuloLiveness {
    /// Analyse `sched` for `graph` on `machine`.  Partial schedules are fine: only
    /// placed producers and consumers contribute, mirroring `LifetimeMap`.
    pub fn new(graph: &DepGraph, sched: &ModuloSchedule, machine: &MachineConfig) -> Self {
        let ii = sched.ii();
        let intervals = derive_intervals(graph, sched, ii);

        // Fold pressure by walking each interval's covered rows: `len div II` wraps
        // cover every row, and the remaining `len mod II` cycles cover one wrapped
        // row each, indexed directly with rem_euclid (no slice splitting).
        let mut pressure = vec![vec![0u32; ii as usize]; machine.n_clusters];
        for iv in &intervals {
            let rows = &mut pressure[iv.cluster];
            let len = iv.len();
            let full = (len / ii as i64) as u32;
            if full > 0 {
                for slot in rows.iter_mut() {
                    *slot += full;
                }
            }
            for k in 0..(len % ii as i64) {
                rows[(iv.start + k).rem_euclid(ii as i64) as usize] += 1;
            }
        }

        // Dense bit universe: every value-defining node that got an interval.
        let mut value_bits = BTreeMap::new();
        for iv in &intervals {
            let next = value_bits.len();
            value_bits.entry(iv.node.0).or_insert(next);
        }
        let universe = value_bits.len();

        let mut live_in = Vec::with_capacity(machine.n_clusters);
        for cluster in 0..machine.n_clusters {
            let mut analysis = ClusterLiveness {
                rows: ii as usize,
                universe,
                defs: vec![Vec::new(); ii as usize],
                uses: vec![Vec::new(); ii as usize],
            };
            for iv in intervals.iter().filter(|iv| iv.cluster == cluster) {
                let bit = value_bits[&iv.node.0];
                let def_row = iv.start.rem_euclid(ii as i64) as usize;
                let use_row = (iv.start + iv.len() - 1).rem_euclid(ii as i64) as usize;
                analysis.defs[def_row].push(bit);
                analysis.uses[use_row].push(bit);
            }
            // fixpoint() returns live-out per row; one extra transfer application
            // turns each into the live-in set.
            let live_out = fixpoint(&analysis);
            let ins = live_out
                .into_iter()
                .enumerate()
                .map(|(row, mut s)| {
                    analysis.transfer(row, &mut s);
                    s
                })
                .collect();
            live_in.push(ins);
        }

        Self {
            ii,
            intervals,
            pressure,
            live_in,
            value_bits,
        }
    }

    /// The schedule's initiation interval.
    pub fn ii(&self) -> u32 {
        self.ii
    }

    /// All re-derived live ranges.
    pub fn intervals(&self) -> &[ValueInterval] {
        &self.intervals
    }

    /// Per-row live-value counts of one cluster.
    pub fn pressure_of(&self, cluster: usize) -> &[u32] {
        &self.pressure[cluster]
    }

    /// Maximum simultaneously live values per cluster — must equal
    /// `LifetimeMap::max_live` on any schedule (property-tested).
    pub fn max_live(&self) -> Vec<u32> {
        self.pressure
            .iter()
            .map(|rows| rows.iter().copied().max().unwrap_or(0))
            .collect()
    }

    /// The dataflow live-in set of `cluster` at kernel row `row`.
    pub fn live_in(&self, cluster: usize, row: usize) -> &BitSet {
        &self.live_in[cluster][row]
    }

    /// Whether `node`'s value is live entering `row` of `cluster`.
    pub fn is_live(&self, cluster: usize, row: usize, node: NodeId) -> bool {
        self.value_bits
            .get(&node.0)
            .is_some_and(|&bit| self.live_in[cluster][row].contains(bit))
    }

    /// The dense bit assigned to `node`'s value, if it defines one.
    pub fn bit_of(&self, node: NodeId) -> Option<usize> {
        self.value_bits.get(&node.0).copied()
    }
}

/// Re-derive every live range of `sched` under the documented lifetime model: a
/// value is allocated at issue and held until its last read from each register file
/// — local consumers read at `cycle + distance·II`, remote consumers read the
/// producer's copy at the bus-transfer start, and a transferred value occupies the
/// receiving file from arrival to its last local use unless consumed on arrival.
fn derive_intervals(graph: &DepGraph, sched: &ModuloSchedule, ii: u32) -> Vec<ValueInterval> {
    let ii = ii as i64;
    let mut intervals = Vec::new();
    for node in graph.nodes() {
        if !node.class.defines_value() {
            continue;
        }
        let Some(prod) = sched.placement(node.id) else {
            continue;
        };
        let mut last_local_read = prod.cycle + 1;
        let mut remote: BTreeMap<usize, (i64, i64)> = BTreeMap::new();
        for e in graph.out_edges(node.id).filter(|e| e.kind.carries_value()) {
            let Some(cons) = sched.placement(e.dst) else {
                continue;
            };
            let read_cycle = cons.cycle + e.distance as i64 * ii;
            if cons.cluster == prod.cluster {
                last_local_read = last_local_read.max(read_cycle);
            } else {
                let transfer = sched
                    .comms()
                    .iter()
                    .find(|c| c.src_node == node.id && c.to_cluster == cons.cluster);
                let (send, arrive) = match transfer {
                    Some(c) => (c.start_cycle, c.start_cycle + c.duration as i64),
                    None => (read_cycle, read_cycle),
                };
                last_local_read = last_local_read.max(send);
                let entry = remote.entry(cons.cluster).or_insert((arrive, arrive));
                entry.0 = entry.0.min(arrive);
                entry.1 = entry.1.max(read_cycle);
            }
        }
        intervals.push(ValueInterval {
            node: node.id,
            cluster: prod.cluster,
            start: prod.cycle,
            end: last_local_read,
        });
        for (cluster, (arrive, last_read)) in remote {
            // Consumed exactly on arrival → read from the incoming-value register,
            // no register-file occupancy in the receiving cluster.
            if last_read > arrive {
                intervals.push(ValueInterval {
                    node: node.id,
                    cluster,
                    start: arrive,
                    end: last_read,
                });
            }
        }
    }
    intervals
}

#[cfg(test)]
mod tests {
    use super::*;
    use vliw_arch::{FuKind, OpClass, ResourcePool};
    use vliw_ddg::DepKind;
    use vliw_sms::{cluster_max_live, CommPlacement, PlacedOp};

    fn place(
        sched: &mut ModuloSchedule,
        pool: &ResourcePool,
        node: u32,
        cycle: i64,
        cluster: usize,
        kind: FuKind,
    ) {
        sched.place(PlacedOp {
            node: NodeId(node),
            cycle,
            cluster,
            fu: pool.fus(cluster, kind).next().unwrap(),
        });
    }

    #[test]
    fn matches_lifetime_map_on_a_wrapping_lifetime() {
        let machine = MachineConfig::unified();
        let pool = ResourcePool::new(&machine);
        let mut g = DepGraph::new("wrap");
        let a = g.add_node(OpClass::Load);
        let b = g.add_node(OpClass::FpAdd);
        g.add_edge(a, b, 2, 0, DepKind::Flow);
        let mut s = ModuloSchedule::new("wrap", 2, 4, 1);
        place(&mut s, &pool, 0, 0, 0, FuKind::Mem);
        place(&mut s, &pool, 1, 9, 0, FuKind::Fp);
        let live = ModuloLiveness::new(&g, &s, &machine);
        assert_eq!(live.max_live(), cluster_max_live(&g, &s, &machine));
        assert_eq!(live.max_live()[0], 3); // 9-cycle lifetime over II=4
    }

    #[test]
    fn matches_lifetime_map_with_a_bus_transfer() {
        let machine = MachineConfig::two_cluster(1, 2);
        let pool = ResourcePool::new(&machine);
        let mut g = DepGraph::new("remote");
        let a = g.add_node(OpClass::Load);
        let b = g.add_node(OpClass::FpAdd);
        g.add_edge(a, b, 2, 0, DepKind::Flow);
        let mut s = ModuloSchedule::new("remote", 2, 6, 1);
        place(&mut s, &pool, 0, 0, 0, FuKind::Mem);
        place(&mut s, &pool, 1, 5, 1, FuKind::Fp);
        s.add_comm(CommPlacement {
            src_node: a,
            dst_node: b,
            from_cluster: 0,
            to_cluster: 1,
            bus: pool.buses().next().unwrap(),
            start_cycle: 2,
            duration: 2,
        });
        let live = ModuloLiveness::new(&g, &s, &machine);
        assert_eq!(live.max_live(), cluster_max_live(&g, &s, &machine));
        // Producer side 0..2, receiver side 4..5.
        assert!(live
            .intervals()
            .iter()
            .any(|iv| iv.cluster == 0 && (iv.start, iv.end) == (0, 2)));
        assert!(live
            .intervals()
            .iter()
            .any(|iv| iv.cluster == 1 && (iv.start, iv.end) == (4, 5)));
    }

    #[test]
    fn live_sets_cover_the_interval_rows() {
        // Value defined at cycle 1, last read at cycle 3, II = 6: the interval is
        // [1, 3) (the register frees at the read).  The value is not live *entering*
        // its definition row, so the live-in sets flag row 2 only.
        let machine = MachineConfig::unified();
        let pool = ResourcePool::new(&machine);
        let mut g = DepGraph::new("rows");
        let a = g.add_node(OpClass::Load);
        let b = g.add_node(OpClass::FpAdd);
        g.add_edge(a, b, 2, 0, DepKind::Flow);
        let mut s = ModuloSchedule::new("rows", 2, 6, 1);
        place(&mut s, &pool, 0, 1, 0, FuKind::Mem);
        place(&mut s, &pool, 1, 3, 0, FuKind::Fp);
        let live = ModuloLiveness::new(&g, &s, &machine);
        let live_rows: Vec<usize> = (0..6).filter(|&r| live.is_live(0, r, a)).collect();
        assert_eq!(live_rows, vec![2]);
    }

    #[test]
    fn unplaced_producers_contribute_nothing() {
        let machine = MachineConfig::unified();
        let mut g = DepGraph::new("partial");
        let _a = g.add_node(OpClass::Load);
        let s = ModuloSchedule::new("partial", 1, 2, 1);
        let live = ModuloLiveness::new(&g, &s, &machine);
        assert!(live.intervals().is_empty());
        assert_eq!(live.max_live(), vec![0]);
    }
}
