//! Closed-form makespan and `NCYCLES` derivation, recomputed from the placements.
//!
//! The dynamic verifier cross-checks three cycle models: the replayed makespan, the
//! closed-form makespan (`vliw_sim::analytic_makespan`) and the paper's IPC
//! denominator `NCYCLES = (NITER + SC − 1)·II` (`ModuloSchedule::cycles_for`).  The
//! static certifier cannot replay, but it can re-derive both closed forms from the
//! raw placements — including the stage count — and prove the same drift window the
//! dynamic `IpcModelDrift` oracle enforces: on a clean replay the simulated
//! makespan equals the closed form, so checking the window against the *static*
//! makespan is exactly the dynamic check, minus the execution.

use vliw_arch::MachineConfig;
use vliw_ddg::DepGraph;
use vliw_sms::ModuloSchedule;

/// The event span of one kernel iteration: earliest issue (or transfer start) and
/// latest completion (an operation completes `latency` cycles after issue, a
/// transfer occupies its bus until `start + duration`).  `None` for an empty loop.
fn event_span(
    graph: &DepGraph,
    sched: &ModuloSchedule,
    machine: &MachineConfig,
) -> Option<(i64, i64)> {
    let mut min_event = i64::MAX;
    let mut max_event = i64::MIN;
    for p in sched.placements() {
        let latency = machine.latency(graph.node(p.node).class) as i64;
        min_event = min_event.min(p.cycle);
        max_event = max_event.max(p.cycle + latency - 1);
    }
    for c in sched.comms() {
        min_event = min_event.min(c.start_cycle);
        max_event = max_event.max(c.start_cycle + c.duration as i64 - 1);
    }
    (min_event != i64::MAX).then_some((min_event, max_event))
}

/// Execution makespan of `iterations` iterations, in closed form: the event span
/// of one iteration plus `(iterations − 1)·II`.  Mirrors the simulator contract of
/// an empty loop (or zero iterations) reporting a 1-cycle run.
pub fn static_makespan(
    graph: &DepGraph,
    sched: &ModuloSchedule,
    machine: &MachineConfig,
    iterations: u64,
) -> u64 {
    let Some((min_event, max_event)) = event_span(graph, sched, machine) else {
        return 1;
    };
    if iterations == 0 {
        return 1;
    }
    let span = (max_event - min_event + 1) as u64;
    span + (iterations - 1) * sched.ii() as u64
}

/// Stage count re-derived from the raw placements (cycles spanned by issues and
/// bus occupancy, in units of `II`) — must equal `ModuloSchedule::stage_count`.
pub fn static_stage_count(sched: &ModuloSchedule) -> u32 {
    let ii = sched.ii() as i64;
    let mut min = i64::MAX;
    let mut max = i64::MIN;
    for p in sched.placements() {
        min = min.min(p.cycle);
        max = max.max(p.cycle);
    }
    for c in sched.comms() {
        min = min.min(c.start_cycle);
        max = max.max(c.start_cycle + c.duration as i64 - 1);
    }
    if min == i64::MAX || max < min {
        return 1;
    }
    let span_end = max - min.div_euclid(ii) * ii;
    (span_end.div_euclid(ii) + 1) as u32
}

/// The paper's `NCYCLES = (NITER + SC − 1)·II`, with `SC` re-derived statically.
pub fn static_ncycles(sched: &ModuloSchedule, iterations: u64) -> u64 {
    (iterations + static_stage_count(sched) as u64 - 1) * sched.ii() as u64
}

/// The provable window between `NCYCLES` and the makespan: `drift = NCYCLES −
/// makespan` must satisfy `−max_latency < drift < 2·II`.  Outside it the IPC
/// accounting would lie about the executed loop.
pub fn ncycles_drift_ok(drift: i128, ii: u32, max_latency: u32) -> bool {
    -(max_latency as i128) < drift && drift < 2 * ii as i128
}

#[cfg(test)]
mod tests {
    use super::*;
    use vliw_arch::OpClass;
    use vliw_sms::SmsScheduler;

    fn saxpy() -> DepGraph {
        use vliw_ddg::GraphBuilder;
        GraphBuilder::new("saxpy")
            .iterations(64)
            .node("lx", OpClass::Load)
            .node("ly", OpClass::Load)
            .node("mul", OpClass::FpMul)
            .node("add", OpClass::FpAdd)
            .node("st", OpClass::Store)
            .flow("lx", "mul")
            .flow("mul", "add")
            .flow("ly", "add")
            .flow("add", "st")
            .build()
    }

    #[test]
    fn stage_count_matches_the_schedule_derivation() {
        let machine = MachineConfig::unified();
        let g = saxpy();
        let sched = SmsScheduler::new(&machine).schedule(&g).unwrap();
        assert_eq!(static_stage_count(&sched), sched.stage_count());
    }

    #[test]
    fn ncycles_matches_cycles_for() {
        let machine = MachineConfig::unified();
        let g = saxpy();
        let sched = SmsScheduler::new(&machine).schedule(&g).unwrap();
        for iters in [1u64, 4, 40, 64] {
            assert_eq!(static_ncycles(&sched, iters), sched.cycles_for(iters));
        }
    }

    #[test]
    fn empty_schedules_have_unit_makespan_and_one_stage() {
        let machine = MachineConfig::unified();
        let g = DepGraph::new("empty");
        let sched = ModuloSchedule::new("empty", 0, 3, 1);
        assert_eq!(static_makespan(&g, &sched, &machine, 10), 1);
        assert_eq!(static_stage_count(&sched), 1);
    }

    #[test]
    fn drift_window_bounds_are_strict() {
        assert!(ncycles_drift_ok(0, 4, 2));
        assert!(ncycles_drift_ok(7, 4, 2)); // < 2·II = 8
        assert!(!ncycles_drift_ok(8, 4, 2));
        assert!(ncycles_drift_ok(-1, 4, 2)); // > −max_latency = −2
        assert!(!ncycles_drift_ok(-2, 4, 2));
    }
}
