//! The optimality certifier: a budgeted branch-and-bound exact modulo scheduler.
//!
//! The rest of this crate proves schedules are *legal*; this module bounds how
//! *good* they can be.  [`OptimalSolver::certify`] searches initiation intervals
//! upward from `MII = max(ResMII, RecMII)` and, at each II, runs a depth-first
//! search over per-node `(cluster, cycle, functional unit)` placements against
//! the exact same feasibility primitives the production engine uses — the
//! [`vliw_sms::ModuloReservationTable`], the bus allocator
//! ([`vliw_sms::allocate_comms`] over [`vliw_sms::required_comms`]), the
//! dependence windows ([`vliw_sms::early_start`] / [`vliw_sms::late_start`]) and
//! the register-pressure check ([`vliw_sms::LifetimeMap::fits`]) — so the solver
//! and the engine can never disagree about what a feasible placement is.
//!
//! ## Verdict soundness
//!
//! The searched placement space is restricted (II-wide windows for half-bounded
//! nodes, greedy bus-start selection, register pruning), so exhausting it does
//! not by itself prove an II infeasible.  The search therefore tracks
//! *completeness caveats* and only advances the certified lower bound past an II
//! whose search exhausted **cleanly**:
//!
//! * **Window clamping.** A node whose dependence window is bounded on both
//!   sides is scanned in full, so no caveat.  A node with only an early bound is
//!   scanned over `II` consecutive cycles; by modulo-II periodicity any feasible
//!   placement further out can be shifted back into the scanned range *unless*
//!   the node still has an unplaced predecessor (the shift tightens that
//!   predecessor's future window) or a placed cross-cluster value predecessor
//!   (the shift narrows the incoming bus window).  The symmetric rule covers
//!   late-only windows, and a node with no placed neighbour is complete iff
//!   nothing else of its weakly-connected component is placed (then the whole
//!   component shifts by multiples of II).  Violating placements set the caveat.
//! * **Register rejections.** Shifting a placement changes value lifetimes, so
//!   any trial rejected by the register files marks the search incomplete.
//! * **Bus rows.** Unlike the production engine's greedy
//!   [`vliw_sms::allocate_comms`], the solver branches over *every* start
//!   cycle in each transfer's window (with cross-request and cross-placement
//!   backtracking), so bus allocation is exact on the common configurations:
//!   single-cycle transfers occupy one MRT column (any free row is as good as
//!   any other) and a single bus offers no row choice.  Only multi-cycle
//!   transfers over several buses make first-free row selection a real choice,
//!   and that case sets the caveat.
//!
//! Functional units of the same kind are interchangeable rows, so first-free
//! unit selection and trying only already-used clusters plus one fresh cluster
//! (clusters are identical by construction of [`vliw_arch::MachineConfig`])
//! are exact symmetry reductions, never caveats.
//!
//! The verdict is then:
//!
//! * [`OptVerdict::Optimal`] — a witness schedule exists at the certified
//!   lower bound (every smaller II ≥ MII was cleanly exhausted).  The witness
//!   is either the solver's own — re-validated through the [`crate::Certifier`]
//!   before the claim is made — or, in incumbent-seeded solves
//!   ([`OptimalSolver::certify_with_incumbent`]), a schedule the caller holds
//!   and has validated through the other oracles.
//! * [`OptVerdict::LowerBound`] — every II below the bound is proven
//!   infeasible, the bound itself is unresolved (fuel ran out, or a caveat made
//!   exhaustion inconclusive).  `feasible` carries a validated witness II when
//!   the upward search still found one.
//! * [`OptVerdict::Infeasible`] — every II up to [`vliw_sms::max_ii`] was
//!   cleanly exhausted.  A heuristic that nevertheless schedules such a loop
//!   exposes a solver soundness bug, which is exactly why the sixth oracle
//!   treats it as a hard violation.
//!
//! The search is metered through the PR-7 [`FuelBudget`] machinery: every probed
//! cycle spends a probe, every node expansion an attempt, every II step an II
//! step.  Fuel exhaustion aborts the search and downgrades the verdict to the
//! lower bound proven so far — never to an unsound claim — so certificates are
//! deterministic for a given budget regardless of wall clock.

use crate::certify::Certifier;
use serde::{Deserialize, Serialize};
use vliw_arch::{FuKind, MachineConfig, ResourcePool};
use vliw_ddg::{mii, rec_mii, res_mii, sccs, DepGraph, GraphAnalysis, NodeId};
use vliw_sms::{
    early_start, late_start, max_ii, required_comms, CommPlacement, CommRequest, FuelBudget,
    FuelMeter, FuelSpent, LifetimeMap, ModuloReservationTable, ModuloSchedule, PlacedOp,
};

/// What the solver proved about a loop's minimum achievable II on a machine.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum OptVerdict {
    /// The exact optimum: `ii` is feasible (validated witness) and every
    /// smaller II down to MII is proven infeasible.
    Optimal {
        /// The optimal initiation interval.
        ii: u32,
    },
    /// Every II below `ii` is proven infeasible; `ii` itself is unresolved.
    LowerBound {
        /// The certified lower bound (optimal II is `>= ii`).
        ii: u32,
        /// A feasible II found above the bound, if any — a validated upper
        /// bound on the optimum.
        feasible: Option<u32>,
    },
    /// No II up to [`vliw_sms::max_ii`] admits a schedule (cleanly proven).
    Infeasible,
}

/// The solver's certificate for one (loop, machine) pair — the object attached
/// to lint reports and campaign findings.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct OptCertificate {
    /// The loop the certificate speaks about.
    pub loop_name: String,
    /// The machine the loop was solved for.
    pub machine: String,
    /// Resource-constrained component of the MII.
    pub res_mii: u32,
    /// Recurrence-constrained component of the MII.
    pub rec_mii: u32,
    /// `max(res_mii, rec_mii)` — the theory lower bound the search starts from.
    pub mii: u32,
    /// What the search proved.
    pub verdict: OptVerdict,
    /// The externally-known feasible II the solve was seeded with (see
    /// [`OptimalSolver::certify_with_incumbent`]); `None` for a cold solve.
    pub incumbent: Option<u32>,
    /// Fuel consumed by the search (probes, attempts, II steps).
    pub spent: FuelSpent,
    /// Whether the fuel budget ran out before the search concluded.
    pub exhausted: bool,
}

impl OptCertificate {
    /// The certified lower bound on the achievable II, if the loop is
    /// schedulable at all (`None` for [`OptVerdict::Infeasible`]).
    pub fn lower_bound(&self) -> Option<u32> {
        match self.verdict {
            OptVerdict::Optimal { ii } | OptVerdict::LowerBound { ii, .. } => Some(ii),
            OptVerdict::Infeasible => None,
        }
    }

    /// The exact optimal II, when certified.
    pub fn optimal_ii(&self) -> Option<u32> {
        match self.verdict {
            OptVerdict::Optimal { ii } => Some(ii),
            _ => None,
        }
    }

    /// Whether the certificate pins the optimum exactly.
    pub fn is_exact(&self) -> bool {
        matches!(self.verdict, OptVerdict::Optimal { .. })
    }

    /// Certified slack of an achieved II: `achieved − lower_bound`.  `None`
    /// when the verdict is [`OptVerdict::Infeasible`] (no bound exists — but
    /// see [`OptCertificate::violated_by`]).
    pub fn gap_to(&self, achieved: u32) -> Option<i64> {
        self.lower_bound()
            .map(|lb| i64::from(achieved) - i64::from(lb))
    }

    /// The hard sixth-oracle invariant: an achieved schedule must sit at or
    /// above the certified lower bound, and a loop the solver proved
    /// unschedulable must not have been scheduled at all.
    pub fn violated_by(&self, achieved: u32) -> bool {
        match self.lower_bound() {
            Some(lb) => achieved < lb,
            None => true,
        }
    }
}

/// Outcome of one fixed-II depth-first search.
enum Search {
    /// A complete schedule was found (left in place in the DFS state).
    Found,
    /// The searched space is empty; `clean` says whether that proves the II
    /// infeasible (no completeness caveat was hit).
    Exhausted {
        /// No caveat fired: exhaustion is a proof of infeasibility.
        clean: bool,
    },
    /// The fuel budget stopped the search mid-way.
    FuelOut,
}

/// The budgeted exact solver.  Construct once, reuse across loops.
#[derive(Debug, Clone)]
pub struct OptimalSolver {
    budget: FuelBudget,
}

/// Default per-loop fuel: enough to settle the vast majority of fuzz-corpus
/// loops (measured: >80% certified exact) while keeping a 512-case campaign in
/// seconds.  Callers with more patience pass their own budget.
pub const DEFAULT_SOLVER_PROBES: u64 = 40_000;

impl Default for OptimalSolver {
    fn default() -> Self {
        Self::new(FuelBudget::probes(DEFAULT_SOLVER_PROBES))
    }
}

impl OptimalSolver {
    /// A solver spending at most `budget` fuel per certified loop.
    pub fn new(budget: FuelBudget) -> Self {
        Self { budget }
    }

    /// Solve `graph` on `machine`: search II upward from MII, prove what the
    /// budget allows, and return the certificate.
    pub fn certify(&self, graph: &DepGraph, machine: &MachineConfig) -> OptCertificate {
        self.certify_with_incumbent(graph, machine, None)
    }

    /// [`OptimalSolver::certify`] seeded with an *incumbent*: an II the caller
    /// already holds a schedule for.  This is the classic branch-and-bound
    /// upper bound — the search never probes above it, and closing the range
    /// `MII..incumbent` cleanly certifies the incumbent as the exact optimum
    /// without the solver having to reconstruct a witness of its own.
    ///
    /// Soundness: the incumbent's feasibility is the *caller's* claim, so an
    /// incumbent-assisted [`OptVerdict::Optimal`] is exact **conditional on
    /// that schedule being legal** — which the sixth-oracle wiring guarantees
    /// by only passing IIs of schedules the other five oracles validate.  The
    /// solver still cross-checks the claim where it can: when the search
    /// *cleanly* refutes the incumbent II itself, the certified lower bound
    /// comes out above the incumbent and
    /// [`OptCertificate::violated_by`]`(incumbent)` reports the contradiction
    /// as a hard violation instead of papering over it.
    pub fn certify_with_incumbent(
        &self,
        graph: &DepGraph,
        machine: &MachineConfig,
        incumbent: Option<u32>,
    ) -> OptCertificate {
        let res = res_mii(graph, machine);
        let rec = rec_mii(graph);
        let lo = mii(graph, machine).max(1);
        let mut fuel = FuelMeter::new(self.budget);
        let mut dfs = Dfs::new(graph, machine);

        let mut lower_bound = lo;
        let mut feasible = None;
        let mut all_clean = true;
        let mut exhausted = false;
        let mut ii = lo;
        let limit = max_ii(lo);
        // With an incumbent the upward search stops at it: a witness above it
        // would be no improvement, and exhausting the incumbent's own II still
        // runs (the contradiction cross-check above).
        let cap = incumbent.map_or(limit, |inc| inc.min(limit));
        while ii <= cap {
            if !fuel.spend_ii_step() {
                exhausted = true;
                break;
            }
            // The partition relaxation first: a clean infeasibility proof that
            // needs no placement search at all, and the only way to advance the
            // bound past an II whose placement search carries caveats.
            let outcome = match partition_refutes(graph, machine, &dfs.pool, ii, &mut fuel) {
                PartitionCheck::Refuted => Search::Exhausted { clean: true },
                PartitionCheck::FuelOut => Search::FuelOut,
                PartitionCheck::Feasible => dfs.search(ii, &mut fuel),
            };
            match outcome {
                Search::Found => {
                    debug_assert!(dfs.sched.is_complete());
                    feasible = Some(ii);
                    break;
                }
                Search::Exhausted { clean } => {
                    if clean && all_clean && lower_bound == ii {
                        lower_bound = ii + 1;
                    } else {
                        all_clean = false;
                    }
                }
                Search::FuelOut => {
                    exhausted = true;
                    break;
                }
            }
            ii += 1;
        }

        let verdict = match (feasible, incumbent) {
            // The solver found its own witness: fully self-contained claim.
            (Some(w), _) => {
                self.validate_witness(graph, machine, &mut dfs.sched);
                if w == lower_bound {
                    OptVerdict::Optimal { ii: w }
                } else {
                    OptVerdict::LowerBound {
                        ii: lower_bound,
                        feasible: Some(w),
                    }
                }
            }
            // No solver witness, but the caller holds one at `inc`.  The
            // certified floor meeting it pins the optimum; a floor *above* it
            // is the contradiction case (reported as a plain lower bound, so
            // `violated_by(inc)` fires); a floor below leaves a gap.
            (None, Some(inc)) => {
                if lower_bound == inc {
                    OptVerdict::Optimal { ii: inc }
                } else {
                    OptVerdict::LowerBound {
                        ii: lower_bound,
                        feasible: (lower_bound < inc).then_some(inc),
                    }
                }
            }
            (None, None) if lower_bound > limit => OptVerdict::Infeasible,
            (None, None) => OptVerdict::LowerBound {
                ii: lower_bound,
                feasible: None,
            },
        };
        OptCertificate {
            loop_name: graph.name.clone(),
            machine: machine.name.clone(),
            res_mii: res,
            rec_mii: rec,
            mii: lo,
            verdict,
            incumbent,
            spent: fuel.spent(),
            exhausted,
        }
    }

    /// Every feasibility claim is constructive: re-certify the witness through
    /// the full static lint stack before letting it into a verdict.
    fn validate_witness(
        &self,
        graph: &DepGraph,
        machine: &MachineConfig,
        sched: &mut ModuloSchedule,
    ) {
        sched.normalize();
        let iterations = graph.iterations.clamp(4, 40);
        let report = Certifier::new(machine).check(graph, sched, iterations);
        assert_eq!(
            report.deny_ids(),
            Vec::<String>::new(),
            "solver witness for {} on {} failed static certification",
            graph.name,
            machine.name
        );
    }
}

/// The fixed-II DFS state.  One instance is reused across the II loop so the
/// order, component labels and scratch buffers are computed once per loop.
struct Dfs<'a> {
    graph: &'a DepGraph,
    machine: &'a MachineConfig,
    pool: ResourcePool,
    /// Node expansion order: weak components in first-node order, SCCs in
    /// topological order within each component, SCC members in ASAP order.
    order: Vec<NodeId>,
    component_of: Vec<usize>,
    sched: ModuloSchedule,
    mrt: ModuloReservationTable,
    analysis: GraphAnalysis,
    ii: u32,
    /// Placements per cluster (drives the used-plus-one-fresh symmetry rule).
    cluster_load: Vec<u32>,
    /// Placements per weak component (drives the free-shift window rule).
    component_load: Vec<u32>,
    /// A completeness caveat fired somewhere in the current II's search.
    unclean: bool,
}

impl<'a> Dfs<'a> {
    fn new(graph: &'a DepGraph, machine: &'a MachineConfig) -> Self {
        let pool = ResourcePool::new(machine);
        let component_of = weak_components(graph);
        let order = expansion_order(graph, &component_of);
        let n_components = component_of.iter().copied().max().map_or(0, |m| m + 1);
        // Placeholder II for the scratch state; `search` rebuilds at the real
        // II (which is always >= RecMII, the smallest II the analysis accepts).
        let scratch_ii = rec_mii(graph).max(1);
        Self {
            graph,
            machine,
            mrt: ModuloReservationTable::new(&pool, scratch_ii),
            pool,
            order,
            component_of,
            sched: ModuloSchedule::new(graph.name.clone(), graph.n_nodes(), scratch_ii, scratch_ii),
            analysis: GraphAnalysis::new(graph, scratch_ii),
            ii: scratch_ii,
            cluster_load: vec![0; machine.n_clusters],
            component_load: vec![0; n_components],
            unclean: false,
        }
    }

    /// Run the DFS at `ii`.  On [`Search::Found`] the complete schedule is left
    /// in `self.sched`.
    fn search(&mut self, ii: u32, fuel: &mut FuelMeter) -> Search {
        self.ii = ii;
        self.sched = ModuloSchedule::new(self.graph.name.clone(), self.graph.n_nodes(), ii, ii);
        self.mrt.reset(ii);
        self.analysis = GraphAnalysis::new(self.graph, ii);
        self.cluster_load.iter_mut().for_each(|c| *c = 0);
        self.component_load.iter_mut().for_each(|c| *c = 0);
        self.unclean = false;
        let out = self.expand(0, fuel);
        match out {
            Search::Found => Search::Found,
            Search::FuelOut => Search::FuelOut,
            Search::Exhausted { .. } => Search::Exhausted {
                clean: !self.unclean,
            },
        }
    }

    /// Place `self.order[depth..]`, backtracking over (cluster, cycle, FU).
    fn expand(&mut self, depth: usize, fuel: &mut FuelMeter) -> Search {
        if depth == self.order.len() {
            return Search::Found;
        }
        if !fuel.spend_attempt() {
            return Search::FuelOut;
        }
        let node = self.order[depth];
        let kind = self.graph.node(node).class.fu_kind();
        let bus_latency = self.machine.buses.latency;

        // Cluster symmetry: identical clusters, so only the clusters already
        // holding a placement plus the first empty one are distinguishable.
        let mut tried_fresh = false;
        for cluster in 0..self.machine.n_clusters {
            if self.cluster_load[cluster] == 0 {
                if tried_fresh {
                    break;
                }
                tried_fresh = true;
            }
            let early = early_start(
                self.graph,
                &self.sched,
                node,
                self.ii,
                Some(cluster),
                bus_latency,
            );
            let late = late_start(
                self.graph,
                &self.sched,
                node,
                self.ii,
                Some(cluster),
                bus_latency,
            );
            let (lo, hi) = match (early, late) {
                // Fully bounded: scan the whole dependence window — complete.
                (Some(e), Some(l)) => (e, l),
                // Early-only: II consecutive cycles; periodicity makes this
                // complete unless a future or cross-cluster constraint could
                // have used a later slot (see module docs).
                (Some(e), None) => {
                    if self.half_window_caveat(node, cluster, true) {
                        self.unclean = true;
                    }
                    (e, e + i64::from(self.ii) - 1)
                }
                (None, Some(l)) => {
                    if self.half_window_caveat(node, cluster, false) {
                        self.unclean = true;
                    }
                    (l - i64::from(self.ii) + 1, l)
                }
                // Unconstrained: anchor at ASAP; complete iff the node's whole
                // component is still unplaced (then any schedule shifts into
                // this window by a multiple of II).
                (None, None) => {
                    if self.component_load[self.component_of[node.index()]] > 0 {
                        self.unclean = true;
                    }
                    let d = self.analysis.asap(node);
                    (d, d + i64::from(self.ii) - 1)
                }
            };
            // Scan backward windows from the late end so witnesses appear fast
            // in both directions; order does not affect completeness.
            let backward = early.is_none() && late.is_some();
            let mut offset = 0i64;
            while lo + offset <= hi {
                let cycle = if backward { hi - offset } else { lo + offset };
                offset += 1;
                if !fuel.spend_probe() {
                    return Search::FuelOut;
                }
                let Some(fu) = self.mrt.find_free(self.pool.fus(cluster, kind), cycle) else {
                    continue;
                };
                let fu_reservation = self.mrt.reserve(fu, cycle);
                let requests =
                    required_comms(self.graph, &self.sched, self.machine, node, cluster, cycle);
                let mut chosen = Vec::new();
                match self.assign_comms(
                    depth,
                    node,
                    cluster,
                    cycle,
                    fu,
                    &requests,
                    0,
                    &mut chosen,
                    fuel,
                ) {
                    Search::Found => return Search::Found,
                    Search::FuelOut => return Search::FuelOut,
                    Search::Exhausted { .. } => {}
                }
                self.mrt.release(fu_reservation);
            }
        }
        Search::Exhausted {
            clean: !self.unclean,
        }
    }

    /// Assign bus slots to `requests[idx..]` for the pending placement of
    /// `node` at `(cluster, cycle, fu)`, then commit the placement and expand
    /// the next node.  Every start cycle in a request's window is a branch
    /// point, so exhausting the assignments (in concert with the placement
    /// backtracking above) is exact — unlike the production engine's
    /// [`vliw_sms::allocate_comms`], which greedily takes the first free start
    /// per transfer and cannot revisit the choice.
    ///
    /// Two reductions keep this exact without branching:
    ///
    /// * **Reuse-first.**  A committed transfer of the same value to the same
    ///   cluster inside the window is always taken over sending a fresh copy:
    ///   reuse leaves strictly more bus slots free, and any later placement
    ///   that would have reused the fresh copy can allocate an identical
    ///   transfer in the slot reuse left open.
    /// * **First-free bus.**  Single-cycle transfers occupy one MRT column, so
    ///   per-column free-bus *counts* fully determine feasibility and any free
    ///   row is as good as any other; likewise a single bus offers no choice at
    ///   all.  Only multi-cycle transfers across several buses are a genuine
    ///   row choice, and that case sets the completeness caveat.
    #[allow(clippy::too_many_arguments)]
    fn assign_comms(
        &mut self,
        depth: usize,
        node: NodeId,
        cluster: usize,
        cycle: i64,
        fu: vliw_arch::ResourceIndex,
        requests: &[CommRequest],
        idx: usize,
        chosen: &mut Vec<CommPlacement>,
        fuel: &mut FuelMeter,
    ) -> Search {
        let Some(req) = requests.get(idx) else {
            // Every request has a slot: commit the placement and recurse.
            let cp = self.sched.checkpoint();
            for c in chosen.iter() {
                self.sched.add_comm(*c);
            }
            self.sched.place(PlacedOp {
                node,
                cycle,
                cluster,
                fu,
            });
            let fits = LifetimeMap::new(self.graph, &self.sched, self.machine).fits(self.machine);
            let out = if fits {
                self.cluster_load[cluster] += 1;
                self.component_load[self.component_of[node.index()]] += 1;
                let out = self.expand(depth + 1, fuel);
                self.cluster_load[cluster] -= 1;
                self.component_load[self.component_of[node.index()]] -= 1;
                out
            } else {
                // The register files constrained the search; the shift
                // arguments no longer apply.
                self.unclean = true;
                Search::Exhausted { clean: false }
            };
            match out {
                Search::Found => return Search::Found,
                Search::FuelOut => return Search::FuelOut,
                Search::Exhausted { .. } => {}
            }
            self.sched.rollback(cp);
            return Search::Exhausted {
                clean: !self.unclean,
            };
        };
        let latency = self.machine.buses.latency;
        let reused = self.sched.comms().iter().chain(chosen.iter()).any(|c| {
            c.src_node == req.src_node
                && c.to_cluster == req.to_cluster
                && c.start_cycle >= req.ready
                && c.start_cycle + c.duration as i64 <= req.deadline
        });
        if reused {
            return self.assign_comms(
                depth,
                node,
                cluster,
                cycle,
                fu,
                requests,
                idx + 1,
                chosen,
                fuel,
            );
        }
        if req.deadline - req.ready < latency as i64 {
            // Empty window: the placement cycle itself is infeasible — a clean
            // prune, exactly like the engine's `WindowTooSmall`.
            return Search::Exhausted {
                clean: !self.unclean,
            };
        }
        // At most II distinct MRT columns exist, so scanning more starts would
        // only revisit them (same clamp as the production allocator).
        let last_start = (req.deadline - latency as i64).min(req.ready + i64::from(self.ii) - 1);
        for start in req.ready..=last_start {
            if !fuel.spend_probe() {
                return Search::FuelOut;
            }
            let Some(bus) = self.mrt.find_free_for(self.pool.buses(), start, latency) else {
                continue;
            };
            if latency > 1 && self.machine.buses.count > 1 {
                self.unclean = true;
            }
            let reservation = self.mrt.reserve_for(bus, start, latency);
            chosen.push(CommPlacement {
                src_node: req.src_node,
                dst_node: req.dst_node,
                from_cluster: req.from_cluster,
                to_cluster: req.to_cluster,
                bus,
                start_cycle: start,
                duration: latency,
            });
            match self.assign_comms(
                depth,
                node,
                cluster,
                cycle,
                fu,
                requests,
                idx + 1,
                chosen,
                fuel,
            ) {
                Search::Found => return Search::Found,
                Search::FuelOut => return Search::FuelOut,
                Search::Exhausted { .. } => {}
            }
            chosen.pop();
            self.mrt.release(reservation);
        }
        Search::Exhausted {
            clean: !self.unclean,
        }
    }

    /// Whether an II-clamped half-window on `node` (forward scan when
    /// `forward`, else backward) breaks the shift-completeness argument: a
    /// not-yet-placed dependence neighbour on the shifted side, or a placed
    /// cross-cluster value neighbour whose bus window the shift narrows.
    fn half_window_caveat(&self, node: NodeId, cluster: usize, forward: bool) -> bool {
        if forward {
            self.graph.in_edges(node).any(|e| {
                e.src != node
                    && match self.sched.placement(e.src) {
                        None => true,
                        Some(p) => e.kind.carries_value() && p.cluster != cluster,
                    }
            })
        } else {
            self.graph.out_edges(node).any(|e| {
                e.dst != node
                    && match self.sched.placement(e.dst) {
                        None => true,
                        Some(p) => e.kind.carries_value() && p.cluster != cluster,
                    }
            })
        }
    }
}

/// Outcome of the partition-relaxation infeasibility check.
enum PartitionCheck {
    /// No node→cluster assignment meets the capacity conditions: the II is
    /// cleanly infeasible.
    Refuted,
    /// Some assignment meets them.  The relaxation is a necessary condition,
    /// not a sufficient one — the placement search still has to run.
    Feasible,
    /// The fuel budget ran out mid-enumeration.
    FuelOut,
}

/// The partition relaxation: any legal modulo schedule at `ii` induces an
/// assignment of nodes to clusters in which
///
/// * each cluster issues at most `fus(kind) · ii` operations per FU kind (every
///   op occupies one column of one FU row of its kind), and
/// * each value consumed in a cluster other than its producer's crosses a bus
///   at least once per iteration, so the distinct `(value, consuming cluster)`
///   pairs cost at least `bus_latency` columns each out of the `buses · ii`
///   available.
///
/// Exhausting every assignment (up to cluster permutation — clusters are
/// identical) without satisfying both conditions is therefore a *clean* proof
/// that no schedule at `ii` exists, independent of every window and ordering
/// restriction of the placement search.  This is what lets the certified lower
/// bound climb past an II whose placement search carries completeness caveats —
/// on bus-bound clustered loops, usually all of them.
fn partition_refutes(
    graph: &DepGraph,
    machine: &MachineConfig,
    pool: &ResourcePool,
    ii: u32,
    fuel: &mut FuelMeter,
) -> PartitionCheck {
    let n_clusters = machine.n_clusters;
    if n_clusters <= 1 {
        // One cluster: condition (a) is ResMII (already below every probed II)
        // and no transfers exist — nothing to refute.
        return PartitionCheck::Feasible;
    }
    let n = graph.n_nodes();
    let mut fu_cap = vec![0u64; FuKind::ALL.len()];
    for &k in &FuKind::ALL {
        fu_cap[k.index()] = pool.fus(0, k).count() as u64 * u64::from(ii);
    }
    let bus_cap = machine.buses.count as u64 * u64::from(ii);
    let bus_lat = u64::from(machine.buses.latency);
    let kind_of: Vec<usize> = (0..n)
        .map(|i| graph.node(NodeId(i as u32)).class.fu_kind().index())
        .collect();

    struct Enum<'g> {
        graph: &'g DepGraph,
        kind_of: Vec<usize>,
        fu_cap: Vec<u64>,
        bus_cap: u64,
        bus_lat: u64,
        n_clusters: usize,
        assign: Vec<usize>,
        counts: Vec<[u64; 3]>,
        transfers: Vec<(NodeId, usize)>,
    }
    impl Enum<'_> {
        fn go(&mut self, idx: usize, used: usize, fuel: &mut FuelMeter) -> PartitionCheck {
            if idx == self.graph.n_nodes() {
                return PartitionCheck::Feasible;
            }
            let node = NodeId(idx as u32);
            let kind = self.kind_of[idx];
            // Identical clusters: only the ones already holding a node plus
            // one fresh cluster are distinguishable.
            for cluster in 0..self.n_clusters.min(used + 1) {
                if !fuel.spend_probe() {
                    return PartitionCheck::FuelOut;
                }
                if self.counts[cluster][kind] + 1 > self.fu_cap[kind] {
                    continue;
                }
                // Record the new cross-cluster value transfers this choice
                // creates, deduplicated per (value, consuming cluster).
                let mark = self.transfers.len();
                for e in self.graph.in_edges(node).filter(|e| e.kind.carries_value()) {
                    if e.src == node || self.assign[e.src.index()] == usize::MAX {
                        continue;
                    }
                    if self.assign[e.src.index()] != cluster
                        && !self.transfers.contains(&(e.src, cluster))
                    {
                        self.transfers.push((e.src, cluster));
                    }
                }
                for e in self
                    .graph
                    .out_edges(node)
                    .filter(|e| e.kind.carries_value())
                {
                    let dst = self
                        .assign
                        .get(e.dst.index())
                        .copied()
                        .unwrap_or(usize::MAX);
                    if e.dst == node || dst == usize::MAX {
                        continue;
                    }
                    if dst != cluster && !self.transfers.contains(&(node, dst)) {
                        self.transfers.push((node, dst));
                    }
                }
                if self.transfers.len() as u64 * self.bus_lat <= self.bus_cap {
                    self.assign[idx] = cluster;
                    self.counts[cluster][kind] += 1;
                    let next_used = used.max(cluster + 1);
                    match self.go(idx + 1, next_used, fuel) {
                        PartitionCheck::Feasible => return PartitionCheck::Feasible,
                        PartitionCheck::FuelOut => return PartitionCheck::FuelOut,
                        PartitionCheck::Refuted => {}
                    }
                    self.counts[cluster][kind] -= 1;
                    self.assign[idx] = usize::MAX;
                }
                self.transfers.truncate(mark);
            }
            PartitionCheck::Refuted
        }
    }
    let mut e = Enum {
        graph,
        kind_of,
        fu_cap,
        bus_cap,
        bus_lat,
        n_clusters,
        assign: vec![usize::MAX; n],
        counts: vec![[0; 3]; n_clusters],
        transfers: Vec::new(),
    };
    e.go(0, 0, fuel)
}

/// Label each node with its weakly-connected component (edges taken both ways).
fn weak_components(graph: &DepGraph) -> Vec<usize> {
    let n = graph.n_nodes();
    let mut parent: Vec<usize> = (0..n).collect();
    fn find(parent: &mut [usize], x: usize) -> usize {
        let mut root = x;
        while parent[root] != root {
            root = parent[root];
        }
        let mut cur = x;
        while parent[cur] != root {
            let next = parent[cur];
            parent[cur] = root;
            cur = next;
        }
        root
    }
    for e in graph.edges() {
        let (a, b) = (
            find(&mut parent, e.src.index()),
            find(&mut parent, e.dst.index()),
        );
        if a != b {
            parent[a.max(b)] = a.min(b);
        }
    }
    let mut label = vec![usize::MAX; n];
    let mut next = 0;
    for i in 0..n {
        let r = find(&mut parent, i);
        if label[r] == usize::MAX {
            label[r] = next;
            next += 1;
        }
        label[i] = label[r];
    }
    label
}

/// Deterministic node-expansion order: weak components by first node id, SCCs
/// of each component in topological order of the condensation, SCC members by
/// smallest node id.  Topological processing maximizes the number of nodes
/// whose predecessors are all placed at expansion time — exactly the nodes the
/// half-window completeness argument covers.
fn expansion_order(graph: &DepGraph, component_of: &[usize]) -> Vec<NodeId> {
    let comps = sccs(graph);
    let n_sccs = comps.len();
    let mut scc_of = vec![0usize; graph.n_nodes()];
    for (i, scc) in comps.iter().enumerate() {
        for &v in scc {
            scc_of[v.index()] = i;
        }
    }
    // Kahn over the condensation, smallest-first-node SCC first for determinism.
    let mut indeg = vec![0u32; n_sccs];
    for e in graph.edges() {
        let (a, b) = (scc_of[e.src.index()], scc_of[e.dst.index()]);
        if a != b {
            indeg[b] += 1;
        }
    }
    let scc_key = |i: usize| {
        let first = comps[i].iter().map(|v| v.index()).min().unwrap_or(0);
        (component_of[first], first)
    };
    let mut ready: Vec<usize> = (0..n_sccs).filter(|&i| indeg[i] == 0).collect();
    let mut order = Vec::with_capacity(graph.n_nodes());
    while !ready.is_empty() {
        ready.sort_by_key(|&i| scc_key(i));
        let i = ready.remove(0);
        let mut members = comps[i].clone();
        members.sort_by_key(|v| v.index());
        order.extend(members);
        for e in graph.edges() {
            let (a, b) = (scc_of[e.src.index()], scc_of[e.dst.index()]);
            if a == i && b != i {
                indeg[b] -= 1;
                if indeg[b] == 0 {
                    ready.push(b);
                }
            }
        }
    }
    debug_assert_eq!(order.len(), graph.n_nodes());
    order
}

#[cfg(test)]
mod tests {
    use super::*;
    use vliw_arch::OpClass;
    use vliw_ddg::DepKind;

    fn chain(n: usize, latency: u32) -> DepGraph {
        let mut g = DepGraph::new("chain");
        let mut prev = None;
        for _ in 0..n {
            let v = g.add_node(OpClass::IntAlu);
            if let Some(p) = prev {
                g.add_edge(p, v, latency, 0, DepKind::Flow);
            }
            prev = Some(v);
        }
        g
    }

    #[test]
    fn a_chain_is_optimal_at_res_mii() {
        let machine = MachineConfig::unified();
        let g = chain(8, 1);
        let cert = OptimalSolver::default().certify(&g, &machine);
        assert_eq!(cert.verdict, OptVerdict::Optimal { ii: cert.mii });
        assert!(cert.is_exact());
        assert_eq!(cert.gap_to(cert.mii), Some(0));
    }

    #[test]
    fn recurrence_pins_the_optimum_to_rec_mii() {
        let machine = MachineConfig::unified();
        let mut g = DepGraph::new("rec");
        let a = g.add_node(OpClass::IntAlu);
        let b = g.add_node(OpClass::IntAlu);
        g.add_edge(a, b, 1, 0, DepKind::Flow);
        g.add_edge(b, a, 1, 1, DepKind::Flow);
        let cert = OptimalSolver::default().certify(&g, &machine);
        assert_eq!(cert.rec_mii, 2);
        assert_eq!(cert.verdict, OptVerdict::Optimal { ii: 2 });
    }

    #[test]
    fn fuel_starvation_degrades_to_the_mii_lower_bound() {
        let machine = MachineConfig::two_cluster(1, 1);
        let g = chain(12, 2);
        let cert = OptimalSolver::new(FuelBudget::probes(3)).certify(&g, &machine);
        assert!(cert.exhausted);
        assert_eq!(
            cert.verdict,
            OptVerdict::LowerBound {
                ii: cert.mii,
                feasible: None
            }
        );
        assert!(!cert.violated_by(cert.mii));
        assert!(cert.violated_by(cert.mii - 1));
    }

    #[test]
    fn an_incumbent_at_mii_is_certified_optimal_even_under_starved_fuel() {
        // The incumbent IS the witness: with the floor already at MII, no
        // search is needed to pin the optimum, so even a 1-probe budget
        // certifies exactly — the common case that carries the fuzz corpus.
        let machine = MachineConfig::two_cluster(1, 1);
        let g = chain(12, 2);
        let cert = OptimalSolver::new(FuelBudget::probes(1)).certify_with_incumbent(
            &g,
            &machine,
            Some(mii(&g, &machine)),
        );
        assert_eq!(cert.verdict, OptVerdict::Optimal { ii: cert.mii });
        assert_eq!(cert.incumbent, Some(cert.mii));
    }

    #[test]
    fn an_incumbent_below_mii_is_reported_as_a_violation() {
        // A caller claiming an II below the theory floor is contradicted: the
        // certificate keeps the floor and `violated_by` fires.
        let machine = MachineConfig::unified();
        let g = chain(8, 1);
        let below = mii(&g, &machine) - 1;
        let cert = OptimalSolver::default().certify_with_incumbent(&g, &machine, Some(below));
        assert_eq!(
            cert.verdict,
            OptVerdict::LowerBound {
                ii: cert.mii,
                feasible: None
            }
        );
        assert!(cert.violated_by(below));
    }

    #[test]
    fn incumbent_and_cold_solves_agree_on_the_optimum() {
        let machine = MachineConfig::unified();
        let g = chain(8, 1);
        let cold = OptimalSolver::default().certify(&g, &machine);
        let opt = cold.optimal_ii().expect("chain solves exactly");
        let seeded = OptimalSolver::default().certify_with_incumbent(&g, &machine, Some(opt));
        assert_eq!(seeded.verdict, cold.verdict);
    }

    #[test]
    fn bus_bandwidth_refutes_the_mii_via_the_partition_relaxation() {
        // One producer broadcasting to 7 consumers on the 4-cluster machine:
        // ResMII = 2 (8 int ops over 4 ALUs), but at II = 2 every cluster is
        // packed with exactly 2 ops, so the value must reach 3 foreign
        // clusters over the single bus's 2 columns — the partition relaxation
        // refutes II = 2 outright and the solver pins the optimum at 3.
        let machine = MachineConfig::four_cluster(1, 1);
        let mut g = DepGraph::new("broadcast");
        let a = g.add_node(OpClass::IntAlu);
        for _ in 0..7 {
            let b = g.add_node(OpClass::IntAlu);
            g.add_edge(a, b, 1, 0, DepKind::Flow);
        }
        let cert = OptimalSolver::default().certify(&g, &machine);
        assert_eq!(cert.mii, 2);
        assert_eq!(cert.verdict, OptVerdict::Optimal { ii: 3 });
        assert_eq!(cert.gap_to(3), Some(0));
        assert!(
            cert.violated_by(2),
            "an II below the refuted range must violate"
        );
    }

    #[test]
    fn certificates_roundtrip_through_json() {
        let machine = MachineConfig::two_cluster(1, 1);
        let g = chain(5, 1);
        let cert = OptimalSolver::default().certify(&g, &machine);
        let json = serde_json::to_string(&cert).unwrap();
        let back: OptCertificate = serde_json::from_str(&json).unwrap();
        assert_eq!(back, cert);
    }
}
