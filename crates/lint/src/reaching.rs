//! Reaching definitions across loop-carried dependences.
//!
//! The forward counterpart of [`crate::liveness`]: bit `v` is *generated* at the
//! kernel row where `v`'s value is defined in a cluster (issue row in the producer
//! cluster, arrival row in a receiving cluster) and *killed* at the row the value's
//! register frees, so the fixpoint state at row `r` answers "which definitions are
//! available entering row `r`?".  Because the engine iterates across the `II`
//! wraparound, a definition late in the kernel reaches reads early in the kernel —
//! which is precisely how a loop-carried dependence of distance `d` is satisfied by
//! the instance issued `d` iterations earlier.
//!
//! Like the live sets, these are *membership* facts over a non-rotating view of the
//! kernel: a value whose lifetime exceeds `II` has several in-flight instances that
//! one bit cannot distinguish.  The certifier therefore proves dependence legality
//! with closed-form slack arithmetic ([`crate::certify`]); this analysis exists for
//! queries and diagnostics, and as the forward exercise of the engine.

use crate::domain::BitSet;
use crate::engine::{fixpoint, Direction, KernelAnalysis};
use std::collections::BTreeMap;
use vliw_arch::MachineConfig;
use vliw_ddg::{DepGraph, NodeId};
use vliw_sms::ModuloSchedule;

use crate::liveness::ValueInterval;

struct ClusterReaching {
    rows: usize,
    universe: usize,
    gens: Vec<Vec<usize>>,
    kills: Vec<Vec<usize>>,
}

impl KernelAnalysis for ClusterReaching {
    fn rows(&self) -> usize {
        self.rows
    }
    fn universe(&self) -> usize {
        self.universe
    }
    fn direction(&self) -> Direction {
        Direction::Forward
    }
    fn transfer(&self, row: usize, state: &mut BitSet) {
        // out = (in − kills) ∪ gens; gen wins when a one-cycle value is defined and
        // freed in the same row.
        for &k in &self.kills[row] {
            state.remove(k);
        }
        for &g in &self.gens[row] {
            state.insert(g);
        }
    }
}

/// Reaching-definition sets per cluster and kernel row.
#[derive(Debug, Clone)]
pub struct ReachingDefs {
    ii: u32,
    /// `reach_in[cluster][row]`: definitions available entering that row.
    reach_in: Vec<Vec<BitSet>>,
    value_bits: BTreeMap<u32, usize>,
}

impl ReachingDefs {
    /// Solve reaching definitions for `sched`, reusing the live intervals already
    /// derived by a [`crate::ModuloLiveness`] pass (`intervals`).
    pub fn new(intervals: &[ValueInterval], machine: &MachineConfig, ii: u32) -> Self {
        let mut value_bits = BTreeMap::new();
        for iv in intervals {
            let next = value_bits.len();
            value_bits.entry(iv.node.0).or_insert(next);
        }
        let universe = value_bits.len();

        let mut reach_in = Vec::with_capacity(machine.n_clusters);
        for cluster in 0..machine.n_clusters {
            let mut analysis = ClusterReaching {
                rows: ii as usize,
                universe,
                gens: vec![Vec::new(); ii as usize],
                kills: vec![Vec::new(); ii as usize],
            };
            for iv in intervals.iter().filter(|iv| iv.cluster == cluster) {
                let bit = value_bits[&iv.node.0];
                let def_row = iv.start.rem_euclid(ii as i64) as usize;
                let free_row = (iv.start + iv.len()).rem_euclid(ii as i64) as usize;
                analysis.gens[def_row].push(bit);
                analysis.kills[free_row].push(bit);
            }
            reach_in.push(fixpoint(&analysis));
        }

        Self {
            ii,
            reach_in,
            value_bits,
        }
    }

    /// Convenience: derive the intervals from scratch and solve.
    pub fn of_schedule(graph: &DepGraph, sched: &ModuloSchedule, machine: &MachineConfig) -> Self {
        let live = crate::ModuloLiveness::new(graph, sched, machine);
        Self::new(live.intervals(), machine, sched.ii())
    }

    /// The schedule's initiation interval.
    pub fn ii(&self) -> u32 {
        self.ii
    }

    /// Definitions available entering `row` of `cluster`.
    pub fn reach_in(&self, cluster: usize, row: usize) -> &BitSet {
        &self.reach_in[cluster][row]
    }

    /// Whether `node`'s definition reaches the entry of `row` in `cluster`.
    pub fn reaches(&self, cluster: usize, row: usize, node: NodeId) -> bool {
        self.value_bits
            .get(&node.0)
            .is_some_and(|&bit| self.reach_in[cluster][row].contains(bit))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vliw_arch::{FuKind, MachineConfig, OpClass, ResourcePool};
    use vliw_ddg::DepKind;
    use vliw_sms::PlacedOp;

    #[test]
    fn loop_carried_definition_reaches_across_the_wraparound() {
        // Producer at cycle 3 (row 3), loop-carried consumer (distance 1) at cycle
        // 1: the read happens at cycle 1 + II = 5, so the value is live across the
        // row-3 → row-0 wrap and its definition must reach rows 0 and 1.
        let machine = MachineConfig::unified();
        let pool = ResourcePool::new(&machine);
        let mut g = DepGraph::new("carried");
        let a = g.add_node(OpClass::FpAdd);
        let b = g.add_node(OpClass::FpMul);
        g.add_edge(a, b, 1, 1, DepKind::Flow);
        let mut s = ModuloSchedule::new("carried", 2, 4, 1);
        s.place(PlacedOp {
            node: a,
            cycle: 3,
            cluster: 0,
            fu: pool.fus(0, FuKind::Fp).next().unwrap(),
        });
        s.place(PlacedOp {
            node: b,
            cycle: 1,
            cluster: 0,
            fu: pool.fus(0, FuKind::Fp).nth(1).unwrap(),
        });
        let reach = ReachingDefs::of_schedule(&g, &s, &machine);
        // Interval of `a`: cycles 3..5 ⇒ defined at row 3, freed at row 1.
        assert!(reach.reaches(0, 0, a), "reaches row 0 across the wrap");
        assert!(reach.reaches(0, 1, a), "still live entering its free row");
        assert!(!reach.reaches(0, 2, a), "freed at row 1");
        assert!(!reach.reaches(0, 3, a), "not yet defined entering row 3");
        // `b` has no reader: one-cycle occupancy at row 1, visible entering row 2.
        assert!(reach.reaches(0, 2, b));
        assert!(!reach.reaches(0, 1, b));
    }
}
