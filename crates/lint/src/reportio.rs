//! Shared report-writing and exit-code policy for the gate binaries.
//!
//! The `verify` and `lint` bins have the same tail: serialize a deterministic
//! report under `results/`, print where it went, and exit non-zero iff violations
//! were found so CI can gate on the process status.  Both route through here (as
//! does `vliw_bench::write_json`) instead of each re-implementing the policy.

use serde::Serialize;
use std::path::{Path, PathBuf};

/// Write `value` as pretty JSON to `results/<name>.json` (creating the
/// directory), returning the path.
pub fn write_results_json<T: Serialize>(name: &str, value: &T) -> std::io::Result<PathBuf> {
    let dir = Path::new("results");
    std::fs::create_dir_all(dir)?;
    let path = dir.join(format!("{name}.json"));
    std::fs::write(&path, serde_json::to_string_pretty(value)?)?;
    Ok(path)
}

/// The gate bins' shared ending: announce the report, print `PASS`/`FAIL`, and
/// exit 0 iff `violations == 0`.
pub fn exit_on_violations(report_path: &Path, violations: usize, pass: &str, fail: &str) -> ! {
    println!("report written to {}", report_path.display());
    if violations == 0 {
        println!("PASS: {pass}");
        std::process::exit(0);
    }
    println!("FAIL: {fail}");
    std::process::exit(1);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn writes_pretty_json_under_results() {
        // Run in a scratch dir so the test does not litter the repo's results/.
        let scratch = std::env::temp_dir().join("vliw_lint_reportio_test");
        std::fs::create_dir_all(&scratch).unwrap();
        let prev = std::env::current_dir().unwrap();
        std::env::set_current_dir(&scratch).unwrap();
        let path = write_results_json("reportio_smoke", &vec![1, 2, 3]).unwrap();
        let body = std::fs::read_to_string(&path).unwrap();
        std::env::set_current_dir(prev).unwrap();
        assert!(body.contains('\n'), "pretty-printed");
        assert_eq!(
            serde_json::from_str::<Vec<i32>>(&body).unwrap(),
            vec![1, 2, 3]
        );
    }
}
