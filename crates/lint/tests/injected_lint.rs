//! Injected-bug tests: every deny-level lint must fire on a hand-built schedule
//! carrying exactly that defect.  These are the regression teeth behind the
//! certifier — each test plants one violation the dynamic verifier would catch by
//! replay and proves the static certifier rejects it without executing anything.
//!
//! The tests are plain `assert!`s over `LintReport::deny_ids()` (no
//! `debug_assert!`), so they reject the same schedules under
//! `cargo test --release` — that is the point of the code-size clamp's promotion
//! from a debug assertion to a deny lint.

use vliw_arch::{FuKind, MachineConfig, OpClass, ResourceIndex, ResourcePool};
use vliw_ddg::{DepGraph, DepKind};
use vliw_lint::Certifier;
use vliw_sms::{CommPlacement, ModuloSchedule, PlacedOp};

/// First functional unit of `kind` on `cluster`.
fn fu(pool: &ResourcePool, cluster: usize, kind: FuKind) -> ResourceIndex {
    pool.fus(cluster, kind)
        .next()
        .unwrap_or_else(|| panic!("no {kind} unit on cluster {cluster}"))
}

fn deny_ids(machine: &MachineConfig, graph: &DepGraph, sched: &ModuloSchedule) -> Vec<String> {
    Certifier::new(machine).check(graph, sched, 8).deny_ids()
}

#[test]
fn unscheduled_node_fires_on_a_schedule_with_holes() {
    let machine = MachineConfig::unified();
    let mut g = DepGraph::new("holes");
    g.add_node(OpClass::IntAlu);
    let sched = ModuloSchedule::new("holes", g.n_nodes(), 2, 1);
    let ids = deny_ids(&machine, &g, &sched);
    assert!(ids.contains(&"unscheduled-node".to_string()), "{ids:?}");
}

#[test]
fn bad_placement_fires_on_a_functional_unit_kind_mismatch() {
    let machine = MachineConfig::unified();
    let pool = ResourcePool::new(&machine);
    let mut g = DepGraph::new("kind-mismatch");
    let a = g.add_node(OpClass::FpAdd);
    let mut sched = ModuloSchedule::new("kind-mismatch", g.n_nodes(), 2, 1);
    // A floating-point add issued to an integer unit.
    sched.place(PlacedOp {
        node: a,
        cycle: 0,
        cluster: 0,
        fu: fu(&pool, 0, FuKind::Int),
    });
    let ids = deny_ids(&machine, &g, &sched);
    assert!(ids.contains(&"bad-placement".to_string()), "{ids:?}");
}

#[test]
fn bad_placement_fires_on_a_foreign_cluster_unit() {
    let machine = MachineConfig::two_cluster(1, 1);
    let pool = ResourcePool::new(&machine);
    let mut g = DepGraph::new("foreign-unit");
    let a = g.add_node(OpClass::IntAlu);
    let mut sched = ModuloSchedule::new("foreign-unit", g.n_nodes(), 2, 1);
    // Claimed to run on cluster 1, reserved a cluster-0 unit.
    sched.place(PlacedOp {
        node: a,
        cycle: 0,
        cluster: 1,
        fu: fu(&pool, 0, FuKind::Int),
    });
    let ids = deny_ids(&machine, &g, &sched);
    assert!(ids.contains(&"bad-placement".to_string()), "{ids:?}");
}

#[test]
fn dependence_violated_fires_when_the_consumer_issues_too_early() {
    let machine = MachineConfig::unified();
    let pool = ResourcePool::new(&machine);
    let mut g = DepGraph::new("too-early");
    let a = g.add_node(OpClass::Load);
    let b = g.add_node(OpClass::FpAdd);
    g.add_edge(a, b, 2, 0, DepKind::Flow);
    let mut sched = ModuloSchedule::new("too-early", g.n_nodes(), 4, 1);
    sched.place(PlacedOp {
        node: a,
        cycle: 0,
        cluster: 0,
        fu: fu(&pool, 0, FuKind::Mem),
    });
    // Latency 2, issued 1 cycle later: slack −1.
    sched.place(PlacedOp {
        node: b,
        cycle: 1,
        cluster: 0,
        fu: fu(&pool, 0, FuKind::Fp),
    });
    let ids = deny_ids(&machine, &g, &sched);
    assert!(ids.contains(&"dependence-violated".to_string()), "{ids:?}");
}

#[test]
fn missing_communication_fires_on_a_bus_free_cross_cluster_value() {
    let machine = MachineConfig::two_cluster(1, 1);
    let pool = ResourcePool::new(&machine);
    let mut g = DepGraph::new("no-comm");
    let a = g.add_node(OpClass::Load);
    let b = g.add_node(OpClass::FpAdd);
    g.add_edge(a, b, 2, 0, DepKind::Flow);
    let mut sched = ModuloSchedule::new("no-comm", g.n_nodes(), 2, 1);
    sched.place(PlacedOp {
        node: a,
        cycle: 0,
        cluster: 0,
        fu: fu(&pool, 0, FuKind::Mem),
    });
    // Consumed on the other cluster with plenty of slack — but no transfer exists.
    sched.place(PlacedOp {
        node: b,
        cycle: 8,
        cluster: 1,
        fu: fu(&pool, 1, FuKind::Fp),
    });
    let ids = deny_ids(&machine, &g, &sched);
    assert!(
        ids.contains(&"missing-communication".to_string()),
        "{ids:?}"
    );
}

#[test]
fn dependence_violated_fires_when_every_transfer_instance_arrives_late() {
    let machine = MachineConfig::two_cluster(1, 1);
    let pool = ResourcePool::new(&machine);
    let mut g = DepGraph::new("late-comm");
    let a = g.add_node(OpClass::Load);
    let b = g.add_node(OpClass::FpAdd);
    g.add_edge(a, b, 2, 0, DepKind::Flow);
    let mut sched = ModuloSchedule::new("late-comm", g.n_nodes(), 2, 1);
    sched.place(PlacedOp {
        node: a,
        cycle: 0,
        cluster: 0,
        fu: fu(&pool, 0, FuKind::Mem),
    });
    sched.place(PlacedOp {
        node: b,
        cycle: 2,
        cluster: 1,
        fu: fu(&pool, 1, FuKind::Fp),
    });
    // The value exists at cycle 2, so the earliest usable transfer instance of a
    // row-0 comm starts at cycle 2 and lands at cycle 3 — after the consumer.
    sched.add_comm(CommPlacement {
        src_node: a,
        dst_node: b,
        from_cluster: 0,
        to_cluster: 1,
        bus: pool.buses().next().unwrap(),
        start_cycle: 0,
        duration: 1,
    });
    let ids = deny_ids(&machine, &g, &sched);
    assert!(ids.contains(&"dependence-violated".to_string()), "{ids:?}");
}

#[test]
fn fu_conflict_fires_on_a_double_booked_kernel_row() {
    let machine = MachineConfig::unified();
    let pool = ResourcePool::new(&machine);
    let mut g = DepGraph::new("double-booked");
    let a = g.add_node(OpClass::IntAlu);
    let b = g.add_node(OpClass::IntAlu);
    let unit = fu(&pool, 0, FuKind::Int);
    let mut sched = ModuloSchedule::new("double-booked", g.n_nodes(), 2, 1);
    sched.place(PlacedOp {
        node: a,
        cycle: 0,
        cluster: 0,
        fu: unit,
    });
    // Cycle 2 folds onto kernel row 0 under II = 2: same unit, same row.
    sched.place(PlacedOp {
        node: b,
        cycle: 2,
        cluster: 0,
        fu: unit,
    });
    let ids = deny_ids(&machine, &g, &sched);
    assert!(ids.contains(&"fu-conflict".to_string()), "{ids:?}");
}

#[test]
fn bus_conflict_fires_on_overlapping_transfers() {
    let machine = MachineConfig::two_cluster(1, 1);
    let pool = ResourcePool::new(&machine);
    let bus = pool.buses().next().unwrap();
    let mut g = DepGraph::new("bus-clash");
    let a0 = g.add_node(OpClass::Load);
    let a1 = g.add_node(OpClass::Load);
    let b0 = g.add_node(OpClass::FpAdd);
    let b1 = g.add_node(OpClass::FpAdd);
    g.add_edge(a0, b0, 2, 0, DepKind::Flow);
    g.add_edge(a1, b1, 2, 0, DepKind::Flow);
    let mut sched = ModuloSchedule::new("bus-clash", g.n_nodes(), 2, 1);
    let mut mem = pool.fus(0, FuKind::Mem);
    let mut fp = pool.fus(1, FuKind::Fp);
    for (node, cycle, cluster, unit) in [
        (a0, 0, 0, mem.next().unwrap()),
        (a1, 0, 0, mem.next().unwrap()),
        (b0, 9, 1, fp.next().unwrap()),
        (b1, 9, 1, fp.next().unwrap()),
    ] {
        sched.place(PlacedOp {
            node,
            cycle,
            cluster,
            fu: unit,
        });
    }
    // Both values cross on the only bus in the same kernel row.
    for (src, dst) in [(a0, b0), (a1, b1)] {
        sched.add_comm(CommPlacement {
            src_node: src,
            dst_node: dst,
            from_cluster: 0,
            to_cluster: 1,
            bus,
            start_cycle: 3,
            duration: 1,
        });
    }
    let ids = deny_ids(&machine, &g, &sched);
    assert!(ids.contains(&"bus-conflict".to_string()), "{ids:?}");
}

#[test]
fn register_pressure_fires_when_max_live_exceeds_the_file() {
    let mut machine = MachineConfig::unified();
    machine.cluster.registers = 1;
    let pool = ResourcePool::new(&machine);
    let mut g = DepGraph::new("pressure");
    let a0 = g.add_node(OpClass::Load);
    let a1 = g.add_node(OpClass::Load);
    let b0 = g.add_node(OpClass::FpAdd);
    let b1 = g.add_node(OpClass::FpAdd);
    g.add_edge(a0, b0, 2, 0, DepKind::Flow);
    g.add_edge(a1, b1, 2, 0, DepKind::Flow);
    let mut sched = ModuloSchedule::new("pressure", g.n_nodes(), 2, 2);
    let mut mem = pool.fus(0, FuKind::Mem);
    let mut fp = pool.fus(0, FuKind::Fp);
    // Two loaded values stay live together across several kernel rows before
    // their (legal, slack-positive) consumers read them: MaxLive 2 > 1 register.
    for (node, cycle, unit) in [
        (a0, 0, mem.next().unwrap()),
        (a1, 1, mem.next().unwrap()),
        (b0, 8, fp.next().unwrap()),
        (b1, 9, fp.next().unwrap()),
    ] {
        sched.place(PlacedOp {
            node,
            cycle,
            cluster: 0,
            fu: unit,
        });
    }
    let ids = deny_ids(&machine, &g, &sched);
    assert!(ids.contains(&"register-pressure".to_string()), "{ids:?}");
}

#[test]
fn ncycles_window_fires_when_the_ipc_denominator_drifts() {
    // An empty loop has unit makespan by the simulator contract, but the paper's
    // NCYCLES formula still charges (NITER + SC − 1)·II cycles: at II = 4 over 8
    // iterations the drift is 31 ≥ 2·II, far outside the provable window.  The
    // dynamic IpcModelDrift oracle rejects the same schedule for the same reason.
    let machine = MachineConfig::unified();
    let g = DepGraph::new("empty");
    let sched = ModuloSchedule::new("empty", 0, 4, 1);
    let ids = deny_ids(&machine, &g, &sched);
    assert!(ids.contains(&"ncycles-window".to_string()), "{ids:?}");
}

#[test]
fn code_size_clamp_fires_when_ops_exceed_the_kernel_slots() {
    // 13 single-stage operations cannot fit a kernel of II·width = 1·12 slots.
    // This is the PR-4 debug_assert! promoted to a lint: the test is a plain
    // assertion over the report, so it rejects the schedule in release builds too.
    let machine = MachineConfig::two_cluster(1, 1);
    assert_eq!(machine.total_issue_width(), 12);
    let pool = ResourcePool::new(&machine);
    let unit = fu(&pool, 0, FuKind::Int);
    let mut g = DepGraph::new("overstuffed");
    let mut sched = ModuloSchedule::new("overstuffed", 13, 1, 1);
    for _ in 0..13 {
        let node = g.add_node(OpClass::IntAlu);
        sched.place(PlacedOp {
            node,
            cycle: 0,
            cluster: 0,
            fu: unit,
        });
    }
    let ids = deny_ids(&machine, &g, &sched);
    assert!(ids.contains(&"code-size-clamp".to_string()), "{ids:?}");
}

#[test]
fn a_planted_defect_defeats_certification_outright() {
    // End-to-end sanity: any deny diagnostic flips is_certified(), which is the
    // bit the verify campaign's fifth oracle compares against the dynamic replay.
    let machine = MachineConfig::unified();
    let mut g = DepGraph::new("holes");
    g.add_node(OpClass::IntAlu);
    let sched = ModuloSchedule::new("holes", g.n_nodes(), 2, 1);
    let report = Certifier::new(&machine).check(&g, &sched, 8);
    assert!(!report.is_certified());
    assert!(!Certifier::new(&machine).is_certified(&g, &sched, 8));
}
