//! Static code-size model (Figure 10 of the paper).
//!
//! The VLIW code of a software-pipelined loop consists of a prologue of `(SC − 1)·II`
//! instructions, a kernel of `II` instructions and an epilogue of `(SC − 1)·II`
//! instructions.  Each instruction carries one operation slot per functional unit of
//! every cluster, so the *raw* size in operation slots is
//!
//! ```text
//!   slots = (2·(SC − 1) + 1) · II · total_issue_width
//! ```
//!
//! of which `useful` slots hold real operations — the kernel issues every (possibly
//! unrolled) body operation once, the prologue and epilogue together issue each
//! operation `SC − 1` more times — and the rest are NOPs.  The paper reports both
//! counts (white = total including NOPs, black = useful only), normalised to the
//! unified configuration without unrolling; this module reproduces that accounting
//! without having to expand every loop's code explicitly (an expansion-based
//! cross-check lives in the tests).

use serde::{Deserialize, Serialize};
use vliw_arch::MachineConfig;
use vliw_sms::ModuloSchedule;

/// Code-size of one scheduled loop, in operation slots.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct CodeSizeReport {
    /// Slots holding useful operations (kernel + prologue + epilogue).
    pub useful_ops: u64,
    /// Total slots including NOPs.
    pub total_slots: u64,
}

impl CodeSizeReport {
    /// NOP slots.
    pub fn nops(&self) -> u64 {
        self.total_slots - self.useful_ops
    }

    /// Add another loop's report.
    pub fn accumulate(&mut self, other: CodeSizeReport) {
        self.useful_ops += other.useful_ops;
        self.total_slots += other.total_slots;
    }

    /// An all-zero report.
    pub fn zero() -> Self {
        Self {
            useful_ops: 0,
            total_slots: 0,
        }
    }
}

/// Computes static code sizes of modulo-scheduled loops on a given machine.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CodeSizeModel {
    machine: MachineConfig,
}

impl CodeSizeModel {
    /// A code-size model for `machine`.
    pub fn new(machine: &MachineConfig) -> Self {
        Self {
            machine: machine.clone(),
        }
    }

    /// The code size of one scheduled loop.
    ///
    /// `scheduled_ops` is the number of operations in the scheduled (possibly
    /// unrolled) body — i.e. the number of useful operations the kernel issues per
    /// kernel iteration.
    pub fn loop_size(&self, schedule: &ModuloSchedule, scheduled_ops: usize) -> CodeSizeReport {
        let ii = schedule.ii() as u64;
        let sc = schedule.stage_count() as u64;
        let width = self.machine.total_issue_width() as u64;
        // prologue (SC-1 stages) + kernel (1 stage) + epilogue (SC-1 stages)
        let instructions = (2 * (sc - 1) + 1) * ii;
        let total_slots = instructions * width;
        // The kernel contains each operation once; the prologue and epilogue together
        // replay each operation SC-1 times (stage k of the body appears in prologue
        // copies k+1..SC and epilogue copies 1..=k, totalling SC-1).
        let useful_ops = scheduled_ops as u64 * sc;
        // Useful slots can never exceed the total: the kernel holds at most
        // `II·width` operations, so `ops·SC ≤ II·width·SC ≤ (2(SC−1)+1)·II·width`
        // for any SC ≥ 1.  (A clamp here would only ever mask a caller passing an
        // op count that was never scheduled into the kernel.)
        debug_assert!(
            useful_ops <= total_slots,
            "useful_ops {useful_ops} > total_slots {total_slots}: \
             scheduled_ops {scheduled_ops} exceeds the kernel capacity II·width = {}",
            ii * width
        );
        CodeSizeReport {
            useful_ops,
            total_slots,
        }
    }

    /// Aggregate code size over many loops (already computed reports).
    pub fn aggregate(reports: impl IntoIterator<Item = CodeSizeReport>) -> CodeSizeReport {
        let mut acc = CodeSizeReport::zero();
        for r in reports {
            acc.accumulate(r);
        }
        acc
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vliw_arch::{MachineConfig, OpClass};
    use vliw_ddg::GraphBuilder;
    use vliw_sms::SmsScheduler;

    fn saxpy() -> vliw_ddg::DepGraph {
        GraphBuilder::new("saxpy")
            .iterations(100)
            .node("lx", OpClass::Load)
            .node("ly", OpClass::Load)
            .node("mul", OpClass::FpMul)
            .node("add", OpClass::FpAdd)
            .node("st", OpClass::Store)
            .flow("lx", "mul")
            .flow("mul", "add")
            .flow("ly", "add")
            .flow("add", "st")
            .build()
    }

    #[test]
    fn loop_size_matches_the_closed_form() {
        let machine = MachineConfig::unified();
        let g = saxpy();
        let sched = SmsScheduler::new(&machine).schedule(&g).unwrap();
        let report = CodeSizeModel::new(&machine).loop_size(&sched, g.n_nodes());
        let ii = sched.ii() as u64;
        let sc = sched.stage_count() as u64;
        assert_eq!(report.total_slots, (2 * (sc - 1) + 1) * ii * 12);
        assert_eq!(report.useful_ops, g.n_nodes() as u64 * sc);
        assert_eq!(report.nops(), report.total_slots - report.useful_ops);
    }

    #[test]
    fn useful_ops_cross_check_against_expanded_code() {
        // Expanding the schedule over SC iterations produces exactly the
        // prologue + one kernel iteration + epilogue; its useful-op count must match
        // the closed form.
        let machine = MachineConfig::unified();
        let g = saxpy();
        let sched = SmsScheduler::new(&machine).schedule(&g).unwrap();
        let sc = sched.stage_count() as u64;
        let expanded = sched.expanded_program(&g, &machine, sc);
        let report = CodeSizeModel::new(&machine).loop_size(&sched, g.n_nodes());
        assert_eq!(expanded.useful_ops() as u64, report.useful_ops);
    }

    #[test]
    fn larger_ii_means_more_nops() {
        // The same loop scheduled on a narrower machine (higher II) wastes more slots
        // per useful op relative to the machine width.
        let unified = MachineConfig::unified();
        let g = saxpy();
        let sched_wide = SmsScheduler::new(&unified).schedule(&g).unwrap();
        let wide = CodeSizeModel::new(&unified).loop_size(&sched_wide, g.n_nodes());

        let narrow_machine = MachineConfig::new(
            "narrow",
            1,
            vliw_arch::ClusterConfig::new(1, 1, 1, 64),
            vliw_arch::BusConfig::none(),
            vliw_arch::LatencyModel::table1(),
        );
        let sched_narrow = SmsScheduler::new(&narrow_machine).schedule(&g).unwrap();
        let narrow = CodeSizeModel::new(&narrow_machine).loop_size(&sched_narrow, g.n_nodes());

        let wide_nop_ratio = wide.nops() as f64 / wide.total_slots as f64;
        let narrow_nop_ratio = narrow.nops() as f64 / narrow.total_slots as f64;
        // The 12-wide machine has far more empty slots per instruction.
        assert!(wide_nop_ratio > narrow_nop_ratio);
    }

    #[test]
    fn unrolling_multiplies_the_kernel_ops() {
        let machine = MachineConfig::unified();
        let g = saxpy();
        let unrolled = vliw_ddg::unroll(&g, 2);
        let sched = SmsScheduler::new(&machine).schedule(&unrolled).unwrap();
        let report = CodeSizeModel::new(&machine).loop_size(&sched, unrolled.n_nodes());
        assert_eq!(
            report.useful_ops,
            unrolled.n_nodes() as u64 * sched.stage_count() as u64
        );
        assert!(report.useful_ops >= g.n_nodes() as u64 * 2);
    }

    /// The invariant behind dropping the historical `useful_ops.min(total_slots)`
    /// clamp: a kernel of `II` instructions on a `width`-wide machine holds at most
    /// `II·width` operations, so `ops·SC ≤ II·width·SC ≤ (2(SC−1)+1)·II·width` for
    /// every SC ≥ 1 — useful slots can never exceed total slots for any real
    /// schedule, at any unroll factor.
    #[test]
    fn useful_ops_never_exceed_total_slots() {
        for machine in [
            MachineConfig::unified(),
            MachineConfig::two_cluster(1, 1),
            MachineConfig::four_cluster(1, 2),
        ] {
            let model = CodeSizeModel::new(&machine);
            let scheduler = SmsScheduler::new(&machine.unified_counterpart());
            for factor in 1..=6u32 {
                let unrolled = vliw_ddg::unroll(&saxpy(), factor);
                let sched = scheduler.schedule(&unrolled).unwrap();
                let report = model.loop_size(&sched, unrolled.n_nodes());
                assert!(
                    report.useful_ops <= report.total_slots,
                    "{} x{}: {} > {}",
                    machine.name,
                    factor,
                    report.useful_ops,
                    report.total_slots
                );
                // The algebraic chain, term by term.
                let ii = sched.ii() as u64;
                let sc = sched.stage_count() as u64;
                let width = machine.total_issue_width() as u64;
                assert!(unrolled.n_nodes() as u64 <= ii * width);
                assert!(report.useful_ops <= ii * width * sc);
                assert!(ii * width * sc <= (2 * (sc - 1) + 1) * ii * width);
            }
        }
    }

    #[test]
    fn aggregation_sums_reports() {
        let a = CodeSizeReport {
            useful_ops: 10,
            total_slots: 100,
        };
        let b = CodeSizeReport {
            useful_ops: 5,
            total_slots: 50,
        };
        let sum = CodeSizeModel::aggregate([a, b]);
        assert_eq!(sum.useful_ops, 15);
        assert_eq!(sum.total_slots, 150);
        assert_eq!(sum.nops(), 135);
    }
}
