//! IPC accounting over a corpus of scheduled loops.

use serde::{Deserialize, Serialize};
use vliw_sms::ModuloSchedule;

/// The contribution of one scheduled loop to a benchmark's totals.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LoopContribution {
    /// Loop name.
    pub name: String,
    /// Initiation interval of the schedule.
    pub ii: u32,
    /// Stage count of the schedule.
    pub stage_count: u32,
    /// Iterations of the *scheduled* body per invocation (already divided by the
    /// unroll factor when the loop was unrolled).
    pub scheduled_iterations: u64,
    /// Useful operations of the *original* body executed per invocation.
    pub useful_ops_per_invocation: u64,
    /// Number of invocations.
    pub invocations: u64,
    /// Unroll factor that was applied (1 = none).
    pub unroll_factor: u32,
    /// Cycles per invocation spent in the remainder epilogue (0 unless the loop was
    /// unrolled under the exact iteration model by a factor that does not divide
    /// `NITER`; see `ClusterSchedule::remainder` in `cvliw_core`).
    pub epilogue_cycles: u64,
}

impl LoopContribution {
    /// Build a contribution from a schedule plus the original-loop accounting data.
    pub fn new(
        schedule: &ModuloSchedule,
        scheduled_iterations: u64,
        original_ops: usize,
        original_iterations: u64,
        invocations: u64,
        unroll_factor: u32,
    ) -> Self {
        Self {
            name: schedule.loop_name.clone(),
            ii: schedule.ii(),
            stage_count: schedule.stage_count(),
            scheduled_iterations,
            useful_ops_per_invocation: original_ops as u64 * original_iterations,
            invocations,
            unroll_factor,
            epilogue_cycles: 0,
        }
    }

    /// Attach the remainder-epilogue cycles of an exactly-unrolled loop.
    pub fn with_epilogue_cycles(mut self, epilogue_cycles: u64) -> Self {
        self.epilogue_cycles = epilogue_cycles;
        self
    }

    /// Cycles per invocation: `(NITER + SC − 1) · II` of the scheduled kernel, plus
    /// the remainder epilogue's cycles when the exact unrolling model left one.
    pub fn cycles_per_invocation(&self) -> u64 {
        (self.scheduled_iterations + self.stage_count as u64 - 1) * self.ii as u64
            + self.epilogue_cycles
    }

    /// Total cycles across all invocations.
    pub fn total_cycles(&self) -> u64 {
        self.cycles_per_invocation() * self.invocations
    }

    /// Total useful operations across all invocations.
    pub fn total_ops(&self) -> u64 {
        self.useful_ops_per_invocation * self.invocations
    }
}

/// A borrowed, allocation-free view over a slice of [`LoopContribution`]s exposing
/// the same aggregate queries as [`IpcAccountant`].
///
/// Use this to re-derive IPC from contributions that already live somewhere (e.g. a
/// stored corpus result) without cloning each contribution into a fresh accountant.
#[derive(Debug, Clone, Copy)]
pub struct IpcView<'a> {
    contributions: &'a [LoopContribution],
}

impl<'a> IpcView<'a> {
    /// A view over `contributions`.
    pub fn new(contributions: &'a [LoopContribution]) -> Self {
        Self { contributions }
    }

    /// The contributions behind the view.
    pub fn contributions(&self) -> &'a [LoopContribution] {
        self.contributions
    }

    /// Total cycles over all loops and invocations.
    pub fn total_cycles(&self) -> u64 {
        self.contributions
            .iter()
            .map(LoopContribution::total_cycles)
            .sum()
    }

    /// Total useful operations over all loops and invocations.
    pub fn total_ops(&self) -> u64 {
        self.contributions
            .iter()
            .map(LoopContribution::total_ops)
            .sum()
    }

    /// Instructions (useful operations) per cycle.
    pub fn ipc(&self) -> f64 {
        let cycles = self.total_cycles();
        if cycles == 0 {
            return 0.0;
        }
        self.total_ops() as f64 / cycles as f64
    }

    /// IPC of `self` relative to `baseline` (the unified configuration in the paper's
    /// figures).
    pub fn relative_to(&self, baseline: &IpcView<'_>) -> f64 {
        let base = baseline.ipc();
        if base == 0.0 {
            return 0.0;
        }
        self.ipc() / base
    }

    /// Number of loops accounted.
    pub fn len(&self) -> usize {
        self.contributions.len()
    }

    /// Whether the view is empty.
    pub fn is_empty(&self) -> bool {
        self.contributions.is_empty()
    }
}

/// Accumulates loop contributions into a benchmark-level IPC.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct IpcAccountant {
    contributions: Vec<LoopContribution>,
}

impl IpcAccountant {
    /// An empty accountant.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add one loop's contribution.
    pub fn add(&mut self, contribution: LoopContribution) {
        self.contributions.push(contribution);
    }

    /// The contributions added so far.
    pub fn contributions(&self) -> &[LoopContribution] {
        &self.contributions
    }

    /// A borrowed [`IpcView`] over the accumulated contributions.
    pub fn view(&self) -> IpcView<'_> {
        IpcView::new(&self.contributions)
    }

    /// Total cycles over all loops and invocations.
    pub fn total_cycles(&self) -> u64 {
        self.view().total_cycles()
    }

    /// Total useful operations over all loops and invocations.
    pub fn total_ops(&self) -> u64 {
        self.view().total_ops()
    }

    /// Instructions (useful operations) per cycle.
    pub fn ipc(&self) -> f64 {
        self.view().ipc()
    }

    /// IPC of `self` relative to `baseline` (the unified configuration in the paper's
    /// figures).
    pub fn relative_to(&self, baseline: &IpcAccountant) -> f64 {
        self.view().relative_to(&baseline.view())
    }

    /// Number of loops accounted.
    pub fn len(&self) -> usize {
        self.contributions.len()
    }

    /// Whether no loop has been added yet.
    pub fn is_empty(&self) -> bool {
        self.contributions.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn contribution(ii: u32, sc: u32, iters: u64, ops: u64, invocations: u64) -> LoopContribution {
        LoopContribution {
            name: format!("loop-ii{ii}"),
            ii,
            stage_count: sc,
            scheduled_iterations: iters,
            useful_ops_per_invocation: ops * iters,
            invocations,
            unroll_factor: 1,
            epilogue_cycles: 0,
        }
    }

    #[test]
    fn single_loop_ipc_matches_hand_computation() {
        let mut acc = IpcAccountant::new();
        // II=2, SC=3, 100 iterations, 6 ops per iteration, 10 invocations.
        acc.add(contribution(2, 3, 100, 6, 10));
        let cycles = (100 + 3 - 1) * 2 * 10;
        let ops = 6 * 100 * 10;
        assert_eq!(acc.total_cycles(), cycles);
        assert_eq!(acc.total_ops(), ops);
        assert!((acc.ipc() - ops as f64 / cycles as f64).abs() < 1e-12);
    }

    #[test]
    fn epilogue_cycles_are_charged_per_invocation() {
        let plain = contribution(2, 3, 100, 6, 10);
        let with_epilogue = contribution(2, 3, 100, 6, 10).with_epilogue_cycles(7);
        assert_eq!(
            with_epilogue.cycles_per_invocation(),
            plain.cycles_per_invocation() + 7
        );
        assert_eq!(with_epilogue.total_cycles(), plain.total_cycles() + 7 * 10);
        assert_eq!(with_epilogue.total_ops(), plain.total_ops());
    }

    #[test]
    fn invocation_weighting_shifts_the_aggregate() {
        // A fast loop executed rarely and a slow loop executed often: the aggregate
        // must sit near the slow loop's IPC.
        let mut acc = IpcAccountant::new();
        acc.add(contribution(1, 2, 100, 8, 1)); // IPC ~ 8
        acc.add(contribution(8, 2, 100, 8, 100)); // IPC ~ 1
        assert!(acc.ipc() < 1.5);
    }

    #[test]
    fn relative_ipc_is_one_for_identical_accountants() {
        let mut a = IpcAccountant::new();
        a.add(contribution(3, 2, 50, 5, 7));
        let b = a.clone();
        assert!((a.relative_to(&b) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn prologue_epilogue_overhead_shows_up_for_short_loops() {
        // Same loop body, 1000 vs 8 iterations: the short loop pays proportionally more
        // prologue/epilogue and must have lower IPC.
        let long = {
            let mut acc = IpcAccountant::new();
            acc.add(contribution(2, 5, 1000, 6, 1));
            acc
        };
        let short = {
            let mut acc = IpcAccountant::new();
            acc.add(contribution(2, 5, 8, 6, 1));
            acc
        };
        assert!(short.ipc() < long.ipc());
    }

    #[test]
    fn view_matches_accountant_without_cloning() {
        let mut acc = IpcAccountant::new();
        acc.add(contribution(2, 3, 100, 6, 10));
        acc.add(contribution(5, 2, 40, 3, 2));
        let view = IpcView::new(acc.contributions());
        assert_eq!(view.total_cycles(), acc.total_cycles());
        assert_eq!(view.total_ops(), acc.total_ops());
        assert_eq!(view.ipc(), acc.ipc());
        assert_eq!(view.len(), 2);
        assert!(!view.is_empty());
        assert!((view.relative_to(&view) - 1.0).abs() < 1e-12);
        assert!(IpcView::new(&[]).is_empty());
        assert_eq!(IpcView::new(&[]).ipc(), 0.0);
    }

    #[test]
    fn empty_accountant_reports_zero() {
        let acc = IpcAccountant::new();
        assert!(acc.is_empty());
        assert_eq!(acc.ipc(), 0.0);
        assert_eq!(acc.relative_to(&IpcAccountant::new()), 0.0);
    }

    #[test]
    fn unrolled_loops_do_not_inflate_ops() {
        // An unrolled loop halves the scheduled iterations but keeps the original
        // useful-op count; IPC must be computed from the original ops.
        let plain = LoopContribution {
            name: "x".into(),
            ii: 2,
            stage_count: 2,
            scheduled_iterations: 100,
            useful_ops_per_invocation: 600,
            invocations: 1,
            unroll_factor: 1,
            epilogue_cycles: 0,
        };
        let unrolled = LoopContribution {
            name: "x".into(),
            ii: 4,
            stage_count: 2,
            scheduled_iterations: 50,
            useful_ops_per_invocation: 600,
            invocations: 1,
            unroll_factor: 2,
            epilogue_cycles: 0,
        };
        assert_eq!(plain.total_ops(), unrolled.total_ops());
        // Cycles are also nearly identical (same work per original iteration).
        let diff = plain.total_cycles() as i64 - unrolled.total_cycles() as i64;
        assert!(diff.abs() <= plain.ii as i64 * 2);
    }
}
