//! # vliw-metrics — IPC accounting, code-size modelling and result aggregation
//!
//! The paper reports three families of numbers, all computed here:
//!
//! * **IPC** (Figures 4 and 8): useful operations committed per cycle, accumulated over
//!   every innermost loop of a benchmark, weighted by iteration and invocation counts,
//!   and including prologue and epilogue overhead through the
//!   `NCYCLES = (NITER + SC − 1)·II` model ([`ipc`]);
//! * **relative IPC**: the IPC of a clustered configuration divided by the IPC of the
//!   unified configuration with the same total resources;
//! * **code size** (Figure 10): static operation slots of the emitted code — useful
//!   operations and NOPs — for the prologue, kernel and epilogue of every scheduled
//!   loop, normalised to the unified/no-unrolling configuration ([`codesize`]).
//!
//! A small text-table renderer ([`table`]) is shared by the experiment binaries so
//! every figure/table of the paper prints in a uniform format.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod codesize;
pub mod ipc;
pub mod table;

pub use codesize::{CodeSizeModel, CodeSizeReport};
pub use ipc::{IpcAccountant, IpcView, LoopContribution};
pub use table::TextTable;
