//! A minimal text-table renderer shared by the experiment binaries.
//!
//! Every figure/table of the paper is regenerated as a plain-text table on stdout (and
//! as JSON next to it); keeping the renderer here avoids each experiment binary
//! reinventing column alignment.

use std::fmt::Write as _;

/// A simple column-aligned text table.
#[derive(Debug, Clone, Default)]
pub struct TextTable {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl TextTable {
    /// A table with the given column headers.
    pub fn new<S: Into<String>>(header: impl IntoIterator<Item = S>) -> Self {
        Self {
            header: header.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a row.  Rows shorter than the header are padded with empty cells; longer
    /// rows are allowed (the extra cells get their own width).
    pub fn row<S: Into<String>>(&mut self, cells: impl IntoIterator<Item = S>) -> &mut Self {
        self.rows.push(cells.into_iter().map(Into::into).collect());
        self
    }

    /// Convenience: append a row of formatted floating-point values after a label.
    pub fn row_f64(&mut self, label: &str, values: &[f64], precision: usize) -> &mut Self {
        let mut cells = vec![label.to_string()];
        cells.extend(values.iter().map(|v| format!("{v:.precision$}")));
        self.rows.push(cells);
        self
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Render the table.
    pub fn render(&self) -> String {
        let n_cols = self
            .rows
            .iter()
            .map(std::vec::Vec::len)
            .chain(std::iter::once(self.header.len()))
            .max()
            .unwrap_or(0);
        let mut widths = vec![0usize; n_cols];
        let all_rows = std::iter::once(&self.header).chain(self.rows.iter());
        for row in all_rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.chars().count());
            }
        }
        let mut out = String::new();
        let write_row = |out: &mut String, row: &[String]| {
            for (i, width) in widths.iter().enumerate() {
                let cell = row.get(i).map_or("", String::as_str);
                if i == 0 {
                    let _ = write!(out, "{cell:<width$}");
                } else {
                    let _ = write!(out, "  {cell:>width$}");
                }
            }
            out.push('\n');
        };
        if !self.header.is_empty() {
            write_row(&mut out, &self.header);
            let total: usize = widths.iter().sum::<usize>() + 2 * (n_cols.saturating_sub(1));
            out.push_str(&"-".repeat(total));
            out.push('\n');
        }
        for row in &self.rows {
            write_row(&mut out, row);
        }
        out
    }
}

impl std::fmt::Display for TextTable {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.render())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = TextTable::new(["config", "IPC", "relative"]);
        t.row(["unified", "5.12", "1.00"]);
        t.row(["4-cluster/1-bus", "4.87", "0.95"]);
        let text = t.render();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 4); // header, rule, two rows
        assert!(lines[0].starts_with("config"));
        assert!(lines[1].chars().all(|c| c == '-'));
        // Numeric columns are right-aligned: both IPC cells end at the same column.
        let pos_a = lines[2].rfind("5.12").unwrap() + 4;
        let pos_b = lines[3].rfind("4.87").unwrap() + 4;
        assert_eq!(pos_a, pos_b);
    }

    #[test]
    fn row_f64_formats_with_requested_precision() {
        let mut t = TextTable::new(["bench", "a", "b"]);
        t.row_f64("swim", &[1.23456, 0.5], 2);
        assert!(t.render().contains("1.23"));
        assert!(t.render().contains("0.50"));
    }

    #[test]
    fn handles_ragged_rows() {
        let mut t = TextTable::new(["x"]);
        t.row(["a", "b", "c"]);
        t.row(["only"]);
        let text = t.render();
        assert!(text.contains('c'));
        assert_eq!(t.len(), 2);
        assert!(!t.is_empty());
    }

    #[test]
    fn empty_table_renders_header_only() {
        let t = TextTable::new(["one", "two"]);
        let text = t.render();
        assert!(text.contains("one"));
        assert!(t.is_empty());
    }
}
