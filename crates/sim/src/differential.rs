//! Differential checking of one scheduled loop.
//!
//! The schedulers, the static validator, the cycle-level simulator and the analytic
//! cycle model are four independent implementations of the same contract.  This
//! module cross-checks them on one `(machine, graph, schedule)` triple and reports
//! every disagreement as a serialisable [`Finding`]:
//!
//! 1. **Static audit** — every [`crate::ScheduleValidator`] violation (dependence
//!    slack, reservation conflicts, missing communications, register overflow);
//! 2. **Execution audit** — every [`crate::KernelSimulator`] error from replaying the
//!    pipelined loop cycle by cycle;
//! 3. **Makespan cross-check** — the simulator derives the execution makespan by
//!    replaying every event of every iteration; [`analytic_makespan`] derives the
//!    same quantity in closed form from the schedule and the latency model.  The two
//!    must agree *exactly* — any drift means the replay and the cycle arithmetic
//!    have diverged;
//! 4. **IPC-model consistency** — the analytic `NCYCLES = (NITER + SC − 1)·II` that
//!    the IPC accounting divides by measures kernel slots, while the simulated
//!    makespan measures issue-to-completion.  They are provably within a tight
//!    window of each other: `makespan < NCYCLES + max_latency` and
//!    `NCYCLES < makespan + 2·II`.  A schedule outside that window would make the
//!    paper's IPC numbers lie about the executed loop.
//!
//! The `vliw-verify` fuzzing campaigns run this check over randomly sampled
//! machines × loops × policies; `vliw_bench::Sweep` runs it over every figure cell
//! when the opt-in `verify_cells` mode is enabled.

use crate::executor::KernelSimulator;
use crate::validate::{ScheduleValidator, Violation};
use serde::{Deserialize, Serialize};
use vliw_arch::MachineConfig;
use vliw_ddg::DepGraph;
use vliw_sms::ModuloSchedule;

/// Iteration count used by the differential checks when the caller has no opinion:
/// enough iterations to exercise every loop-carried distance and the whole pipeline
/// fill/drain, capped so replaying a corpus stays cheap.
pub fn verification_iterations(graph: &DepGraph) -> u64 {
    graph.iterations.clamp(4, 40)
}

/// One disagreement between the oracles (see the module docs for the catalogue).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Finding {
    /// The static validator rejected the schedule.
    StaticViolation {
        /// The violation found.
        violation: Violation,
    },
    /// The cycle-level replay hit an ordering/overlap error.
    ExecutionError {
        /// The simulator's description of the error.
        error: String,
    },
    /// The simulated makespan disagrees with the closed-form makespan.
    MakespanMismatch {
        /// Cycles measured by the replay.
        simulated: u64,
        /// Cycles predicted by [`analytic_makespan`].
        analytic: u64,
    },
    /// The static certifier and the dynamic oracles disagree on this schedule: one
    /// side rejected what the other accepted.  Not produced by [`check_schedule`]
    /// itself — the `vliw-verify` campaign's fifth (static) oracle records it when
    /// cross-checking `vliw_lint::Certifier` against the dynamic findings.
    StaticDynamicDisagreement {
        /// Deny-level lint ids the static certifier raised (empty = certified).
        static_denies: Vec<String>,
        /// Number of findings the dynamic oracles raised.
        dynamic_findings: usize,
    },
    /// The achieved II sits below the exact solver's certified lower bound (or
    /// the solver proved the loop unschedulable outright) — one of the two
    /// claims is unsound.  Not produced by [`check_schedule`] itself — the
    /// `vliw-verify` campaign's sixth (optimality) oracle records it when
    /// cross-checking `vliw_lint::OptimalSolver` certificates against achieved
    /// schedules.
    IiBelowCertifiedBound {
        /// The II the heuristic scheduler achieved.
        achieved: u32,
        /// The solver's certified lower bound (`None` = the solver claimed the
        /// loop is infeasible at every II).
        lower_bound: Option<u32>,
    },
    /// `NCYCLES` (the IPC denominator) drifted outside its provable window around
    /// the simulated makespan.
    IpcModelDrift {
        /// Cycles measured by the replay.
        simulated: u64,
        /// The analytic `NCYCLES` for the same iteration count.
        ncycles: u64,
        /// The schedule's initiation interval.
        ii: u32,
        /// The machine's largest operation latency.
        max_latency: u32,
    },
}

/// The outcome of differentially checking one scheduled loop.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DifferentialReport {
    /// Name of the checked loop.
    pub loop_name: String,
    /// Name of the machine the schedule targets.
    pub machine: String,
    /// Iterations replayed.
    pub iterations: u64,
    /// The schedule's initiation interval.
    pub ii: u32,
    /// Simulated makespan in cycles.
    pub simulated_cycles: u64,
    /// Analytic `NCYCLES` for the same iteration count.
    pub ncycles: u64,
    /// Every disagreement found (empty = all four oracles agree).
    pub findings: Vec<Finding>,
}

impl DifferentialReport {
    /// Whether every oracle agreed.
    pub fn is_clean(&self) -> bool {
        self.findings.is_empty()
    }
}

/// The execution makespan of `iterations` iterations, in closed form.
///
/// Iteration `i` replays every event of the flat schedule offset by `i·II`, so the
/// makespan is the per-iteration event span plus `(iterations − 1)·II`: the span runs
/// from the earliest issue (or transfer start) to the latest completion — an
/// operation completes `latency` cycles after issue, a transfer occupies its bus
/// until `start + duration`.  This mirrors [`KernelSimulator::run`]'s event
/// arithmetic without replaying anything, which is exactly what makes the equality
/// check in [`check_schedule`] a real cross-validation of the replay loop.
pub fn analytic_makespan(
    graph: &DepGraph,
    sched: &ModuloSchedule,
    machine: &MachineConfig,
    iterations: u64,
) -> u64 {
    let mut min_event = i64::MAX;
    let mut max_event = i64::MIN;
    for p in sched.placements() {
        let latency = machine.latency(graph.node(p.node).class) as i64;
        min_event = min_event.min(p.cycle);
        max_event = max_event.max(p.cycle + latency - 1);
    }
    for c in sched.comms() {
        min_event = min_event.min(c.start_cycle);
        max_event = max_event.max(c.start_cycle + c.duration as i64 - 1);
    }
    if min_event == i64::MAX || iterations == 0 {
        // No events at all (empty loop body): the simulator reports a 1-cycle run.
        return 1;
    }
    let span = (max_event - min_event + 1) as u64;
    span + (iterations - 1) * sched.ii() as u64
}

/// Differentially check one scheduled loop (see the module docs for the four
/// oracles).  `iterations` must be at least 1; use [`verification_iterations`] for a
/// sensible default.
pub fn check_schedule(
    machine: &MachineConfig,
    graph: &DepGraph,
    sched: &ModuloSchedule,
    iterations: u64,
) -> DifferentialReport {
    let mut findings = Vec::new();
    for violation in ScheduleValidator::new(machine).validate(graph, sched) {
        findings.push(Finding::StaticViolation { violation });
    }
    let report = KernelSimulator::new(machine).run(graph, sched, iterations);
    for error in &report.errors {
        findings.push(Finding::ExecutionError {
            error: error.clone(),
        });
    }

    let analytic = analytic_makespan(graph, sched, machine, iterations);
    // A replay that already failed reports a truncated cycle count; only cross-check
    // the cycle models when the execution itself was clean.
    if report.is_clean() {
        if report.cycles != analytic {
            findings.push(Finding::MakespanMismatch {
                simulated: report.cycles,
                analytic,
            });
        }
        let ii = sched.ii() as i128;
        let max_latency = machine.latencies.max_latency();
        let drift = report.analytic_cycles as i128 - report.cycles as i128;
        if !(-(max_latency as i128) < drift && drift < 2 * ii) {
            findings.push(Finding::IpcModelDrift {
                simulated: report.cycles,
                ncycles: report.analytic_cycles,
                ii: sched.ii(),
                max_latency,
            });
        }
    }

    DifferentialReport {
        loop_name: sched.loop_name.clone(),
        machine: machine.name.clone(),
        iterations,
        ii: sched.ii(),
        simulated_cycles: report.cycles,
        ncycles: report.analytic_cycles,
        findings,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vliw_arch::{FuKind, OpClass, ResourcePool};
    use vliw_ddg::{DepKind, GraphBuilder};
    use vliw_sms::{PlacedOp, SmsScheduler};

    fn saxpy() -> DepGraph {
        GraphBuilder::new("saxpy")
            .iterations(64)
            .node("lx", OpClass::Load)
            .node("ly", OpClass::Load)
            .node("mul", OpClass::FpMul)
            .node("add", OpClass::FpAdd)
            .node("st", OpClass::Store)
            .flow("lx", "mul")
            .flow("mul", "add")
            .flow("ly", "add")
            .flow("add", "st")
            .build()
    }

    #[test]
    fn a_correct_schedule_checks_clean() {
        let machine = MachineConfig::unified();
        let g = saxpy();
        let sched = SmsScheduler::new(&machine).schedule(&g).unwrap();
        let report = check_schedule(&machine, &g, &sched, verification_iterations(&g));
        assert!(report.is_clean(), "{:?}", report.findings);
        assert_eq!(report.loop_name, "saxpy");
        assert!(report.simulated_cycles > 0);
    }

    #[test]
    fn analytic_makespan_matches_the_replay_across_iteration_counts() {
        let machine = MachineConfig::unified();
        let g = saxpy();
        let sched = SmsScheduler::new(&machine).schedule(&g).unwrap();
        let sim = KernelSimulator::new(&machine);
        for iterations in [1u64, 2, 3, 7, 64, 200] {
            let replayed = sim.run(&g, &sched, iterations);
            assert!(replayed.is_clean());
            assert_eq!(
                replayed.cycles,
                analytic_makespan(&g, &sched, &machine, iterations),
                "iterations = {iterations}"
            );
        }
    }

    #[test]
    fn a_dependence_violation_is_reported_as_both_static_and_execution_findings() {
        let machine = MachineConfig::unified();
        let pool = ResourcePool::new(&machine);
        let mut g = DepGraph::new("broken");
        let a = g.add_node(OpClass::Load);
        let b = g.add_node(OpClass::FpAdd);
        g.add_edge(a, b, 2, 0, DepKind::Flow);
        let mut sched = vliw_sms::ModuloSchedule::new("broken", 2, 2, 1);
        sched.place(PlacedOp {
            node: a,
            cycle: 0,
            cluster: 0,
            fu: pool.fus(0, FuKind::Mem).next().unwrap(),
        });
        sched.place(PlacedOp {
            node: b,
            cycle: 1, // needs cycle >= 2
            cluster: 0,
            fu: pool.fus(0, FuKind::Fp).next().unwrap(),
        });
        let report = check_schedule(&machine, &g, &sched, 4);
        assert!(!report.is_clean());
        assert!(report
            .findings
            .iter()
            .any(|f| matches!(f, Finding::StaticViolation { .. })));
        assert!(report
            .findings
            .iter()
            .any(|f| matches!(f, Finding::ExecutionError { .. })));
    }

    #[test]
    fn reports_serialize_and_roundtrip() {
        let machine = MachineConfig::unified();
        let g = saxpy();
        let sched = SmsScheduler::new(&machine).schedule(&g).unwrap();
        let report = check_schedule(&machine, &g, &sched, 8);
        let json = serde_json::to_string(&report).unwrap();
        let back: DifferentialReport = serde_json::from_str(&json).unwrap();
        assert_eq!(report, back);
    }

    #[test]
    fn empty_schedules_have_a_one_cycle_makespan() {
        let machine = MachineConfig::unified();
        let g = DepGraph::new("empty");
        let sched = vliw_sms::ModuloSchedule::new("empty", 0, 1, 1);
        assert_eq!(analytic_makespan(&g, &sched, &machine, 10), 1);
    }
}
