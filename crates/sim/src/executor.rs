//! Cycle-level replay of a software-pipelined loop.
//!
//! The simulator executes the loop exactly as the VLIW hardware of Section 3 would:
//! the flat schedule of iteration `i` issues at offset `i · II`, every functional unit
//! issues at most one operation per cycle, every bus carries at most one transfer at a
//! time, and a value can only be consumed after it has been produced (and, for
//! cross-cluster consumers, after its bus transfer has completed).  The simulator is
//! deliberately independent from the scheduler code paths — it re-derives every event
//! from the placements — so it serves as an executable cross-check of both the
//! schedulers and the analytic cycle/IPC model.

use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use vliw_arch::MachineConfig;
use vliw_ddg::DepGraph;
use vliw_sms::ModuloSchedule;

/// Outcome of simulating a scheduled loop.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SimulationReport {
    /// Number of loop iterations simulated.
    pub iterations: u64,
    /// Total cycles from the issue of the first operation to the completion of the
    /// last (inclusive), i.e. the makespan of the simulated execution.
    pub cycles: u64,
    /// The analytic cycle count `(NITER + SC − 1) · II` for the same iteration count.
    pub analytic_cycles: u64,
    /// Useful operations issued.
    pub ops_issued: u64,
    /// Bus transfers performed.
    pub bus_transfers: u64,
    /// Fraction of functional-unit issue slots used during the simulated execution.
    pub fu_utilization: f64,
    /// Ordering/overlap errors found while executing (empty = clean run).
    pub errors: Vec<String>,
}

impl SimulationReport {
    /// Whether the run completed without any error.
    pub fn is_clean(&self) -> bool {
        self.errors.is_empty()
    }

    /// Measured IPC of the simulated execution.
    pub fn ipc(&self) -> f64 {
        if self.cycles == 0 {
            return 0.0;
        }
        self.ops_issued as f64 / self.cycles as f64
    }
}

/// Cycle-level simulator of modulo-scheduled loops.
#[derive(Debug, Clone)]
pub struct KernelSimulator {
    machine: MachineConfig,
}

impl KernelSimulator {
    /// A simulator for `machine`.
    pub fn new(machine: &MachineConfig) -> Self {
        Self {
            machine: machine.clone(),
        }
    }

    /// Execute `iterations` iterations of the scheduled loop.
    ///
    /// The schedule must be complete; incomplete schedules produce a report whose
    /// `errors` explain the problem.
    pub fn run(
        &self,
        graph: &DepGraph,
        sched: &ModuloSchedule,
        iterations: u64,
    ) -> SimulationReport {
        let ii = sched.ii() as i64;
        let mut errors: Vec<String> = Vec::new();

        if !sched.is_complete() {
            errors.push("schedule is incomplete".to_string());
        }
        if iterations == 0 {
            errors.push("nothing to simulate: zero iterations".to_string());
        }
        if !errors.is_empty() {
            return SimulationReport {
                iterations,
                cycles: 0,
                analytic_cycles: sched.cycles_for(iterations),
                ops_issued: 0,
                bus_transfers: 0,
                fu_utilization: 0.0,
                errors,
            };
        }

        // Normalised base so iteration 0 starts at cycle 0.
        let min_cycle = sched
            .placements()
            .map(|p| p.cycle)
            .chain(sched.comms().iter().map(|c| c.start_cycle))
            .min()
            .unwrap_or(0);

        // Issue cycle of every (node, iteration) instance; per-edge value-ready times
        // are derived from these using the edge latencies (the dependence graph is the
        // source of truth the schedulers worked against).
        let mut issued: HashMap<(u32, u64), i64> = HashMap::new();

        // Resource usage audit: (fu, absolute cycle) and (bus, absolute cycle).
        let mut fu_busy: HashMap<(usize, i64), u32> = HashMap::new();
        let mut bus_busy: HashMap<(usize, i64), u32> = HashMap::new();

        let mut ops_issued: u64 = 0;
        let mut bus_transfers: u64 = 0;
        let mut last_event: i64 = 0;

        for iter in 0..iterations {
            let offset = iter as i64 * ii - min_cycle;
            for p in sched.placements() {
                let issue = p.cycle + offset;
                let node = graph.node(p.node);
                let latency = self.machine.latency(node.class) as i64;
                issued.insert((p.node.0, iter), issue);
                ops_issued += 1;
                last_event = last_event.max(issue + latency - 1).max(issue);
                let slot = fu_busy.entry((p.fu.0, issue)).or_insert(0);
                *slot += 1;
                if *slot > 1 {
                    errors.push(format!(
                        "functional unit {:?} issues two operations at cycle {issue}",
                        p.fu
                    ));
                }
            }
            for c in sched.comms() {
                let start = c.start_cycle + offset;
                bus_transfers += 1;
                for d in 0..c.duration as i64 {
                    let slot = bus_busy.entry((c.bus.0, start + d)).or_insert(0);
                    *slot += 1;
                    if *slot > 1 {
                        errors.push(format!(
                            "bus {:?} carries two transfers at cycle {}",
                            c.bus,
                            start + d
                        ));
                    }
                }
                // The transfer replayed in this iteration drives the bus at `start`;
                // which producer iteration it carries is checked edge-by-edge below
                // (loop-carried values are sent from a previous iteration's producer).
                last_event = last_event.max(start + c.duration as i64 - 1);
            }
        }

        // Consumption checks: every operand must be produced (and transported) before
        // its consumer issues.
        for iter in 0..iterations {
            let offset = iter as i64 * ii - min_cycle;
            for e in graph.edges().filter(|e| e.kind.carries_value()) {
                if e.src == e.dst && e.distance == 0 {
                    continue;
                }
                if e.distance as u64 > iter {
                    continue; // the producing iteration precedes the simulated window
                }
                let producer_iter = iter - e.distance as u64;
                // `is_complete()` was checked above, but a schedule built for a
                // *different* (smaller) graph can still pass it; degrade to a
                // reported error instead of panicking inside a replay job.
                let (Some(consumer), Some(producer)) =
                    (sched.placement(e.dst), sched.placement(e.src))
                else {
                    let msg = format!(
                        "edge {} -> {} references a node the schedule never placed \
                         (schedule/graph mismatch)",
                        graph.node(e.src).label(),
                        graph.node(e.dst).label()
                    );
                    if !errors.contains(&msg) {
                        errors.push(msg);
                    }
                    continue;
                };
                let consume_at = consumer.cycle + offset;
                let ready = issued
                    .get(&(e.src.0, producer_iter))
                    .map(|issue| issue + e.latency as i64);
                let available = if producer.cluster == consumer.cluster {
                    ready
                } else {
                    // Transfers repeat every II cycles: the value produced by
                    // `producer_iter` reaches the consumer's cluster with the earliest
                    // transfer instance that starts at or after its production.
                    ready.and_then(|ready| {
                        sched
                            .comms()
                            .iter()
                            .filter(|c| c.src_node == e.src && c.to_cluster == consumer.cluster)
                            .map(|c| {
                                let base = c.start_cycle - min_cycle;
                                let k = (ready - base + ii - 1).div_euclid(ii);
                                base + k.max(0) * ii + c.duration as i64
                            })
                            .min()
                    })
                };
                match available {
                    None => errors.push(format!(
                        "value of {} never reaches cluster {} for consumer {} (iteration {iter})",
                        graph.node(e.src).label(),
                        consumer.cluster,
                        graph.node(e.dst).label()
                    )),
                    Some(t) if t > consume_at => errors.push(format!(
                        "consumer {} (iteration {iter}) issues at {consume_at} but its operand from {} is only available at {t}",
                        graph.node(e.dst).label(),
                        graph.node(e.src).label()
                    )),
                    Some(_) => {}
                }
            }
        }

        let cycles = (last_event + 1).max(0) as u64;
        let issue_slots = cycles * self.machine.total_issue_width() as u64;
        SimulationReport {
            iterations,
            cycles,
            analytic_cycles: sched.cycles_for(iterations),
            ops_issued,
            bus_transfers,
            fu_utilization: if issue_slots == 0 {
                0.0
            } else {
                ops_issued as f64 / issue_slots as f64
            },
            errors,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vliw_arch::OpClass;
    use vliw_ddg::GraphBuilder;
    use vliw_sms::SmsScheduler;

    fn saxpy() -> DepGraph {
        GraphBuilder::new("saxpy")
            .iterations(64)
            .node("addr", OpClass::IntAlu)
            .node("lx", OpClass::Load)
            .node("ly", OpClass::Load)
            .node("mul", OpClass::FpMul)
            .node("add", OpClass::FpAdd)
            .node("st", OpClass::Store)
            .flow_at("addr", "addr", 1)
            .flow("addr", "lx")
            .flow("addr", "ly")
            .flow("addr", "st")
            .flow("lx", "mul")
            .flow("mul", "add")
            .flow("ly", "add")
            .flow("add", "st")
            .build()
    }

    #[test]
    fn unified_schedule_replays_cleanly() {
        let machine = MachineConfig::unified();
        let g = saxpy();
        let sched = SmsScheduler::new(&machine).schedule(&g).unwrap();
        let report = KernelSimulator::new(&machine).run(&g, &sched, 64);
        assert!(report.is_clean(), "{:?}", report.errors);
        assert_eq!(report.ops_issued, 64 * g.n_nodes() as u64);
        assert!(report.ipc() > 0.0);
        assert!(report.fu_utilization > 0.0 && report.fu_utilization <= 1.0);
    }

    #[test]
    fn measured_cycles_track_the_analytic_formula() {
        // The analytic NCYCLES counts from the first kernel slot to the end of the last
        // stage; the simulated makespan measures issue-to-completion.  They agree up to
        // the completion latency of the last operations (< II + max latency).
        let machine = MachineConfig::unified();
        let g = saxpy();
        let sched = SmsScheduler::new(&machine).schedule(&g).unwrap();
        let report = KernelSimulator::new(&machine).run(&g, &sched, 64);
        let slack = (report.analytic_cycles as i64 - report.cycles as i64).abs();
        assert!(
            slack <= (sched.ii() + machine.latencies.max_latency()) as i64,
            "analytic {} vs simulated {}",
            report.analytic_cycles,
            report.cycles
        );
    }

    #[test]
    fn incomplete_schedule_reports_an_error() {
        let machine = MachineConfig::unified();
        let g = saxpy();
        let sched = vliw_sms::ModuloSchedule::new("saxpy", g.n_nodes(), 2, 1);
        let report = KernelSimulator::new(&machine).run(&g, &sched, 10);
        assert!(!report.is_clean());
    }

    #[test]
    fn zero_iterations_is_rejected() {
        let machine = MachineConfig::unified();
        let g = saxpy();
        let sched = SmsScheduler::new(&machine).schedule(&g).unwrap();
        let report = KernelSimulator::new(&machine).run(&g, &sched, 0);
        assert!(!report.is_clean());
    }

    #[test]
    fn more_iterations_amortise_the_pipeline_fill() {
        let machine = MachineConfig::unified();
        let g = saxpy();
        let sched = SmsScheduler::new(&machine).schedule(&g).unwrap();
        let short = KernelSimulator::new(&machine).run(&g, &sched, 4);
        let long = KernelSimulator::new(&machine).run(&g, &sched, 256);
        assert!(long.ipc() > short.ipc());
    }
}
