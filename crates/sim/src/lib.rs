//! # vliw-sim — cycle-level validation and execution of modulo schedules
//!
//! The schedulers in this repository produce [`vliw_sms::ModuloSchedule`]s; this crate
//! is the executable oracle that checks them:
//!
//! * [`validate::ScheduleValidator`] statically audits a schedule against the
//!   dependence graph and the machine description — dependence distances (including
//!   the bus latency of inter-cluster values), functional-unit and bus reservation
//!   conflicts, missing communications, register-file capacity;
//! * [`executor::KernelSimulator`] replays the software-pipelined loop cycle by cycle
//!   for a configurable number of iterations, verifying at *execution* time that every
//!   operand has actually been produced (and transported) before it is consumed, and
//!   reporting cycle counts, functional-unit utilisation and bus traffic;
//! * [`differential::check_schedule`] combines the two with closed-form cycle
//!   cross-checks into one differential audit of a scheduled loop: the simulated
//!   makespan must equal [`differential::analytic_makespan`] exactly, and the
//!   analytic `NCYCLES = (NITER + SC − 1)·II` used by the IPC accounting must sit
//!   within its provable window of the measured makespan.  The fuzzing campaigns of
//!   `vliw-verify` and the `verify_cells` mode of `vliw_bench::Sweep` are built on
//!   this audit.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod differential;
pub mod executor;
pub mod validate;

pub use differential::{
    analytic_makespan, check_schedule, verification_iterations, DifferentialReport, Finding,
};
pub use executor::{KernelSimulator, SimulationReport};
pub use validate::{ScheduleValidator, Violation};
