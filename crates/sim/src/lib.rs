//! # vliw-sim — cycle-level validation and execution of modulo schedules
//!
//! The schedulers in this repository produce [`vliw_sms::ModuloSchedule`]s; this crate
//! is the executable oracle that checks them:
//!
//! * [`validate::ScheduleValidator`] statically audits a schedule against the
//!   dependence graph and the machine description — dependence distances (including
//!   the bus latency of inter-cluster values), functional-unit and bus reservation
//!   conflicts, missing communications, register-file capacity;
//! * [`executor::KernelSimulator`] replays the software-pipelined loop cycle by cycle
//!   for a configurable number of iterations, verifying at *execution* time that every
//!   operand has actually been produced (and transported) before it is consumed, and
//!   reporting cycle counts, functional-unit utilisation and bus traffic.  The measured
//!   cycle count must equal the analytic `NCYCLES = (NITER + SC − 1)·II` formula used
//!   by the IPC accounting, which the integration tests assert.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod executor;
pub mod validate;

pub use executor::{KernelSimulator, SimulationReport};
pub use validate::{ScheduleValidator, Violation};
