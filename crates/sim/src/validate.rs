//! Static schedule validation.

use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use vliw_arch::{MachineConfig, ResourceKind, ResourcePool};
use vliw_ddg::DepGraph;
use vliw_sms::{LifetimeMap, ModuloSchedule};

/// One rule violation found in a schedule.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Violation {
    /// A node was never placed.
    UnscheduledNode {
        /// The node's label.
        node: String,
    },
    /// A dependence edge is not satisfied.
    DependenceViolated {
        /// Producer label.
        src: String,
        /// Consumer label.
        dst: String,
        /// The slack by which the constraint is missed (negative).
        slack: i64,
    },
    /// Two operations use the same functional unit in the same kernel row.
    FuConflict {
        /// The resource's display name.
        resource: String,
        /// Kernel row of the conflict.
        row: u32,
    },
    /// Two transfers overlap on the same bus.
    BusConflict {
        /// The bus's display name.
        resource: String,
        /// Kernel row of the conflict.
        row: u32,
    },
    /// A value consumed in another cluster has no recorded communication.
    MissingCommunication {
        /// Producer label.
        src: String,
        /// Consumer label.
        dst: String,
    },
    /// A cluster needs more registers than its file provides.
    RegisterOverflow {
        /// Cluster index.
        cluster: usize,
        /// Estimated MaxLive.
        max_live: u32,
        /// Register-file capacity.
        capacity: usize,
    },
    /// An operation was placed on a functional unit of the wrong kind or a cluster
    /// outside the machine.
    BadPlacement {
        /// The node's label.
        node: String,
        /// Explanation.
        reason: String,
    },
}

/// Static auditor for modulo schedules.
#[derive(Debug, Clone)]
pub struct ScheduleValidator {
    machine: MachineConfig,
}

impl ScheduleValidator {
    /// A validator for `machine`.
    pub fn new(machine: &MachineConfig) -> Self {
        Self {
            machine: machine.clone(),
        }
    }

    /// Audit `sched` against `graph`; returns every violation found (empty = valid).
    pub fn validate(&self, graph: &DepGraph, sched: &ModuloSchedule) -> Vec<Violation> {
        let mut violations = Vec::new();
        let pool = ResourcePool::new(&self.machine);
        let ii = sched.ii() as i64;

        // 1. Completeness and placement sanity.
        for node in graph.nodes() {
            match sched.placement(node.id) {
                None => violations.push(Violation::UnscheduledNode { node: node.label() }),
                Some(p) => {
                    if p.cluster >= self.machine.n_clusters {
                        violations.push(Violation::BadPlacement {
                            node: node.label(),
                            reason: format!("cluster {} does not exist", p.cluster),
                        });
                        continue;
                    }
                    match pool.kind(p.fu) {
                        ResourceKind::Fu { cluster, kind, .. } => {
                            if cluster != p.cluster {
                                violations.push(Violation::BadPlacement {
                                    node: node.label(),
                                    reason: format!(
                                        "functional unit belongs to cluster {cluster}, node placed on {}",
                                        p.cluster
                                    ),
                                });
                            }
                            if kind != node.class.fu_kind() {
                                violations.push(Violation::BadPlacement {
                                    node: node.label(),
                                    reason: format!(
                                        "operation of kind {} placed on a {} unit",
                                        node.class.fu_kind(),
                                        kind
                                    ),
                                });
                            }
                        }
                        ResourceKind::Bus { .. } => violations.push(Violation::BadPlacement {
                            node: node.label(),
                            reason: "operation placed on a bus row".to_string(),
                        }),
                    }
                }
            }
        }
        if violations
            .iter()
            .any(|v| matches!(v, Violation::UnscheduledNode { .. }))
        {
            return violations;
        }

        // 2. Dependences (cross-cluster flow edges must go through a communication).
        for e in graph.edges() {
            // Step 1 returned early on any unplaced *node*, but an edge of a
            // malformed graph can still name an endpoint the schedule has never
            // heard of; degrade to a violation instead of panicking mid-audit.
            let (Some(pu), Some(pv)) = (sched.placement(e.src), sched.placement(e.dst)) else {
                violations.push(Violation::UnscheduledNode {
                    node: format!("edge endpoint {} or {}", e.src, e.dst),
                });
                continue;
            };
            if e.src == e.dst {
                // Self edges are recurrence constraints on II, already guaranteed by
                // II >= RecMII; nothing to check per placement.
                continue;
            }
            if e.kind.carries_value() && pu.cluster != pv.cluster {
                // Find a communication carrying this value to the consumer cluster.
                // Transfers repeat every II cycles, so a transfer recorded at
                // `start_cycle` also happens at `start_cycle + k·II` for any k; the
                // edge is satisfied iff some such instance fits between production
                // and consumption.
                let comms: Vec<_> = sched
                    .comms()
                    .iter()
                    .filter(|c| c.src_node == e.src && c.to_cluster == pv.cluster)
                    .collect();
                if comms.is_empty() {
                    violations.push(Violation::MissingCommunication {
                        src: graph.node(e.src).label(),
                        dst: graph.node(e.dst).label(),
                    });
                } else {
                    let mut best_slack = i64::MIN;
                    for c in &comms {
                        let produced_at = pu.cycle + e.latency as i64;
                        let consumed_at = pv.cycle + e.distance as i64 * ii;
                        // Earliest transfer instance (start_cycle + k·II) that does not
                        // start before the value exists.
                        let k = (produced_at - c.start_cycle + ii - 1).div_euclid(ii);
                        let start = c.start_cycle + k * ii;
                        let slack = consumed_at - (start + c.duration as i64);
                        best_slack = best_slack.max(slack);
                    }
                    if best_slack < 0 {
                        violations.push(Violation::DependenceViolated {
                            src: graph.node(e.src).label(),
                            dst: graph.node(e.dst).label(),
                            slack: best_slack,
                        });
                    }
                }
            } else {
                let slack = pv.cycle + e.distance as i64 * ii - (pu.cycle + e.latency as i64);
                if slack < 0 {
                    violations.push(Violation::DependenceViolated {
                        src: graph.node(e.src).label(),
                        dst: graph.node(e.dst).label(),
                        slack,
                    });
                }
            }
        }

        // 3. Functional-unit and bus conflicts.
        let mut fu_rows: HashMap<(usize, i64), usize> = HashMap::new();
        for p in sched.placements() {
            *fu_rows.entry((p.fu.0, p.cycle.rem_euclid(ii))).or_insert(0) += 1;
        }
        for ((fu, row), count) in &fu_rows {
            if *count > 1 {
                violations.push(Violation::FuConflict {
                    resource: pool.kind(vliw_arch::ResourceIndex(*fu)).to_string(),
                    row: *row as u32,
                });
            }
        }
        let mut bus_rows: HashMap<(usize, i64), usize> = HashMap::new();
        for c in sched.comms() {
            for d in 0..c.duration {
                *bus_rows
                    .entry((c.bus.0, (c.start_cycle + d as i64).rem_euclid(ii)))
                    .or_insert(0) += 1;
            }
        }
        for ((bus, row), count) in &bus_rows {
            if *count > 1 {
                violations.push(Violation::BusConflict {
                    resource: pool.kind(vliw_arch::ResourceIndex(*bus)).to_string(),
                    row: *row as u32,
                });
            }
        }

        // 4. Register pressure.
        let lifetimes = LifetimeMap::new(graph, sched, &self.machine);
        for (cluster, live) in lifetimes.max_live().iter().enumerate() {
            if *live as usize > self.machine.cluster.registers {
                violations.push(Violation::RegisterOverflow {
                    cluster,
                    max_live: *live,
                    capacity: self.machine.cluster.registers,
                });
            }
        }

        violations
    }

    /// Convenience: `true` when [`ScheduleValidator::validate`] finds nothing.
    pub fn is_valid(&self, graph: &DepGraph, sched: &ModuloSchedule) -> bool {
        self.validate(graph, sched).is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vliw_arch::{FuKind, OpClass};
    use vliw_ddg::{DepKind, GraphBuilder};
    use vliw_sms::{PlacedOp, SmsScheduler};

    fn saxpy() -> DepGraph {
        GraphBuilder::new("saxpy")
            .node("lx", OpClass::Load)
            .node("ly", OpClass::Load)
            .node("mul", OpClass::FpMul)
            .node("add", OpClass::FpAdd)
            .node("st", OpClass::Store)
            .flow("lx", "mul")
            .flow("mul", "add")
            .flow("ly", "add")
            .flow("add", "st")
            .build()
    }

    #[test]
    fn a_correct_schedule_validates() {
        let machine = MachineConfig::unified();
        let g = saxpy();
        let sched = SmsScheduler::new(&machine).schedule(&g).unwrap();
        let validator = ScheduleValidator::new(&machine);
        assert!(
            validator.is_valid(&g, &sched),
            "{:?}",
            validator.validate(&g, &sched)
        );
    }

    #[test]
    fn incomplete_schedules_are_flagged() {
        let machine = MachineConfig::unified();
        let g = saxpy();
        let sched = vliw_sms::ModuloSchedule::new("saxpy", g.n_nodes(), 2, 1);
        let v = ScheduleValidator::new(&machine).validate(&g, &sched);
        assert!(v
            .iter()
            .any(|x| matches!(x, Violation::UnscheduledNode { .. })));
    }

    #[test]
    fn dependence_violations_are_detected() {
        let machine = MachineConfig::unified();
        let pool = ResourcePool::new(&machine);
        let mut g = DepGraph::new("dep");
        let a = g.add_node(OpClass::Load);
        let b = g.add_node(OpClass::FpAdd);
        g.add_edge(a, b, 2, 0, DepKind::Flow);
        let mut sched = vliw_sms::ModuloSchedule::new("dep", 2, 2, 1);
        sched.place(PlacedOp {
            node: a,
            cycle: 0,
            cluster: 0,
            fu: pool.fus(0, FuKind::Mem).next().unwrap(),
        });
        // Consumer placed too early (needs cycle >= 2).
        sched.place(PlacedOp {
            node: b,
            cycle: 1,
            cluster: 0,
            fu: pool.fus(0, FuKind::Fp).next().unwrap(),
        });
        let v = ScheduleValidator::new(&machine).validate(&g, &sched);
        assert!(v
            .iter()
            .any(|x| matches!(x, Violation::DependenceViolated { slack: -1, .. })));
    }

    #[test]
    fn fu_conflicts_are_detected() {
        let machine = MachineConfig::unified();
        let pool = ResourcePool::new(&machine);
        let mut g = DepGraph::new("conflict");
        let a = g.add_node(OpClass::Load);
        let b = g.add_node(OpClass::Load);
        let mut sched = vliw_sms::ModuloSchedule::new("conflict", 2, 2, 1);
        let fu = pool.fus(0, FuKind::Mem).next().unwrap();
        sched.place(PlacedOp {
            node: a,
            cycle: 0,
            cluster: 0,
            fu,
        });
        sched.place(PlacedOp {
            node: b,
            cycle: 2,
            cluster: 0,
            fu,
        }); // same row mod 2
        let v = ScheduleValidator::new(&machine).validate(&g, &sched);
        assert!(v.iter().any(|x| matches!(x, Violation::FuConflict { .. })));
    }

    #[test]
    fn missing_communication_is_detected() {
        let machine = MachineConfig::two_cluster(1, 1);
        let pool = ResourcePool::new(&machine);
        let mut g = DepGraph::new("comm");
        let a = g.add_node(OpClass::Load);
        let b = g.add_node(OpClass::FpAdd);
        g.add_edge(a, b, 2, 0, DepKind::Flow);
        let mut sched = vliw_sms::ModuloSchedule::new("comm", 2, 3, 1);
        sched.place(PlacedOp {
            node: a,
            cycle: 0,
            cluster: 0,
            fu: pool.fus(0, FuKind::Mem).next().unwrap(),
        });
        sched.place(PlacedOp {
            node: b,
            cycle: 10,
            cluster: 1,
            fu: pool.fus(1, FuKind::Fp).next().unwrap(),
        });
        let v = ScheduleValidator::new(&machine).validate(&g, &sched);
        assert!(v
            .iter()
            .any(|x| matches!(x, Violation::MissingCommunication { .. })));
    }

    #[test]
    fn wrong_fu_kind_is_detected() {
        let machine = MachineConfig::unified();
        let pool = ResourcePool::new(&machine);
        let mut g = DepGraph::new("kind");
        let a = g.add_node(OpClass::FpMul);
        let mut sched = vliw_sms::ModuloSchedule::new("kind", 1, 1, 1);
        sched.place(PlacedOp {
            node: a,
            cycle: 0,
            cluster: 0,
            fu: pool.fus(0, FuKind::Int).next().unwrap(),
        });
        let v = ScheduleValidator::new(&machine).validate(&g, &sched);
        assert!(v
            .iter()
            .any(|x| matches!(x, Violation::BadPlacement { .. })));
    }

    #[test]
    fn register_overflow_is_detected() {
        // 20 long-lived values on a 16-register cluster must be flagged.
        let machine = MachineConfig::four_cluster(1, 1);
        let pool = ResourcePool::new(&machine);
        let mut g = DepGraph::new("pressure");
        let consumer = g.add_node(OpClass::FpAdd);
        let mut sched = vliw_sms::ModuloSchedule::new("pressure", 21, 1, 1);
        for i in 0..20u32 {
            let p = g.add_node(OpClass::IntAlu);
            g.add_edge(p, consumer, 1, 0, DepKind::Flow);
            // Deliberately ignore FU conflicts here; only the register check matters.
            sched.place(PlacedOp {
                node: p,
                cycle: i as i64,
                cluster: 0,
                fu: pool.fus(0, FuKind::Int).next().unwrap(),
            });
        }
        sched.place(PlacedOp {
            node: consumer,
            cycle: 100,
            cluster: 0,
            fu: pool.fus(0, FuKind::Fp).next().unwrap(),
        });
        let v = ScheduleValidator::new(&machine).validate(&g, &sched);
        assert!(v
            .iter()
            .any(|x| matches!(x, Violation::RegisterOverflow { .. })));
    }
}
