//! Inter-cluster communication allocation.
//!
//! When a node is placed in a cluster different from one of its (already scheduled)
//! flow-dependence neighbours, the value has to cross a bus.  The architecture of
//! Section 3 makes the bus an ordinary reservation-table resource that stays busy for
//! the whole bus latency, so allocating a communication means finding a start cycle
//! inside the window
//!
//! ```text
//!   [ value-ready cycle , consumer-issue cycle − bus latency ]
//! ```
//!
//! where some bus is free for `bus latency` consecutive cycles.  A value already
//! transferred to a cluster is *not* transferred again (the paper's Figure 7 walks
//! through exactly this case: "value from D − value from A was previously brought"),
//! so the allocator first checks the communications recorded so far.

use crate::mrt::ModuloReservationTable;
use crate::schedule::{CommPlacement, ModuloSchedule};
use vliw_arch::{MachineConfig, ResourcePool};
use vliw_ddg::{DepGraph, NodeId};

/// One communication that a tentative placement needs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CommRequest {
    /// The node whose value crosses the bus.
    pub src_node: NodeId,
    /// The consumer on the other side.
    pub dst_node: NodeId,
    /// Sending cluster.
    pub from_cluster: usize,
    /// Receiving cluster.
    pub to_cluster: usize,
    /// First cycle the value is available for sending.
    pub ready: i64,
    /// Latest cycle the value must have *arrived* (the consumer's issue cycle in the
    /// producer's time frame).
    pub deadline: i64,
}

/// The set of communications required to place `node` on `cluster` at `cycle`, given
/// the partial schedule `sched`.
///
/// Covers both directions: values arriving from already-placed predecessors in other
/// clusters, and values leaving towards already-placed successors in other clusters.
/// Requests are deduplicated per (source value, destination cluster) with the tightest
/// deadline and latest ready time.
pub fn required_comms(
    graph: &DepGraph,
    sched: &ModuloSchedule,
    machine: &MachineConfig,
    node: NodeId,
    cluster: usize,
    cycle: i64,
) -> Vec<CommRequest> {
    let ii = sched.ii() as i64;
    let mut requests: Vec<CommRequest> = Vec::new();
    let mut push = |req: CommRequest| {
        if let Some(existing) = requests
            .iter_mut()
            .find(|r| r.src_node == req.src_node && r.to_cluster == req.to_cluster)
        {
            existing.ready = existing.ready.max(req.ready);
            existing.deadline = existing.deadline.min(req.deadline);
        } else {
            requests.push(req);
        }
    };

    // Incoming values: predecessor placed in another cluster.
    for e in graph.in_edges(node).filter(|e| e.kind.carries_value()) {
        if e.src == node {
            continue;
        }
        let Some(p) = sched.placement(e.src) else {
            continue;
        };
        if p.cluster == cluster {
            continue;
        }
        // In the consumer's time frame the producer issued at p.cycle − d·II.
        let ready = p.cycle + e.latency as i64 - e.distance as i64 * ii;
        push(CommRequest {
            src_node: e.src,
            dst_node: node,
            from_cluster: p.cluster,
            to_cluster: cluster,
            ready,
            deadline: cycle,
        });
    }

    // Outgoing values: successor already placed in another cluster.
    for e in graph.out_edges(node).filter(|e| e.kind.carries_value()) {
        if e.dst == node {
            continue;
        }
        let Some(s) = sched.placement(e.dst) else {
            continue;
        };
        if s.cluster == cluster {
            continue;
        }
        let ready = cycle + e.latency as i64;
        let deadline = s.cycle + e.distance as i64 * ii;
        push(CommRequest {
            src_node: node,
            dst_node: e.dst,
            from_cluster: cluster,
            to_cluster: s.cluster,
            ready,
            deadline,
        });
    }
    let _ = machine;
    requests
}

/// One communication requirement of a `(node, cluster)` probe with the probed cycle
/// left symbolic.  Both window bounds are affine in the cycle: an incoming transfer
/// has a fixed `ready` and `deadline = cycle`, an outgoing transfer has
/// `ready = cycle + latency` and a fixed `deadline`.
#[derive(Debug, Clone, Copy)]
struct CommTemplate {
    src_node: NodeId,
    dst_node: NodeId,
    from_cluster: usize,
    to_cluster: usize,
    /// Fixed part of `ready`: absolute for incoming, cycle-relative for outgoing.
    ready: i64,
    /// Fixed part of `deadline`: absolute for outgoing, unused for incoming (the
    /// deadline of an incoming transfer is the probed cycle itself).
    deadline: i64,
    outgoing: bool,
    /// Cycle threshold at which an already-committed transfer of the same value to
    /// the same cluster covers this request (incoming: covered iff `cycle >= t`;
    /// outgoing: covered iff `cycle <= t`).
    covered_at: Option<i64>,
}

/// The cycle-independent communication analysis of one `(node, cluster)` probe.
///
/// [`required_comms`] re-derives the request set from the graph and the partial
/// schedule for every probed cycle, but within one probe only the cycle changes —
/// the remote neighbours, the merge structure and the committed transfers are all
/// fixed.  `ProbeComms` computes them once ([`ProbeComms::collect`]) and then
/// materializes the per-cycle requests ([`ProbeComms::requests_at`]) by shifting the
/// affine window bounds, dropping requests a committed transfer already covers (the
/// check [`allocate_comms`] would otherwise re-scan the comm list for).  The engine
/// debug-asserts every materialization against the from-scratch derivation.
#[derive(Debug, Default)]
pub(crate) struct ProbeComms {
    templates: Vec<CommTemplate>,
    requests: Vec<CommRequest>,
}

impl ProbeComms {
    /// Analyse placing `node` on `cluster`: record the requirement templates and
    /// their committed-coverage thresholds.  Mirrors [`required_comms`]'s edge
    /// iteration and merge order exactly.
    pub(crate) fn collect(
        &mut self,
        graph: &DepGraph,
        sched: &ModuloSchedule,
        node: NodeId,
        cluster: usize,
    ) {
        let ii = sched.ii() as i64;
        self.templates.clear();
        for e in graph.in_edges(node).filter(|e| e.kind.carries_value()) {
            if e.src == node {
                continue;
            }
            let Some(p) = sched.placement(e.src) else {
                continue;
            };
            if p.cluster == cluster {
                continue;
            }
            let ready = p.cycle + e.latency as i64 - e.distance as i64 * ii;
            if let Some(t) = self
                .templates
                .iter_mut()
                .find(|t| t.src_node == e.src && t.to_cluster == cluster)
            {
                t.ready = t.ready.max(ready);
            } else {
                self.templates.push(CommTemplate {
                    src_node: e.src,
                    dst_node: node,
                    from_cluster: p.cluster,
                    to_cluster: cluster,
                    ready,
                    deadline: 0,
                    outgoing: false,
                    covered_at: None,
                });
            }
        }
        for e in graph.out_edges(node).filter(|e| e.kind.carries_value()) {
            if e.dst == node {
                continue;
            }
            let Some(s) = sched.placement(e.dst) else {
                continue;
            };
            if s.cluster == cluster {
                continue;
            }
            let ready = e.latency as i64;
            let deadline = s.cycle + e.distance as i64 * ii;
            if let Some(t) = self
                .templates
                .iter_mut()
                .find(|t| t.src_node == node && t.to_cluster == s.cluster)
            {
                t.ready = t.ready.max(ready);
                t.deadline = t.deadline.min(deadline);
            } else {
                self.templates.push(CommTemplate {
                    src_node: node,
                    dst_node: e.dst,
                    from_cluster: cluster,
                    to_cluster: s.cluster,
                    ready,
                    deadline,
                    outgoing: true,
                    covered_at: None,
                });
            }
        }
        // Committed-coverage thresholds: one scan of the comm list per probe instead
        // of one per probed cycle.  A committed transfer `c` covers an incoming
        // request iff `c.start >= ready && c.end <= cycle` — i.e. from cycle
        // `min(c.end)` on — and an outgoing request iff
        // `c.start >= cycle + ready_rel && c.end <= deadline` — i.e. up to cycle
        // `max(c.start - ready_rel)`.
        if !self.templates.is_empty() {
            for c in sched.comms() {
                let end = c.start_cycle + c.duration as i64;
                for t in &mut self.templates {
                    if c.src_node != t.src_node || c.to_cluster != t.to_cluster {
                        continue;
                    }
                    if t.outgoing {
                        if end <= t.deadline {
                            let at = c.start_cycle - t.ready;
                            t.covered_at = Some(t.covered_at.map_or(at, |v| v.max(at)));
                        }
                    } else if c.start_cycle >= t.ready {
                        t.covered_at = Some(t.covered_at.map_or(end, |v| v.min(end)));
                    }
                }
            }
        }
    }

    /// Materialize the requests of this probe at `cycle` — [`required_comms`] output
    /// minus the requests a committed transfer already covers — into a reused buffer.
    pub(crate) fn requests_at(&mut self, cycle: i64) -> &[CommRequest] {
        self.requests.clear();
        for t in &self.templates {
            let covered = match t.covered_at {
                None => false,
                Some(at) if t.outgoing => cycle <= at,
                Some(at) => cycle >= at,
            };
            if covered {
                continue;
            }
            let (ready, deadline) = if t.outgoing {
                (cycle + t.ready, t.deadline)
            } else {
                (t.ready, cycle)
            };
            self.requests.push(CommRequest {
                src_node: t.src_node,
                dst_node: t.dst_node,
                from_cluster: t.from_cluster,
                to_cluster: t.to_cluster,
                ready,
                deadline,
            });
        }
        &self.requests
    }
}

/// Outcome of trying to allocate a set of communication requests.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CommAllocation {
    /// All requests satisfied; the new communications (already reserved in the MRT
    /// passed to [`allocate_comms`]) are listed.
    Satisfied(Vec<CommPlacement>),
    /// At least one request could not be satisfied because no bus slot fits the
    /// window.  The MRT is left unchanged.
    BusUnavailable,
    /// At least one request has an empty window (deadline earlier than ready + bus
    /// latency); the placement cycle itself is infeasible.  The MRT is left unchanged.
    WindowTooSmall,
}

impl CommAllocation {
    /// Whether the allocation succeeded.
    pub fn is_satisfied(&self) -> bool {
        matches!(self, CommAllocation::Satisfied(_))
    }
}

/// Try to allocate buses for all `requests`, reserving slots in `mrt`.
///
/// Requests already covered by an earlier communication of the same value to the same
/// cluster (with a compatible arrival time) are skipped.  On failure every reservation
/// made for this call is rolled back and the MRT is unchanged.
pub fn allocate_comms(
    requests: &[CommRequest],
    sched: &ModuloSchedule,
    pool: &ResourcePool,
    mrt: &mut ModuloReservationTable,
    machine: &MachineConfig,
) -> CommAllocation {
    allocate_comms_inner(requests, Some(sched), pool, mrt, machine)
}

/// [`allocate_comms`] for pre-filtered requests: the caller guarantees no request is
/// covered by a committed transfer ([`ProbeComms::requests_at`] dropped those), so
/// only reuse between the requests of this call is checked.
pub(crate) fn allocate_uncovered_comms(
    requests: &[CommRequest],
    pool: &ResourcePool,
    mrt: &mut ModuloReservationTable,
    machine: &MachineConfig,
) -> CommAllocation {
    allocate_comms_inner(requests, None, pool, mrt, machine)
}

fn allocate_comms_inner(
    requests: &[CommRequest],
    sched: Option<&ModuloSchedule>,
    pool: &ResourcePool,
    mrt: &mut ModuloReservationTable,
    machine: &MachineConfig,
) -> CommAllocation {
    let latency = machine.buses.latency;
    let ii = mrt.ii() as i64;
    let mut new_comms: Vec<CommPlacement> = Vec::new();
    let mut reservations = Vec::new();

    let rollback = |mrt: &mut ModuloReservationTable, reservations: &mut Vec<_>| {
        for r in reservations.drain(..) {
            mrt.release(r);
        }
    };

    let committed = sched.map_or(&[][..], |s| s.comms());
    for req in requests {
        // Re-use an existing transfer of the same value to the same cluster if it
        // arrives in time and was not sent before the value was ready (modulo-II
        // periodicity makes any earlier compatible transfer usable every iteration).
        let reused = committed.iter().chain(new_comms.iter()).any(|c| {
            c.src_node == req.src_node
                && c.to_cluster == req.to_cluster
                && c.start_cycle >= req.ready
                && c.start_cycle + c.duration as i64 <= req.deadline
        });
        if reused {
            continue;
        }
        if req.deadline - req.ready < latency as i64 {
            rollback(mrt, &mut reservations);
            return CommAllocation::WindowTooSmall;
        }
        // Scan start cycles in the window; at most II distinct columns exist.
        let last_start = (req.deadline - latency as i64).min(req.ready + ii - 1);
        let mut allocated = false;
        for start in req.ready..=last_start {
            if let Some(bus) = mrt.find_free_for(pool.buses(), start, latency) {
                let reservation = mrt.reserve_for(bus, start, latency);
                reservations.push(reservation);
                new_comms.push(CommPlacement {
                    src_node: req.src_node,
                    dst_node: req.dst_node,
                    from_cluster: req.from_cluster,
                    to_cluster: req.to_cluster,
                    bus,
                    start_cycle: start,
                    duration: latency,
                });
                allocated = true;
                break;
            }
        }
        if !allocated {
            rollback(mrt, &mut reservations);
            return CommAllocation::BusUnavailable;
        }
    }
    CommAllocation::Satisfied(new_comms)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schedule::PlacedOp;
    use vliw_arch::{FuKind, MachineConfig, OpClass};
    use vliw_ddg::{DepGraph, DepKind};

    fn two_cluster() -> (MachineConfig, ResourcePool) {
        let m = MachineConfig::two_cluster(1, 1);
        let p = ResourcePool::new(&m);
        (m, p)
    }

    fn graph_pair() -> DepGraph {
        let mut g = DepGraph::new("pair");
        let a = g.add_node(OpClass::Load);
        let b = g.add_node(OpClass::FpAdd);
        g.add_edge(a, b, 2, 0, DepKind::Flow);
        g
    }

    #[test]
    fn no_comms_needed_within_one_cluster() {
        let (machine, pool) = two_cluster();
        let g = graph_pair();
        let mut sched = ModuloSchedule::new("pair", 2, 4, 1);
        sched.place(PlacedOp {
            node: NodeId(0),
            cycle: 0,
            cluster: 0,
            fu: pool.fus(0, FuKind::Mem).next().unwrap(),
        });
        let reqs = required_comms(&g, &sched, &machine, NodeId(1), 0, 3);
        assert!(reqs.is_empty());
    }

    #[test]
    fn incoming_value_from_other_cluster_requires_a_transfer() {
        let (machine, pool) = two_cluster();
        let g = graph_pair();
        let mut sched = ModuloSchedule::new("pair", 2, 4, 1);
        sched.place(PlacedOp {
            node: NodeId(0),
            cycle: 0,
            cluster: 0,
            fu: pool.fus(0, FuKind::Mem).next().unwrap(),
        });
        let reqs = required_comms(&g, &sched, &machine, NodeId(1), 1, 5);
        assert_eq!(reqs.len(), 1);
        let r = &reqs[0];
        assert_eq!(r.src_node, NodeId(0));
        assert_eq!((r.from_cluster, r.to_cluster), (0, 1));
        assert_eq!(r.ready, 2); // load issues at 0, latency 2
        assert_eq!(r.deadline, 5);
    }

    #[test]
    fn outgoing_value_to_scheduled_successor() {
        let (machine, pool) = two_cluster();
        let g = graph_pair();
        let mut sched = ModuloSchedule::new("pair", 2, 4, 1);
        // The consumer is already placed on cluster 1; we now try the producer on 0.
        sched.place(PlacedOp {
            node: NodeId(1),
            cycle: 6,
            cluster: 1,
            fu: pool.fus(1, FuKind::Fp).next().unwrap(),
        });
        let reqs = required_comms(&g, &sched, &machine, NodeId(0), 0, 1);
        assert_eq!(reqs.len(), 1);
        assert_eq!(reqs[0].ready, 3); // issue 1 + latency 2
        assert_eq!(reqs[0].deadline, 6);
    }

    #[test]
    fn allocation_reserves_a_bus_and_rolls_back_on_failure() {
        let (machine, pool) = two_cluster();
        let mut mrt = ModuloReservationTable::new(&pool, 2);
        let sched = ModuloSchedule::new("x", 2, 2, 1);
        let req = CommRequest {
            src_node: NodeId(0),
            dst_node: NodeId(1),
            from_cluster: 0,
            to_cluster: 1,
            ready: 2,
            deadline: 5,
        };
        let result = allocate_comms(&[req], &sched, &pool, &mut mrt, &machine);
        let CommAllocation::Satisfied(comms) = result else {
            panic!("expected success")
        };
        assert_eq!(comms.len(), 1);
        let bus = pool.buses().next().unwrap();
        assert_eq!(mrt.row_occupancy(bus), 1);

        // The single bus (II = 2, one slot left) cannot take two more transfers.
        let req2 = CommRequest {
            ready: 3,
            deadline: 6,
            ..req
        };
        let req3 = CommRequest {
            ready: 4,
            deadline: 7,
            ..req
        };
        let before = mrt.row_occupancy(bus);
        let result = allocate_comms(&[req2, req3], &sched, &pool, &mut mrt, &machine);
        assert_eq!(result, CommAllocation::BusUnavailable);
        // rollback left the table untouched
        assert_eq!(mrt.row_occupancy(bus), before);
    }

    #[test]
    fn window_smaller_than_bus_latency_is_rejected() {
        let machine = MachineConfig::two_cluster(1, 4); // 4-cycle buses
        let pool = ResourcePool::new(&machine);
        let mut mrt = ModuloReservationTable::new(&pool, 8);
        let sched = ModuloSchedule::new("x", 2, 8, 1);
        let req = CommRequest {
            src_node: NodeId(0),
            dst_node: NodeId(1),
            from_cluster: 0,
            to_cluster: 1,
            ready: 2,
            deadline: 4, // only 2 cycles of slack, bus needs 4
        };
        let result = allocate_comms(&[req], &sched, &pool, &mut mrt, &machine);
        assert_eq!(result, CommAllocation::WindowTooSmall);
    }

    #[test]
    fn existing_transfer_is_reused() {
        let (machine, pool) = two_cluster();
        let mut mrt = ModuloReservationTable::new(&pool, 4);
        let mut sched = ModuloSchedule::new("x", 3, 4, 1);
        // A transfer of node 0's value to cluster 1 already exists (cycles 2..3).
        let bus = pool.buses().next().unwrap();
        mrt.reserve_for(bus, 2, 1);
        sched.add_comm(CommPlacement {
            src_node: NodeId(0),
            dst_node: NodeId(1),
            from_cluster: 0,
            to_cluster: 1,
            bus,
            start_cycle: 2,
            duration: 1,
        });
        // A second consumer of the same value on cluster 1, later in time: no new
        // transfer is needed.
        let req = CommRequest {
            src_node: NodeId(0),
            dst_node: NodeId(2),
            from_cluster: 0,
            to_cluster: 1,
            ready: 2,
            deadline: 9,
        };
        let result = allocate_comms(&[req], &sched, &pool, &mut mrt, &machine);
        let CommAllocation::Satisfied(comms) = result else {
            panic!("expected success")
        };
        assert!(comms.is_empty());
        assert_eq!(mrt.row_occupancy(bus), 1);
    }

    #[test]
    fn duplicate_requests_are_merged() {
        let (machine, pool) = two_cluster();
        let mut g = DepGraph::new("fanin");
        let a = g.add_node(OpClass::Load);
        let b = g.add_node(OpClass::FpAdd);
        // two flow edges from the same producer to the same consumer (e.g. x*x)
        g.add_edge(a, b, 2, 0, DepKind::Flow);
        g.add_edge(a, b, 2, 0, DepKind::Flow);
        let mut sched = ModuloSchedule::new("fanin", 2, 4, 1);
        sched.place(PlacedOp {
            node: a,
            cycle: 0,
            cluster: 0,
            fu: pool.fus(0, FuKind::Mem).next().unwrap(),
        });
        let reqs = required_comms(&g, &sched, &machine, b, 1, 5);
        assert_eq!(reqs.len(), 1);
    }
}
