//! Panic containment at scheduling boundaries.
//!
//! The engine converts every failure it can *reason about* into a typed
//! [`ScheduleError`], but a buggy [`crate::ClusterPolicy`] — or an injected fault in
//! a robustness campaign — can still panic.  [`contain`] is the safe
//! (`forbid(unsafe_code)`-compatible) isolation boundary: it runs a closure under
//! [`std::panic::catch_unwind`] and maps an unwind into
//! [`ScheduleError::PolicyPanic`] carrying the panic message, so a degradation
//! ladder or a sweep job can record the containment and move on instead of killing
//! the whole campaign.
//!
//! A contained panic would normally still print the default "thread panicked"
//! banner through the global panic hook.  The first `contain` call therefore
//! installs (once, process-wide) a delegating hook that stays silent while the
//! *current thread* is inside `contain` and forwards to the previously installed
//! hook otherwise — panics elsewhere (other threads, `#[should_panic]` tests, real
//! bugs outside a containment region) keep their usual reporting.

use crate::schedule::ScheduleError;
use std::cell::Cell;
use std::panic::{self, AssertUnwindSafe};
use std::sync::Once;

static INSTALL_HOOK: Once = Once::new();

thread_local! {
    /// Depth of `contain` frames on this thread; the hook is silent while > 0.
    static CONTAIN_DEPTH: Cell<u32> = const { Cell::new(0) };
}

fn install_silencing_hook() {
    INSTALL_HOOK.call_once(|| {
        let previous = panic::take_hook();
        panic::set_hook(Box::new(move |info| {
            if CONTAIN_DEPTH.with(Cell::get) == 0 {
                previous(info);
            }
        }));
    });
}

/// Extract a human-readable message from a panic payload (the two payload types the
/// standard `panic!` machinery produces, with a fallback for exotic payloads).
fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Run `f`, converting a panic into [`ScheduleError::PolicyPanic`].
///
/// The closure's captures are treated as unwind-safe (`AssertUnwindSafe`): every
/// caller in this workspace discards the state the closure touched whenever an
/// unwind is reported — the ladder rebuilds policy and scratch per rung, campaign
/// jobs own their case — so no broken invariant can be observed afterwards.
pub fn contain<R>(f: impl FnOnce() -> R) -> Result<R, ScheduleError> {
    install_silencing_hook();
    CONTAIN_DEPTH.with(|d| d.set(d.get() + 1));
    let result = panic::catch_unwind(AssertUnwindSafe(f));
    CONTAIN_DEPTH.with(|d| d.set(d.get() - 1));
    result.map_err(|payload| ScheduleError::PolicyPanic {
        message: panic_message(payload),
    })
}

/// [`contain`] for fallible scheduling closures: flattens the contained panic and
/// the closure's own `Result` into one `Result` (the shape every ladder rung and
/// campaign job wants).
pub fn contain_schedule<R>(
    f: impl FnOnce() -> Result<R, ScheduleError>,
) -> Result<R, ScheduleError> {
    contain(f)?
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn a_clean_closure_passes_its_value_through() {
        assert_eq!(contain(|| 42).unwrap(), 42);
    }

    #[test]
    fn a_panicking_closure_is_contained_with_its_message() {
        let err = contain(|| panic!("injected fault {}", 7)).unwrap_err();
        match err {
            ScheduleError::PolicyPanic { message } => {
                assert_eq!(message, "injected fault 7");
            }
            other => panic!("expected PolicyPanic, got {other:?}"),
        }
    }

    #[test]
    fn static_str_payloads_are_extracted() {
        let err = contain(|| panic!("plain payload")).unwrap_err();
        assert!(err.to_string().contains("plain payload"));
    }

    #[test]
    fn contain_schedule_flattens_both_layers() {
        let ok: Result<u32, ScheduleError> = contain_schedule(|| Ok(5));
        assert_eq!(ok.unwrap(), 5);
        let inner: Result<u32, ScheduleError> =
            contain_schedule(|| Err(ScheduleError::InvalidGraph("x".into())));
        assert!(matches!(inner, Err(ScheduleError::InvalidGraph(_))));
        let panicked: Result<u32, ScheduleError> = contain_schedule(|| panic!("boom"));
        assert!(matches!(panicked, Err(ScheduleError::PolicyPanic { .. })));
    }

    #[test]
    fn nested_containment_unwinds_correctly() {
        let outer = contain(|| {
            let inner = contain(|| -> u32 { panic!("inner") });
            assert!(matches!(inner, Err(ScheduleError::PolicyPanic { .. })));
            "outer survives"
        });
        assert_eq!(outer.unwrap(), "outer survives");
        // Depth is back to zero: a panic *outside* contain would report normally.
        assert_eq!(CONTAIN_DEPTH.with(Cell::get), 0);
    }
}
