//! The shared modulo-scheduling engine.
//!
//! Every scheduler in this repository — the paper's single-pass BSA, the two-phase
//! Nystrom & Eichenberger baseline, the unified-machine SMS reference and the two
//! ablation schedulers — runs the *same* scheduling discipline: search initiation
//! intervals upward from MII, try the Swing Modulo Scheduling node order and then a
//! topological fallback, place one node at a time against a shared reservation table,
//! and restart at a larger II when a node cannot be placed.  What distinguishes the
//! algorithms is a single decision: *which cluster (and therefore which concrete
//! placement) each node gets*.
//!
//! This module factors that split into two pieces:
//!
//! * [`IiSearchDriver`] owns everything that is common — the MII→max-II retry loop,
//!   the ordering fallbacks, the scratch reuse (the reservation table is `reset`
//!   instead of reallocated, tentative placements are undone through the schedule's
//!   checkpoint/rollback transaction), register checking and the bookkeeping that
//!   feeds [`ScheduleDiagnostics`];
//! * [`ClusterPolicy`] encapsulates only the strategy difference: given the next node
//!   and an [`EngineView`] of the partial schedule, return the [`Trial`] to commit
//!   (policies evaluate candidates with [`EngineView::probe`], which leaves the
//!   schedule and the reservation table untouched regardless of outcome).
//!
//! A new cluster-assignment strategy is therefore a ~50-line policy, not a fork of the
//! ~700-line scheduler: implement [`ClusterPolicy::select_placement`] and hand it to
//! the driver.  See `DESIGN.md` for the architecture notes and the catalogue of
//! policies built on this engine.

use crate::comm::{allocate_uncovered_comms, CommAllocation, ProbeComms};
use crate::fuel::{FuelBudget, FuelMeter, FuelSpent, FuelStop};
use crate::lifetime::LifetimeMap;
use crate::max_ii;
use crate::mrt::ModuloReservationTable;
use crate::ordering::{self, OrderingContext};
use crate::pressure::PressureTracker;
use crate::schedule::{CommPlacement, ModuloSchedule, PlacedOp, ScheduleError};
use crate::slots::{early_start, late_start, SlotScan};
use serde::{Deserialize, Serialize};
use vliw_arch::{FuKind, MachineConfig, ResourceIndex, ResourceKind, ResourcePool};
use vliw_ddg::{rec_mii, res_mii, DepGraph, GraphAnalysis, NodeId};

/// When the register-pressure check runs during an attempt.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RegisterCheckMode {
    /// Probe every tentative placement against the register files (the clustered
    /// schedulers): a placement whose lifetimes overflow a register file is rejected
    /// and the cluster is abandoned for this node (later cycles only lengthen
    /// lifetimes).
    PerPlacement,
    /// Check `MaxLive` of cluster 0 once, after every node has been placed (the
    /// unified SMS scheduler): an overflow fails the whole attempt.
    WholeSchedule,
}

/// A fully evaluated candidate placement of one node on one cluster, produced by
/// [`EngineView::probe`] and committed by the driver when the policy selects it.
#[derive(Debug, Clone)]
pub struct Trial {
    /// The node being placed.
    pub node: NodeId,
    /// The cluster the node would execute in.
    pub cluster: usize,
    /// The issue cycle.
    pub cycle: i64,
    /// The functional-unit row found free at `cycle`.
    pub fu: ResourceIndex,
    /// The bus transfers this placement needs (already proven allocatable).
    pub comms: Vec<CommPlacement>,
    /// Register pressure of the candidate cluster after the placement (0 when the
    /// register check is disabled or deferred).
    pub max_live: u32,
}

/// What [`EngineView::probe`] learned about one (node, cluster) combination.
///
/// Beyond the feasible placement itself, the probe reports *why* it stopped — the
/// cluster schedulers interpret the flags differently when accounting bus pressure
/// (BSA counts a cluster as bus-blocked only when the whole cycle scan failed with a
/// bus saturation; N&E counts every saturated cycle, even for nodes that eventually
/// place), so the translation into [`EngineView::record_bus_failure`] is left to the
/// policy.
#[derive(Debug, Clone)]
pub struct Probe {
    /// The feasible placement, if any cycle of the scan admitted one.
    pub trial: Option<Trial>,
    /// Some probed cycle had a free functional unit but no bus slot for the required
    /// communications — the signature of a bus-limited loop.
    pub saw_bus_block: bool,
    /// The scan stopped because the register file would overflow at the first
    /// otherwise-feasible cycle.
    pub register_blocked: bool,
}

impl Probe {
    /// Whether the probe found a feasible placement.
    pub fn is_feasible(&self) -> bool {
        self.trial.is_some()
    }
}

/// The engine's view of one in-progress scheduling attempt, handed to
/// [`ClusterPolicy::select_placement`].
///
/// The view exposes read access to the partial schedule and the bookkeeping a policy
/// needs (the node order, the per-node cluster assignment so far), plus the
/// [`EngineView::probe`] primitive that evaluates a candidate placement without
/// mutating any observable state.
pub struct EngineView<'a> {
    graph: &'a DepGraph,
    ctx: &'a OrderingContext,
    machine: &'a MachineConfig,
    pool: &'a ResourcePool,
    sched: &'a mut ModuloSchedule,
    mrt: &'a mut ModuloReservationTable,
    assignment: &'a [Option<usize>],
    fuel: &'a mut FuelMeter,
    tracker: &'a mut PressureTracker,
    comm_scratch: &'a mut ProbeComms,
    ii: u32,
    check_registers: bool,
    per_placement_registers: bool,
    incremental: bool,
    bus_failed: bool,
    register_failed: bool,
}

impl<'a> EngineView<'a> {
    /// The dependence graph being scheduled.
    pub fn graph(&self) -> &'a DepGraph {
        self.graph
    }

    /// The machine being scheduled for.
    pub fn machine(&self) -> &'a MachineConfig {
        self.machine
    }

    /// The candidate initiation interval of this attempt.
    pub fn ii(&self) -> u32 {
        self.ii
    }

    /// The partial schedule built so far (read-only; tentative state never leaks).
    pub fn schedule(&self) -> &ModuloSchedule {
        self.sched
    }

    /// The node ordering (and graph analysis) driving this attempt.
    pub fn ordering(&self) -> &'a OrderingContext {
        self.ctx
    }

    /// Cluster each already-committed node was placed in (`None` = not yet placed),
    /// indexed by node.  This is the engine-maintained bookkeeping BSA's profit
    /// heuristic reads.
    pub fn assignment(&self) -> &'a [Option<usize>] {
        self.assignment
    }

    /// Whether `node` starts a new connected subgraph in the order (no direct
    /// neighbour already scheduled) — the trigger for BSA's default-cluster rotation.
    pub fn starts_new_subgraph(&self, node: NodeId) -> bool {
        self.ctx.starts_new_subgraph(self.graph, self.sched, node)
    }

    /// Record that the current node failed (at least partly) because the buses were
    /// saturated.  Feeds the `LimitedByBus` predicate of the selective unroller and
    /// the [`ScheduleDiagnostics`]; policies decide when a [`Probe`] counts (see
    /// [`Probe`]).  Register-pressure rejections need no counterpart hook: the
    /// engine records them inside [`EngineView::probe`] itself.
    pub fn record_bus_failure(&mut self) {
        self.bus_failed = true;
    }

    /// Evaluate placing `node` on `cluster`: scan the candidate cycles for a free
    /// functional unit whose communications fit on the buses and (in
    /// [`RegisterCheckMode::PerPlacement`]) whose lifetimes fit the register files.
    ///
    /// The reservation table *and the schedule* are left unchanged regardless of
    /// outcome — tentative state is applied in place and undone through the
    /// checkpoint/rollback transaction, never by cloning the schedule.
    pub fn probe(&mut self, node: NodeId, cluster: usize) -> Probe {
        // Fuel gate: past the probe budget every probe reports infeasible, which
        // fails the attempt; the driver then surfaces `BudgetExhausted`.
        if !self.fuel.spend_probe() {
            return Probe {
                trial: None,
                saw_bus_block: false,
                register_blocked: false,
            };
        }
        // Communication requirements are analysed once per probe; each scanned
        // cycle only shifts the affine window bounds (see `ProbeComms`).  The
        // buffers are moved out for the duration of the scan so the probe body
        // can borrow the rest of the view mutably.
        let mut comm_probe = std::mem::take(self.comm_scratch);
        comm_probe.collect(self.graph, self.sched, node, cluster);
        // Likewise the register-pressure affected set is fixed for the whole
        // probe — collect it once instead of once per scanned cycle.
        if self.check_registers && self.per_placement_registers && self.incremental {
            self.tracker.prepare_probe(self.graph, self.sched, node);
        }
        let out = self.probe_with(node, cluster, &mut comm_probe);
        *self.comm_scratch = comm_probe;
        out
    }

    fn probe_with(&mut self, node: NodeId, cluster: usize, comm_probe: &mut ProbeComms) -> Probe {
        let machine = self.machine;
        let bus_latency = machine.buses.latency;
        let kind = self.graph.node(node).class.fu_kind();
        let early = early_start(
            self.graph,
            self.sched,
            node,
            self.ii,
            Some(cluster),
            bus_latency,
        );
        let late = late_start(
            self.graph,
            self.sched,
            node,
            self.ii,
            Some(cluster),
            bus_latency,
        );
        let default_start = self.ctx.analysis.asap(node);
        let scan = SlotScan::new(early, late, self.ii, default_start);

        let mut saw_bus_block = false;
        for cycle in scan {
            let Some(fu) = self.mrt.find_free(self.pool.fus(cluster, kind), cycle) else {
                continue;
            };
            // Tentatively reserve the FU so the bus allocator sees a consistent
            // table; everything reserved in this probe is rolled back before
            // returning.
            let fu_reservation = self.mrt.reserve(fu, cycle);
            let requests = comm_probe.requests_at(cycle);
            #[cfg(debug_assertions)]
            {
                // The affine materialization must equal the from-scratch derivation
                // minus the requests a committed transfer covers.
                let reference: Vec<_> = crate::comm::required_comms(
                    self.graph, self.sched, machine, node, cluster, cycle,
                )
                .into_iter()
                .filter(|r| {
                    !self.sched.comms().iter().any(|c| {
                        c.src_node == r.src_node
                            && c.to_cluster == r.to_cluster
                            && c.start_cycle >= r.ready
                            && c.start_cycle + c.duration as i64 <= r.deadline
                    })
                })
                .collect();
                debug_assert_eq!(
                    requests,
                    &reference[..],
                    "ProbeComms diverged from required_comms placing {node} on \
                     cluster {cluster} at cycle {cycle}"
                );
            }
            match allocate_uncovered_comms(requests, self.pool, self.mrt, machine) {
                CommAllocation::Satisfied(comms) => {
                    // Register-pressure check on the schedule itself: apply the
                    // trial, measure lifetimes, roll back to the checkpoint.
                    let (fits, max_live) = if self.check_registers && self.per_placement_registers {
                        let cp = self.sched.checkpoint();
                        for c in &comms {
                            self.sched.add_comm(*c);
                        }
                        self.sched.place(PlacedOp {
                            node,
                            cycle,
                            cluster,
                            fu,
                        });
                        let (fits, max_live) = if self.incremental {
                            let got = self.tracker.evaluate(self.graph, self.sched, node, cluster);
                            #[cfg(debug_assertions)]
                            {
                                let lt = LifetimeMap::new(self.graph, self.sched, machine);
                                debug_assert_eq!(
                                    got,
                                    (lt.fits(machine), lt.max_live_in(cluster)),
                                    "incremental pressure diverged from LifetimeMap \
                                     placing {node} on cluster {cluster} at cycle {cycle}"
                                );
                            }
                            got
                        } else {
                            let lt = LifetimeMap::new(self.graph, self.sched, machine);
                            (lt.fits(machine), lt.max_live_in(cluster))
                        };
                        self.sched.rollback(cp);
                        (fits, max_live)
                    } else {
                        (true, 0)
                    };
                    // Release the tentative reservations: the driver re-applies the
                    // chosen trial once the policy has decided.
                    for c in &comms {
                        self.mrt.unreserve_for(c.bus, c.start_cycle, c.duration);
                    }
                    self.mrt.release(fu_reservation);
                    if !fits {
                        // The register file would overflow at this cycle; later
                        // cycles (longer lifetimes) will not help, so this cluster
                        // is out.
                        self.register_failed = true;
                        return Probe {
                            trial: None,
                            saw_bus_block,
                            register_blocked: true,
                        };
                    }
                    return Probe {
                        trial: Some(Trial {
                            node,
                            cluster,
                            cycle,
                            fu,
                            comms,
                            max_live,
                        }),
                        saw_bus_block,
                        register_blocked: false,
                    };
                }
                CommAllocation::BusUnavailable => {
                    saw_bus_block = true;
                    self.mrt.release(fu_reservation);
                }
                CommAllocation::WindowTooSmall => {
                    self.mrt.release(fu_reservation);
                }
            }
        }
        Probe {
            trial: None,
            saw_bus_block,
            register_blocked: false,
        }
    }

    /// Evaluate placing `node` on cluster 0 of a unified machine: find the first free
    /// functional unit in the scan, with no communication machinery and no
    /// per-placement register check (the unified scheduler checks `MaxLive` once per
    /// attempt, see [`RegisterCheckMode::WholeSchedule`]).
    pub fn probe_unified(&mut self, node: NodeId) -> Probe {
        if !self.fuel.spend_probe() {
            return Probe {
                trial: None,
                saw_bus_block: false,
                register_blocked: false,
            };
        }
        let kind = self.graph.node(node).class.fu_kind();
        let early = early_start(self.graph, self.sched, node, self.ii, None, 0);
        let late = late_start(self.graph, self.sched, node, self.ii, None, 0);
        let default_start = self.ctx.analysis.asap(node);
        let scan = SlotScan::new(early, late, self.ii, default_start);
        for cycle in scan {
            if let Some(fu) = self.mrt.find_free(self.pool.fus(0, kind), cycle) {
                return Probe {
                    trial: Some(Trial {
                        node,
                        cluster: 0,
                        cycle,
                        fu,
                        comms: Vec::new(),
                        max_live: 0,
                    }),
                    saw_bus_block: false,
                    register_blocked: false,
                };
            }
        }
        Probe {
            trial: None,
            saw_bus_block: false,
            register_blocked: false,
        }
    }
}

/// A cluster-assignment strategy plugged into the [`IiSearchDriver`].
///
/// The engine calls [`ClusterPolicy::select_placement`] once per node (in scheduling
/// order); the policy evaluates candidates through the [`EngineView`] and returns the
/// trial to commit, or `None` to fail the attempt (the driver then falls back to the
/// next ordering or the next II).
pub trait ClusterPolicy {
    /// Short name of the strategy (reports and diagnostics).
    fn name(&self) -> &'static str;

    /// Called once per candidate II, before the ordering attempts at that II.
    /// Two-phase policies recompute their cluster assignment here.
    fn begin_ii(&mut self, graph: &DepGraph, machine: &MachineConfig, ii: u32) {
        let _ = (graph, machine, ii);
    }

    /// Called at the start of every scheduling attempt (once per ordering fallback);
    /// per-attempt state such as BSA's default-cluster rotation resets here.
    fn begin_attempt(&mut self, graph: &DepGraph, machine: &MachineConfig, ii: u32) {
        let _ = (graph, machine, ii);
    }

    /// Choose the placement of `node`, or `None` when no cluster can take it at this
    /// II (the attempt fails and the II search continues).
    fn select_placement(&mut self, node: NodeId, view: &mut EngineView<'_>) -> Option<Trial>;
}

/// A policy that schedules every node on a pre-computed cluster (the building block
/// of the two-phase baseline and the ablation schedulers).
///
/// N&E-style bus accounting: every bus-saturated probe cycle counts as a bus failure,
/// even when the node eventually places at a later cycle.
#[derive(Debug, Clone)]
pub struct FixedAssignmentPolicy {
    name: &'static str,
    assignment: Vec<usize>,
}

impl FixedAssignmentPolicy {
    /// A policy forcing node `i` onto `assignment[i]`.
    pub fn new(name: &'static str, assignment: Vec<usize>) -> Self {
        Self { name, assignment }
    }

    /// The forced assignment (one cluster per node).
    pub fn assignment(&self) -> &[usize] {
        &self.assignment
    }

    /// Replace the assignment (used by policies that recompute per II).
    pub fn set_assignment(&mut self, assignment: Vec<usize>) {
        self.assignment = assignment;
    }
}

impl ClusterPolicy for FixedAssignmentPolicy {
    fn name(&self) -> &'static str {
        self.name
    }

    fn select_placement(&mut self, node: NodeId, view: &mut EngineView<'_>) -> Option<Trial> {
        let probe = view.probe(node, self.assignment[node.index()]);
        if probe.saw_bus_block {
            view.record_bus_failure();
        }
        probe.trial
    }
}

/// One step of the II search, recorded in [`ScheduleDiagnostics::ii_trajectory`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct IiStep {
    /// The initiation interval attempted.
    pub ii: u32,
    /// How many node orderings were tried at this II (the SMS order, then the
    /// topological fallback).
    pub orders_tried: u32,
    /// A failure at this II involved a bus-saturated placement.
    pub bus_blocked: bool,
    /// A failure at this II involved a register-file overflow.
    pub register_blocked: bool,
}

/// The resource that ultimately bounded the initiation interval of a schedule.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum LimitingResource {
    /// The schedule reached MII and MII was set by a dependence recurrence.
    Recurrence,
    /// The schedule reached MII and MII was set by functional-unit counts, or the II
    /// had to grow for reasons other than buses or registers (no free slot in any
    /// scan window).
    FunctionalUnits,
    /// The II had to grow beyond MII because the communication buses were saturated —
    /// the `LimitedByBus` predicate of the selective-unrolling algorithm (Figure 6).
    Bus,
    /// The II had to grow beyond MII because a register file overflowed.
    Registers,
}

impl LimitingResource {
    /// Stable lower-case label, used by coverage counters and reports (the
    /// `vliw-verify` campaigns key their policy × limiting-resource histograms on
    /// it).
    pub fn label(self) -> &'static str {
        match self {
            LimitingResource::Recurrence => "recurrence",
            LimitingResource::FunctionalUnits => "fu",
            LimitingResource::Bus => "bus",
            LimitingResource::Registers => "registers",
        }
    }
}

impl std::fmt::Display for LimitingResource {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// Structured account of how a schedule came to be, produced by the
/// [`IiSearchDriver`] alongside every [`ModuloSchedule`] and carried through
/// `ClusterSchedule` and the experiment results.
#[derive(Debug, Clone, PartialEq)]
pub struct ScheduleDiagnostics {
    /// The achieved initiation interval.
    pub ii: u32,
    /// The minimum II (`max(ResMII, RecMII)`).
    pub mii: u32,
    /// The resource-constrained component of MII.
    pub res_mii: u32,
    /// The recurrence-constrained component of MII.
    pub rec_mii: u32,
    /// What bounded the II (see [`LimitingResource`]).
    pub limiting: LimitingResource,
    /// Every II with at least one failed ordering attempt, in order (empty when the
    /// loop scheduled at MII on the first ordering).  The last entry may carry the
    /// *final* II when its SMS ordering failed and the topological fallback
    /// succeeded.
    pub ii_trajectory: Vec<IiStep>,
    /// Inter-cluster value transfers in the final schedule.
    pub n_comms: usize,
    /// Per-cluster `MaxLive` register pressure of the final schedule.
    pub max_live_per_cluster: Vec<u32>,
    /// Fuel consumed by the search — present only when the driver ran under a
    /// [`FuelBudget`] (unbudgeted runs serialize byte-identically to older reports).
    pub fuel: Option<FuelSpent>,
    /// The degradation-ladder rung that produced this schedule — present only when a
    /// resilient scheduler set it (plain engine runs leave it `None`).
    pub rung: Option<String>,
}

// Hand-written (de)serialization: the committed result JSONs must stay byte-identical
// when `fuel` / `rung` are absent, so the two optional fields are emitted only when
// present and default to `None` when a report predating them is read back.
impl Serialize for ScheduleDiagnostics {
    fn to_value(&self) -> serde::Value {
        let mut map = vec![
            ("ii".to_string(), self.ii.to_value()),
            ("mii".to_string(), self.mii.to_value()),
            ("res_mii".to_string(), self.res_mii.to_value()),
            ("rec_mii".to_string(), self.rec_mii.to_value()),
            ("limiting".to_string(), self.limiting.to_value()),
            ("ii_trajectory".to_string(), self.ii_trajectory.to_value()),
            ("n_comms".to_string(), self.n_comms.to_value()),
            (
                "max_live_per_cluster".to_string(),
                self.max_live_per_cluster.to_value(),
            ),
        ];
        if let Some(fuel) = &self.fuel {
            map.push(("fuel".to_string(), fuel.to_value()));
        }
        if let Some(rung) = &self.rung {
            map.push(("rung".to_string(), rung.to_value()));
        }
        serde::Value::Map(map)
    }
}

impl Deserialize for ScheduleDiagnostics {
    fn from_value(v: &serde::Value) -> Result<Self, String> {
        let serde::Value::Map(map) = v else {
            return Err(format!("expected map for ScheduleDiagnostics, got {v:?}"));
        };
        let opt = |key: &str| map.iter().find(|(k, _)| k == key).map(|(_, val)| val);
        Ok(Self {
            ii: Deserialize::from_value(serde::__get(map, "ii")?)?,
            mii: Deserialize::from_value(serde::__get(map, "mii")?)?,
            res_mii: Deserialize::from_value(serde::__get(map, "res_mii")?)?,
            rec_mii: Deserialize::from_value(serde::__get(map, "rec_mii")?)?,
            limiting: Deserialize::from_value(serde::__get(map, "limiting")?)?,
            ii_trajectory: Deserialize::from_value(serde::__get(map, "ii_trajectory")?)?,
            n_comms: Deserialize::from_value(serde::__get(map, "n_comms")?)?,
            max_live_per_cluster: Deserialize::from_value(serde::__get(
                map,
                "max_live_per_cluster",
            )?)?,
            fuel: opt("fuel").map(Deserialize::from_value).transpose()?,
            rung: opt("rung").map(Deserialize::from_value).transpose()?,
        })
    }
}

impl ScheduleDiagnostics {
    /// Whether the II was raised above MII because of bus saturation — exactly the
    /// predicate the selective unroller keys on.
    pub fn limited_by_bus(&self) -> bool {
        matches!(self.limiting, LimitingResource::Bus)
    }

    /// Total scheduling attempts (orderings tried across all IIs, including the
    /// successful one).
    pub fn attempts(&self) -> u32 {
        self.ii_trajectory
            .iter()
            .map(|s| s.orders_tried)
            .sum::<u32>()
            + 1
    }
}

/// A schedule together with the engine's account of how it was found.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ScheduledLoop {
    /// The modulo schedule.
    pub schedule: ModuloSchedule,
    /// How the II search went and what limited it.
    pub diagnostics: ScheduleDiagnostics,
}

/// Why one scheduling attempt failed (internal to the driver).
struct AttemptFailure {
    bus: bool,
    register: bool,
}

/// Outcome of one failed attempt: a retryable failure (next ordering / next II) or a
/// fatal error that must abort the whole search (internal to the driver).
enum AttemptError {
    Failed(AttemptFailure),
    Fatal(ScheduleError),
}

/// Reusable buffers for the II search: the reservation table survives `reset`, and
/// the per-node assignment keeps its allocation across retries, so one
/// [`IiSearchDriver::schedule`] call performs a fixed number of engine-side
/// allocations regardless of how many IIs it explores.
struct EngineScratch {
    mrt: ModuloReservationTable,
    assignment: Vec<Option<usize>>,
    tracker: PressureTracker,
    comm_scratch: ProbeComms,
}

/// The shared II-search driver (see module docs).
///
/// Borrow a machine, pick the register-check mode, then [`IiSearchDriver::schedule`]
/// any graph with any [`ClusterPolicy`].
///
/// # Incremental II search
///
/// The search reuses work across II retries and placements wherever the result is
/// provably unchanged: the SMS node-set partition is computed once per loop (it
/// depends only on graph structure), the per-II graph analysis is shared between
/// the SMS ordering and its topological fallback (which is built only when the SMS
/// attempt actually fails), and the per-placement register check is answered by an
/// incremental [`PressureTracker`] instead of rebuilding every lifetime per probe.
/// **Equivalence guarantee:** all of this is a pure optimization — schedules,
/// [`ScheduleDiagnostics`] (including the II trajectory) and fuel receipts are
/// byte-identical to the from-scratch search, which [`IiSearchDriver::incremental`]
/// can re-enable for A/B comparison (property-tested across all five policies on
/// random machines in `crates/verify/tests/incremental_equiv.rs`;
/// debug builds additionally cross-check every incremental pressure answer against
/// a fresh [`LifetimeMap`]).
#[derive(Debug, Clone)]
pub struct IiSearchDriver<'m> {
    machine: &'m MachineConfig,
    check_registers: bool,
    register_mode: RegisterCheckMode,
    fuel: Option<FuelBudget>,
    incremental: bool,
}

impl<'m> IiSearchDriver<'m> {
    /// A driver for `machine` with per-placement register checking (the clustered
    /// schedulers' configuration).
    pub fn new(machine: &'m MachineConfig) -> Self {
        Self {
            machine,
            check_registers: true,
            register_mode: RegisterCheckMode::PerPlacement,
            fuel: None,
            incremental: true,
        }
    }

    /// Enable or disable register checking entirely.
    pub fn check_registers(mut self, on: bool) -> Self {
        self.check_registers = on;
        self
    }

    /// Toggle the incremental register-pressure fast path (default on).  `false`
    /// rebuilds a [`LifetimeMap`] per probed placement instead — same answers,
    /// slower; kept as the reference implementation for equivalence tests.
    pub fn incremental(mut self, on: bool) -> Self {
        self.incremental = on;
        self
    }

    /// Choose when the register check runs (see [`RegisterCheckMode`]).
    pub fn register_mode(mut self, mode: RegisterCheckMode) -> Self {
        self.register_mode = mode;
        self
    }

    /// Run the search under a deterministic fuel budget (see
    /// [`crate::fuel::FuelBudget`]).  Budgeted runs record their [`FuelSpent`] in
    /// [`ScheduleDiagnostics::fuel`] and fail with
    /// [`ScheduleError::BudgetExhausted`] when the budget runs out.
    pub fn with_fuel(mut self, budget: FuelBudget) -> Self {
        self.fuel = Some(budget);
        self
    }

    /// The machine being scheduled for.
    pub fn machine(&self) -> &MachineConfig {
        self.machine
    }

    /// Reject machines that cannot execute `graph` at all, *before* any search work:
    /// a machine with no clusters, or with zero functional units of a kind the graph
    /// uses.  (Full [`MachineConfig::validate`] is deliberately not required — e.g.
    /// the Figure-7 machine legitimately has no FP units because its loop is
    /// all-integer.)
    fn check_machine(&self, graph: &DepGraph) -> Result<(), ScheduleError> {
        if self.machine.n_clusters == 0 {
            return Err(ScheduleError::InvalidMachine(
                "machine has no clusters".to_string(),
            ));
        }
        let counts = graph.ops_per_fu_kind();
        for kind in FuKind::ALL {
            if counts[kind.index()] > 0 && self.machine.total_fus(kind) == 0 {
                return Err(ScheduleError::InvalidMachine(format!(
                    "graph uses {kind} units but the machine has none"
                )));
            }
        }
        Ok(())
    }

    /// Modulo schedule `graph` under `policy`: search initiation intervals upward
    /// from MII, trying the SMS node order and then the topological fallback at each
    /// II, and restarting whenever a node cannot be placed.
    pub fn schedule<P: ClusterPolicy + ?Sized>(
        &self,
        graph: &DepGraph,
        policy: &mut P,
    ) -> Result<ScheduledLoop, ScheduleError> {
        graph.validate().map_err(ScheduleError::InvalidGraph)?;
        self.check_machine(graph)?;
        let res = res_mii(graph, self.machine);
        let rec = rec_mii(graph);
        // `mii()` is `max(res_mii, rec_mii)`; computing the components once serves
        // both the search and the diagnostics.
        let mii = res.max(rec);
        let limit = max_ii(mii);
        let pool = ResourcePool::new(self.machine);
        let mut scratch = EngineScratch {
            mrt: ModuloReservationTable::new(&pool, mii.max(1)),
            assignment: vec![None; graph.n_nodes()],
            tracker: PressureTracker::new(),
            comm_scratch: ProbeComms::default(),
        };
        // The SMS node-set partition depends only on the graph structure, never on
        // the candidate II: compute it once for the whole search.
        let node_sets = ordering::node_sets(graph);
        // The meter is always threaded (unlimited when no budget was set); only a
        // budgeted run reports its counters in the diagnostics, so unbudgeted runs
        // keep their serialized form byte-identical.
        let mut meter = FuelMeter::new(self.fuel.unwrap_or_default());
        let metered = self.fuel.is_some();
        let mut trajectory: Vec<IiStep> = Vec::new();
        // Failure causes accumulated over every failed attempt so far; the paper's
        // `LimitedByBus` predicate is `bus_seen && II > MII` at success time.
        let mut bus_seen = false;
        let mut register_seen = false;
        for ii in mii..=limit {
            if !meter.spend_ii_step() {
                return Err(Self::fuel_error(&meter, mii, ii));
            }
            policy.begin_ii(graph, self.machine, ii);
            // The SMS order gives the best schedules; the topological fallback
            // guarantees progress on graphs where the SMS order sandwiches a node
            // between already-placed predecessors and successors.  Both orderings
            // share one graph analysis per II, and the fallback order is built only
            // if the SMS attempt actually fails (`graph.validate()` already ruled
            // out the zero-distance cycles that could make it error).
            let analysis = GraphAnalysis::new(graph, ii);
            let order = ordering::order_nodes_with(graph, &analysis, &node_sets)
                .map_err(ScheduleError::DegenerateGraph)?;
            let mut ctx = OrderingContext { analysis, order };
            let mut step = IiStep {
                ii,
                orders_tried: 0,
                bus_blocked: false,
                register_blocked: false,
            };
            for pass in 0..2 {
                if !meter.spend_attempt() {
                    return Err(Self::fuel_error(&meter, mii, ii));
                }
                policy.begin_attempt(graph, self.machine, ii);
                match self.try_schedule(
                    graph,
                    &ctx,
                    &pool,
                    &mut scratch,
                    policy,
                    ii,
                    mii,
                    &mut meter,
                ) {
                    Ok(mut sched) => {
                        sched.normalize();
                        sched.limited_by_bus = bus_seen && sched.ii() > mii;
                        // A failed ordering at the *successful* II (the SMS order
                        // failed, the topological fallback succeeded) still belongs
                        // to the trajectory.
                        if step.orders_tried > 0 {
                            trajectory.push(step);
                        }
                        let diagnostics = self.diagnostics(
                            graph,
                            &sched,
                            res,
                            rec,
                            mii,
                            bus_seen,
                            register_seen,
                            trajectory,
                            metered.then(|| meter.spent()),
                        );
                        return Ok(ScheduledLoop {
                            schedule: sched,
                            diagnostics,
                        });
                    }
                    Err(AttemptError::Fatal(e)) => return Err(e),
                    Err(AttemptError::Failed(failure)) => {
                        step.orders_tried += 1;
                        step.bus_blocked |= failure.bus;
                        step.register_blocked |= failure.register;
                        bus_seen |= failure.bus;
                        register_seen |= failure.register;
                        // A probe budget that ran out mid-attempt made the failure
                        // above inevitable: stop the search here instead of letting
                        // every remaining II fail on refused probes.
                        if meter.stopped().is_some() {
                            return Err(Self::fuel_error(&meter, mii, ii));
                        }
                        if pass == 0 {
                            ctx.order = ordering::topological_order(graph, &ctx.analysis)
                                .map_err(ScheduleError::DegenerateGraph)?;
                        }
                    }
                }
            }
            trajectory.push(step);
        }
        Err(ScheduleError::MaxIiExceeded {
            mii,
            max_ii_tried: limit,
        })
    }

    /// The error for a stopped fuel meter (budget or deadline).
    fn fuel_error(meter: &FuelMeter, mii: u32, at_ii: u32) -> ScheduleError {
        match meter.stopped() {
            Some(FuelStop::DeadlineExpired) => ScheduleError::DeadlineExpired { at_ii },
            _ => ScheduleError::BudgetExhausted {
                mii,
                at_ii,
                spent: meter.spent(),
            },
        }
    }

    /// Refuse to commit a trial the policy fabricated outside the machine: the
    /// engine's reservation table indexes rows by trial contents, so a malformed
    /// trial must become a typed error before it corrupts anything.
    fn validate_trial(
        &self,
        trial: &Trial,
        node: NodeId,
        pool: &ResourcePool,
    ) -> Result<(), ScheduleError> {
        if trial.node != node {
            return Err(ScheduleError::RoguePolicy(format!(
                "policy committed node {} while scheduling node {node}",
                trial.node
            )));
        }
        if trial.cluster >= self.machine.n_clusters {
            return Err(ScheduleError::RoguePolicy(format!(
                "trial names cluster {} of a {}-cluster machine",
                trial.cluster, self.machine.n_clusters
            )));
        }
        let fu_ok = trial.fu.0 < pool.len()
            && matches!(pool.kind(trial.fu), ResourceKind::Fu { cluster, .. } if cluster == trial.cluster);
        if !fu_ok {
            return Err(ScheduleError::RoguePolicy(format!(
                "trial reserves resource row {} which is not a functional unit of cluster {}",
                trial.fu.0, trial.cluster
            )));
        }
        for comm in &trial.comms {
            let bus_ok =
                comm.bus.0 < pool.len() && matches!(pool.kind(comm.bus), ResourceKind::Bus { .. });
            if !bus_ok
                || comm.from_cluster >= self.machine.n_clusters
                || comm.to_cluster >= self.machine.n_clusters
            {
                return Err(ScheduleError::RoguePolicy(format!(
                    "trial carries a malformed communication (bus row {}, clusters {}->{})",
                    comm.bus.0, comm.from_cluster, comm.to_cluster
                )));
            }
        }
        Ok(())
    }

    /// One scheduling attempt at a fixed II with a given node order.
    #[allow(clippy::too_many_arguments)]
    fn try_schedule<P: ClusterPolicy + ?Sized>(
        &self,
        graph: &DepGraph,
        ctx: &OrderingContext,
        pool: &ResourcePool,
        scratch: &mut EngineScratch,
        policy: &mut P,
        ii: u32,
        mii: u32,
        meter: &mut FuelMeter,
    ) -> Result<ModuloSchedule, AttemptError> {
        let mut sched = ModuloSchedule::new(&graph.name, graph.n_nodes(), ii, mii);
        scratch.mrt.reset(ii);
        scratch.assignment.fill(None);
        let per_placement = matches!(self.register_mode, RegisterCheckMode::PerPlacement);
        let incremental_regs = self.incremental && self.check_registers && per_placement;
        if incremental_regs {
            scratch.tracker.reset(self.machine, graph.n_nodes(), ii);
        }
        let EngineScratch {
            mrt,
            assignment,
            tracker,
            comm_scratch,
        } = scratch;
        let mut bus_failed = false;
        let mut register_failed = false;

        for &node in &ctx.order {
            let mut view = EngineView {
                graph,
                ctx,
                machine: self.machine,
                pool,
                sched: &mut sched,
                mrt,
                assignment,
                fuel: meter,
                tracker,
                comm_scratch,
                ii,
                check_registers: self.check_registers,
                per_placement_registers: per_placement,
                incremental: self.incremental,
                bus_failed: false,
                register_failed: false,
            };
            let chosen = policy.select_placement(node, &mut view);
            bus_failed |= view.bus_failed;
            register_failed |= view.register_failed;
            match chosen {
                Some(trial) => {
                    self.validate_trial(&trial, node, pool)
                        .map_err(AttemptError::Fatal)?;
                    // Commit: reserve the functional unit and the buses, record the
                    // node.
                    mrt.reserve(trial.fu, trial.cycle);
                    for comm in &trial.comms {
                        mrt.reserve_for(comm.bus, comm.start_cycle, comm.duration);
                        sched.add_comm(*comm);
                    }
                    sched.place(PlacedOp {
                        node,
                        cycle: trial.cycle,
                        cluster: trial.cluster,
                        fu: trial.fu,
                    });
                    assignment[node.index()] = Some(trial.cluster);
                    if incremental_regs {
                        tracker.commit(graph, &sched, node);
                    }
                }
                None => {
                    return Err(AttemptError::Failed(AttemptFailure {
                        bus: bus_failed,
                        register: register_failed,
                    }))
                }
            }
        }

        if self.check_registers && matches!(self.register_mode, RegisterCheckMode::WholeSchedule) {
            let lifetimes = LifetimeMap::new(graph, &sched, self.machine);
            if lifetimes.max_live_in(0) as usize > self.machine.cluster.registers {
                return Err(AttemptError::Failed(AttemptFailure {
                    bus: bus_failed,
                    register: true,
                }));
            }
        }
        Ok(sched)
    }

    /// Build the diagnostics of a successful schedule.
    #[allow(clippy::too_many_arguments)]
    fn diagnostics(
        &self,
        graph: &DepGraph,
        sched: &ModuloSchedule,
        res: u32,
        rec: u32,
        mii: u32,
        bus_seen: bool,
        register_seen: bool,
        trajectory: Vec<IiStep>,
        fuel: Option<FuelSpent>,
    ) -> ScheduleDiagnostics {
        let limiting = if sched.ii() == mii {
            if rec >= res {
                LimitingResource::Recurrence
            } else {
                LimitingResource::FunctionalUnits
            }
        } else if bus_seen {
            LimitingResource::Bus
        } else if register_seen {
            LimitingResource::Registers
        } else {
            LimitingResource::FunctionalUnits
        };
        let max_live_per_cluster = LifetimeMap::new(graph, sched, self.machine).max_live();
        ScheduleDiagnostics {
            ii: sched.ii(),
            mii,
            res_mii: res,
            rec_mii: rec,
            limiting,
            ii_trajectory: trajectory,
            n_comms: sched.comms().len(),
            max_live_per_cluster,
            fuel,
            rung: None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vliw_arch::{BusConfig, ClusterConfig, LatencyModel, OpClass};
    use vliw_ddg::GraphBuilder;

    fn saxpy() -> DepGraph {
        GraphBuilder::new("saxpy")
            .iterations(1000)
            .node("lx", OpClass::Load)
            .node("ly", OpClass::Load)
            .node("mul", OpClass::FpMul)
            .node("add", OpClass::FpAdd)
            .node("st", OpClass::Store)
            .flow("lx", "mul")
            .flow("mul", "add")
            .flow("ly", "add")
            .flow("add", "st")
            .build()
    }

    /// The Figure-7 machine: two 2-wide clusters, a single 1-cycle bus — saturates
    /// its bus on the Figure-7 loop.
    fn fig7() -> (MachineConfig, DepGraph) {
        let machine = MachineConfig::new(
            "fig7",
            2,
            ClusterConfig::new(2, 0, 0, 32),
            BusConfig::new(1, 1),
            LatencyModel::unit(),
        );
        let g = GraphBuilder::new("fig7")
            .with_latencies(LatencyModel::unit())
            .iterations(100)
            .node("A", OpClass::IntAlu)
            .node("B", OpClass::IntAlu)
            .node("C", OpClass::IntAlu)
            .node("D", OpClass::IntAlu)
            .node("E", OpClass::IntAlu)
            .node("F", OpClass::IntAlu)
            .flow("A", "C")
            .flow("B", "C")
            .flow("C", "E")
            .flow("A", "E")
            .flow("D", "F")
            .flow("A", "F")
            .flow_at("E", "D", 1)
            .flow_at("D", "A", 1)
            .build();
        (machine, g)
    }

    #[test]
    fn fixed_assignment_policy_schedules_on_forced_clusters() {
        let machine = MachineConfig::two_cluster(2, 1);
        let g = saxpy();
        let assignment = vec![0, 0, 0, 0, 0];
        let mut policy = FixedAssignmentPolicy::new("all-zero", assignment);
        let out = IiSearchDriver::new(&machine)
            .schedule(&g, &mut policy)
            .unwrap();
        assert!(out.schedule.is_complete());
        for node in g.node_ids() {
            assert_eq!(out.schedule.cluster_of(node), Some(0));
        }
        assert_eq!(out.diagnostics.n_comms, 0);
        assert_eq!(out.diagnostics.ii, out.schedule.ii());
    }

    #[test]
    fn diagnostics_classify_a_recurrence_bound_loop() {
        let machine = MachineConfig::unified();
        let g = GraphBuilder::new("acc")
            .node("ld", OpClass::Load)
            .node("add", OpClass::FpAdd)
            .flow("ld", "add")
            .flow_at("add", "add", 1)
            .build();
        let mut policy = FixedAssignmentPolicy::new("unified", vec![0, 0]);
        let out = IiSearchDriver::new(&machine)
            .schedule(&g, &mut policy)
            .unwrap();
        assert_eq!(out.diagnostics.limiting, LimitingResource::Recurrence);
        assert!(out.diagnostics.rec_mii >= out.diagnostics.res_mii);
        assert!(out.diagnostics.ii_trajectory.is_empty());
        assert_eq!(out.diagnostics.attempts(), 1);
        assert!(!out.diagnostics.limited_by_bus());
    }

    #[test]
    fn diagnostics_classify_a_bus_bound_loop() {
        // Forcing the Figure-7 recurrence across the clusters saturates the single
        // bus, driving the II above MII with bus failures on the way.
        let (machine, g) = fig7();
        let mut policy = FixedAssignmentPolicy::new("split", vec![0, 1, 0, 1, 0, 1]);
        let out = IiSearchDriver::new(&machine)
            .schedule(&g, &mut policy)
            .unwrap();
        assert!(out.schedule.ii() > out.diagnostics.mii);
        assert_eq!(out.diagnostics.limiting, LimitingResource::Bus);
        assert!(out.diagnostics.limited_by_bus());
        assert!(out.schedule.limited_by_bus);
        assert!(!out.diagnostics.ii_trajectory.is_empty());
        assert!(out
            .diagnostics
            .ii_trajectory
            .iter()
            .any(|step| step.bus_blocked));
        assert!(out.diagnostics.n_comms > 0);
    }

    #[test]
    fn trajectory_iis_are_consecutive_from_mii() {
        let (machine, g) = fig7();
        let mut policy = FixedAssignmentPolicy::new("split", vec![0, 1, 0, 1, 0, 1]);
        let out = IiSearchDriver::new(&machine)
            .schedule(&g, &mut policy)
            .unwrap();
        for (i, step) in out.diagnostics.ii_trajectory.iter().enumerate() {
            assert_eq!(step.ii, out.diagnostics.mii + i as u32);
            assert!(step.orders_tried >= 1);
        }
        // Every II below the achieved one failed completely; the achieved II itself
        // appears as a final step only when its SMS ordering failed first.
        let len = out.diagnostics.ii_trajectory.len() as u32;
        assert!(
            out.diagnostics.ii == out.diagnostics.mii + len
                || out.diagnostics.ii == out.diagnostics.mii + len - 1,
            "ii {} vs mii {} + {len}",
            out.diagnostics.ii,
            out.diagnostics.mii
        );
    }

    #[test]
    fn iis_beyond_64_schedule_on_multi_word_reservation_rows() {
        // A 70-cycle recurrence forces MII = 70 > 64: the engine's reused
        // reservation table must grow past one word per row (the fuzzing campaigns
        // hit this regularly; II = 65 is the exact boundary, covered in mrt.rs).
        let machine = MachineConfig::two_cluster(1, 1);
        let mut g = GraphBuilder::new("deep-rec")
            .node("div", OpClass::FpDiv)
            .node("use", OpClass::FpAdd)
            .flow("div", "use")
            .build();
        g.add_edge(
            vliw_ddg::NodeId(0),
            vliw_ddg::NodeId(0),
            70,
            1,
            vliw_ddg::DepKind::Flow,
        );
        let mut policy = FixedAssignmentPolicy::new("split", vec![0, 1]);
        let out = IiSearchDriver::new(&machine)
            .schedule(&g, &mut policy)
            .unwrap();
        assert_eq!(out.diagnostics.rec_mii, 70);
        assert!(out.schedule.ii() >= 70);
        assert!(out.schedule.is_complete());
        assert_eq!(out.diagnostics.limiting, LimitingResource::Recurrence);
        // The cross-cluster edge still got its transfer at the wide II.
        assert_eq!(out.diagnostics.n_comms, 1);
    }

    #[test]
    fn diagnostics_roundtrip_through_json() {
        let (machine, g) = fig7();
        let mut policy = FixedAssignmentPolicy::new("split", vec![0, 1, 0, 1, 0, 1]);
        let out = IiSearchDriver::new(&machine)
            .schedule(&g, &mut policy)
            .unwrap();
        // A diagnostics value with every interesting field populated: a non-empty
        // trajectory, bus-limited classification, comms and per-cluster pressure.
        let d = out.diagnostics;
        assert!(!d.ii_trajectory.is_empty());
        let json = serde_json::to_string(&d).unwrap();
        let back: ScheduleDiagnostics = serde_json::from_str(&json).unwrap();
        assert_eq!(d, back);
        assert_eq!(back.limiting, LimitingResource::Bus);
        assert_eq!(back.ii_trajectory, d.ii_trajectory);
        // And the pretty form too (the campaign reports use pretty JSON).
        let pretty = serde_json::to_string_pretty(&d).unwrap();
        let back2: ScheduleDiagnostics = serde_json::from_str(&pretty).unwrap();
        assert_eq!(d, back2);
    }

    #[test]
    fn limiting_resource_labels_are_stable_and_distinct() {
        let all = [
            LimitingResource::Recurrence,
            LimitingResource::FunctionalUnits,
            LimitingResource::Bus,
            LimitingResource::Registers,
        ];
        let labels: Vec<_> = all.iter().map(|l| l.label()).collect();
        assert_eq!(labels, ["recurrence", "fu", "bus", "registers"]);
        for l in all {
            assert_eq!(l.to_string(), l.label());
            let json = serde_json::to_string(&l).unwrap();
            let back: LimitingResource = serde_json::from_str(&json).unwrap();
            assert_eq!(l, back);
        }
    }

    #[test]
    fn a_recurrence_fu_tie_at_mii_classifies_as_recurrence() {
        // rec_mii == res_mii == achieved II: the engine resolves the tie in favour
        // of the recurrence (`rec >= res`), matching the paper's reading that a
        // loop at its recurrence bound cannot be helped by more resources.
        let machine = MachineConfig::unified();
        // 4 memory ops on 4 mem units -> ResMII 1; RecMII 1 via a unit self-edge.
        let g = GraphBuilder::new("tie")
            .node("l0", OpClass::Load)
            .node("l1", OpClass::Load)
            .node("l2", OpClass::Load)
            .node("acc", OpClass::Store)
            .flow_at("acc", "acc", 1)
            .build();
        let mut policy = FixedAssignmentPolicy::new("u", vec![0; 4]);
        let out = IiSearchDriver::new(&machine)
            .schedule(&g, &mut policy)
            .unwrap();
        assert_eq!(out.diagnostics.res_mii, out.diagnostics.rec_mii);
        assert_eq!(out.diagnostics.ii, out.diagnostics.mii);
        assert_eq!(out.diagnostics.limiting, LimitingResource::Recurrence);
    }

    #[test]
    fn a_bus_blocked_search_that_ends_at_mii_classifies_by_mii_components() {
        // Bus-vs-FU disambiguation above MII: when the II had to grow and *any*
        // failed attempt saw bus saturation, the loop counts as bus-limited even
        // though the final failing attempt may have been FU-bound — exactly the
        // accounting behind Figure 6's LimitedByBus predicate.
        let (machine, g) = fig7();
        let mut policy = FixedAssignmentPolicy::new("split", vec![0, 1, 0, 1, 0, 1]);
        let out = IiSearchDriver::new(&machine)
            .schedule(&g, &mut policy)
            .unwrap();
        assert!(out.schedule.ii() > out.diagnostics.mii);
        assert!(out
            .diagnostics
            .ii_trajectory
            .iter()
            .any(|step| step.bus_blocked));
        assert_eq!(out.diagnostics.limiting, LimitingResource::Bus);
        assert_eq!(out.diagnostics.limiting.label(), "bus");
        // Whereas the same machine scheduling everything on one cluster never
        // touches the bus: II at MII, classified by the MII components.
        let mut local = FixedAssignmentPolicy::new("local", vec![0; 6]);
        let out_local = IiSearchDriver::new(&machine)
            .schedule(&g, &mut local)
            .unwrap();
        assert_ne!(out_local.diagnostics.limiting, LimitingResource::Bus);
        assert!(!out_local.diagnostics.limited_by_bus());
    }

    #[test]
    fn whole_schedule_register_mode_rejects_overflowing_attempts() {
        let tiny = MachineConfig::new(
            "tiny-regs",
            1,
            ClusterConfig::new(4, 4, 4, 2),
            BusConfig::none(),
            LatencyModel::table1(),
        );
        let g = saxpy();
        let relaxed = IiSearchDriver::new(&tiny)
            .check_registers(false)
            .register_mode(RegisterCheckMode::WholeSchedule)
            .schedule(&g, &mut FixedAssignmentPolicy::new("u", vec![0; 5]))
            .unwrap();
        match IiSearchDriver::new(&tiny)
            .register_mode(RegisterCheckMode::WholeSchedule)
            .schedule(&g, &mut FixedAssignmentPolicy::new("u", vec![0; 5]))
        {
            Ok(strict) => {
                assert!(strict.schedule.ii() >= relaxed.schedule.ii());
                if strict.schedule.ii() > strict.diagnostics.mii {
                    assert_eq!(strict.diagnostics.limiting, LimitingResource::Registers);
                }
            }
            Err(ScheduleError::MaxIiExceeded { .. }) => {} // also acceptable: never fits
            Err(e) => panic!("unexpected error {e}"),
        }
    }

    #[test]
    fn max_live_per_cluster_has_one_entry_per_cluster() {
        let machine = MachineConfig::four_cluster(2, 1);
        let g = saxpy();
        let mut policy = FixedAssignmentPolicy::new("rr", vec![0, 1, 2, 3, 0]);
        let out = IiSearchDriver::new(&machine)
            .schedule(&g, &mut policy)
            .unwrap();
        assert_eq!(
            out.diagnostics.max_live_per_cluster.len(),
            machine.n_clusters
        );
    }

    #[test]
    fn invalid_graphs_are_rejected_before_scheduling() {
        let machine = MachineConfig::unified();
        let mut g = DepGraph::new("bad");
        let a = g.add_node(OpClass::IntAlu);
        g.add_edge(a, a, 1, 0, vliw_ddg::DepKind::Flow);
        let err = IiSearchDriver::new(&machine)
            .schedule(&g, &mut FixedAssignmentPolicy::new("u", vec![0]))
            .unwrap_err();
        assert!(matches!(err, ScheduleError::InvalidGraph(_)));
    }

    #[test]
    fn empty_graph_schedules_trivially() {
        let machine = MachineConfig::unified();
        let out = IiSearchDriver::new(&machine)
            .schedule(
                &DepGraph::new("empty"),
                &mut FixedAssignmentPolicy::new("u", vec![]),
            )
            .unwrap();
        assert!(out.schedule.is_complete());
        assert_eq!(out.diagnostics.n_comms, 0);
    }

    #[test]
    fn single_node_graph_schedules_at_mii_one() {
        let machine = MachineConfig::two_cluster(1, 1);
        let mut g = DepGraph::new("one");
        g.add_node(OpClass::IntAlu);
        let out = IiSearchDriver::new(&machine)
            .schedule(&g, &mut FixedAssignmentPolicy::new("u", vec![0]))
            .unwrap();
        assert!(out.schedule.is_complete());
        assert_eq!(out.diagnostics.ii, 1);
    }

    #[test]
    fn machine_without_needed_fu_kind_is_invalid_machine_not_a_panic() {
        // One FP op on a machine with zero FP units used to trip the `res_mii`
        // assert; the engine now front-checks and reports InvalidMachine.
        let machine = MachineConfig::new(
            "no-fp",
            2,
            ClusterConfig::new(1, 0, 1, 32),
            BusConfig::new(1, 1),
            LatencyModel::table1(),
        );
        let mut g = DepGraph::new("fp");
        g.add_node(OpClass::FpMul);
        let err = IiSearchDriver::new(&machine)
            .schedule(&g, &mut FixedAssignmentPolicy::new("u", vec![0]))
            .unwrap_err();
        assert!(matches!(err, ScheduleError::InvalidMachine(_)), "{err}");
        assert!(err.to_string().to_lowercase().contains("fp"), "{err}");
    }

    /// A policy that fabricates a trial pointing at another node's placement.
    struct ForgingPolicy;
    impl ClusterPolicy for ForgingPolicy {
        fn name(&self) -> &'static str {
            "forging"
        }
        fn select_placement(&mut self, node: NodeId, view: &mut EngineView<'_>) -> Option<Trial> {
            let mut trial = view.probe(node, 0).trial?;
            trial.cluster = usize::MAX; // row outside the machine
            Some(trial)
        }
    }

    #[test]
    fn fabricated_trials_are_refused_as_rogue_policy() {
        let machine = MachineConfig::two_cluster(1, 1);
        let g = saxpy();
        let err = IiSearchDriver::new(&machine)
            .schedule(&g, &mut ForgingPolicy)
            .unwrap_err();
        assert!(matches!(err, ScheduleError::RoguePolicy(_)), "{err}");
    }

    #[test]
    fn unbudgeted_runs_leave_fuel_unset_and_serialize_without_new_keys() {
        let (machine, g) = fig7();
        let mut policy = FixedAssignmentPolicy::new("split", vec![0, 1, 0, 1, 0, 1]);
        let out = IiSearchDriver::new(&machine)
            .schedule(&g, &mut policy)
            .unwrap();
        assert!(out.diagnostics.fuel.is_none());
        assert!(out.diagnostics.rung.is_none());
        // Byte-identity of the committed golden reports depends on the optional
        // fields being *absent* (not null) when unset.
        let json = serde_json::to_string(&out.diagnostics).unwrap();
        assert!(!json.contains("\"fuel\""), "{json}");
        assert!(!json.contains("\"rung\""), "{json}");
    }

    #[test]
    fn budgeted_success_records_fuel_and_roundtrips() {
        let (machine, g) = fig7();
        let mut policy = FixedAssignmentPolicy::new("split", vec![0, 1, 0, 1, 0, 1]);
        let unbudgeted = IiSearchDriver::new(&machine)
            .schedule(&g, &mut policy.clone())
            .unwrap();
        let out = IiSearchDriver::new(&machine)
            .with_fuel(FuelBudget::unlimited().with_probes(1_000_000))
            .schedule(&g, &mut policy)
            .unwrap();
        let fuel = out.diagnostics.fuel.expect("budgeted run records fuel");
        assert!(fuel.probes > 0);
        assert!(fuel.attempts > 0);
        assert!(fuel.ii_steps > 0);
        // Fuel metering must not change the schedule itself.
        assert_eq!(out.schedule, unbudgeted.schedule);
        let json = serde_json::to_string(&out.diagnostics).unwrap();
        assert!(json.contains("\"fuel\""));
        let back: ScheduleDiagnostics = serde_json::from_str(&json).unwrap();
        assert_eq!(back.fuel, out.diagnostics.fuel);
    }

    #[test]
    fn exhausted_probe_budget_is_a_deterministic_typed_error() {
        let (machine, g) = fig7();
        let run = || {
            IiSearchDriver::new(&machine)
                .with_fuel(FuelBudget::probes(3))
                .schedule(
                    &g,
                    &mut FixedAssignmentPolicy::new("split", vec![0, 1, 0, 1, 0, 1]),
                )
                .unwrap_err()
        };
        let err = run();
        match &err {
            ScheduleError::BudgetExhausted { mii, at_ii, spent } => {
                assert!(*at_ii >= *mii);
                assert!(spent.probes <= 3);
            }
            other => panic!("expected BudgetExhausted, got {other}"),
        }
        // Same budget, same graph, same machine: byte-identical failure.
        assert_eq!(err, run());
    }

    #[test]
    fn exhausted_ii_step_budget_stops_the_search() {
        // Fig7 needs several IIs; one II step is not enough.
        let (machine, g) = fig7();
        let err = IiSearchDriver::new(&machine)
            .with_fuel(FuelBudget::unlimited().with_ii_steps(1))
            .schedule(
                &g,
                &mut FixedAssignmentPolicy::new("split", vec![0, 1, 0, 1, 0, 1]),
            )
            .unwrap_err();
        assert!(
            matches!(err, ScheduleError::BudgetExhausted { .. }),
            "{err}"
        );
    }

    #[test]
    fn expired_deadline_reports_deadline_error() {
        let (machine, g) = fig7();
        let err = IiSearchDriver::new(&machine)
            .with_fuel(FuelBudget::unlimited().with_deadline(std::time::Duration::ZERO))
            .schedule(
                &g,
                &mut FixedAssignmentPolicy::new("split", vec![0, 1, 0, 1, 0, 1]),
            )
            .unwrap_err();
        assert!(
            matches!(err, ScheduleError::DeadlineExpired { .. }),
            "{err}"
        );
    }

    #[test]
    fn a_generous_budget_behaves_like_no_budget_at_all() {
        let (machine, g) = fig7();
        let mut policy = FixedAssignmentPolicy::new("split", vec![0, 1, 0, 1, 0, 1]);
        let budgeted = IiSearchDriver::new(&machine)
            .with_fuel(FuelBudget::unlimited())
            .schedule(&g, &mut policy.clone())
            .unwrap();
        let free = IiSearchDriver::new(&machine)
            .schedule(&g, &mut policy)
            .unwrap();
        assert_eq!(budgeted.schedule, free.schedule);
        assert_eq!(budgeted.diagnostics.ii, free.diagnostics.ii);
        // Budgeted run reports its (unlimited) fuel; the free run reports none.
        assert!(budgeted.diagnostics.fuel.is_some());
        assert!(free.diagnostics.fuel.is_none());
    }
}
