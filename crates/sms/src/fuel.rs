//! Deterministic fuel budgets for the II search.
//!
//! A [`FuelBudget`] bounds the *counted work* of one [`crate::IiSearchDriver`] run —
//! placement probes, ordering attempts and II steps — so a pathological loop cannot
//! burn unbounded time inside a sweep or a scheduling service.  Because the units are
//! counters of deterministic engine events (never wall clock), a budgeted run spends
//! exactly the same fuel on every machine, at every thread count, on every repeat:
//! budgeted results are bit-reproducible.  An *optional* wall-clock [`Deadline`] can
//! be layered on top for service deployments that need a hard latency bound and are
//! willing to give up reproducibility when it fires.
//!
//! The driver threads a [`FuelMeter`] through the search; when a dimension of the
//! budget runs out the search stops with
//! [`crate::ScheduleError::BudgetExhausted`] carrying the exact [`FuelSpent`]
//! counters, which also surface in
//! [`crate::ScheduleDiagnostics::fuel`] on success.

use serde::{Deserialize, Serialize};
use std::time::{Duration, Instant};

/// A wall-clock deadline (service use only — *not* deterministic).
///
/// Checked once per II step, the coarsest metering point, so the common fast path
/// never reads the clock more than a handful of times per loop.
#[derive(Debug, Clone, Copy)]
pub struct Deadline {
    at: Instant,
}

impl Deadline {
    /// A deadline `timeout` from now.
    pub fn after(timeout: Duration) -> Self {
        Self {
            at: Instant::now() + timeout,
        }
    }

    /// Whether the deadline has passed.
    pub fn expired(&self) -> bool {
        Instant::now() >= self.at
    }
}

/// Limits on the counted work of one scheduling run.  `None` in every dimension
/// means unlimited (the default).
#[derive(Debug, Clone, Copy, Default)]
pub struct FuelBudget {
    /// Maximum number of placement probes ([`crate::EngineView::probe`] /
    /// [`crate::EngineView::probe_unified`] calls) across the whole search.
    pub max_probes: Option<u64>,
    /// Maximum number of scheduling attempts (orderings tried, across all IIs).
    pub max_attempts: Option<u64>,
    /// Maximum number of candidate IIs explored.
    pub max_ii_steps: Option<u64>,
    /// Optional wall-clock deadline (see [`Deadline`] for the determinism caveat).
    pub deadline: Option<Deadline>,
}

impl FuelBudget {
    /// The unlimited budget (every dimension `None`).
    pub fn unlimited() -> Self {
        Self::default()
    }

    /// A probe-bounded budget — the finest-grained and most useful single knob:
    /// probes dominate engine work, so this caps total effort roughly uniformly
    /// across loop shapes.
    pub fn probes(n: u64) -> Self {
        Self {
            max_probes: Some(n),
            ..Self::default()
        }
    }

    /// Set the probe limit.
    pub fn with_probes(mut self, n: u64) -> Self {
        self.max_probes = Some(n);
        self
    }

    /// Set the attempt (orderings-tried) limit.
    pub fn with_attempts(mut self, n: u64) -> Self {
        self.max_attempts = Some(n);
        self
    }

    /// Set the II-step limit.
    pub fn with_ii_steps(mut self, n: u64) -> Self {
        self.max_ii_steps = Some(n);
        self
    }

    /// Attach a wall-clock deadline `timeout` from now.
    pub fn with_deadline(mut self, timeout: Duration) -> Self {
        self.deadline = Some(Deadline::after(timeout));
        self
    }

    /// Whether no dimension is limited.
    pub fn is_unlimited(&self) -> bool {
        self.max_probes.is_none()
            && self.max_attempts.is_none()
            && self.max_ii_steps.is_none()
            && self.deadline.is_none()
    }
}

/// The fuel actually consumed by a scheduling run, in the same units as
/// [`FuelBudget`].  Deterministic: identical inputs and budget produce identical
/// counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct FuelSpent {
    /// Placement probes evaluated.
    pub probes: u64,
    /// Scheduling attempts (orderings) started.
    pub attempts: u64,
    /// Candidate IIs explored.
    pub ii_steps: u64,
}

impl FuelSpent {
    /// Accumulate another run's counters (the ladder sums its rungs).
    pub fn absorb(&mut self, other: FuelSpent) {
        self.probes += other.probes;
        self.attempts += other.attempts;
        self.ii_steps += other.ii_steps;
    }

    /// Total counted events across all dimensions.
    pub fn total(&self) -> u64 {
        self.probes + self.attempts + self.ii_steps
    }
}

/// Why a meter stopped granting fuel.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FuelStop {
    /// A counted dimension of the budget ran out.
    Exhausted,
    /// The wall-clock deadline expired.
    DeadlineExpired,
}

/// The running meter the driver threads through one search: counts events against a
/// [`FuelBudget`] and remembers the first dimension that ran out.
#[derive(Debug, Clone)]
pub struct FuelMeter {
    budget: FuelBudget,
    spent: FuelSpent,
    stop: Option<FuelStop>,
}

impl FuelMeter {
    /// A meter over `budget`.
    pub fn new(budget: FuelBudget) -> Self {
        Self {
            budget,
            spent: FuelSpent::default(),
            stop: None,
        }
    }

    /// Charge one placement probe; `false` once the probe budget is exhausted.
    #[inline]
    pub fn spend_probe(&mut self) -> bool {
        if self.stop.is_some() {
            return false;
        }
        if let Some(max) = self.budget.max_probes {
            if self.spent.probes >= max {
                self.stop = Some(FuelStop::Exhausted);
                return false;
            }
        }
        self.spent.probes += 1;
        true
    }

    /// Charge one scheduling attempt; `false` once the attempt budget is exhausted.
    pub fn spend_attempt(&mut self) -> bool {
        if self.stop.is_some() {
            return false;
        }
        if let Some(max) = self.budget.max_attempts {
            if self.spent.attempts >= max {
                self.stop = Some(FuelStop::Exhausted);
                return false;
            }
        }
        self.spent.attempts += 1;
        true
    }

    /// Charge one II step (also the deadline checkpoint); `false` once the II budget
    /// is exhausted or the deadline has expired.
    pub fn spend_ii_step(&mut self) -> bool {
        if self.stop.is_some() {
            return false;
        }
        if let Some(deadline) = self.budget.deadline {
            if deadline.expired() {
                self.stop = Some(FuelStop::DeadlineExpired);
                return false;
            }
        }
        if let Some(max) = self.budget.max_ii_steps {
            if self.spent.ii_steps >= max {
                self.stop = Some(FuelStop::Exhausted);
                return false;
            }
        }
        self.spent.ii_steps += 1;
        true
    }

    /// The first refusal cause, if any dimension has run out.
    pub fn stopped(&self) -> Option<FuelStop> {
        self.stop
    }

    /// The counters so far.
    pub fn spent(&self) -> FuelSpent {
        self.spent
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unlimited_budget_never_refuses() {
        let mut m = FuelMeter::new(FuelBudget::unlimited());
        for _ in 0..10_000 {
            assert!(m.spend_probe());
        }
        assert!(m.spend_attempt());
        assert!(m.spend_ii_step());
        assert_eq!(m.stopped(), None);
        assert_eq!(m.spent().probes, 10_000);
        assert_eq!(m.spent().total(), 10_002);
    }

    #[test]
    fn probe_budget_exhausts_exactly_at_the_limit() {
        let mut m = FuelMeter::new(FuelBudget::probes(3));
        assert!(m.spend_probe());
        assert!(m.spend_probe());
        assert!(m.spend_probe());
        assert!(!m.spend_probe());
        assert_eq!(m.stopped(), Some(FuelStop::Exhausted));
        assert_eq!(m.spent().probes, 3);
        // Once stopped, every dimension refuses.
        assert!(!m.spend_attempt());
        assert!(!m.spend_ii_step());
        assert_eq!(m.spent().attempts, 0);
    }

    #[test]
    fn attempt_and_ii_budgets_meter_independently() {
        let mut m = FuelMeter::new(FuelBudget::unlimited().with_attempts(1).with_ii_steps(2));
        assert!(m.spend_ii_step());
        assert!(m.spend_attempt());
        assert!(!m.spend_attempt());
        assert_eq!(m.stopped(), Some(FuelStop::Exhausted));
    }

    #[test]
    fn expired_deadline_reports_deadline_stop() {
        let mut m = FuelMeter::new(FuelBudget::unlimited().with_deadline(Duration::ZERO));
        assert!(!m.spend_ii_step());
        assert_eq!(m.stopped(), Some(FuelStop::DeadlineExpired));
    }

    #[test]
    fn fuel_spent_absorbs_and_roundtrips() {
        let mut a = FuelSpent {
            probes: 5,
            attempts: 2,
            ii_steps: 1,
        };
        a.absorb(FuelSpent {
            probes: 1,
            attempts: 1,
            ii_steps: 1,
        });
        assert_eq!(a.probes, 6);
        assert_eq!(a.total(), 11);
        let json = serde_json::to_string(&a).unwrap();
        let back: FuelSpent = serde_json::from_str(&json).unwrap();
        assert_eq!(a, back);
    }

    #[test]
    fn budget_constructors_compose() {
        let b = FuelBudget::probes(10).with_attempts(4);
        assert_eq!(b.max_probes, Some(10));
        assert_eq!(b.max_attempts, Some(4));
        assert!(b.max_ii_steps.is_none());
        assert!(!b.is_unlimited());
        assert!(FuelBudget::unlimited().is_unlimited());
    }
}
