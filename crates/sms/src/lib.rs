//! # vliw-sms — Swing Modulo Scheduling substrate
//!
//! This crate implements the machinery shared by every modulo scheduler in the
//! repository:
//!
//! * [`mrt::ModuloReservationTable`] — the II-column reservation table (functional
//!   units *and* buses are rows, exactly as the paper treats them);
//! * [`ordering`] — the Swing Modulo Scheduling node ordering (Llosa et al., PACT'96),
//!   which the paper reuses verbatim: nodes of the most constraining recurrences first,
//!   neighbours kept close, and every node preceded in the order only by its
//!   predecessors or only by its successors (except when a new disconnected subgraph
//!   starts);
//! * [`lifetime`] — value lifetimes and the `MaxLive` register-pressure estimate used
//!   to discard clusters whose register file would overflow (no spill code is
//!   generated, as in the paper);
//! * [`schedule::ModuloSchedule`] — the result type: per-node placement (cycle,
//!   cluster, functional unit), inter-cluster communications (bus, cycle), initiation
//!   interval, stage count, kernel emission as a [`vliw_arch::VliwProgram`] and the
//!   `NCYCLES = (NITER + SC − 1)·II` cycle model of Section 4;
//! * [`unified::SmsScheduler`] — the unified-machine (single cluster) modulo scheduler
//!   that serves as the IPC reference in every experiment;
//! * [`comm`] — inter-cluster communication requests and the bus allocator;
//! * [`engine`] — the shared scheduling engine: the [`engine::IiSearchDriver`] owns
//!   the MII→max-II retry loop, ordering fallbacks, scratch reuse and register
//!   checking, parameterized by a [`engine::ClusterPolicy`] that encapsulates only
//!   the cluster-assignment strategy.  Every scheduler in the repository (unified
//!   SMS, BSA, N&E and the ablations) is a thin policy on this engine.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod comm;
pub mod containment;
pub mod engine;
pub mod fuel;
pub mod lifetime;
pub mod mrt;
pub mod ordering;
pub mod pressure;
pub mod schedule;
pub mod slots;
pub mod unified;

pub use comm::{allocate_comms, required_comms, CommAllocation, CommRequest};
pub use containment::{contain, contain_schedule};
pub use engine::{
    ClusterPolicy, EngineView, FixedAssignmentPolicy, IiSearchDriver, IiStep, LimitingResource,
    Probe, RegisterCheckMode, ScheduleDiagnostics, ScheduledLoop, Trial,
};
pub use fuel::{Deadline, FuelBudget, FuelMeter, FuelSpent, FuelStop};
pub use lifetime::{cluster_max_live, LifetimeMap};
pub use mrt::{ModuloReservationTable, Reservation};
pub use ordering::{sms_order, OrderingContext};
pub use pressure::PressureTracker;
pub use schedule::{
    CommPlacement, ModuloSchedule, PlacedOp, ScheduleCheckpoint, ScheduleError, SlotMap,
};
pub use slots::{early_start, late_start, SlotScan};
pub use unified::SmsScheduler;

/// Hard cap on the initiation interval explored by the schedulers: `MAX_II_FACTOR ×
/// MII + MAX_II_SLACK`.  A loop that cannot be scheduled within this budget is reported
/// as a [`ScheduleError`] instead of looping forever.
pub const MAX_II_FACTOR: u32 = 8;
/// Additive slack applied on top of [`MAX_II_FACTOR`].
pub const MAX_II_SLACK: u32 = 32;

/// The maximum II the schedulers will try for a loop with the given minimum II.
pub fn max_ii(mii: u32) -> u32 {
    mii.saturating_mul(MAX_II_FACTOR)
        .saturating_add(MAX_II_SLACK)
}
