//! Value lifetimes and register-pressure (`MaxLive`) estimation.
//!
//! The paper's schedulers generate no spill code; instead, a cluster whose register
//! file would overflow is simply not a candidate for the node being placed ("those
//! clusters for which the insertion of this node would increase the register
//! requirements above the number of available registers are discarded", Section 5.1).
//! The register requirement of a cluster is estimated with the standard `MaxLive`
//! measure: the maximum, over the `II` rows of the kernel, of the number of
//! simultaneously live values the cluster's register file must hold.
//!
//! Lifetime model (documented assumptions):
//!
//! * a value produced by node `p` placed at cycle `t_p` is live from `t_p` (the
//!   register is conservatively considered allocated at issue) until the issue cycle of
//!   its last consumer, where a consumer at distance `d` reads at `t_c + d·II`;
//! * a consumer placed in a *different* cluster reads the value at the start cycle of
//!   the corresponding bus transfer (after which the value lives in the bus / in the
//!   consumer's incoming-value register, not in the producer's register file);
//! * a value received over a bus is written to the receiving cluster's register file
//!   only if it is not consumed exactly at its arrival cycle (otherwise it is read
//!   directly from the incoming-value register, as the architecture of Figure 2
//!   allows); when written, it is live from arrival until its last local use;
//! * values with no consumer occupy a register for a single cycle.

use crate::schedule::ModuloSchedule;
use serde::{Deserialize, Serialize};
use vliw_arch::MachineConfig;
use vliw_ddg::{DepGraph, NodeId};

/// One live range contributing register pressure to a cluster.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct LiveRange {
    /// The node whose value this range belongs to.
    pub node: NodeId,
    /// The cluster whose register file holds the value.
    pub cluster: usize,
    /// First cycle (inclusive) the value occupies a register.
    pub start: i64,
    /// Last cycle (exclusive).
    pub end: i64,
}

impl LiveRange {
    /// Length of the range in cycles (at least 1).
    pub fn len(&self) -> u64 {
        (self.end - self.start).max(1) as u64
    }

    /// Whether the range is degenerate (clamped to the 1-cycle minimum).
    pub fn is_empty(&self) -> bool {
        self.end <= self.start
    }
}

/// All live ranges of a schedule, plus the per-cluster pressure they imply.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct LifetimeMap {
    /// Every live range (producer-side and receiver-side).
    pub ranges: Vec<LiveRange>,
    /// Row-major `[cluster × II]` live-value counts — one flat allocation, since a
    /// map is built per placement trial in the cluster schedulers.
    pressure: Vec<u32>,
    ii: u32,
}

/// Append the live ranges contributed by one producer `node` to `out`.
///
/// Pushes nothing when `node` defines no value or is not placed. `remote_last_read`
/// is caller-provided scratch sized to the cluster count (contents are overwritten).
/// This is the single source of truth for the lifetime model: both the whole-schedule
/// [`LifetimeMap`] and the incremental [`crate::pressure::PressureTracker`] build their
/// ranges through it, which is what keeps the two byte-identical.
pub(crate) fn push_producer_ranges(
    graph: &DepGraph,
    sched: &ModuloSchedule,
    node: NodeId,
    remote_last_read: &mut [Option<(i64, i64)>],
    out: &mut Vec<LiveRange>,
) {
    let ii = sched.ii();
    if !graph.node(node).class.defines_value() {
        return;
    }
    let Some(prod) = sched.placement(node) else {
        return;
    };

    // Producer-side range: from issue until the last read performed from this
    // cluster's register file (local consumers, or the bus transfer start for
    // remote consumers).
    let mut last_local_read = prod.cycle + 1; // minimum 1-cycle occupancy

    remote_last_read.fill(None);

    for e in graph.out_edges(node).filter(|e| e.kind.carries_value()) {
        let Some(cons) = sched.placement(e.dst) else {
            continue;
        };
        let read_cycle = cons.cycle + e.distance as i64 * ii as i64;
        if cons.cluster == prod.cluster {
            last_local_read = last_local_read.max(read_cycle);
        } else {
            // The producer's register feeds the bus transfer.
            let transfer = sched
                .comms()
                .iter()
                .find(|c| c.src_node == node && c.to_cluster == cons.cluster);
            let (send, arrive) = match transfer {
                Some(c) => (c.start_cycle, c.start_cycle + c.duration as i64),
                // No transfer recorded (e.g. mid-construction): fall back to
                // the consumer's read cycle.
                None => (read_cycle, read_cycle),
            };
            last_local_read = last_local_read.max(send);
            let entry = &mut remote_last_read[cons.cluster];
            let (arr, last) = entry.unwrap_or((arrive, arrive));
            *entry = Some((arr.min(arrive), last.max(read_cycle)));
        }
    }

    out.push(LiveRange {
        node,
        cluster: prod.cluster,
        start: prod.cycle,
        end: last_local_read,
    });
    for (cluster, entry) in remote_last_read.iter().enumerate() {
        if let Some((arrive, last_read)) = entry {
            // Read straight from the incoming-value register when consumed on
            // arrival; otherwise it occupies a register until its last use.
            if last_read > arrive {
                out.push(LiveRange {
                    node,
                    cluster,
                    start: *arrive,
                    end: *last_read,
                });
            }
        }
    }
}

/// Apply one live range to a cluster's `II` pressure rows via `f` (used with `+=`
/// to add a range and `-=` to retract one).
///
/// A range of `len` cycles contributes ceil-style coverage of kernel rows:
/// row (start + k) mod II for k in 0..len — i.e. `len div II` instances in
/// every row plus one more in the `len mod II` rows starting at the range's
/// start row (a contiguous wrapped interval, since (start + (len div
/// II)·II) mod II == start mod II).
#[inline]
pub(crate) fn apply_range_rows(
    rows: &mut [u32],
    ii: u32,
    r: &LiveRange,
    mut f: impl FnMut(&mut u32, u32),
) {
    let len = (r.end - r.start).max(1);
    let full = (len / ii as i64) as u32;
    let rem = (len % ii as i64) as usize;
    if full > 0 {
        for slot in rows.iter_mut() {
            f(slot, full);
        }
    }
    let row0 = r.start.rem_euclid(ii as i64) as usize;
    let wrap = (row0 + rem).saturating_sub(ii as usize);
    for slot in &mut rows[row0..(row0 + rem - wrap)] {
        f(slot, 1);
    }
    for slot in &mut rows[..wrap] {
        f(slot, 1);
    }
}

impl LifetimeMap {
    /// Compute the lifetimes of `sched` for `graph` on `machine`.
    ///
    /// Works on partial schedules too: only placed producers/consumers contribute,
    /// which is exactly what the incremental cluster-feasibility check needs.
    pub fn new(graph: &DepGraph, sched: &ModuloSchedule, machine: &MachineConfig) -> Self {
        let ii = sched.ii();
        let mut ranges = Vec::with_capacity(graph.n_nodes());
        // Receiver-side ranges are grouped per destination cluster; the buffer is
        // reused across nodes (this runs once per placement trial in the cluster
        // schedulers, so per-call allocations are hot).
        let mut remote_last_read: Vec<Option<(i64, i64)>> = vec![None; machine.n_clusters];
        for node in graph.nodes() {
            push_producer_ranges(graph, sched, node.id, &mut remote_last_read, &mut ranges);
        }

        let mut pressure = vec![0u32; machine.n_clusters * ii as usize];
        for r in &ranges {
            let base = r.cluster * ii as usize;
            let rows = &mut pressure[base..base + ii as usize];
            apply_range_rows(rows, ii, r, |slot, v| *slot += v);
        }

        Self {
            ranges,
            pressure,
            ii,
        }
    }

    /// The per-row live-value counts of one cluster.
    pub fn pressure_of(&self, cluster: usize) -> &[u32] {
        let base = cluster * self.ii as usize;
        &self.pressure[base..base + self.ii as usize]
    }

    /// Maximum number of simultaneously live values per cluster.
    pub fn max_live(&self) -> Vec<u32> {
        self.pressure
            .chunks_exact(self.ii as usize)
            .map(|rows| rows.iter().copied().max().unwrap_or(0))
            .collect()
    }

    /// Maximum live values in a single cluster.
    pub fn max_live_in(&self, cluster: usize) -> u32 {
        self.pressure_of(cluster).iter().copied().max().unwrap_or(0)
    }

    /// Whether every cluster fits in its register file.  Allocation-free (unlike
    /// going through [`LifetimeMap::max_live`]) — this is the query the schedulers
    /// issue once per placement trial.
    pub fn fits(&self, machine: &MachineConfig) -> bool {
        // A single max over the flat array is enough: every cluster has the same
        // register-file size.
        self.pressure
            .iter()
            .all(|&live| live as usize <= machine.cluster.registers)
    }

    /// Sum of all lifetime lengths (the quantity Swing Modulo Scheduling minimises).
    pub fn total_lifetime(&self) -> u64 {
        self.ranges.iter().map(LiveRange::len).sum()
    }
}

/// Convenience: the per-cluster `MaxLive` of a schedule.
pub fn cluster_max_live(
    graph: &DepGraph,
    sched: &ModuloSchedule,
    machine: &MachineConfig,
) -> Vec<u32> {
    LifetimeMap::new(graph, sched, machine).max_live()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schedule::{CommPlacement, PlacedOp};
    use vliw_arch::{FuKind, MachineConfig, OpClass, ResourcePool};
    use vliw_ddg::{DepGraph, DepKind};

    fn place(
        sched: &mut ModuloSchedule,
        pool: &ResourcePool,
        node: u32,
        cycle: i64,
        cluster: usize,
        kind: FuKind,
    ) {
        sched.place(PlacedOp {
            node: NodeId(node),
            cycle,
            cluster,
            fu: pool.fus(cluster, kind).next().unwrap(),
        });
    }

    #[test]
    fn single_local_consumer_lifetime() {
        // load (cycle 0) -> fadd (cycle 5), same cluster: value live 0..5 => covers
        // rows 0..5 with II 8, MaxLive 1.
        let machine = MachineConfig::unified();
        let pool = ResourcePool::new(&machine);
        let mut g = DepGraph::new("t");
        let a = g.add_node(OpClass::Load);
        let b = g.add_node(OpClass::FpAdd);
        g.add_edge(a, b, 2, 0, DepKind::Flow);
        let mut s = ModuloSchedule::new("t", 2, 8, 1);
        place(&mut s, &pool, 0, 0, 0, FuKind::Mem);
        place(&mut s, &pool, 1, 5, 0, FuKind::Fp);
        let lt = LifetimeMap::new(&g, &s, &machine);
        assert_eq!(lt.max_live_in(0), 1);
        assert_eq!(lt.ranges.len(), 2); // load's value + fadd's (unused) value
        let load_range = lt.ranges.iter().find(|r| r.node == a).unwrap();
        assert_eq!((load_range.start, load_range.end), (0, 5));
        assert!(lt.fits(&machine));
    }

    #[test]
    fn long_lifetime_wraps_around_the_kernel() {
        // Value live for 2*II + 1 cycles: every row holds at least 2 instances.
        let machine = MachineConfig::unified();
        let pool = ResourcePool::new(&machine);
        let mut g = DepGraph::new("wrap");
        let a = g.add_node(OpClass::Load);
        let b = g.add_node(OpClass::FpAdd);
        g.add_edge(a, b, 2, 0, DepKind::Flow);
        let mut s = ModuloSchedule::new("wrap", 2, 4, 1);
        place(&mut s, &pool, 0, 0, 0, FuKind::Mem);
        place(&mut s, &pool, 1, 9, 0, FuKind::Fp);
        let lt = LifetimeMap::new(&g, &s, &machine);
        // lifetime 0..9 = 9 cycles, II=4 -> 2 full wraps + 1 extra row
        assert_eq!(lt.max_live_in(0), 3);
        assert!(lt.ranges.iter().any(|r| r.len() == 9));
    }

    #[test]
    fn remote_consumer_splits_the_lifetime() {
        let machine = MachineConfig::two_cluster(1, 2);
        let pool = ResourcePool::new(&machine);
        let mut g = DepGraph::new("remote");
        let a = g.add_node(OpClass::Load);
        let b = g.add_node(OpClass::FpAdd);
        g.add_edge(a, b, 2, 0, DepKind::Flow);
        let mut s = ModuloSchedule::new("remote", 2, 6, 1);
        place(&mut s, &pool, 0, 0, 0, FuKind::Mem);
        place(&mut s, &pool, 1, 5, 1, FuKind::Fp);
        s.add_comm(CommPlacement {
            src_node: a,
            dst_node: b,
            from_cluster: 0,
            to_cluster: 1,
            bus: pool.buses().next().unwrap(),
            start_cycle: 2,
            duration: 2,
        });
        let lt = LifetimeMap::new(&g, &s, &machine);
        // Producer-side range ends at the transfer start (cycle 2), receiver-side
        // range spans arrival (4) to the consumer read (5).
        let prod_range = lt
            .ranges
            .iter()
            .find(|r| r.node == a && r.cluster == 0)
            .unwrap();
        assert_eq!((prod_range.start, prod_range.end), (0, 2));
        let recv_range = lt
            .ranges
            .iter()
            .find(|r| r.node == a && r.cluster == 1)
            .unwrap();
        assert_eq!((recv_range.start, recv_range.end), (4, 5));
    }

    #[test]
    fn value_consumed_on_arrival_needs_no_receiver_register() {
        let machine = MachineConfig::two_cluster(1, 1);
        let pool = ResourcePool::new(&machine);
        let mut g = DepGraph::new("irv");
        let a = g.add_node(OpClass::Load);
        let b = g.add_node(OpClass::FpAdd);
        g.add_edge(a, b, 2, 0, DepKind::Flow);
        let mut s = ModuloSchedule::new("irv", 2, 6, 1);
        place(&mut s, &pool, 0, 0, 0, FuKind::Mem);
        place(&mut s, &pool, 1, 3, 1, FuKind::Fp);
        s.add_comm(CommPlacement {
            src_node: a,
            dst_node: b,
            from_cluster: 0,
            to_cluster: 1,
            bus: pool.buses().next().unwrap(),
            start_cycle: 2,
            duration: 1,
        });
        let lt = LifetimeMap::new(&g, &s, &machine);
        // Arrival cycle 3 == consumer cycle 3: read from the IRV, no register range in
        // cluster 1 for node a.
        assert!(!lt.ranges.iter().any(|r| r.node == a && r.cluster == 1));
    }

    #[test]
    fn loop_carried_consumer_extends_lifetime_by_ii() {
        let machine = MachineConfig::unified();
        let pool = ResourcePool::new(&machine);
        let mut g = DepGraph::new("carried");
        let a = g.add_node(OpClass::FpAdd);
        let b = g.add_node(OpClass::FpMul);
        g.add_edge(a, b, 3, 1, DepKind::Flow); // consumed one iteration later
        let mut s = ModuloSchedule::new("carried", 2, 5, 1);
        place(&mut s, &pool, 0, 0, 0, FuKind::Fp);
        place(&mut s, &pool, 1, 1, 0, FuKind::Fp);
        let lt = LifetimeMap::new(&g, &s, &machine);
        let r = lt.ranges.iter().find(|r| r.node == a).unwrap();
        // read at 1 + 1*5 = 6
        assert_eq!((r.start, r.end), (0, 6));
        assert_eq!(lt.max_live_in(0), 2); // the range wraps past II once
    }

    #[test]
    fn store_defines_no_value() {
        let machine = MachineConfig::unified();
        let pool = ResourcePool::new(&machine);
        let mut g = DepGraph::new("store");
        let _st = g.add_node(OpClass::Store);
        let mut s = ModuloSchedule::new("store", 1, 2, 1);
        place(&mut s, &pool, 0, 0, 0, FuKind::Mem);
        let lt = LifetimeMap::new(&g, &s, &machine);
        assert!(lt.ranges.is_empty());
        assert_eq!(lt.max_live_in(0), 0);
    }

    #[test]
    fn total_lifetime_sums_ranges() {
        let machine = MachineConfig::unified();
        let pool = ResourcePool::new(&machine);
        let mut g = DepGraph::new("sum");
        let a = g.add_node(OpClass::Load);
        let b = g.add_node(OpClass::FpAdd);
        g.add_edge(a, b, 2, 0, DepKind::Flow);
        let mut s = ModuloSchedule::new("sum", 2, 4, 1);
        place(&mut s, &pool, 0, 0, 0, FuKind::Mem);
        place(&mut s, &pool, 1, 3, 0, FuKind::Fp);
        let lt = LifetimeMap::new(&g, &s, &machine);
        // a: 0..3 (3 cycles), b: unused -> 1 cycle
        assert_eq!(lt.total_lifetime(), 4);
    }

    #[test]
    fn fits_reflects_register_file_size() {
        // A tiny machine with 16 registers per cluster: 20 simultaneously live values
        // must not fit.
        let machine = MachineConfig::four_cluster(1, 1);
        let pool = ResourcePool::new(&machine);
        let mut g = DepGraph::new("pressure");
        let mut s = ModuloSchedule::new("pressure", 21, 1, 1);
        let consumer = g.add_node(OpClass::FpAdd);
        // 20 producers all alive until the consumer reads them far in the future.
        for i in 1..=20u32 {
            let p = g.add_node(OpClass::Load);
            g.add_edge(p, consumer, 2, 0, DepKind::Flow);
            s.place(PlacedOp {
                node: p,
                cycle: i as i64,
                cluster: 0,
                fu: pool.fus(0, FuKind::Mem).next().unwrap(),
            });
        }
        s.place(PlacedOp {
            node: consumer,
            cycle: 100,
            cluster: 0,
            fu: pool.fus(0, FuKind::Fp).next().unwrap(),
        });
        let lt = LifetimeMap::new(&g, &s, &machine);
        assert!(lt.max_live_in(0) >= 20);
        assert!(!lt.fits(&machine));
    }
}
