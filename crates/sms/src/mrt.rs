//! The modulo reservation table (MRT).
//!
//! A modulo schedule with initiation interval `II` issues the operation placed at cycle
//! `t` in *every* kernel iteration, i.e. at absolute cycles `t, t+II, t+2·II, …`.  Two
//! operations therefore conflict on a resource iff they use it at cycles that are equal
//! modulo `II`.  The MRT has one row per resource (functional-unit instance or bus) and
//! `II` columns; reserving cycle `t` marks column `t mod II`.
//!
//! Buses are reserved for `bus_latency` *consecutive* cycles ("when one particular
//! cluster places a data on the bus, this bus will be busy during the entirety of the
//! communication latency", Section 3), so the table supports multi-cycle reservations.
//!
//! Rows are stored as bitsets — for the IIs the paper's corpora produce a row is a
//! single `u64` word, so the multi-cycle probe `is_free_for` (the hottest operation of
//! the whole scheduler: it runs once per candidate cycle per bus per trial) is one
//! wrapped-mask test instead of a counter loop.  Wider rows (II > 64) use the same
//! idea per word: the wrapped span decomposes into at most two linear column ranges,
//! each probed/set/cleared with whole-word masks rather than per-cycle bit twiddling.
//! [`ModuloReservationTable::reset`] re-arms the table for a new II without
//! reallocating, so an II search touches the allocator once, not once per retry.

use serde::{Deserialize, Serialize};
use vliw_arch::{ResourceIndex, ResourcePool};

/// Token returned by a reservation, usable to release it again (needed by the
/// try-a-cluster-then-back-off logic of the cluster scheduler).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Reservation {
    resource: ResourceIndex,
    start_cycle: i64,
    duration: u32,
}

/// The modulo reservation table.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ModuloReservationTable {
    ii: u32,
    /// `u64` words per row: `ceil(II / 64)` (1 for every II the paper evaluates).
    words_per_row: usize,
    /// Row-major bitset: bit `c` of row `r` set ⇔ resource `r` busy at column `c`.
    bits: Vec<u64>,
}

impl ModuloReservationTable {
    /// An empty table for `pool` with the given initiation interval.
    pub fn new(pool: &ResourcePool, ii: u32) -> Self {
        assert!(ii >= 1, "the initiation interval must be at least 1");
        let words_per_row = ii.div_ceil(64) as usize;
        Self {
            ii,
            words_per_row,
            bits: vec![0; pool.len() * words_per_row],
        }
    }

    /// Clear the table and change its initiation interval, reusing the existing
    /// allocation whenever the new row width fits (it always does while the II search
    /// walks upward within one 64-column word, i.e. for every II ≤ 64).
    pub fn reset(&mut self, ii: u32) {
        assert!(ii >= 1, "the initiation interval must be at least 1");
        let n_rows = self.bits.len() / self.words_per_row;
        let words_per_row = ii.div_ceil(64) as usize;
        self.ii = ii;
        if words_per_row == self.words_per_row {
            self.bits.fill(0);
        } else {
            self.words_per_row = words_per_row;
            self.bits.clear();
            self.bits.resize(n_rows * words_per_row, 0);
        }
    }

    /// The initiation interval of the table.
    #[inline]
    pub fn ii(&self) -> u32 {
        self.ii
    }

    /// Column of the table an absolute cycle maps to.
    #[inline]
    pub fn column(&self, cycle: i64) -> usize {
        (cycle.rem_euclid(self.ii as i64)) as usize
    }

    #[inline]
    fn row(&self, resource: ResourceIndex) -> &[u64] {
        let start = resource.0 * self.words_per_row;
        &self.bits[start..start + self.words_per_row]
    }

    /// The busy-mask of `duration` consecutive columns starting at `cycle`, wrapped
    /// modulo II — valid only for single-word rows (II ≤ 64) and `duration <= II`.
    #[inline]
    fn wrapped_mask(&self, cycle: i64, duration: u32) -> u64 {
        debug_assert!(self.words_per_row == 1 && duration <= self.ii);
        let start = self.column(cycle) as u32;
        let ii = self.ii;
        // Work in u128: start + duration <= 2*II <= 128, so nothing shifts out.
        let span = ((1u128 << duration) - 1) << start;
        let low = (span & ((1u128 << ii) - 1)) as u64;
        let wrapped = (span >> ii) as u64;
        low | wrapped
    }

    /// Visit the `(word, mask)` pairs covering `duration` consecutive columns starting
    /// at column `start`, wrapped modulo `ii` — the multi-word (`II > 64`) counterpart
    /// of [`ModuloReservationTable::wrapped_mask`].  Because `duration <= II`, the
    /// wrapped span splits into at most two linear column ranges (`[start, min(start +
    /// duration, II))` and the wrapped remainder `[0, start + duration − II)`), each of
    /// which decomposes into whole-word masks.
    #[inline]
    fn span_words(ii: u32, start: usize, duration: u32, mut f: impl FnMut(usize, u64)) {
        debug_assert!(duration <= ii);
        let end = start + duration as usize;
        let ii = ii as usize;
        for (a, b) in [(start, end.min(ii)), (0, end.saturating_sub(ii))] {
            if a >= b {
                continue;
            }
            for word in a / 64..=(b - 1) / 64 {
                let lo = a.max(word * 64) - word * 64;
                let hi = b.min(word * 64 + 64) - word * 64;
                let mask = if hi - lo == 64 {
                    u64::MAX
                } else {
                    ((1u64 << (hi - lo)) - 1) << lo
                };
                f(word, mask);
            }
        }
    }

    /// Whether `resource` is free at the single cycle `cycle`.
    #[inline]
    pub fn is_free(&self, resource: ResourceIndex, cycle: i64) -> bool {
        let col = self.column(cycle);
        self.bits[resource.0 * self.words_per_row + col / 64] & (1u64 << (col % 64)) == 0
    }

    /// Whether `resource` is free for `duration` consecutive cycles starting at
    /// `cycle`.  If `duration >= II` the resource would be needed in every column, so
    /// the answer is `false` unless the whole row is empty and `duration == II`.
    pub fn is_free_for(&self, resource: ResourceIndex, cycle: i64, duration: u32) -> bool {
        if duration > self.ii {
            return false;
        }
        if self.words_per_row == 1 {
            let mask = self.wrapped_mask(cycle, duration);
            self.bits[resource.0] & mask == 0
        } else {
            let row = resource.0 * self.words_per_row;
            let start = self.column(cycle);
            let mut free = true;
            Self::span_words(self.ii, start, duration, |word, mask| {
                free &= self.bits[row + word] & mask == 0;
            });
            free
        }
    }

    /// Reserve `resource` at `cycle` for one cycle.
    pub fn reserve(&mut self, resource: ResourceIndex, cycle: i64) -> Reservation {
        self.reserve_for(resource, cycle, 1)
    }

    /// Reserve `resource` for `duration` consecutive cycles starting at `cycle`.
    ///
    /// The caller is expected to have checked availability first (the schedulers always
    /// probe with [`ModuloReservationTable::is_free_for`] before reserving); reserving
    /// an occupied slot is debug-asserted against.  `duration > II` is a hard error:
    /// such a span wraps onto itself, so set/clear pairs would no longer be inverses
    /// (a bitset has no per-column counter), and no caller can reach it legitimately —
    /// [`ModuloReservationTable::is_free_for`] rejects every such span.
    pub fn reserve_for(
        &mut self,
        resource: ResourceIndex,
        cycle: i64,
        duration: u32,
    ) -> Reservation {
        assert!(
            duration <= self.ii,
            "a {duration}-cycle reservation cannot fit an II of {}",
            self.ii
        );
        debug_assert!(
            self.is_free_for(resource, cycle, duration),
            "reserving an occupied slot: {resource} cycle {cycle} x{duration}"
        );
        if self.words_per_row == 1 {
            let mask = self.wrapped_mask(cycle, duration);
            self.bits[resource.0] |= mask;
        } else {
            let row = resource.0 * self.words_per_row;
            let start = self.column(cycle);
            let bits = &mut self.bits;
            Self::span_words(self.ii, start, duration, |word, mask| {
                bits[row + word] |= mask;
            });
        }
        Reservation {
            resource,
            start_cycle: cycle,
            duration,
        }
    }

    /// Release a previous reservation.
    pub fn release(&mut self, reservation: Reservation) {
        self.unreserve_for(
            reservation.resource,
            reservation.start_cycle,
            reservation.duration,
        );
    }

    /// Release `duration` consecutive slots of `resource` starting at `cycle` — the
    /// exact inverse of [`ModuloReservationTable::reserve_for`].  Used by schedulers
    /// that roll back tentative placements (the cluster scheduler evaluates several
    /// clusters before committing one).
    pub fn unreserve_for(&mut self, resource: ResourceIndex, cycle: i64, duration: u32) {
        assert!(
            duration <= self.ii,
            "a {duration}-cycle reservation cannot fit an II of {}",
            self.ii
        );
        if self.words_per_row == 1 {
            let mask = self.wrapped_mask(cycle, duration);
            debug_assert!(
                self.bits[resource.0] & mask == mask,
                "releasing a slot that was not reserved"
            );
            self.bits[resource.0] &= !mask;
        } else {
            let row = resource.0 * self.words_per_row;
            let start = self.column(cycle);
            let bits = &mut self.bits;
            Self::span_words(self.ii, start, duration, |word, mask| {
                debug_assert!(
                    bits[row + word] & mask == mask,
                    "releasing a slot that was not reserved"
                );
                bits[row + word] &= !mask;
            });
        }
    }

    /// Find, among `resources`, one that is free at `cycle` (single-cycle use).
    pub fn find_free<I>(&self, resources: I, cycle: i64) -> Option<ResourceIndex>
    where
        I: IntoIterator<Item = ResourceIndex>,
    {
        resources.into_iter().find(|&r| self.is_free(r, cycle))
    }

    /// Find, among `resources`, one that is free for `duration` consecutive cycles
    /// starting at `cycle`.
    pub fn find_free_for<I>(&self, resources: I, cycle: i64, duration: u32) -> Option<ResourceIndex>
    where
        I: IntoIterator<Item = ResourceIndex>,
    {
        resources
            .into_iter()
            .find(|&r| self.is_free_for(r, cycle, duration))
    }

    /// Number of occupied slots in the row of `resource` (out of `II`).
    pub fn row_occupancy(&self, resource: ResourceIndex) -> usize {
        self.row(resource)
            .iter()
            .map(|w| w.count_ones() as usize)
            .sum()
    }

    /// Total occupied slots across all rows (used by utilization statistics).
    pub fn total_occupancy(&self) -> usize {
        self.bits.iter().map(|w| w.count_ones() as usize).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vliw_arch::{FuKind, MachineConfig};

    fn pool() -> ResourcePool {
        ResourcePool::new(&MachineConfig::two_cluster(1, 2))
    }

    #[test]
    fn fresh_table_is_empty() {
        let p = pool();
        let mrt = ModuloReservationTable::new(&p, 4);
        for (idx, _) in p.rows() {
            assert!(mrt.is_free(idx, 0));
            assert_eq!(mrt.row_occupancy(idx), 0);
        }
        assert_eq!(mrt.total_occupancy(), 0);
    }

    #[test]
    fn reservation_blocks_the_whole_congruence_class() {
        let p = pool();
        let mut mrt = ModuloReservationTable::new(&p, 3);
        let fu = p.fus(0, FuKind::Int).next().unwrap();
        mrt.reserve(fu, 4); // column 1
        assert!(!mrt.is_free(fu, 1));
        assert!(!mrt.is_free(fu, 4));
        assert!(!mrt.is_free(fu, 7));
        assert!(mrt.is_free(fu, 0));
        assert!(mrt.is_free(fu, 2));
    }

    #[test]
    fn negative_cycles_map_to_positive_columns() {
        let p = pool();
        let mut mrt = ModuloReservationTable::new(&p, 4);
        let fu = p.fus(1, FuKind::Fp).next().unwrap();
        // -1 mod 4 == 3
        mrt.reserve(fu, -1);
        assert!(!mrt.is_free(fu, 3));
        assert!(!mrt.is_free(fu, 7));
        assert!(mrt.is_free(fu, 0));
    }

    #[test]
    fn multi_cycle_reservation_spans_consecutive_columns() {
        let p = pool();
        let mut mrt = ModuloReservationTable::new(&p, 4);
        let bus = p.buses().next().unwrap();
        assert!(mrt.is_free_for(bus, 2, 2));
        mrt.reserve_for(bus, 2, 2); // columns 2 and 3
        assert!(!mrt.is_free(bus, 2));
        assert!(!mrt.is_free(bus, 3));
        assert!(mrt.is_free(bus, 0));
        assert!(mrt.is_free(bus, 1));
        // A 2-cycle transfer starting at column 1 would need column 2 -> busy.
        assert!(!mrt.is_free_for(bus, 1, 2));
        assert!(mrt.is_free_for(bus, 0, 2));
    }

    #[test]
    fn multi_cycle_reservation_wraps_around_the_last_column() {
        let p = pool();
        let mut mrt = ModuloReservationTable::new(&p, 4);
        let bus = p.buses().next().unwrap();
        // Start at column 3 with duration 2: occupies columns 3 and 0.
        assert!(mrt.is_free_for(bus, 3, 2));
        mrt.reserve_for(bus, 3, 2);
        assert!(!mrt.is_free(bus, 3));
        assert!(!mrt.is_free(bus, 0));
        assert!(mrt.is_free(bus, 1));
        assert!(mrt.is_free(bus, 2));
        mrt.unreserve_for(bus, 3, 2);
        assert_eq!(mrt.row_occupancy(bus), 0);
    }

    #[test]
    fn duration_longer_than_ii_is_never_free() {
        let p = pool();
        let mrt = ModuloReservationTable::new(&p, 2);
        let bus = p.buses().next().unwrap();
        assert!(!mrt.is_free_for(bus, 0, 3));
        // duration == II is allowed when the row is completely empty
        assert!(mrt.is_free_for(bus, 0, 2));
    }

    #[test]
    fn release_restores_availability() {
        let p = pool();
        let mut mrt = ModuloReservationTable::new(&p, 5);
        let fu = p.fus(0, FuKind::Mem).next().unwrap();
        let r = mrt.reserve_for(fu, 7, 3);
        assert_eq!(mrt.row_occupancy(fu), 3);
        mrt.release(r);
        assert_eq!(mrt.row_occupancy(fu), 0);
        assert!(mrt.is_free_for(fu, 7, 3));
    }

    #[test]
    fn find_free_skips_busy_units() {
        let p = pool();
        let mut mrt = ModuloReservationTable::new(&p, 2);
        let fus: Vec<_> = p.fus(0, FuKind::Int).collect();
        assert_eq!(fus.len(), 2);
        mrt.reserve(fus[0], 0);
        let found = mrt.find_free(p.fus(0, FuKind::Int), 0).unwrap();
        assert_eq!(found, fus[1]);
        mrt.reserve(fus[1], 0);
        assert!(mrt.find_free(p.fus(0, FuKind::Int), 0).is_none());
        // the other column is still free
        assert!(mrt.find_free(p.fus(0, FuKind::Int), 1).is_some());
    }

    #[test]
    fn ii_one_table_has_a_single_column() {
        let p = pool();
        let mut mrt = ModuloReservationTable::new(&p, 1);
        let fu = p.fus(0, FuKind::Int).next().unwrap();
        mrt.reserve(fu, 10);
        for cycle in -3..3 {
            assert!(!mrt.is_free(fu, cycle));
        }
    }

    #[test]
    fn reset_clears_and_changes_ii_without_losing_rows() {
        let p = pool();
        let mut mrt = ModuloReservationTable::new(&p, 3);
        let fu = p.fus(0, FuKind::Int).next().unwrap();
        mrt.reserve(fu, 1);
        mrt.reset(5);
        assert_eq!(mrt.ii(), 5);
        assert_eq!(mrt.total_occupancy(), 0);
        for (idx, _) in p.rows() {
            for c in 0..5 {
                assert!(mrt.is_free(idx, c));
            }
        }
        // Reset behaves identically to a fresh table.
        assert_eq!(mrt, ModuloReservationTable::new(&p, 5));
    }

    #[test]
    fn reset_to_a_wide_ii_grows_the_rows() {
        let p = pool();
        let mut mrt = ModuloReservationTable::new(&p, 4);
        mrt.reset(130); // 3 words per row
        let fu = p.fus(0, FuKind::Int).next().unwrap();
        mrt.reserve(fu, 129);
        assert!(!mrt.is_free(fu, 129));
        assert!(mrt.is_free(fu, 128));
        assert_eq!(mrt.row_occupancy(fu), 1);
        mrt.reset(4);
        assert_eq!(mrt, ModuloReservationTable::new(&p, 4));
    }

    /// II = 65 is the first width that no longer fits one `u64` per resource row —
    /// the exact boundary the fuzzing campaigns cross (recurrence-bound loops with
    /// long-latency divides push the II well past 64).  The table must switch to
    /// two-word rows transparently: single-cycle probes, multi-cycle transfers that
    /// wrap column 64 → 0, occupancy accounting and `reset` across the boundary.
    #[test]
    fn ii_65_regression_uses_two_word_rows() {
        let p = pool();
        let mut mrt = ModuloReservationTable::new(&p, 65);
        let fu = p.fus(0, FuKind::Int).next().unwrap();
        // Columns on both sides of the word boundary, via out-of-range cycles.
        mrt.reserve(fu, 63);
        mrt.reserve(fu, 64 + 65); // column 64, second word
        assert!(!mrt.is_free(fu, 63));
        assert!(!mrt.is_free(fu, 64));
        assert!(!mrt.is_free(fu, 63 + 130));
        assert!(mrt.is_free(fu, 0));
        assert!(mrt.is_free(fu, 62));
        assert_eq!(mrt.row_occupancy(fu), 2);

        // A transfer wrapping the last column back to 0 spans both words.
        let bus = p.buses().next().unwrap();
        assert!(mrt.is_free_for(bus, 64, 3)); // columns 64, 0, 1
        mrt.reserve_for(bus, 64, 3);
        for col in [64i64, 0, 1] {
            assert!(!mrt.is_free(bus, col), "column {col} should be busy");
        }
        assert!(mrt.is_free(bus, 2));
        assert!(mrt.is_free(bus, 63));
        assert!(!mrt.is_free_for(bus, 63, 2));
        mrt.unreserve_for(bus, 64, 3);
        let token = mrt.reserve_for(bus, 64, 3);
        mrt.release(token); // the token path agrees with the raw release
        assert_eq!(mrt.row_occupancy(bus), 0);

        // The II search crosses 64 → 65 through `reset` (the engine reuses one
        // table across retries): the grown table must equal a fresh one.
        let mut grown = ModuloReservationTable::new(&p, 64);
        grown.reserve(fu, 10);
        grown.reset(65);
        assert_eq!(grown, ModuloReservationTable::new(&p, 65));
    }

    #[test]
    fn wide_ii_multi_word_rows_behave_like_narrow_ones() {
        let p = pool();
        let mut mrt = ModuloReservationTable::new(&p, 100);
        let bus = p.buses().next().unwrap();
        // Wraps from column 98 across the word boundary back to column 1.
        assert!(mrt.is_free_for(bus, 98, 4));
        mrt.reserve_for(bus, 98, 4);
        for col in [98, 99, 0, 1] {
            assert!(!mrt.is_free(bus, col), "column {col} should be busy");
        }
        assert!(mrt.is_free(bus, 2));
        assert!(mrt.is_free(bus, 97));
        assert!(!mrt.is_free_for(bus, 96, 3));
        mrt.unreserve_for(bus, 98, 4);
        assert_eq!(mrt.total_occupancy(), 0);
    }

    /// The old table kept a `u32` *counter* per (row, column); the bitset must agree
    /// with those semantics for every legal (checked-before-reserve) call sequence.
    /// This drives both implementations through the same randomized sequence of
    /// multi-cycle reserve/probe/release calls — including transfers that wrap around
    /// column II−1 → 0 — and compares every observable.
    #[test]
    fn bitset_matches_counter_reference_on_random_sequences() {
        struct Reference {
            ii: u32,
            occupied: Vec<Vec<u32>>,
        }
        impl Reference {
            fn column(&self, cycle: i64) -> usize {
                cycle.rem_euclid(self.ii as i64) as usize
            }
            fn is_free_for(&self, r: ResourceIndex, cycle: i64, duration: u32) -> bool {
                if duration > self.ii {
                    return false;
                }
                (0..duration).all(|d| self.occupied[r.0][self.column(cycle + d as i64)] == 0)
            }
            fn reserve_for(&mut self, r: ResourceIndex, cycle: i64, duration: u32) {
                for d in 0..duration {
                    let col = self.column(cycle + d as i64);
                    self.occupied[r.0][col] += 1;
                }
            }
            fn unreserve_for(&mut self, r: ResourceIndex, cycle: i64, duration: u32) {
                for d in 0..duration {
                    let col = self.column(cycle + d as i64);
                    self.occupied[r.0][col] -= 1;
                }
            }
            fn row_occupancy(&self, r: ResourceIndex) -> usize {
                self.occupied[r.0].iter().filter(|&&c| c > 0).count()
            }
        }

        let p = pool();
        let rows: Vec<ResourceIndex> = p.rows().map(|(idx, _)| idx).collect();
        // Deterministic xorshift so the test is reproducible.
        let mut state = 0x9E3779B97F4A7C15u64;
        let mut rand = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };

        for ii in [1u32, 2, 3, 5, 8, 64, 65, 70, 127, 128, 129] {
            let mut mrt = ModuloReservationTable::new(&p, ii);
            let mut reference = Reference {
                ii,
                occupied: vec![vec![0; ii as usize]; p.len()],
            };
            let mut live: Vec<Reservation> = Vec::new();
            for _ in 0..400 {
                let r = rows[(rand() % rows.len() as u64) as usize];
                let cycle = (rand() % 200) as i64 - 100;
                let duration = 1 + (rand() % ii.max(1) as u64) as u32;
                match rand() % 3 {
                    0 | 1 => {
                        // Probe both, then reserve only if legal (as the schedulers do).
                        let free = mrt.is_free_for(r, cycle, duration);
                        assert_eq!(free, reference.is_free_for(r, cycle, duration));
                        if free {
                            live.push(mrt.reserve_for(r, cycle, duration));
                            reference.reserve_for(r, cycle, duration);
                        }
                    }
                    _ => {
                        if !live.is_empty() {
                            let idx = (rand() % live.len() as u64) as usize;
                            let res = live.swap_remove(idx);
                            // Mirror the release through the token on one side and the
                            // raw (resource, cycle, duration) API on the other.
                            reference.unreserve_for(res.resource, res.start_cycle, res.duration);
                            mrt.release(res);
                        }
                    }
                }
                for &row in &rows {
                    assert_eq!(mrt.row_occupancy(row), reference.row_occupancy(row));
                }
            }
        }
    }

    #[test]
    #[should_panic(expected = "at least 1")]
    fn zero_ii_panics() {
        let p = pool();
        let _ = ModuloReservationTable::new(&p, 0);
    }
}
