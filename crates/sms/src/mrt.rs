//! The modulo reservation table (MRT).
//!
//! A modulo schedule with initiation interval `II` issues the operation placed at cycle
//! `t` in *every* kernel iteration, i.e. at absolute cycles `t, t+II, t+2·II, …`.  Two
//! operations therefore conflict on a resource iff they use it at cycles that are equal
//! modulo `II`.  The MRT has one row per resource (functional-unit instance or bus) and
//! `II` columns; reserving cycle `t` marks column `t mod II`.
//!
//! Buses are reserved for `bus_latency` *consecutive* cycles ("when one particular
//! cluster places a data on the bus, this bus will be busy during the entirety of the
//! communication latency", Section 3), so the table supports multi-cycle reservations.

use serde::{Deserialize, Serialize};
use vliw_arch::{ResourceIndex, ResourcePool};

/// Token returned by a reservation, usable to release it again (needed by the
/// try-a-cluster-then-back-off logic of the cluster scheduler).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Reservation {
    resource: ResourceIndex,
    start_cycle: i64,
    duration: u32,
}

/// The modulo reservation table.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ModuloReservationTable {
    ii: u32,
    /// `occupied[row][col]` = number of reservations covering that slot (always 0/1 in
    /// a consistent schedule; a counter keeps release simple).
    occupied: Vec<Vec<u32>>,
}

impl ModuloReservationTable {
    /// An empty table for `pool` with the given initiation interval.
    pub fn new(pool: &ResourcePool, ii: u32) -> Self {
        assert!(ii >= 1, "the initiation interval must be at least 1");
        Self {
            ii,
            occupied: vec![vec![0; ii as usize]; pool.len()],
        }
    }

    /// The initiation interval of the table.
    #[inline]
    pub fn ii(&self) -> u32 {
        self.ii
    }

    /// Column of the table an absolute cycle maps to.
    #[inline]
    pub fn column(&self, cycle: i64) -> usize {
        (cycle.rem_euclid(self.ii as i64)) as usize
    }

    /// Whether `resource` is free at the single cycle `cycle`.
    pub fn is_free(&self, resource: ResourceIndex, cycle: i64) -> bool {
        self.occupied[resource.0][self.column(cycle)] == 0
    }

    /// Whether `resource` is free for `duration` consecutive cycles starting at
    /// `cycle`.  If `duration >= II` the resource would be needed in every column, so
    /// the answer is `false` unless the whole row is empty and `duration == II`.
    pub fn is_free_for(&self, resource: ResourceIndex, cycle: i64, duration: u32) -> bool {
        if duration > self.ii {
            return false;
        }
        (0..duration).all(|d| self.is_free(resource, cycle + d as i64))
    }

    /// Reserve `resource` at `cycle` for one cycle.
    pub fn reserve(&mut self, resource: ResourceIndex, cycle: i64) -> Reservation {
        self.reserve_for(resource, cycle, 1)
    }

    /// Reserve `resource` for `duration` consecutive cycles starting at `cycle`.
    ///
    /// The caller is expected to have checked availability; reserving an occupied slot
    /// is allowed (the counter is incremented) but debug-asserted against, because a
    /// correct scheduler never does it.
    pub fn reserve_for(
        &mut self,
        resource: ResourceIndex,
        cycle: i64,
        duration: u32,
    ) -> Reservation {
        debug_assert!(
            self.is_free_for(resource, cycle, duration),
            "reserving an occupied slot: {resource} cycle {cycle} x{duration}"
        );
        for d in 0..duration {
            let col = self.column(cycle + d as i64);
            self.occupied[resource.0][col] += 1;
        }
        Reservation {
            resource,
            start_cycle: cycle,
            duration,
        }
    }

    /// Release a previous reservation.
    pub fn release(&mut self, reservation: Reservation) {
        self.unreserve_for(
            reservation.resource,
            reservation.start_cycle,
            reservation.duration,
        );
    }

    /// Release `duration` consecutive slots of `resource` starting at `cycle` — the
    /// exact inverse of [`ModuloReservationTable::reserve_for`].  Used by schedulers
    /// that roll back tentative placements (the cluster scheduler evaluates several
    /// clusters before committing one).
    pub fn unreserve_for(&mut self, resource: ResourceIndex, cycle: i64, duration: u32) {
        for d in 0..duration {
            let col = self.column(cycle + d as i64);
            let slot = &mut self.occupied[resource.0][col];
            debug_assert!(*slot > 0, "releasing a slot that was not reserved");
            *slot = slot.saturating_sub(1);
        }
    }

    /// Find, among `resources`, one that is free at `cycle` (single-cycle use).
    pub fn find_free<I>(&self, resources: I, cycle: i64) -> Option<ResourceIndex>
    where
        I: IntoIterator<Item = ResourceIndex>,
    {
        resources.into_iter().find(|&r| self.is_free(r, cycle))
    }

    /// Find, among `resources`, one that is free for `duration` consecutive cycles
    /// starting at `cycle`.
    pub fn find_free_for<I>(&self, resources: I, cycle: i64, duration: u32) -> Option<ResourceIndex>
    where
        I: IntoIterator<Item = ResourceIndex>,
    {
        resources
            .into_iter()
            .find(|&r| self.is_free_for(r, cycle, duration))
    }

    /// Number of occupied slots in the row of `resource` (out of `II`).
    pub fn row_occupancy(&self, resource: ResourceIndex) -> usize {
        self.occupied[resource.0].iter().filter(|&&c| c > 0).count()
    }

    /// Total occupied slots across all rows (used by utilization statistics).
    pub fn total_occupancy(&self) -> usize {
        self.occupied
            .iter()
            .map(|row| row.iter().filter(|&&c| c > 0).count())
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vliw_arch::{FuKind, MachineConfig};

    fn pool() -> ResourcePool {
        ResourcePool::new(&MachineConfig::two_cluster(1, 2))
    }

    #[test]
    fn fresh_table_is_empty() {
        let p = pool();
        let mrt = ModuloReservationTable::new(&p, 4);
        for (idx, _) in p.rows() {
            assert!(mrt.is_free(idx, 0));
            assert_eq!(mrt.row_occupancy(idx), 0);
        }
        assert_eq!(mrt.total_occupancy(), 0);
    }

    #[test]
    fn reservation_blocks_the_whole_congruence_class() {
        let p = pool();
        let mut mrt = ModuloReservationTable::new(&p, 3);
        let fu = p.fus(0, FuKind::Int).next().unwrap();
        mrt.reserve(fu, 4); // column 1
        assert!(!mrt.is_free(fu, 1));
        assert!(!mrt.is_free(fu, 4));
        assert!(!mrt.is_free(fu, 7));
        assert!(mrt.is_free(fu, 0));
        assert!(mrt.is_free(fu, 2));
    }

    #[test]
    fn negative_cycles_map_to_positive_columns() {
        let p = pool();
        let mut mrt = ModuloReservationTable::new(&p, 4);
        let fu = p.fus(1, FuKind::Fp).next().unwrap();
        // -1 mod 4 == 3
        mrt.reserve(fu, -1);
        assert!(!mrt.is_free(fu, 3));
        assert!(!mrt.is_free(fu, 7));
        assert!(mrt.is_free(fu, 0));
    }

    #[test]
    fn multi_cycle_reservation_spans_consecutive_columns() {
        let p = pool();
        let mut mrt = ModuloReservationTable::new(&p, 4);
        let bus = p.buses().next().unwrap();
        assert!(mrt.is_free_for(bus, 2, 2));
        mrt.reserve_for(bus, 2, 2); // columns 2 and 3
        assert!(!mrt.is_free(bus, 2));
        assert!(!mrt.is_free(bus, 3));
        assert!(mrt.is_free(bus, 0));
        assert!(mrt.is_free(bus, 1));
        // A 2-cycle transfer starting at column 1 would need column 2 -> busy.
        assert!(!mrt.is_free_for(bus, 1, 2));
        assert!(mrt.is_free_for(bus, 0, 2));
    }

    #[test]
    fn duration_longer_than_ii_is_never_free() {
        let p = pool();
        let mrt = ModuloReservationTable::new(&p, 2);
        let bus = p.buses().next().unwrap();
        assert!(!mrt.is_free_for(bus, 0, 3));
        // duration == II is allowed when the row is completely empty
        assert!(mrt.is_free_for(bus, 0, 2));
    }

    #[test]
    fn release_restores_availability() {
        let p = pool();
        let mut mrt = ModuloReservationTable::new(&p, 5);
        let fu = p.fus(0, FuKind::Mem).next().unwrap();
        let r = mrt.reserve_for(fu, 7, 3);
        assert_eq!(mrt.row_occupancy(fu), 3);
        mrt.release(r);
        assert_eq!(mrt.row_occupancy(fu), 0);
        assert!(mrt.is_free_for(fu, 7, 3));
    }

    #[test]
    fn find_free_skips_busy_units() {
        let p = pool();
        let mut mrt = ModuloReservationTable::new(&p, 2);
        let fus: Vec<_> = p.fus(0, FuKind::Int).collect();
        assert_eq!(fus.len(), 2);
        mrt.reserve(fus[0], 0);
        let found = mrt.find_free(p.fus(0, FuKind::Int), 0).unwrap();
        assert_eq!(found, fus[1]);
        mrt.reserve(fus[1], 0);
        assert!(mrt.find_free(p.fus(0, FuKind::Int), 0).is_none());
        // the other column is still free
        assert!(mrt.find_free(p.fus(0, FuKind::Int), 1).is_some());
    }

    #[test]
    fn ii_one_table_has_a_single_column() {
        let p = pool();
        let mut mrt = ModuloReservationTable::new(&p, 1);
        let fu = p.fus(0, FuKind::Int).next().unwrap();
        mrt.reserve(fu, 10);
        for cycle in -3..3 {
            assert!(!mrt.is_free(fu, cycle));
        }
    }

    #[test]
    #[should_panic(expected = "at least 1")]
    fn zero_ii_panics() {
        let p = pool();
        let _ = ModuloReservationTable::new(&p, 0);
    }
}
