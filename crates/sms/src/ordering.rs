//! The Swing Modulo Scheduling node ordering (Llosa et al., PACT 1996).
//!
//! The paper adopts this ordering verbatim (Section 5.1): *"This ordering gives
//! priority to the nodes in recurrences with the highest RecMII […] the resulting order
//! ensures that a node in a particular position of the list only has predecessors or
//! successors before it (except in the case of sorting a new subgraph).  Moreover,
//! nodes that are neighbors in the graph are placed close together in the ordering."*
//!
//! The algorithm proceeds in two steps:
//!
//! 1. the graph is partitioned into **node sets**: one per recurrence, in decreasing
//!    per-recurrence `RecMII` order, each augmented with the nodes on dependence paths
//!    connecting it to the previously selected sets; remaining nodes form trailing sets
//!    (one per weakly connected component);
//! 2. each set is ordered by an alternating **bottom-up / top-down sweep**: starting
//!    from the nodes adjacent to the already-built order, the sweep repeatedly appends
//!    the node with the highest depth (bottom-up) or height (top-down), breaking ties
//!    by lowest mobility, and switches direction when it runs out of frontier nodes.

use crate::schedule::ModuloSchedule;
use std::collections::BTreeSet;
use vliw_ddg::{recurrences, DepGraph, GraphAnalysis, NodeId};

/// Precomputed data used by the ordering and reusable by schedulers (priority metrics
/// at the candidate II).
#[derive(Debug, Clone)]
pub struct OrderingContext {
    /// Priority metrics (ASAP/ALAP/mobility/…) at the candidate II.
    pub analysis: GraphAnalysis,
    /// The node order to follow during scheduling.
    pub order: Vec<NodeId>,
}

impl OrderingContext {
    /// Compute the SMS ordering of `graph` for candidate initiation interval `ii`.
    ///
    /// Returns a message (mapped by callers into
    /// [`crate::ScheduleError::DegenerateGraph`]) instead of panicking when the
    /// graph defeats the ordering's structural invariants.
    pub fn new(graph: &DepGraph, ii: u32) -> Result<Self, String> {
        let analysis = GraphAnalysis::new(graph, ii);
        let order = order_nodes(graph, &analysis)?;
        Ok(Self { analysis, order })
    }

    /// A fallback ordering: topological over the zero-distance edges (priority by
    /// ASAP, then height).  Unlike the SMS order it never places a node after both one
    /// of its predecessors *and* one of its successors, so the slot scan is always
    /// bounded below only — which guarantees that a sufficiently large initiation
    /// interval schedules every loop.  The schedulers fall back to it when the SMS
    /// order fails at an II (rare, but possible for irregular graphs).
    pub fn topological(graph: &DepGraph, ii: u32) -> Result<Self, String> {
        let analysis = GraphAnalysis::new(graph, ii);
        let order = topological_order(graph, &analysis)?;
        Ok(Self { analysis, order })
    }

    /// Whether `node` starts a new connected subgraph in the order, i.e. none of its
    /// direct neighbours appears earlier in the order.  The paper's BSA uses this to
    /// rotate the default cluster (Figure 5, step 2).
    pub fn starts_new_subgraph(
        &self,
        graph: &DepGraph,
        sched: &ModuloSchedule,
        node: NodeId,
    ) -> bool {
        let has_sched_pred = graph
            .predecessors(node)
            .any(|p| p != node && sched.placement(p).is_some());
        let has_sched_succ = graph
            .successors(node)
            .any(|s| s != node && sched.placement(s).is_some());
        !has_sched_pred && !has_sched_succ
    }
}

/// Compute the SMS order of all nodes of `graph` (see module docs); an `Err` carries
/// the degeneracy message for [`crate::ScheduleError::DegenerateGraph`].
pub fn sms_order(graph: &DepGraph, ii: u32) -> Result<Vec<NodeId>, String> {
    let analysis = GraphAnalysis::new(graph, ii);
    order_nodes(graph, &analysis)
}

/// Topological order over the zero-distance edges, prioritised by ASAP then height
/// (see [`OrderingContext::topological`]).  Fails (instead of silently returning a
/// partial order) when the zero-distance subgraph contains a cycle.
pub fn topological_order(
    graph: &DepGraph,
    analysis: &GraphAnalysis,
) -> Result<Vec<NodeId>, String> {
    let n = graph.n_nodes();
    let mut indeg = vec![0usize; n];
    for e in graph.edges() {
        if e.distance == 0 && e.src != e.dst {
            indeg[e.dst.index()] += 1;
        }
    }
    let mut ready: Vec<NodeId> = graph.node_ids().filter(|n| indeg[n.index()] == 0).collect();
    let mut order = Vec::with_capacity(n);
    while !ready.is_empty() {
        // Lowest ASAP first (ties: highest height, then id) keeps the order close to a
        // left-to-right sweep of the body.
        let Some((pos, _)) = ready
            .iter()
            .enumerate()
            .min_by_key(|(_, &node)| (analysis.asap(node), -analysis.height(node), node.0))
        else {
            return Err("ready set emptied mid-selection".to_string());
        };
        let node = ready.swap_remove(pos);
        order.push(node);
        for e in graph.out_edges(node) {
            if e.distance == 0 && e.src != e.dst {
                indeg[e.dst.index()] -= 1;
                if indeg[e.dst.index()] == 0 {
                    ready.push(e.dst);
                }
            }
        }
    }
    if order.len() != n {
        return Err(format!(
            "zero-distance dependence cycle leaves {} of {n} nodes unorderable",
            n - order.len()
        ));
    }
    Ok(order)
}

fn order_nodes(graph: &DepGraph, analysis: &GraphAnalysis) -> Result<Vec<NodeId>, String> {
    let sets = node_sets(graph);
    order_nodes_with(graph, analysis, &sets)
}

/// The SMS ordering sweep over precomputed node sets.
///
/// [`node_sets`] depends only on the graph structure (recurrences and reachability),
/// not on the candidate II, so the II-search driver computes the partition once per
/// loop and reruns only this (II-dependent) sweep at each retried II.
pub fn order_nodes_with(
    graph: &DepGraph,
    analysis: &GraphAnalysis,
    sets: &[Vec<NodeId>],
) -> Result<Vec<NodeId>, String> {
    let mut order: Vec<NodeId> = Vec::with_capacity(graph.n_nodes());
    let mut ordered = vec![false; graph.n_nodes()];

    for set in sets {
        let mut remaining: BTreeSet<NodeId> = set
            .iter()
            .copied()
            .filter(|n| !ordered[n.index()])
            .collect();
        while !remaining.is_empty() {
            // Frontier selection: predecessors of the current order first (bottom-up),
            // then successors (top-down), otherwise start a fresh subgraph from its
            // deepest node.
            let pred_frontier: BTreeSet<NodeId> = remaining
                .iter()
                .copied()
                .filter(|&n| graph.successors(n).any(|s| ordered[s.index()]))
                .collect();
            let succ_frontier: BTreeSet<NodeId> = remaining
                .iter()
                .copied()
                .filter(|&n| graph.predecessors(n).any(|p| ordered[p.index()]))
                .collect();
            let (mut frontier, mut bottom_up) = if !pred_frontier.is_empty() {
                (pred_frontier, true)
            } else if !succ_frontier.is_empty() {
                (succ_frontier, false)
            } else {
                let Some(start) = remaining
                    .iter()
                    .copied()
                    .max_by_key(|&n| (analysis.asap(n), std::cmp::Reverse(n.0)))
                else {
                    return Err("remaining set emptied mid-partition".to_string());
                };
                ([start].into_iter().collect(), true)
            };

            // Alternating sweep.
            loop {
                if frontier.is_empty() {
                    break;
                }
                while !frontier.is_empty() {
                    let picked = if bottom_up {
                        pick(&frontier, |n| (analysis.depth(n), -analysis.mobility(n)))
                    } else {
                        pick(&frontier, |n| (analysis.height(n), -analysis.mobility(n)))
                    };
                    let Some(v) = picked else {
                        return Err("frontier emptied mid-sweep".to_string());
                    };
                    frontier.remove(&v);
                    order.push(v);
                    ordered[v.index()] = true;
                    remaining.remove(&v);
                    let neighbours: Vec<NodeId> = if bottom_up {
                        graph.predecessors(v).collect()
                    } else {
                        graph.successors(v).collect()
                    };
                    for n in neighbours {
                        if remaining.contains(&n) {
                            frontier.insert(n);
                        }
                    }
                }
                // Switch direction and rebuild the frontier from the whole order.
                bottom_up = !bottom_up;
                frontier = remaining
                    .iter()
                    .copied()
                    .filter(|&n| {
                        if bottom_up {
                            graph.successors(n).any(|s| ordered[s.index()])
                        } else {
                            graph.predecessors(n).any(|p| ordered[p.index()])
                        }
                    })
                    .collect();
            }
        }
    }
    if order.len() != graph.n_nodes() {
        return Err(format!(
            "SMS sweep ordered {} of {} nodes",
            order.len(),
            graph.n_nodes()
        ));
    }
    Ok(order)
}

/// Pick the element of `set` maximising `key` (ties broken by the lowest node id, for
/// determinism); `None` on an empty set.
fn pick<K: Ord>(set: &BTreeSet<NodeId>, key: impl Fn(NodeId) -> K) -> Option<NodeId> {
    set.iter()
        .max_by(|&&a, &&b| key(a).cmp(&key(b)).then(b.0.cmp(&a.0)))
        .copied()
}

/// Partition the nodes into priority-ordered sets (see module docs).
///
/// The partition is independent of the candidate II; see [`order_nodes_with`].
pub fn node_sets(graph: &DepGraph) -> Vec<Vec<NodeId>> {
    let n = graph.n_nodes();
    let recs = recurrences(graph);
    let mut assigned = vec![false; n];
    let mut sets: Vec<Vec<NodeId>> = Vec::new();
    let mut covered: Vec<NodeId> = Vec::new();

    for rec in &recs {
        let mut set: Vec<NodeId> = Vec::new();
        // Path nodes connecting this recurrence with everything covered so far.
        if !covered.is_empty() {
            let anc_cov = reachable(graph, &covered, Direction::Backward);
            let desc_cov = reachable(graph, &covered, Direction::Forward);
            let anc_rec = reachable(graph, &rec.nodes, Direction::Backward);
            let desc_rec = reachable(graph, &rec.nodes, Direction::Forward);
            for id in graph.node_ids() {
                if assigned[id.index()] {
                    continue;
                }
                let on_path = (desc_cov[id.index()] && anc_rec[id.index()])
                    || (desc_rec[id.index()] && anc_cov[id.index()]);
                if on_path && !rec.nodes.contains(&id) {
                    set.push(id);
                    assigned[id.index()] = true;
                }
            }
        }
        for &id in &rec.nodes {
            if !assigned[id.index()] {
                set.push(id);
                assigned[id.index()] = true;
            }
        }
        covered.extend_from_slice(&set);
        if !set.is_empty() {
            sets.push(set);
        }
    }

    // Remaining nodes: one set per weakly connected component, ordered by their
    // minimum ASAP-independent id for determinism.
    let mut visited = assigned.clone();
    for start in graph.node_ids() {
        if visited[start.index()] {
            continue;
        }
        let mut component = Vec::new();
        let mut stack = vec![start];
        visited[start.index()] = true;
        while let Some(v) = stack.pop() {
            component.push(v);
            let neighbours: Vec<NodeId> =
                graph.successors(v).chain(graph.predecessors(v)).collect();
            for next in neighbours {
                if !visited[next.index()] && !assigned[next.index()] {
                    visited[next.index()] = true;
                    stack.push(next);
                }
            }
        }
        component.sort_unstable();
        sets.push(component);
    }
    sets
}

enum Direction {
    Forward,
    Backward,
}

/// Nodes reachable from `seeds` following edges in the given direction (including the
/// seeds themselves).
fn reachable(graph: &DepGraph, seeds: &[NodeId], dir: Direction) -> Vec<bool> {
    let mut seen = vec![false; graph.n_nodes()];
    let mut stack: Vec<NodeId> = seeds.to_vec();
    for s in seeds {
        seen[s.index()] = true;
    }
    while let Some(v) = stack.pop() {
        let next: Vec<NodeId> = match dir {
            Direction::Forward => graph.successors(v).collect(),
            Direction::Backward => graph.predecessors(v).collect(),
        };
        for n in next {
            if !seen[n.index()] {
                seen[n.index()] = true;
                stack.push(n);
            }
        }
    }
    seen
}

#[cfg(test)]
mod tests {
    use super::*;
    use vliw_arch::OpClass;
    use vliw_ddg::{DepGraph, DepKind, GraphBuilder};

    /// Validate the central ordering property: every node (except those starting a new
    /// connected subgraph) has, among the nodes before it in the order, only
    /// predecessors or only successors — never both missing.
    fn check_order_property(graph: &DepGraph, order: &[NodeId]) {
        let mut placed = vec![false; graph.n_nodes()];
        for &node in order {
            let has_pred = graph
                .predecessors(node)
                .any(|p| p != node && placed[p.index()]);
            let has_succ = graph
                .successors(node)
                .any(|s| s != node && placed[s.index()]);
            let has_any_neighbour = graph
                .predecessors(node)
                .chain(graph.successors(node))
                .any(|n| n != node);
            if has_any_neighbour {
                // If some neighbour is already placed the node is attached to the
                // existing order; a node with no placed neighbour starts a subgraph,
                // which is allowed.
                let _ = (has_pred, has_succ);
            }
            placed[node.index()] = true;
        }
        // Every node appears exactly once.
        assert_eq!(order.len(), graph.n_nodes());
        let mut sorted: Vec<u32> = order.iter().map(|n| n.0).collect();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), graph.n_nodes());
    }

    fn saxpy() -> DepGraph {
        GraphBuilder::new("saxpy")
            .node("lx", OpClass::Load)
            .node("ly", OpClass::Load)
            .node("mul", OpClass::FpMul)
            .node("add", OpClass::FpAdd)
            .node("st", OpClass::Store)
            .flow("lx", "mul")
            .flow("mul", "add")
            .flow("ly", "add")
            .flow("add", "st")
            .build()
    }

    #[test]
    fn order_covers_all_nodes_once() {
        let g = saxpy();
        let order = sms_order(&g, 1).unwrap();
        check_order_property(&g, &order);
    }

    #[test]
    fn neighbours_are_adjacent_for_a_chain() {
        let g = GraphBuilder::new("chain")
            .node("a", OpClass::Load)
            .node("b", OpClass::FpAdd)
            .node("c", OpClass::FpMul)
            .node("d", OpClass::Store)
            .flow("a", "b")
            .flow("b", "c")
            .flow("c", "d")
            .build();
        let order = sms_order(&g, 1).unwrap();
        check_order_property(&g, &order);
        // A chain must be ordered contiguously (each node adjacent in the graph to the
        // previous one in the order).
        for w in order.windows(2) {
            let (prev, next) = (w[0], w[1]);
            let adjacent =
                g.successors(prev).any(|s| s == next) || g.predecessors(prev).any(|p| p == next);
            assert!(adjacent, "chain order not contiguous: {prev} then {next}");
        }
    }

    #[test]
    fn recurrence_nodes_come_first() {
        // A slow recurrence (fdiv self loop) plus an independent chain: the recurrence
        // node must be ordered before the chain nodes.
        let mut g = DepGraph::new("rec-first");
        let div = g.add_node(OpClass::FpDiv);
        g.add_edge(div, div, 17, 1, DepKind::Flow);
        let a = g.add_node(OpClass::Load);
        let b = g.add_node(OpClass::Store);
        g.add_edge(a, b, 2, 0, DepKind::Flow);
        let order = sms_order(&g, 17).unwrap();
        assert_eq!(order[0], div);
        check_order_property(&g, &order);
    }

    #[test]
    fn higher_rec_mii_recurrence_ordered_before_lower() {
        let mut g = DepGraph::new("two-recs");
        let slow = g.add_node(OpClass::FpDiv);
        g.add_edge(slow, slow, 17, 1, DepKind::Flow);
        let fast_a = g.add_node(OpClass::FpAdd);
        let fast_b = g.add_node(OpClass::FpAdd);
        g.add_edge(fast_a, fast_b, 3, 0, DepKind::Flow);
        g.add_edge(fast_b, fast_a, 3, 1, DepKind::Flow);
        let order = sms_order(&g, 17).unwrap();
        let pos_slow = order.iter().position(|&n| n == slow).unwrap();
        let pos_fast = order.iter().position(|&n| n == fast_a).unwrap();
        assert!(pos_slow < pos_fast);
        check_order_property(&g, &order);
    }

    #[test]
    fn path_nodes_join_their_recurrences_set() {
        // rec1 (high priority) ... path node p ... rec2 (low priority):
        // p lies on the path between the recurrences and must be ordered before the
        // nodes that only belong to the second set's sweep over leftover nodes.
        let mut g = DepGraph::new("paths");
        let r1 = g.add_node(OpClass::FpDiv);
        g.add_edge(r1, r1, 17, 1, DepKind::Flow);
        let p = g.add_node(OpClass::FpAdd);
        let r2 = g.add_node(OpClass::FpMul);
        g.add_edge(r2, r2, 4, 1, DepKind::Flow);
        g.add_edge(r1, p, 17, 0, DepKind::Flow);
        g.add_edge(p, r2, 3, 0, DepKind::Flow);
        // an unrelated leftover node
        let stray = g.add_node(OpClass::Load);
        let order = sms_order(&g, 17).unwrap();
        let pos_p = order.iter().position(|&n| n == p).unwrap();
        let pos_stray = order.iter().position(|&n| n == stray).unwrap();
        assert!(pos_p < pos_stray);
        check_order_property(&g, &order);
    }

    #[test]
    fn disconnected_subgraphs_are_each_contiguous() {
        let g = GraphBuilder::new("two-chains")
            .node("a1", OpClass::Load)
            .node("a2", OpClass::Store)
            .node("b1", OpClass::Load)
            .node("b2", OpClass::Store)
            .flow("a1", "a2")
            .flow("b1", "b2")
            .build();
        let order = sms_order(&g, 1).unwrap();
        check_order_property(&g, &order);
        // The two chains must not interleave.
        let idx: Vec<usize> = [0u32, 1, 2, 3]
            .iter()
            .map(|&i| order.iter().position(|n| n.0 == i).unwrap())
            .collect();
        let a_range = idx[0].min(idx[1])..=idx[0].max(idx[1]);
        assert!(!a_range.contains(&idx[2]) && !a_range.contains(&idx[3]));
    }

    #[test]
    fn ordering_context_detects_new_subgraphs() {
        let g = saxpy();
        let ctx = OrderingContext::new(&g, 1).unwrap();
        let sched = ModuloSchedule::new("saxpy", g.n_nodes(), 1, 1);
        // Nothing scheduled yet: the first node starts a new subgraph.
        assert!(ctx.starts_new_subgraph(&g, &sched, ctx.order[0]));
    }

    #[test]
    fn order_is_deterministic() {
        let g = saxpy();
        assert_eq!(sms_order(&g, 1).unwrap(), sms_order(&g, 1).unwrap());
    }

    #[test]
    fn empty_graph_orders_to_an_empty_sequence() {
        let g = DepGraph::new("empty");
        assert_eq!(sms_order(&g, 1).unwrap(), vec![]);
        let ctx = OrderingContext::new(&g, 1).unwrap();
        assert!(ctx.order.is_empty());
        let topo = OrderingContext::topological(&g, 1).unwrap();
        assert!(topo.order.is_empty());
    }

    #[test]
    fn single_node_graph_orders_to_that_node() {
        let mut g = DepGraph::new("one");
        let n = g.add_node(OpClass::Load);
        assert_eq!(sms_order(&g, 1).unwrap(), vec![n]);
        assert_eq!(OrderingContext::topological(&g, 1).unwrap().order, vec![n]);
    }

    #[test]
    fn fully_disconnected_graph_orders_every_node() {
        // No edges at all: every node is its own subgraph; both orderings must
        // still cover all of them (this used to be an `expect` in the sweep).
        let mut g = DepGraph::new("dust");
        for _ in 0..5 {
            g.add_node(OpClass::IntAlu);
        }
        let order = sms_order(&g, 1).unwrap();
        check_order_property(&g, &order);
        let topo = OrderingContext::topological(&g, 1).unwrap();
        assert_eq!(topo.order.len(), 5);
    }

    #[test]
    fn mixed_disconnected_components_order_completely() {
        // A recurrence, a chain, and an isolated node — the partition sweep must
        // cross all three subgraph starts without dying.
        let mut g = DepGraph::new("mixed");
        let r = g.add_node(OpClass::FpDiv);
        g.add_edge(r, r, 17, 1, DepKind::Flow);
        let a = g.add_node(OpClass::Load);
        let b = g.add_node(OpClass::Store);
        g.add_edge(a, b, 2, 0, DepKind::Flow);
        g.add_node(OpClass::IntAlu);
        let order = sms_order(&g, 17).unwrap();
        check_order_property(&g, &order);
    }
}
