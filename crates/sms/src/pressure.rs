//! Incremental register-pressure tracking for the per-placement feasibility check.
//!
//! The cluster schedulers ask "does this trial placement overflow a register
//! file?" once per probed cycle, and [`crate::lifetime::LifetimeMap`] answers by
//! rebuilding every live range of the partial schedule — O(placed nodes × edges)
//! per probe, which profiling shows dominates BSA's per-loop time. The
//! [`PressureTracker`] answers the same question incrementally: placing node `n`
//! can only change the live ranges of `n` itself and of `n`'s already-placed
//! value predecessors (the producers whose values `n` consumes, whose last-read
//! cycles and bus-transfer splits may move). Everything else is untouched, so the
//! tracker retracts the affected producers' stored ranges, recomputes them
//! against the trial schedule through the exact same
//! `push_producer_ranges` helper the full map uses, and applies the
//! difference — O(degree × II) per probe instead of a full rebuild.
//!
//! `fits` is answered from a running count of over-capacity (cluster, row)
//! entries, updated as each row crosses the register-file size in either
//! direction. Counting transitions instead of re-scanning keeps the answer
//! *unconditionally* equal to the whole-map check — even mid-trial states that
//! a hostile [`crate::engine::ClusterPolicy`] could produce by committing
//! tampered trials (the fault-injection campaigns do exactly that) evaluate
//! identically to a from-scratch [`crate::lifetime::LifetimeMap`].
//!
//! The tracker is a pure optimization: debug builds cross-check every answer
//! against a freshly built `LifetimeMap`, and the engine's `incremental(false)`
//! escape hatch swaps the full rebuild back in (property-tested byte-identical).

use crate::lifetime::{apply_range_rows, push_producer_ranges, LiveRange};
use crate::schedule::ModuloSchedule;
use vliw_arch::MachineConfig;
use vliw_ddg::{DepGraph, NodeId};

/// Delta-maintained `[cluster × II]` live-value counts plus the per-producer
/// ranges they came from. One instance lives in the engine scratch and is
/// re-armed per scheduling attempt.
#[derive(Debug, Default)]
pub struct PressureTracker {
    ii: u32,
    registers: u32,
    /// Row-major `[cluster × II]` live-value counts for the *committed* schedule.
    pressure: Vec<u32>,
    /// How many (cluster, row) entries currently exceed the register-file size.
    overflow: u32,
    /// Committed live ranges, grouped by producer node (indexed by `NodeId`).
    ranges_of: Vec<Vec<LiveRange>>,
    // Scratch buffers, reused across probes.
    affected: Vec<NodeId>,
    /// Node whose affected set is already in `affected` (hoisted once per probe
    /// via [`PressureTracker::prepare_probe`]; the set depends only on which
    /// *predecessors* are placed, so it is invariant across the probe's cycle
    /// scan).
    prepared: Option<NodeId>,
    new_ranges: Vec<LiveRange>,
    /// Per-`affected` flag: whether the producer's trial ranges differ from its
    /// committed ranges (equal ranges are not swapped at all — the add and the
    /// retract would cancel exactly).
    swapped: Vec<bool>,
    remote: Vec<Option<(i64, i64)>>,
}

/// Apply `ranges` to the flat pressure array, keeping the over-capacity row count
/// in sync. `ADD` selects add vs. retract (a const generic so the hot closure
/// stays branch-free after monomorphization).
fn apply_ranges<const ADD: bool>(
    pressure: &mut [u32],
    overflow: &mut u32,
    registers: u32,
    ii: u32,
    ranges: &[LiveRange],
) {
    for r in ranges {
        let rows = &mut pressure[r.cluster * ii as usize..(r.cluster + 1) * ii as usize];
        apply_range_rows(rows, ii, r, |slot, v| {
            let was_over = *slot > registers;
            if ADD {
                *slot += v;
                if !was_over && *slot > registers {
                    *overflow += 1;
                }
            } else {
                *slot -= v;
                if was_over && *slot <= registers {
                    *overflow -= 1;
                }
            }
        });
    }
}

impl PressureTracker {
    /// A tracker with no capacity; [`PressureTracker::reset`] sizes it.
    pub fn new() -> Self {
        Self::default()
    }

    /// Re-arm for a fresh (empty) scheduling attempt at `ii`.
    pub fn reset(&mut self, machine: &MachineConfig, n_nodes: usize, ii: u32) {
        self.ii = ii;
        self.registers = machine.cluster.registers as u32;
        self.pressure.clear();
        self.pressure.resize(machine.n_clusters * ii as usize, 0);
        self.overflow = 0;
        if self.ranges_of.len() < n_nodes {
            self.ranges_of.resize_with(n_nodes, Vec::new);
        }
        for ranges in &mut self.ranges_of {
            ranges.clear();
        }
        self.remote.clear();
        self.remote.resize(machine.n_clusters, None);
        self.prepared = None;
    }

    /// Collect the affected set for a whole probe of `node` up front, so the
    /// per-cycle [`PressureTracker::evaluate`] calls skip the edge traversal.
    ///
    /// Sound because the set depends only on `node`'s class and on which of its
    /// *predecessors* are placed — neither changes while the probe scans cycles
    /// (only `node` itself is tentatively placed and rolled back).  Call with
    /// the committed schedule (the trial not yet applied); the preparation is
    /// invalidated by [`PressureTracker::commit`] and [`PressureTracker::reset`].
    pub fn prepare_probe(&mut self, graph: &DepGraph, sched: &ModuloSchedule, node: NodeId) {
        self.collect_affected(graph, sched, node);
        self.prepared = Some(node);
    }

    /// The producers whose live ranges placing `node` can affect: `node` itself
    /// (if it defines a value) plus every already-placed producer feeding a value
    /// into `node`.
    fn collect_affected(&mut self, graph: &DepGraph, sched: &ModuloSchedule, node: NodeId) {
        self.affected.clear();
        if graph.node(node).class.defines_value() {
            self.affected.push(node);
        }
        for e in graph.in_edges(node) {
            if e.kind.carries_value()
                && e.src != node
                && sched.placement(e.src).is_some()
                && !self.affected.contains(&e.src)
            {
                self.affected.push(e.src);
            }
        }
    }

    /// Whether placing `node` provably leaves producer `p`'s committed ranges
    /// untouched, *without* recomputing them: `node` sits in `p`'s own cluster (so
    /// the trial added no transfer out of `p`) and every value `node` reads from
    /// `p` is read no later than `p`'s current last local read.  `node`'s
    /// placement in `sched` is the trial one.
    fn pred_unchanged(
        &self,
        graph: &DepGraph,
        sched: &ModuloSchedule,
        node: NodeId,
        p: NodeId,
    ) -> bool {
        let (Some(np), Some(pp)) = (sched.placement(node), sched.placement(p)) else {
            return false;
        };
        if pp.cluster != np.cluster {
            return false;
        }
        let Some(prod) = self.ranges_of[p.index()].first() else {
            // No committed ranges: stays empty iff `p` defines no value.
            return !graph.node(p).class.defines_value();
        };
        let ii = self.ii as i64;
        graph
            .in_edges(node)
            .filter(|e| e.kind.carries_value() && e.src == p)
            .all(|e| np.cycle + e.distance as i64 * ii <= prod.end)
    }

    /// Register feasibility of a trial placement of `node` on `cluster`.
    ///
    /// `sched` must already hold the trial (node placed, transfers added) — the
    /// same convention as building a `LifetimeMap` over the trial schedule.
    /// Returns `(fits, max_live_in(cluster))` exactly as the full map would, then
    /// restores the tracker to the committed state.
    pub fn evaluate(
        &mut self,
        graph: &DepGraph,
        sched: &ModuloSchedule,
        node: NodeId,
        cluster: usize,
    ) -> (bool, u32) {
        debug_assert_eq!(sched.ii(), self.ii);
        let ii = self.ii;
        if self.prepared != Some(node) {
            self.collect_affected(graph, sched, node);
        }
        self.new_ranges.clear();
        self.swapped.clear();

        // Swap the affected producers' old ranges out, trial ranges in.  A producer
        // whose trial ranges equal its committed ranges (the common case: a local
        // consumer that reads before the producer's current last read) is skipped —
        // retract and re-add would cancel exactly.
        for idx in 0..self.affected.len() {
            let p = self.affected[idx];
            if p != node && self.pred_unchanged(graph, sched, node, p) {
                self.swapped.push(false);
                continue;
            }
            let start = self.new_ranges.len();
            push_producer_ranges(graph, sched, p, &mut self.remote, &mut self.new_ranges);
            let Self {
                pressure,
                overflow,
                ranges_of,
                new_ranges,
                registers,
                ..
            } = self;
            if new_ranges[start..] == ranges_of[p.index()][..] {
                new_ranges.truncate(start);
                self.swapped.push(false);
                continue;
            }
            self.swapped.push(true);
            apply_ranges::<false>(pressure, overflow, *registers, ii, &ranges_of[p.index()]);
            apply_ranges::<true>(pressure, overflow, *registers, ii, &new_ranges[start..]);
        }

        let fits = self.overflow == 0;
        let max_live = self.pressure[cluster * ii as usize..(cluster + 1) * ii as usize]
            .iter()
            .copied()
            .max()
            .unwrap_or(0);

        // Undo: the trial is not committed yet.
        {
            let Self {
                pressure,
                overflow,
                new_ranges,
                registers,
                ..
            } = self;
            apply_ranges::<false>(pressure, overflow, *registers, ii, new_ranges);
        }
        for idx in 0..self.affected.len() {
            if !self.swapped[idx] {
                continue;
            }
            let p = self.affected[idx];
            let Self {
                pressure,
                overflow,
                ranges_of,
                registers,
                ..
            } = self;
            apply_ranges::<true>(pressure, overflow, *registers, ii, &ranges_of[p.index()]);
        }

        (fits, max_live)
    }

    /// Fold a placement the engine just committed into the tracked state.
    ///
    /// `sched` holds the committed schedule (trial applied for real).
    pub fn commit(&mut self, graph: &DepGraph, sched: &ModuloSchedule, node: NodeId) {
        let ii = self.ii;
        self.prepared = None;
        self.collect_affected(graph, sched, node);
        for idx in 0..self.affected.len() {
            let p = self.affected[idx];
            if p != node && self.pred_unchanged(graph, sched, node, p) {
                continue;
            }
            self.new_ranges.clear();
            {
                let Self {
                    new_ranges, remote, ..
                } = self;
                push_producer_ranges(graph, sched, p, remote, new_ranges);
            }
            if self.new_ranges[..] == self.ranges_of[p.index()][..] {
                continue;
            }
            let Self {
                pressure,
                overflow,
                ranges_of,
                new_ranges,
                registers,
                ..
            } = self;
            apply_ranges::<false>(pressure, overflow, *registers, ii, &ranges_of[p.index()]);
            apply_ranges::<true>(pressure, overflow, *registers, ii, new_ranges);
            ranges_of[p.index()].clear();
            ranges_of[p.index()].extend_from_slice(new_ranges);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lifetime::LifetimeMap;
    use crate::schedule::{CommPlacement, PlacedOp};
    use vliw_arch::{FuKind, MachineConfig, OpClass, ResourcePool};
    use vliw_ddg::{DepGraph, DepKind};

    /// Drive the tracker through a hand-built placement sequence and check every
    /// evaluate() against a from-scratch LifetimeMap.
    #[test]
    fn tracker_matches_full_lifetime_map_across_commits() {
        let machine = MachineConfig::two_cluster(1, 2);
        let pool = ResourcePool::new(&machine);
        let mut g = DepGraph::new("chain");
        let a = g.add_node(OpClass::Load);
        let b = g.add_node(OpClass::FpAdd);
        let c = g.add_node(OpClass::FpMul);
        g.add_edge(a, b, 2, 0, DepKind::Flow);
        g.add_edge(b, c, 3, 1, DepKind::Flow);
        g.add_edge(a, c, 2, 0, DepKind::Flow);

        let ii = 6;
        let mut sched = ModuloSchedule::new("chain", 3, ii, 1);
        let mut tracker = PressureTracker::new();
        tracker.reset(&machine, g.n_nodes(), ii);

        let plan = [
            (a, 0i64, 0usize, FuKind::Mem, None),
            (b, 4, 1, FuKind::Fp, Some((a, 2i64, 2u32))),
            (c, 5, 0, FuKind::Fp, Some((b, 8, 1))),
        ];
        for (node, cycle, cluster, kind, comm) in plan {
            // Trial: apply, evaluate, compare, roll back.
            let cp = sched.checkpoint();
            if let Some((src, start, dur)) = comm {
                sched.add_comm(CommPlacement {
                    src_node: src,
                    dst_node: node,
                    from_cluster: sched.placement(src).unwrap().cluster,
                    to_cluster: cluster,
                    bus: pool.buses().next().unwrap(),
                    start_cycle: start,
                    duration: dur,
                });
            }
            sched.place(PlacedOp {
                node,
                cycle,
                cluster,
                fu: pool.fus(cluster, kind).next().unwrap(),
            });
            let (fits, max_live) = tracker.evaluate(&g, &sched, node, cluster);
            let lt = LifetimeMap::new(&g, &sched, &machine);
            assert_eq!(fits, lt.fits(&machine), "fits mismatch placing {node:?}");
            assert_eq!(
                max_live,
                lt.max_live_in(cluster),
                "max_live mismatch placing {node:?}"
            );
            sched.rollback(cp);

            // Now commit the same placement for real.
            if let Some((src, start, dur)) = comm {
                sched.add_comm(CommPlacement {
                    src_node: src,
                    dst_node: node,
                    from_cluster: sched.placement(src).unwrap().cluster,
                    to_cluster: cluster,
                    bus: pool.buses().next().unwrap(),
                    start_cycle: start,
                    duration: dur,
                });
            }
            sched.place(PlacedOp {
                node,
                cycle,
                cluster,
                fu: pool.fus(cluster, kind).next().unwrap(),
            });
            tracker.commit(&g, &sched, node);
        }

        // After all commits the tracked pressure equals the full map's.
        let lt = LifetimeMap::new(&g, &sched, &machine);
        for cl in 0..machine.n_clusters {
            assert_eq!(
                &tracker.pressure[cl * ii as usize..(cl + 1) * ii as usize],
                lt.pressure_of(cl),
                "committed pressure mismatch in cluster {cl}"
            );
        }
        assert_eq!(tracker.overflow, 0);
    }

    /// evaluate() must leave the committed state untouched even when the trial
    /// does not fit.
    #[test]
    fn evaluate_is_side_effect_free() {
        let machine = MachineConfig::four_cluster(1, 1);
        let pool = ResourcePool::new(&machine);
        let mut g = DepGraph::new("undo");
        let consumer = g.add_node(OpClass::FpAdd);
        let mut producers = Vec::new();
        for _ in 0..20 {
            let p = g.add_node(OpClass::Load);
            g.add_edge(p, consumer, 2, 0, DepKind::Flow);
            producers.push(p);
        }

        let ii = 1;
        let mut sched = ModuloSchedule::new("undo", g.n_nodes(), ii, 1);
        let mut tracker = PressureTracker::new();
        tracker.reset(&machine, g.n_nodes(), ii);
        for (i, &p) in producers.iter().enumerate() {
            sched.place(PlacedOp {
                node: p,
                cycle: i as i64 + 1,
                cluster: 0,
                fu: pool.fus(0, FuKind::Mem).next().unwrap(),
            });
            tracker.commit(&g, &sched, p);
        }
        let before = tracker.pressure.clone();
        let overflow_before = tracker.overflow;

        // Trial placing the consumer far out keeps all 20 producers live at once:
        // more than the 16 registers of a four_cluster machine.
        let cp = sched.checkpoint();
        sched.place(PlacedOp {
            node: consumer,
            cycle: 100,
            cluster: 0,
            fu: pool.fus(0, FuKind::Fp).next().unwrap(),
        });
        let (fits, _) = tracker.evaluate(&g, &sched, consumer, 0);
        sched.rollback(cp);
        assert!(!fits);
        assert_eq!(tracker.pressure, before);
        assert_eq!(tracker.overflow, overflow_before);
    }

    /// A committed state that itself overflows (possible only via tampered trials,
    /// which the fault-injection campaigns exercise) must still evaluate exactly
    /// like a from-scratch LifetimeMap.
    #[test]
    fn overflowing_committed_state_still_matches_the_full_map() {
        let machine = MachineConfig::four_cluster(1, 1); // 16 registers
        let pool = ResourcePool::new(&machine);
        let mut g = DepGraph::new("hostile");
        let consumer = g.add_node(OpClass::FpAdd);
        let mut producers = Vec::new();
        for _ in 0..20 {
            let p = g.add_node(OpClass::Load);
            g.add_edge(p, consumer, 2, 0, DepKind::Flow);
            producers.push(p);
        }
        let tail = g.add_node(OpClass::Store);
        g.add_edge(consumer, tail, 1, 0, DepKind::Flow);

        // Commit everything including the overflowing consumer placement — the
        // engine would normally have rejected it, a tampering policy would not.
        let ii = 1;
        let mut sched = ModuloSchedule::new("hostile", g.n_nodes(), ii, 1);
        let mut tracker = PressureTracker::new();
        tracker.reset(&machine, g.n_nodes(), ii);
        for (i, &p) in producers.iter().enumerate() {
            sched.place(PlacedOp {
                node: p,
                cycle: i as i64 + 1,
                cluster: 0,
                fu: pool.fus(0, FuKind::Mem).next().unwrap(),
            });
            tracker.commit(&g, &sched, p);
        }
        sched.place(PlacedOp {
            node: consumer,
            cycle: 100,
            cluster: 0,
            fu: pool.fus(0, FuKind::Fp).next().unwrap(),
        });
        tracker.commit(&g, &sched, consumer);
        assert!(tracker.overflow > 0);

        // A later trial in a *different* cluster must still report the overflow,
        // exactly as the whole-map check would.
        let cp = sched.checkpoint();
        sched.place(PlacedOp {
            node: tail,
            cycle: 101,
            cluster: 1,
            fu: pool.fus(1, FuKind::Mem).next().unwrap(),
        });
        let (fits, max_live) = tracker.evaluate(&g, &sched, tail, 1);
        let lt = LifetimeMap::new(&g, &sched, &machine);
        assert_eq!(fits, lt.fits(&machine));
        assert!(!fits);
        assert_eq!(max_live, lt.max_live_in(1));
        sched.rollback(cp);
    }
}
