//! The result of modulo scheduling a loop.

use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::fmt;
use vliw_arch::{
    ClusterInstruction, FuSlot, InBusField, MachineConfig, Operation, OutBusField, ResourceIndex,
    ResourceKind, ResourcePool, VliwInstruction, VliwProgram,
};
use vliw_ddg::{DepGraph, NodeId};

/// Why a loop could not be scheduled.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum ScheduleError {
    /// No legal schedule was found up to the maximum initiation interval explored.
    MaxIiExceeded {
        /// The minimum II the search started from.
        mii: u32,
        /// The last II that was attempted.
        max_ii_tried: u32,
    },
    /// The graph failed validation before scheduling was attempted.
    InvalidGraph(String),
}

impl fmt::Display for ScheduleError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ScheduleError::MaxIiExceeded { mii, max_ii_tried } => write!(
                f,
                "no schedule found: started at MII={mii}, gave up after II={max_ii_tried}"
            ),
            ScheduleError::InvalidGraph(msg) => write!(f, "invalid dependence graph: {msg}"),
        }
    }
}

impl std::error::Error for ScheduleError {}

/// Placement of one dependence-graph node.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct PlacedOp {
    /// The node.
    pub node: NodeId,
    /// Issue cycle within the flat (un-pipelined) schedule of one iteration.  May be
    /// any integer during construction; [`ModuloSchedule::normalize`] shifts the whole
    /// schedule so the earliest operation starts in cycle `[0, II)`.
    pub cycle: i64,
    /// The cluster the node executes in (always 0 on a unified machine).
    pub cluster: usize,
    /// The functional-unit row reserved for the node.
    pub fu: ResourceIndex,
}

/// Placement of one inter-cluster value communication.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct CommPlacement {
    /// The node whose value is transferred.
    pub src_node: NodeId,
    /// The node that consumes the value in another cluster.
    pub dst_node: NodeId,
    /// Cluster driving the bus.
    pub from_cluster: usize,
    /// Cluster reading the bus.
    pub to_cluster: usize,
    /// Which bus row was reserved.
    pub bus: ResourceIndex,
    /// Cycle at which the transfer starts (the bus stays busy for the whole bus
    /// latency starting here).
    pub start_cycle: i64,
    /// Duration of the transfer (the machine's bus latency).
    pub duration: u32,
}

/// A complete modulo schedule of one loop.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ModuloSchedule {
    /// Name of the scheduled loop (copied from the graph).
    pub loop_name: String,
    ii: u32,
    ops: Vec<Option<PlacedOp>>,
    comms: Vec<CommPlacement>,
    /// Whether the scheduler had to raise the II above MII because the communication
    /// buses were saturated (as opposed to FU or recurrence pressure).  This is the
    /// `LimitedByBus` predicate of the selective-unrolling algorithm (Figure 6).
    pub limited_by_bus: bool,
    /// The minimum II (max of ResMII and RecMII) of the loop on the target machine.
    pub mii: u32,
}

impl ModuloSchedule {
    /// An empty schedule with the given II for a graph of `n_nodes` nodes.
    pub fn new(loop_name: impl Into<String>, n_nodes: usize, ii: u32, mii: u32) -> Self {
        assert!(ii >= 1);
        Self {
            loop_name: loop_name.into(),
            ii,
            ops: vec![None; n_nodes],
            comms: Vec::new(),
            limited_by_bus: false,
            mii,
        }
    }

    /// The initiation interval.
    #[inline]
    pub fn ii(&self) -> u32 {
        self.ii
    }

    /// Record the placement of a node.
    pub fn place(&mut self, op: PlacedOp) {
        let idx = op.node.index();
        debug_assert!(self.ops[idx].is_none(), "node {} placed twice", op.node);
        self.ops[idx] = Some(op);
    }

    /// Remove the placement of a node (used when a tentative cluster assignment is
    /// rolled back).
    pub fn unplace(&mut self, node: NodeId) -> Option<PlacedOp> {
        self.ops[node.index()].take()
    }

    /// Record an inter-cluster communication.
    pub fn add_comm(&mut self, comm: CommPlacement) {
        self.comms.push(comm);
    }

    /// Remove the most recently added communications down to a previous count
    /// (rollback support for tentative placements).
    pub fn truncate_comms(&mut self, len: usize) {
        self.comms.truncate(len);
    }

    /// Number of communications recorded so far.
    pub fn n_comms(&self) -> usize {
        self.comms.len()
    }

    /// The placement of `node`, if it has been scheduled.
    #[inline]
    pub fn placement(&self, node: NodeId) -> Option<&PlacedOp> {
        self.ops[node.index()].as_ref()
    }

    /// Whether every node has been placed.
    pub fn is_complete(&self) -> bool {
        self.ops.iter().all(|o| o.is_some())
    }

    /// All placements, in node order.
    pub fn placements(&self) -> impl Iterator<Item = &PlacedOp> {
        self.ops.iter().flatten()
    }

    /// All communications.
    pub fn comms(&self) -> &[CommPlacement] {
        &self.comms
    }

    /// The cluster of `node`, if placed.
    pub fn cluster_of(&self, node: NodeId) -> Option<usize> {
        self.placement(node).map(|p| p.cluster)
    }

    /// Shift all cycles so the earliest placed operation (or communication) starts in
    /// `[0, II)`.  Keeps relative distances — and therefore legality — intact.
    pub fn normalize(&mut self) {
        let min_cycle = self
            .placements()
            .map(|p| p.cycle)
            .chain(self.comms.iter().map(|c| c.start_cycle))
            .min();
        let Some(min_cycle) = min_cycle else { return };
        let shift = min_cycle.div_euclid(self.ii as i64) * self.ii as i64;
        if shift == 0 {
            return;
        }
        for op in self.ops.iter_mut().flatten() {
            op.cycle -= shift;
        }
        for c in &mut self.comms {
            c.start_cycle -= shift;
        }
    }

    /// The stage count (`SC`): how many kernel iterations overlap, i.e. how many stages
    /// of `II` cycles the flat schedule of one iteration spans.
    ///
    /// The schedule must be normalized (all cycles ≥ 0); `stage_count` normalizes a
    /// copy if needed so it can be called on any complete schedule.
    pub fn stage_count(&self) -> u32 {
        let (min, max) = self.cycle_span();
        if max < min {
            return 1;
        }
        // All cycles shifted so min lands at stage 0.
        let span_end = max - min.div_euclid(self.ii as i64) * self.ii as i64;
        (span_end.div_euclid(self.ii as i64) + 1) as u32
    }

    /// Smallest and largest cycle used by any placement or communication completion.
    fn cycle_span(&self) -> (i64, i64) {
        let mut min = i64::MAX;
        let mut max = i64::MIN;
        for p in self.placements() {
            min = min.min(p.cycle);
            max = max.max(p.cycle);
        }
        for c in &self.comms {
            min = min.min(c.start_cycle);
            max = max.max(c.start_cycle + c.duration as i64 - 1);
        }
        if min == i64::MAX {
            (0, -1)
        } else {
            (min, max)
        }
    }

    /// Total cycles to execute the loop once, following Section 4 of the paper:
    /// `NCYCLES = (NITER + SC − 1) · II` (no stall term: the memory hierarchy is
    /// perfect in the evaluated configurations).
    pub fn cycles_for(&self, iterations: u64) -> u64 {
        let sc = self.stage_count() as u64;
        (iterations + sc - 1) * self.ii as u64
    }

    /// The stage (`cycle div II`) of a placed node, after normalization.
    pub fn stage_of(&self, node: NodeId) -> Option<u32> {
        let (min, _) = self.cycle_span();
        let base = min.div_euclid(self.ii as i64) * self.ii as i64;
        self.placement(node)
            .map(|p| ((p.cycle - base).div_euclid(self.ii as i64)) as u32)
    }

    /// Kernel row (`cycle mod II`) of a placed node.
    pub fn row_of(&self, node: NodeId) -> Option<u32> {
        self.placement(node)
            .map(|p| p.cycle.rem_euclid(self.ii as i64) as u32)
    }

    /// Emit the kernel as a [`VliwProgram`] of `II` instructions.
    ///
    /// Every placed node appears once, in the row `cycle mod II`, in the FU slot its
    /// reservation named; communications fill the `OUT BUS` field of the sending
    /// cluster at the transfer start row and the `IN BUS` field of the receiving
    /// cluster at the arrival row.
    pub fn kernel_program(&self, graph: &DepGraph, machine: &MachineConfig) -> VliwProgram {
        let pool = ResourcePool::new(machine);
        let slot_of = build_slot_map(&pool, machine);
        let ii = self.ii as usize;
        let mut instrs: Vec<VliwInstruction> =
            (0..ii).map(|_| VliwInstruction::nops(machine)).collect();
        for p in self.placements() {
            let row = p.cycle.rem_euclid(self.ii as i64) as usize;
            let stage = self.stage_of(p.node).unwrap_or(0);
            let slot = slot_of[&p.fu];
            let class = graph.node(p.node).class;
            instrs[row].clusters[p.cluster].slots[slot] =
                FuSlot::Op(Operation::new(p.node.0, class, stage));
        }
        for c in &self.comms {
            let bus_no = match pool.kind(c.bus) {
                ResourceKind::Bus { bus } => bus,
                ResourceKind::Fu { .. } => continue,
            };
            let start_row = c.start_cycle.rem_euclid(self.ii as i64) as usize;
            let arrive_row =
                (c.start_cycle + c.duration as i64).rem_euclid(self.ii as i64) as usize;
            let stage = self.stage_of(c.src_node).unwrap_or(0);
            let sender: &mut ClusterInstruction = &mut instrs[start_row].clusters[c.from_cluster];
            if sender.out_bus.is_none() {
                sender.out_bus = Some(OutBusField {
                    bus: bus_no,
                    node: c.src_node.0,
                    stage,
                });
            }
            let receiver: &mut ClusterInstruction = &mut instrs[arrive_row].clusters[c.to_cluster];
            if receiver.in_bus.is_none() {
                receiver.in_bus = Some(InBusField {
                    bus: bus_no,
                    node: c.src_node.0,
                });
            }
        }
        VliwProgram {
            instructions: instrs,
        }
    }

    /// Emit the complete software-pipelined code (prologue, kernel, epilogue) for a
    /// loop that runs `iterations` times, as a flat [`VliwProgram`].
    ///
    /// The expansion simply replays the flat one-iteration schedule `iterations` times,
    /// offset by `II` cycles each, which is exactly what the hardware executes; it is
    /// used by the code-size model (prologue and epilogue are `(SC − 1) · II` cycles
    /// each) and by tests that cross-check cycle counts.
    pub fn expanded_program(
        &self,
        graph: &DepGraph,
        machine: &MachineConfig,
        iterations: u64,
    ) -> VliwProgram {
        let pool = ResourcePool::new(machine);
        let slot_of = build_slot_map(&pool, machine);
        let (min_cycle, max_cycle) = self.cycle_span();
        if max_cycle < min_cycle {
            return VliwProgram::new();
        }
        let span = (max_cycle - min_cycle + 1) as u64;
        let total_cycles = span + (iterations.saturating_sub(1)) * self.ii as u64;
        let mut prog = VliwProgram::nops(machine, total_cycles as usize);
        for iter in 0..iterations {
            let offset = iter as i64 * self.ii as i64 - min_cycle;
            for p in self.placements() {
                let cycle = (p.cycle + offset) as usize;
                let slot = slot_of[&p.fu];
                let class = graph.node(p.node).class;
                let stage = self.stage_of(p.node).unwrap_or(0);
                let slot_ref = &mut prog.instructions[cycle].clusters[p.cluster].slots[slot];
                debug_assert!(
                    !slot_ref.is_useful(),
                    "expanded schedule overlaps itself at cycle {cycle}"
                );
                *slot_ref = FuSlot::Op(Operation::new(p.node.0, class, stage));
            }
        }
        prog
    }

    /// A short human-readable summary (II, SC, #comms).
    pub fn summary(&self) -> String {
        format!(
            "{}: II={} (MII={}), SC={}, comms={}{}",
            self.loop_name,
            self.ii,
            self.mii,
            self.stage_count(),
            self.comms.len(),
            if self.limited_by_bus {
                ", bus-limited"
            } else {
                ""
            }
        )
    }
}

/// Map every functional-unit resource row to its slot index within its cluster's
/// instruction (`ClusterInstruction::slots` layout).
fn build_slot_map(pool: &ResourcePool, machine: &MachineConfig) -> HashMap<ResourceIndex, usize> {
    let mut map = HashMap::new();
    for cluster in machine.clusters() {
        let mut slot = 0usize;
        for kind in vliw_arch::FuKind::ALL {
            for idx in pool.fus(cluster, kind) {
                map.insert(idx, slot);
                slot += 1;
            }
        }
    }
    map
}

#[cfg(test)]
mod tests {
    use super::*;
    use vliw_arch::{FuKind, OpClass};
    use vliw_ddg::DepKind;

    fn tiny_graph() -> DepGraph {
        let mut g = DepGraph::new("tiny");
        let a = g.add_node(OpClass::Load);
        let b = g.add_node(OpClass::FpAdd);
        g.add_edge(a, b, 2, 0, DepKind::Flow);
        g
    }

    fn place_tiny(machine: &MachineConfig) -> ModuloSchedule {
        let pool = ResourcePool::new(machine);
        let mut s = ModuloSchedule::new("tiny", 2, 2, 2);
        s.place(PlacedOp {
            node: NodeId(0),
            cycle: 0,
            cluster: 0,
            fu: pool.fus(0, FuKind::Mem).next().unwrap(),
        });
        s.place(PlacedOp {
            node: NodeId(1),
            cycle: 2,
            cluster: 0,
            fu: pool.fus(0, FuKind::Fp).next().unwrap(),
        });
        s
    }

    #[test]
    fn stage_count_and_cycles() {
        let machine = MachineConfig::unified();
        let s = place_tiny(&machine);
        // cycles 0 and 2 with II=2 -> 2 stages
        assert_eq!(s.stage_count(), 2);
        // NCYCLES = (100 + 2 - 1) * 2
        assert_eq!(s.cycles_for(100), 202);
        assert_eq!(s.stage_of(NodeId(0)), Some(0));
        assert_eq!(s.stage_of(NodeId(1)), Some(1));
        assert_eq!(s.row_of(NodeId(1)), Some(0));
    }

    #[test]
    fn normalize_shifts_negative_cycles_into_range() {
        let machine = MachineConfig::unified();
        let pool = ResourcePool::new(&machine);
        let mut s = ModuloSchedule::new("neg", 2, 3, 1);
        s.place(PlacedOp {
            node: NodeId(0),
            cycle: -5,
            cluster: 0,
            fu: pool.fus(0, FuKind::Int).next().unwrap(),
        });
        s.place(PlacedOp {
            node: NodeId(1),
            cycle: -2,
            cluster: 0,
            fu: pool.fus(0, FuKind::Fp).next().unwrap(),
        });
        s.normalize();
        let c0 = s.placement(NodeId(0)).unwrap().cycle;
        let c1 = s.placement(NodeId(1)).unwrap().cycle;
        assert!((0..3).contains(&c0), "c0 = {c0}");
        assert_eq!(c1 - c0, 3); // relative distance preserved
    }

    #[test]
    fn kernel_program_has_ii_rows_and_all_ops() {
        let machine = MachineConfig::unified();
        let g = tiny_graph();
        let s = place_tiny(&machine);
        let kernel = s.kernel_program(&g, &machine);
        assert_eq!(kernel.len(), 2);
        assert_eq!(kernel.useful_ops(), 2);
    }

    #[test]
    fn kernel_program_emits_bus_fields() {
        let machine = MachineConfig::two_cluster(1, 1);
        let pool = ResourcePool::new(&machine);
        let g = tiny_graph();
        let mut s = ModuloSchedule::new("comm", 2, 2, 2);
        s.place(PlacedOp {
            node: NodeId(0),
            cycle: 0,
            cluster: 0,
            fu: pool.fus(0, FuKind::Mem).next().unwrap(),
        });
        s.place(PlacedOp {
            node: NodeId(1),
            cycle: 3,
            cluster: 1,
            fu: pool.fus(1, FuKind::Fp).next().unwrap(),
        });
        s.add_comm(CommPlacement {
            src_node: NodeId(0),
            dst_node: NodeId(1),
            from_cluster: 0,
            to_cluster: 1,
            bus: pool.buses().next().unwrap(),
            start_cycle: 2,
            duration: 1,
        });
        let kernel = s.kernel_program(&g, &machine);
        let senders: Vec<_> = kernel
            .instructions
            .iter()
            .flat_map(|i| i.clusters.iter())
            .filter(|c| c.out_bus.is_some())
            .collect();
        assert_eq!(senders.len(), 1);
        let receivers: Vec<_> = kernel
            .instructions
            .iter()
            .flat_map(|i| i.clusters.iter())
            .filter(|c| c.in_bus.is_some())
            .collect();
        assert_eq!(receivers.len(), 1);
    }

    #[test]
    fn expanded_program_counts_iterations() {
        let machine = MachineConfig::unified();
        let g = tiny_graph();
        let s = place_tiny(&machine);
        let iterations = 10u64;
        let prog = s.expanded_program(&g, &machine, iterations);
        // Every node issued once per iteration.
        assert_eq!(prog.useful_ops() as u64, 2 * iterations);
        // Length: span (3 cycles: 0..=2) + (niter-1)*II
        assert_eq!(prog.len() as u64, 3 + 9 * 2);
    }

    #[test]
    fn unplace_and_rollback_comms() {
        let machine = MachineConfig::two_cluster(1, 1);
        let pool = ResourcePool::new(&machine);
        let mut s = ModuloSchedule::new("rb", 2, 2, 2);
        s.place(PlacedOp {
            node: NodeId(0),
            cycle: 0,
            cluster: 0,
            fu: pool.fus(0, FuKind::Int).next().unwrap(),
        });
        let before = s.n_comms();
        s.add_comm(CommPlacement {
            src_node: NodeId(0),
            dst_node: NodeId(1),
            from_cluster: 0,
            to_cluster: 1,
            bus: pool.buses().next().unwrap(),
            start_cycle: 1,
            duration: 1,
        });
        assert_eq!(s.n_comms(), before + 1);
        s.truncate_comms(before);
        assert_eq!(s.n_comms(), before);
        assert!(s.unplace(NodeId(0)).is_some());
        assert!(s.placement(NodeId(0)).is_none());
        assert!(!s.is_complete());
    }

    #[test]
    fn incomplete_schedule_reports_incomplete() {
        let s = ModuloSchedule::new("inc", 3, 2, 2);
        assert!(!s.is_complete());
        assert_eq!(s.stage_count(), 1);
        assert_eq!(s.cycles_for(10), (10 + 1 - 1) * 2);
    }

    #[test]
    fn error_display() {
        let e = ScheduleError::MaxIiExceeded {
            mii: 4,
            max_ii_tried: 64,
        };
        assert!(e.to_string().contains("MII=4"));
        let e2 = ScheduleError::InvalidGraph("bad".into());
        assert!(e2.to_string().contains("bad"));
    }

    #[test]
    fn summary_mentions_bus_limitation() {
        let machine = MachineConfig::unified();
        let mut s = place_tiny(&machine);
        assert!(!s.summary().contains("bus-limited"));
        s.limited_by_bus = true;
        assert!(s.summary().contains("bus-limited"));
    }
}
