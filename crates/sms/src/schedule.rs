//! The result of modulo scheduling a loop.

use serde::{Deserialize, Serialize};
use std::fmt;
use vliw_arch::{
    ClusterInstruction, FuSlot, InBusField, MachineConfig, Operation, OutBusField, ResourceIndex,
    ResourceKind, ResourcePool, VliwInstruction, VliwProgram,
};
use vliw_ddg::{DepGraph, NodeId};

/// Why a loop could not be scheduled — the full failure taxonomy of the scheduling
/// path.  Every variant is a *typed* outcome: the engine and the schedulers built on
/// it never panic on reachable inputs, they return one of these.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum ScheduleError {
    /// No legal schedule was found up to the maximum initiation interval explored.
    MaxIiExceeded {
        /// The minimum II the search started from.
        mii: u32,
        /// The last II that was attempted.
        max_ii_tried: u32,
    },
    /// The graph failed validation before scheduling was attempted.
    InvalidGraph(String),
    /// The graph passed validation but a structural analysis (node ordering) could
    /// not process it — a defensive error for inputs outside every analysed shape.
    DegenerateGraph(String),
    /// The machine configuration cannot execute this graph at all (e.g. the graph
    /// uses a functional-unit kind the machine has zero units of).
    InvalidMachine(String),
    /// The fuel budget ran out before a schedule was found (see
    /// [`crate::fuel::FuelBudget`]); carries the exact counters at exhaustion.
    BudgetExhausted {
        /// The minimum II the search started from.
        mii: u32,
        /// The II being explored when the budget ran out.
        at_ii: u32,
        /// Fuel consumed up to the stop.
        spent: crate::fuel::FuelSpent,
    },
    /// The optional wall-clock deadline expired before a schedule was found (service
    /// use; unlike [`ScheduleError::BudgetExhausted`] this is not deterministic).
    DeadlineExpired {
        /// The II being explored when the deadline fired.
        at_ii: u32,
    },
    /// A cluster policy panicked and the panic was contained at a scheduling
    /// boundary (see [`crate::containment::contain`]).
    PolicyPanic {
        /// The contained panic message.
        message: String,
    },
    /// A policy returned a trial the engine could prove malformed (wrong node, a
    /// cluster or resource row outside the machine) — the engine refuses to commit
    /// fabricated placements instead of corrupting the reservation table.
    RoguePolicy(String),
}

impl fmt::Display for ScheduleError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ScheduleError::MaxIiExceeded { mii, max_ii_tried } => write!(
                f,
                "no schedule found: started at MII={mii}, gave up after II={max_ii_tried}"
            ),
            ScheduleError::InvalidGraph(msg) => write!(f, "invalid dependence graph: {msg}"),
            ScheduleError::DegenerateGraph(msg) => write!(f, "degenerate graph: {msg}"),
            ScheduleError::InvalidMachine(msg) => write!(f, "invalid machine: {msg}"),
            ScheduleError::BudgetExhausted { mii, at_ii, spent } => write!(
                f,
                "fuel budget exhausted at II={at_ii} (MII={mii}) after {} probes, {} attempts, {} II steps",
                spent.probes, spent.attempts, spent.ii_steps
            ),
            ScheduleError::DeadlineExpired { at_ii } => {
                write!(f, "wall-clock deadline expired at II={at_ii}")
            }
            ScheduleError::PolicyPanic { message } => {
                write!(f, "cluster policy panicked (contained): {message}")
            }
            ScheduleError::RoguePolicy(msg) => {
                write!(f, "policy returned a malformed trial: {msg}")
            }
        }
    }
}

impl std::error::Error for ScheduleError {}

/// Placement of one dependence-graph node.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct PlacedOp {
    /// The node.
    pub node: NodeId,
    /// Issue cycle within the flat (un-pipelined) schedule of one iteration.  May be
    /// any integer during construction; [`ModuloSchedule::normalize`] shifts the whole
    /// schedule so the earliest operation starts in cycle `[0, II)`.
    pub cycle: i64,
    /// The cluster the node executes in (always 0 on a unified machine).
    pub cluster: usize,
    /// The functional-unit row reserved for the node.
    pub fu: ResourceIndex,
}

/// Placement of one inter-cluster value communication.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct CommPlacement {
    /// The node whose value is transferred.
    pub src_node: NodeId,
    /// The node that consumes the value in another cluster.
    pub dst_node: NodeId,
    /// Cluster driving the bus.
    pub from_cluster: usize,
    /// Cluster reading the bus.
    pub to_cluster: usize,
    /// Which bus row was reserved.
    pub bus: ResourceIndex,
    /// Cycle at which the transfer starts (the bus stays busy for the whole bus
    /// latency starting here).
    pub start_cycle: i64,
    /// Duration of the transfer (the machine's bus latency).
    pub duration: u32,
}

/// A lightweight marker of a schedule's state, taken before a tentative placement and
/// handed back to [`ModuloSchedule::rollback`] to undo everything recorded since.
///
/// Checkpoints are plain counters into the schedule's append-only state (the
/// communication list and the placement journal), so taking one allocates nothing and
/// rolling back only pops — this is what lets the cluster schedulers trial a node on
/// every cluster without deep-cloning the schedule per trial.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ScheduleCheckpoint {
    n_comms: usize,
    n_placed: usize,
}

/// A complete modulo schedule of one loop.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ModuloSchedule {
    /// Name of the scheduled loop (copied from the graph).
    pub loop_name: String,
    ii: u32,
    ops: Vec<Option<PlacedOp>>,
    comms: Vec<CommPlacement>,
    /// Journal of placements in the order they were made; [`ModuloSchedule::rollback`]
    /// pops it to undo tentative placements without cloning the schedule.
    placed_log: Vec<NodeId>,
    /// Whether the scheduler had to raise the II above MII because the communication
    /// buses were saturated (as opposed to FU or recurrence pressure).  This is the
    /// `LimitedByBus` predicate of the selective-unrolling algorithm (Figure 6).
    pub limited_by_bus: bool,
    /// The minimum II (max of ResMII and RecMII) of the loop on the target machine.
    pub mii: u32,
}

impl ModuloSchedule {
    /// An empty schedule with the given II for a graph of `n_nodes` nodes.
    pub fn new(loop_name: impl Into<String>, n_nodes: usize, ii: u32, mii: u32) -> Self {
        assert!(ii >= 1);
        Self {
            loop_name: loop_name.into(),
            ii,
            ops: vec![None; n_nodes],
            comms: Vec::new(),
            placed_log: Vec::with_capacity(n_nodes),
            limited_by_bus: false,
            mii,
        }
    }

    /// The initiation interval.
    #[inline]
    pub fn ii(&self) -> u32 {
        self.ii
    }

    /// Record the placement of a node.
    pub fn place(&mut self, op: PlacedOp) {
        let idx = op.node.index();
        debug_assert!(self.ops[idx].is_none(), "node {} placed twice", op.node);
        self.ops[idx] = Some(op);
        self.placed_log.push(op.node);
    }

    /// Capture the current state so a tentative placement (any number of
    /// [`ModuloSchedule::place`] and [`ModuloSchedule::add_comm`] calls) can be undone
    /// with [`ModuloSchedule::rollback`].  Allocation-free.
    #[inline]
    pub fn checkpoint(&self) -> ScheduleCheckpoint {
        ScheduleCheckpoint {
            n_comms: self.comms.len(),
            n_placed: self.placed_log.len(),
        }
    }

    /// Undo every placement and communication recorded since `cp` was taken, leaving
    /// the schedule exactly as it was at the checkpoint (including the journal, so a
    /// rolled-back schedule compares equal to a clone taken at checkpoint time).
    pub fn rollback(&mut self, cp: ScheduleCheckpoint) {
        debug_assert!(
            cp.n_comms <= self.comms.len() && cp.n_placed <= self.placed_log.len(),
            "rollback to a checkpoint from the future"
        );
        self.comms.truncate(cp.n_comms);
        while self.placed_log.len() > cp.n_placed {
            let node = self.placed_log.pop().expect("journal length checked");
            self.ops[node.index()] = None;
        }
    }

    /// Record an inter-cluster communication.
    pub fn add_comm(&mut self, comm: CommPlacement) {
        self.comms.push(comm);
    }

    /// Number of communications recorded so far.
    pub fn n_comms(&self) -> usize {
        self.comms.len()
    }

    /// The placement of `node`, if it has been scheduled.
    #[inline]
    pub fn placement(&self, node: NodeId) -> Option<&PlacedOp> {
        self.ops[node.index()].as_ref()
    }

    /// Whether every node has been placed.
    pub fn is_complete(&self) -> bool {
        self.ops.iter().all(std::option::Option::is_some)
    }

    /// All placements, in node order.
    pub fn placements(&self) -> impl Iterator<Item = &PlacedOp> {
        self.ops.iter().flatten()
    }

    /// All communications.
    pub fn comms(&self) -> &[CommPlacement] {
        &self.comms
    }

    /// The cluster of `node`, if placed.
    pub fn cluster_of(&self, node: NodeId) -> Option<usize> {
        self.placement(node).map(|p| p.cluster)
    }

    /// Shift all cycles so the earliest placed operation (or communication) starts in
    /// `[0, II)`.  Keeps relative distances — and therefore legality — intact.
    pub fn normalize(&mut self) {
        let min_cycle = self
            .placements()
            .map(|p| p.cycle)
            .chain(self.comms.iter().map(|c| c.start_cycle))
            .min();
        let Some(min_cycle) = min_cycle else { return };
        let shift = min_cycle.div_euclid(self.ii as i64) * self.ii as i64;
        if shift == 0 {
            return;
        }
        for op in self.ops.iter_mut().flatten() {
            op.cycle -= shift;
        }
        for c in &mut self.comms {
            c.start_cycle -= shift;
        }
    }

    /// The stage count (`SC`): how many kernel iterations overlap, i.e. how many stages
    /// of `II` cycles the flat schedule of one iteration spans.
    ///
    /// The schedule must be normalized (all cycles ≥ 0); `stage_count` normalizes a
    /// copy if needed so it can be called on any complete schedule.
    pub fn stage_count(&self) -> u32 {
        let (min, max) = self.cycle_span();
        if max < min {
            return 1;
        }
        // All cycles shifted so min lands at stage 0.
        let span_end = max - min.div_euclid(self.ii as i64) * self.ii as i64;
        (span_end.div_euclid(self.ii as i64) + 1) as u32
    }

    /// Smallest and largest cycle used by any placement or communication completion.
    fn cycle_span(&self) -> (i64, i64) {
        let mut min = i64::MAX;
        let mut max = i64::MIN;
        for p in self.placements() {
            min = min.min(p.cycle);
            max = max.max(p.cycle);
        }
        for c in &self.comms {
            min = min.min(c.start_cycle);
            max = max.max(c.start_cycle + c.duration as i64 - 1);
        }
        if min == i64::MAX {
            (0, -1)
        } else {
            (min, max)
        }
    }

    /// Total cycles to execute the loop once, following Section 4 of the paper:
    /// `NCYCLES = (NITER + SC − 1) · II` (no stall term: the memory hierarchy is
    /// perfect in the evaluated configurations).
    pub fn cycles_for(&self, iterations: u64) -> u64 {
        let sc = self.stage_count() as u64;
        (iterations + sc - 1) * self.ii as u64
    }

    /// The stage (`cycle div II`) of a placed node, after normalization.
    pub fn stage_of(&self, node: NodeId) -> Option<u32> {
        let (min, _) = self.cycle_span();
        let base = min.div_euclid(self.ii as i64) * self.ii as i64;
        self.placement(node)
            .map(|p| ((p.cycle - base).div_euclid(self.ii as i64)) as u32)
    }

    /// Kernel row (`cycle mod II`) of a placed node.
    pub fn row_of(&self, node: NodeId) -> Option<u32> {
        self.placement(node)
            .map(|p| p.cycle.rem_euclid(self.ii as i64) as u32)
    }

    /// Emit the kernel as a [`VliwProgram`] of `II` instructions.
    ///
    /// Every placed node appears once, in the row `cycle mod II`, in the FU slot its
    /// reservation named; communications fill the `OUT BUS` field of the sending
    /// cluster at the transfer start row and the `IN BUS` field of the receiving
    /// cluster at the arrival row.
    pub fn kernel_program(&self, graph: &DepGraph, machine: &MachineConfig) -> VliwProgram {
        let pool = ResourcePool::new(machine);
        let slot_of = SlotMap::new(&pool, machine);
        let ii = self.ii as usize;
        let mut instrs: Vec<VliwInstruction> =
            (0..ii).map(|_| VliwInstruction::nops(machine)).collect();
        for p in self.placements() {
            let row = p.cycle.rem_euclid(self.ii as i64) as usize;
            let stage = self.stage_of(p.node).unwrap_or(0);
            let slot = slot_of.slot(p.fu);
            let class = graph.node(p.node).class;
            instrs[row].clusters[p.cluster].slots[slot] =
                FuSlot::Op(Operation::new(p.node.0, class, stage));
        }
        for c in &self.comms {
            let bus_no = match pool.kind(c.bus) {
                ResourceKind::Bus { bus } => bus,
                ResourceKind::Fu { .. } => continue,
            };
            let start_row = c.start_cycle.rem_euclid(self.ii as i64) as usize;
            let arrive_row =
                (c.start_cycle + c.duration as i64).rem_euclid(self.ii as i64) as usize;
            let stage = self.stage_of(c.src_node).unwrap_or(0);
            let sender: &mut ClusterInstruction = &mut instrs[start_row].clusters[c.from_cluster];
            if sender.out_bus.is_none() {
                sender.out_bus = Some(OutBusField {
                    bus: bus_no,
                    node: c.src_node.0,
                    stage,
                });
            }
            let receiver: &mut ClusterInstruction = &mut instrs[arrive_row].clusters[c.to_cluster];
            if receiver.in_bus.is_none() {
                receiver.in_bus = Some(InBusField {
                    bus: bus_no,
                    node: c.src_node.0,
                });
            }
        }
        VliwProgram {
            instructions: instrs,
        }
    }

    /// Emit the complete software-pipelined code (prologue, kernel, epilogue) for a
    /// loop that runs `iterations` times, as a flat [`VliwProgram`].
    ///
    /// The expansion simply replays the flat one-iteration schedule `iterations` times,
    /// offset by `II` cycles each, which is exactly what the hardware executes; it is
    /// used by the code-size model (prologue and epilogue are `(SC − 1) · II` cycles
    /// each) and by tests that cross-check cycle counts.
    pub fn expanded_program(
        &self,
        graph: &DepGraph,
        machine: &MachineConfig,
        iterations: u64,
    ) -> VliwProgram {
        let pool = ResourcePool::new(machine);
        let slot_of = SlotMap::new(&pool, machine);
        let (min_cycle, max_cycle) = self.cycle_span();
        if max_cycle < min_cycle {
            return VliwProgram::new();
        }
        let span = (max_cycle - min_cycle + 1) as u64;
        let total_cycles = span + (iterations.saturating_sub(1)) * self.ii as u64;
        let mut prog = VliwProgram::nops(machine, total_cycles as usize);
        for iter in 0..iterations {
            let offset = iter as i64 * self.ii as i64 - min_cycle;
            for p in self.placements() {
                let cycle = (p.cycle + offset) as usize;
                let slot = slot_of.slot(p.fu);
                let class = graph.node(p.node).class;
                let stage = self.stage_of(p.node).unwrap_or(0);
                let slot_ref = &mut prog.instructions[cycle].clusters[p.cluster].slots[slot];
                debug_assert!(
                    !slot_ref.is_useful(),
                    "expanded schedule overlaps itself at cycle {cycle}"
                );
                *slot_ref = FuSlot::Op(Operation::new(p.node.0, class, stage));
            }
        }
        prog
    }

    /// A short human-readable summary (II, SC, #comms).
    pub fn summary(&self) -> String {
        format!(
            "{}: II={} (MII={}), SC={}, comms={}{}",
            self.loop_name,
            self.ii,
            self.mii,
            self.stage_count(),
            self.comms.len(),
            if self.limited_by_bus {
                ", bus-limited"
            } else {
                ""
            }
        )
    }
}

/// Dense map from a functional-unit resource row to its slot index within its
/// cluster's instruction (`ClusterInstruction::slots` layout).
///
/// Resource rows are contiguous small integers, so a `Vec` indexed by
/// [`ResourceIndex`] replaces the former per-emission `HashMap`: one bounds-checked
/// load per placed operation instead of a hash per lookup.  Build it once per machine
/// configuration and reuse it across emissions.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SlotMap {
    /// `slots[resource]` = slot index; `usize::MAX` for rows that are not functional
    /// units (buses never carry an FU slot).
    slots: Vec<usize>,
}

impl SlotMap {
    /// The slot map of `machine` (whose resource rows are enumerated by `pool`).
    pub fn new(pool: &ResourcePool, machine: &MachineConfig) -> Self {
        let mut slots = vec![usize::MAX; pool.len()];
        for cluster in machine.clusters() {
            let mut slot = 0usize;
            for kind in vliw_arch::FuKind::ALL {
                for idx in pool.fus(cluster, kind) {
                    slots[idx.0] = slot;
                    slot += 1;
                }
            }
        }
        Self { slots }
    }

    /// The slot index of functional-unit row `fu`; panics if `fu` is not an FU row.
    #[inline]
    pub fn slot(&self, fu: ResourceIndex) -> usize {
        let s = self.slots[fu.0];
        debug_assert!(s != usize::MAX, "{fu} is not a functional-unit row");
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vliw_arch::{FuKind, OpClass};
    use vliw_ddg::DepKind;

    fn tiny_graph() -> DepGraph {
        let mut g = DepGraph::new("tiny");
        let a = g.add_node(OpClass::Load);
        let b = g.add_node(OpClass::FpAdd);
        g.add_edge(a, b, 2, 0, DepKind::Flow);
        g
    }

    fn place_tiny(machine: &MachineConfig) -> ModuloSchedule {
        let pool = ResourcePool::new(machine);
        let mut s = ModuloSchedule::new("tiny", 2, 2, 2);
        s.place(PlacedOp {
            node: NodeId(0),
            cycle: 0,
            cluster: 0,
            fu: pool.fus(0, FuKind::Mem).next().unwrap(),
        });
        s.place(PlacedOp {
            node: NodeId(1),
            cycle: 2,
            cluster: 0,
            fu: pool.fus(0, FuKind::Fp).next().unwrap(),
        });
        s
    }

    #[test]
    fn stage_count_and_cycles() {
        let machine = MachineConfig::unified();
        let s = place_tiny(&machine);
        // cycles 0 and 2 with II=2 -> 2 stages
        assert_eq!(s.stage_count(), 2);
        // NCYCLES = (100 + 2 - 1) * 2
        assert_eq!(s.cycles_for(100), 202);
        assert_eq!(s.stage_of(NodeId(0)), Some(0));
        assert_eq!(s.stage_of(NodeId(1)), Some(1));
        assert_eq!(s.row_of(NodeId(1)), Some(0));
    }

    #[test]
    fn normalize_shifts_negative_cycles_into_range() {
        let machine = MachineConfig::unified();
        let pool = ResourcePool::new(&machine);
        let mut s = ModuloSchedule::new("neg", 2, 3, 1);
        s.place(PlacedOp {
            node: NodeId(0),
            cycle: -5,
            cluster: 0,
            fu: pool.fus(0, FuKind::Int).next().unwrap(),
        });
        s.place(PlacedOp {
            node: NodeId(1),
            cycle: -2,
            cluster: 0,
            fu: pool.fus(0, FuKind::Fp).next().unwrap(),
        });
        s.normalize();
        let c0 = s.placement(NodeId(0)).unwrap().cycle;
        let c1 = s.placement(NodeId(1)).unwrap().cycle;
        assert!((0..3).contains(&c0), "c0 = {c0}");
        assert_eq!(c1 - c0, 3); // relative distance preserved
    }

    #[test]
    fn kernel_program_has_ii_rows_and_all_ops() {
        let machine = MachineConfig::unified();
        let g = tiny_graph();
        let s = place_tiny(&machine);
        let kernel = s.kernel_program(&g, &machine);
        assert_eq!(kernel.len(), 2);
        assert_eq!(kernel.useful_ops(), 2);
    }

    #[test]
    fn kernel_program_emits_bus_fields() {
        let machine = MachineConfig::two_cluster(1, 1);
        let pool = ResourcePool::new(&machine);
        let g = tiny_graph();
        let mut s = ModuloSchedule::new("comm", 2, 2, 2);
        s.place(PlacedOp {
            node: NodeId(0),
            cycle: 0,
            cluster: 0,
            fu: pool.fus(0, FuKind::Mem).next().unwrap(),
        });
        s.place(PlacedOp {
            node: NodeId(1),
            cycle: 3,
            cluster: 1,
            fu: pool.fus(1, FuKind::Fp).next().unwrap(),
        });
        s.add_comm(CommPlacement {
            src_node: NodeId(0),
            dst_node: NodeId(1),
            from_cluster: 0,
            to_cluster: 1,
            bus: pool.buses().next().unwrap(),
            start_cycle: 2,
            duration: 1,
        });
        let kernel = s.kernel_program(&g, &machine);
        let senders: Vec<_> = kernel
            .instructions
            .iter()
            .flat_map(|i| i.clusters.iter())
            .filter(|c| c.out_bus.is_some())
            .collect();
        assert_eq!(senders.len(), 1);
        let receivers: Vec<_> = kernel
            .instructions
            .iter()
            .flat_map(|i| i.clusters.iter())
            .filter(|c| c.in_bus.is_some())
            .collect();
        assert_eq!(receivers.len(), 1);
    }

    #[test]
    fn expanded_program_counts_iterations() {
        let machine = MachineConfig::unified();
        let g = tiny_graph();
        let s = place_tiny(&machine);
        let iterations = 10u64;
        let prog = s.expanded_program(&g, &machine, iterations);
        // Every node issued once per iteration.
        assert_eq!(prog.useful_ops() as u64, 2 * iterations);
        // Length: span (3 cycles: 0..=2) + (niter-1)*II
        assert_eq!(prog.len() as u64, 3 + 9 * 2);
    }

    #[test]
    fn checkpoint_rollback_restores_the_exact_schedule() {
        let machine = MachineConfig::two_cluster(1, 1);
        let pool = ResourcePool::new(&machine);
        // Node 0 committed, node 1 still open — exactly the state BSA trials from.
        let mut s = ModuloSchedule::new("rb", 2, 2, 2);
        s.place(PlacedOp {
            node: NodeId(0),
            cycle: 0,
            cluster: 0,
            fu: pool.fus(0, FuKind::Mem).next().unwrap(),
        });
        let before = s.clone();
        let cp = s.checkpoint();
        // A tentative trial: one comm plus the placement of node 1.
        s.add_comm(CommPlacement {
            src_node: NodeId(0),
            dst_node: NodeId(1),
            from_cluster: 0,
            to_cluster: 1,
            bus: pool.buses().next().unwrap(),
            start_cycle: 1,
            duration: 1,
        });
        s.place(PlacedOp {
            node: NodeId(1),
            cycle: 5,
            cluster: 1,
            fu: pool.fus(1, FuKind::Fp).next().unwrap(),
        });
        assert_ne!(s, before);
        assert!(s.is_complete());
        // Rollback restores the pre-trial state bit-for-bit...
        s.rollback(cp);
        assert!(s.placement(NodeId(1)).is_none());
        assert!(!s.is_complete());
        assert_eq!(s, before);
        // ...and nested checkpoints unwind independently.
        let outer = s.checkpoint();
        s.place(PlacedOp {
            node: NodeId(1),
            cycle: 2,
            cluster: 0,
            fu: pool.fus(0, FuKind::Fp).next().unwrap(),
        });
        let inner = s.checkpoint();
        s.add_comm(CommPlacement {
            src_node: NodeId(1),
            dst_node: NodeId(0),
            from_cluster: 0,
            to_cluster: 1,
            bus: pool.buses().next().unwrap(),
            start_cycle: 3,
            duration: 1,
        });
        s.rollback(inner);
        assert!(s.placement(NodeId(1)).is_some());
        assert_eq!(s.n_comms(), 0);
        s.rollback(outer);
        assert_eq!(s, before);
    }

    #[test]
    fn rollback_across_multiple_placements_pops_in_order() {
        let machine = MachineConfig::unified();
        let pool = ResourcePool::new(&machine);
        let mut s = ModuloSchedule::new("multi", 3, 2, 1);
        let cp = s.checkpoint();
        for (i, kind) in [(0u32, FuKind::Int), (1, FuKind::Fp), (2, FuKind::Mem)] {
            s.place(PlacedOp {
                node: NodeId(i),
                cycle: i as i64,
                cluster: 0,
                fu: pool.fus(0, kind).next().unwrap(),
            });
        }
        assert!(s.is_complete());
        s.rollback(cp);
        assert!(!s.is_complete());
        assert_eq!(s.placements().count(), 0);
        assert_eq!(s, ModuloSchedule::new("multi", 3, 2, 1));
    }

    #[test]
    fn slot_map_matches_cluster_slot_layout() {
        let machine = MachineConfig::two_cluster(1, 1);
        let pool = ResourcePool::new(&machine);
        let map = SlotMap::new(&pool, &machine);
        for cluster in machine.clusters() {
            let mut expected = 0usize;
            for kind in vliw_arch::FuKind::ALL {
                for fu in pool.fus(cluster, kind) {
                    assert_eq!(map.slot(fu), expected);
                    expected += 1;
                }
            }
            assert_eq!(expected, machine.cluster.issue_width());
        }
    }

    #[test]
    fn incomplete_schedule_reports_incomplete() {
        let s = ModuloSchedule::new("inc", 3, 2, 2);
        assert!(!s.is_complete());
        assert_eq!(s.stage_count(), 1);
        assert_eq!(s.cycles_for(10), (10 + 1 - 1) * 2);
    }

    #[test]
    fn error_display() {
        let e = ScheduleError::MaxIiExceeded {
            mii: 4,
            max_ii_tried: 64,
        };
        assert!(e.to_string().contains("MII=4"));
        let e2 = ScheduleError::InvalidGraph("bad".into());
        assert!(e2.to_string().contains("bad"));
    }

    #[test]
    fn summary_mentions_bus_limitation() {
        let machine = MachineConfig::unified();
        let mut s = place_tiny(&machine);
        assert!(!s.summary().contains("bus-limited"));
        s.limited_by_bus = true;
        assert!(s.summary().contains("bus-limited"));
    }
}
