//! Slot-selection helpers shared by the unified and the clustered schedulers.
//!
//! For a node `n` being placed while part of the graph is already scheduled, modulo
//! scheduling computes
//!
//! * `EarlyStart(n)` — the earliest cycle compatible with every *scheduled
//!   predecessor*: `max over edges p→n of  t(p) + latency − II·distance`, and
//! * `LateStart(n)` — the latest cycle compatible with every *scheduled successor*:
//!   `min over edges n→s of  t(s) − latency + II·distance`.
//!
//! On a clustered machine a value that crosses clusters additionally pays the bus
//! latency, so both bounds accept a *target cluster*: edges whose already-placed
//! endpoint sits in a different cluster are penalised by the machine's bus latency
//! (this is how the paper's scheduler "hides" the communication latency — it simply
//! becomes part of the dependence distance being scheduled around).
//!
//! The scan order over candidate cycles follows Swing Modulo Scheduling:
//! only-predecessors-placed nodes scan forward from `EarlyStart`, only-successors
//! nodes scan backward from `LateStart`, nodes with both scan the (possibly empty)
//! window `[EarlyStart, LateStart]`, and free nodes scan forward from their ASAP time.
//! In every case at most `II` cycles need to be examined: beyond that the reservation
//! table repeats itself.

use crate::schedule::ModuloSchedule;
use vliw_ddg::{DepGraph, NodeId};

/// The earliest start cycle of `node` implied by its already-scheduled predecessors.
///
/// `target_cluster` is the cluster the node is being tried on; `bus_latency` is added
/// for value-carrying edges arriving from another cluster.  Returns `None` when no
/// predecessor has been scheduled yet.
pub fn early_start(
    graph: &DepGraph,
    sched: &ModuloSchedule,
    node: NodeId,
    ii: u32,
    target_cluster: Option<usize>,
    bus_latency: u32,
) -> Option<i64> {
    let mut bound: Option<i64> = None;
    for e in graph.in_edges(node) {
        if e.src == node {
            // A self edge constrains the node against its own previous iterations;
            // with distance >= 1 it is satisfied whenever II >= RecMII, so it never
            // constrains the placement cycle itself.
            continue;
        }
        let Some(p) = sched.placement(e.src) else {
            continue;
        };
        let mut lat = e.latency as i64;
        if let Some(c) = target_cluster {
            if e.kind.carries_value() && p.cluster != c {
                lat += bus_latency as i64;
            }
        }
        let t = p.cycle + lat - ii as i64 * e.distance as i64;
        bound = Some(bound.map_or(t, |b: i64| b.max(t)));
    }
    bound
}

/// The latest start cycle of `node` implied by its already-scheduled successors.
///
/// Symmetric to [`early_start`]; `bus_latency` is added for value-carrying edges
/// leaving towards another cluster.  Returns `None` when no successor has been
/// scheduled yet.
pub fn late_start(
    graph: &DepGraph,
    sched: &ModuloSchedule,
    node: NodeId,
    ii: u32,
    target_cluster: Option<usize>,
    bus_latency: u32,
) -> Option<i64> {
    let mut bound: Option<i64> = None;
    for e in graph.out_edges(node) {
        if e.dst == node {
            continue;
        }
        let Some(s) = sched.placement(e.dst) else {
            continue;
        };
        let mut lat = e.latency as i64;
        if let Some(c) = target_cluster {
            if e.kind.carries_value() && s.cluster != c {
                lat += bus_latency as i64;
            }
        }
        let t = s.cycle - lat + ii as i64 * e.distance as i64;
        bound = Some(bound.map_or(t, |b: i64| b.min(t)));
    }
    bound
}

/// The sequence of candidate cycles to try for a node, given its (optional) early and
/// late bounds.  At most `II` candidates are produced.
///
/// The scan is a plain counting iterator (start, direction, length) — it allocates
/// nothing, which matters because one is built per (node, cluster, II-attempt) in the
/// schedulers' innermost loop.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SlotScan {
    next: i64,
    /// Candidates still to be produced.
    remaining: u64,
    /// `+1` for forward scans, `-1` for backward (only-successors) scans.
    step: i64,
}

impl SlotScan {
    /// Build the scan for a node with the given bounds.  `default_start` is used when
    /// neither bound exists (typically the node's ASAP time, or 0).
    pub fn new(early: Option<i64>, late: Option<i64>, ii: u32, default_start: i64) -> Self {
        let ii = ii as i64;
        match (early, late) {
            (Some(e), Some(l)) => {
                // Window [e, min(l, e + II - 1)], forward.  May be empty, in which case
                // the node is unschedulable at this II in this cluster.
                let hi = l.min(e + ii - 1);
                Self {
                    next: e,
                    remaining: (hi - e + 1).max(0) as u64,
                    step: 1,
                }
            }
            (Some(e), None) => Self {
                next: e,
                remaining: ii as u64,
                step: 1,
            },
            (None, Some(l)) => Self {
                next: l,
                remaining: ii as u64,
                step: -1,
            },
            (None, None) => Self {
                next: default_start,
                remaining: ii as u64,
                step: 1,
            },
        }
    }

    /// The candidate cycles, in the order they will be produced (test/debug helper;
    /// the schedulers iterate the scan directly).
    pub fn cycles(&self) -> Vec<i64> {
        (*self).collect()
    }

    /// Whether the scan window is empty (placement impossible at this II).
    pub fn is_empty(&self) -> bool {
        self.remaining == 0
    }
}

impl Iterator for SlotScan {
    type Item = i64;
    fn next(&mut self) -> Option<i64> {
        if self.remaining == 0 {
            return None;
        }
        let cycle = self.next;
        self.next += self.step;
        self.remaining -= 1;
        Some(cycle)
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        (self.remaining as usize, Some(self.remaining as usize))
    }
}

impl ExactSizeIterator for SlotScan {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schedule::PlacedOp;
    use vliw_arch::{FuKind, MachineConfig, OpClass, ResourcePool};
    use vliw_ddg::{DepGraph, DepKind};

    fn setup() -> (DepGraph, ModuloSchedule, ResourcePool) {
        // a -> b -> c, a: load(2), b: fmul(4)
        let mut g = DepGraph::new("chain");
        let a = g.add_node(OpClass::Load);
        let b = g.add_node(OpClass::FpMul);
        let c = g.add_node(OpClass::Store);
        g.add_edge(a, b, 2, 0, DepKind::Flow);
        g.add_edge(b, c, 4, 0, DepKind::Flow);
        let machine = MachineConfig::two_cluster(1, 2);
        let pool = ResourcePool::new(&machine);
        let sched = ModuloSchedule::new("chain", 3, 4, 2);
        (g, sched, pool)
    }

    #[test]
    fn no_scheduled_neighbours_gives_no_bounds() {
        let (g, sched, _) = setup();
        assert_eq!(early_start(&g, &sched, NodeId(1), 4, None, 0), None);
        assert_eq!(late_start(&g, &sched, NodeId(1), 4, None, 0), None);
    }

    #[test]
    fn early_start_from_scheduled_predecessor() {
        let (g, mut sched, pool) = setup();
        sched.place(PlacedOp {
            node: NodeId(0),
            cycle: 5,
            cluster: 0,
            fu: pool.fus(0, FuKind::Mem).next().unwrap(),
        });
        // b must start at or after 5 + 2
        assert_eq!(early_start(&g, &sched, NodeId(1), 4, None, 0), Some(7));
        // On another cluster the bus latency (say 2) is added.
        assert_eq!(early_start(&g, &sched, NodeId(1), 4, Some(1), 2), Some(9));
        // Same cluster: no penalty.
        assert_eq!(early_start(&g, &sched, NodeId(1), 4, Some(0), 2), Some(7));
    }

    #[test]
    fn late_start_from_scheduled_successor() {
        let (g, mut sched, pool) = setup();
        sched.place(PlacedOp {
            node: NodeId(2),
            cycle: 10,
            cluster: 1,
            fu: pool.fus(1, FuKind::Mem).next().unwrap(),
        });
        // b must start at or before 10 - 4
        assert_eq!(late_start(&g, &sched, NodeId(1), 4, None, 0), Some(6));
        // If b is tried on cluster 0, the value to c (cluster 1) pays the bus.
        assert_eq!(late_start(&g, &sched, NodeId(1), 4, Some(0), 2), Some(4));
        assert_eq!(late_start(&g, &sched, NodeId(1), 4, Some(1), 2), Some(6));
    }

    #[test]
    fn loop_carried_edges_relax_bounds_by_ii() {
        let mut g = DepGraph::new("rec");
        let a = g.add_node(OpClass::FpAdd);
        let b = g.add_node(OpClass::FpAdd);
        g.add_edge(a, b, 3, 0, DepKind::Flow);
        g.add_edge(b, a, 3, 1, DepKind::Flow);
        let machine = MachineConfig::unified();
        let pool = ResourcePool::new(&machine);
        let mut sched = ModuloSchedule::new("rec", 2, 6, 6);
        sched.place(PlacedOp {
            node: NodeId(1),
            cycle: 3,
            cluster: 0,
            fu: pool.fus(0, FuKind::Fp).next().unwrap(),
        });
        // a as successor of b through the back edge: early = 3 + 3 - 6*1 = 0
        assert_eq!(early_start(&g, &sched, NodeId(0), 6, None, 0), Some(0));
        // a as predecessor of b through the forward edge: late = 3 - 3 + 0 = 0
        assert_eq!(late_start(&g, &sched, NodeId(0), 6, None, 0), Some(0));
    }

    #[test]
    fn self_edges_do_not_constrain_placement() {
        let mut g = DepGraph::new("self");
        let a = g.add_node(OpClass::FpAdd);
        g.add_edge(a, a, 3, 1, DepKind::Flow);
        let sched = ModuloSchedule::new("self", 1, 3, 3);
        assert_eq!(early_start(&g, &sched, NodeId(0), 3, None, 0), None);
        assert_eq!(late_start(&g, &sched, NodeId(0), 3, None, 0), None);
    }

    #[test]
    fn scan_orders() {
        // both bounds: forward window clipped to II
        let s = SlotScan::new(Some(4), Some(20), 3, 0);
        assert_eq!(s.cycles(), vec![4, 5, 6]);
        // both bounds, tight window
        let s = SlotScan::new(Some(4), Some(5), 3, 0);
        assert_eq!(s.cycles(), vec![4, 5]);
        // empty window
        let s = SlotScan::new(Some(6), Some(4), 3, 0);
        assert!(s.is_empty());
        // preds only: forward II candidates
        let s = SlotScan::new(Some(2), None, 4, 0);
        assert_eq!(s.cycles(), vec![2, 3, 4, 5]);
        // succs only: backward II candidates
        let s = SlotScan::new(None, Some(9), 3, 0);
        assert_eq!(s.cycles(), vec![9, 8, 7]);
        // free node: forward from the default
        let s = SlotScan::new(None, None, 2, 7);
        assert_eq!(s.cycles(), vec![7, 8]);
    }

    #[test]
    fn scan_is_an_exact_size_iterator() {
        let s = SlotScan::new(Some(0), None, 2, 0);
        assert_eq!(s.len(), 2);
        let v: Vec<i64> = s.collect();
        assert_eq!(v, vec![0, 1]);
        // `cycles()` does not consume the scan (it is `Copy`).
        let s = SlotScan::new(None, Some(3), 2, 0);
        assert_eq!(s.cycles(), vec![3, 2]);
        assert_eq!(s.cycles(), vec![3, 2]);
    }
}
