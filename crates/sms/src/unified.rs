//! The unified-machine modulo scheduler.
//!
//! This is Swing Modulo Scheduling specialised to a machine with a single cluster: no
//! buses, no cluster choice.  It is the reference point of every experiment in the
//! paper — the clustered schedulers are evaluated by their IPC *relative to* the
//! schedule this scheduler produces on a unified machine with the same total resources.
//!
//! It is also used by the Nystrom & Eichenberger baseline (phase 2 schedules each node
//! on the cluster chosen by phase 1), which reuses the slot-selection and reservation
//! machinery exposed here.

use crate::engine::{
    ClusterPolicy, EngineView, IiSearchDriver, RegisterCheckMode, ScheduledLoop, Trial,
};
use crate::schedule::{ModuloSchedule, ScheduleError};
use vliw_arch::MachineConfig;
use vliw_ddg::{DepGraph, NodeId};

/// The [`ClusterPolicy`] of the unified machine: every node goes to cluster 0 at the
/// first cycle with a free functional unit, with no communication machinery; register
/// pressure is checked once per attempt by the engine
/// ([`RegisterCheckMode::WholeSchedule`]).
#[derive(Debug, Clone, Copy, Default)]
pub struct UnifiedPolicy;

impl ClusterPolicy for UnifiedPolicy {
    fn name(&self) -> &'static str {
        "unified-sms"
    }

    fn select_placement(&mut self, node: NodeId, view: &mut EngineView<'_>) -> Option<Trial> {
        view.probe_unified(node).trial
    }
}

/// Swing Modulo Scheduler for a unified (single-cluster) VLIW machine.
#[derive(Debug, Clone)]
pub struct SmsScheduler {
    machine: MachineConfig,
    /// Whether register pressure is checked against the register file size (the paper
    /// generates no spill code; a schedule that exceeds the file is retried at a larger
    /// II).  On by default.
    pub check_registers: bool,
    /// Use the engine's incremental register-pressure tracker (on by default).  The
    /// unified scheduler checks registers in `WholeSchedule` mode, where the tracker
    /// is bypassed, but the toggle is kept for API symmetry with the cluster
    /// schedulers and the equivalence property tests.
    incremental: bool,
}

impl SmsScheduler {
    /// A scheduler for `machine`.  The machine is expected to have a single cluster;
    /// clustered machines are accepted (all operations are forced onto cluster 0) so
    /// that the unified counterpart of a clustered configuration can be expressed
    /// directly, but inter-cluster features are ignored.
    pub fn new(machine: &MachineConfig) -> Self {
        Self {
            machine: machine.clone(),
            check_registers: true,
            incremental: true,
        }
    }

    /// Toggle the engine's incremental register-pressure tracking (used by the
    /// equivalence property tests; results are identical either way).
    #[must_use]
    pub fn incremental(mut self, on: bool) -> Self {
        self.incremental = on;
        self
    }

    /// The machine this scheduler targets.
    pub fn machine(&self) -> &MachineConfig {
        &self.machine
    }

    /// Modulo schedule `graph`, searching initiation intervals upward from MII.
    pub fn schedule(&self, graph: &DepGraph) -> Result<ModuloSchedule, ScheduleError> {
        self.schedule_diag(graph).map(|out| out.schedule)
    }

    /// Like [`SmsScheduler::schedule`], but also return the engine's
    /// [`crate::engine::ScheduleDiagnostics`].
    pub fn schedule_diag(&self, graph: &DepGraph) -> Result<ScheduledLoop, ScheduleError> {
        IiSearchDriver::new(&self.machine)
            .check_registers(self.check_registers)
            .register_mode(RegisterCheckMode::WholeSchedule)
            .incremental(self.incremental)
            .schedule(graph, &mut UnifiedPolicy)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vliw_arch::{MachineConfig, OpClass};
    use vliw_ddg::{mii, DepKind, GraphBuilder};

    fn saxpy() -> DepGraph {
        GraphBuilder::new("saxpy")
            .iterations(1000)
            .node("lx", OpClass::Load)
            .node("ly", OpClass::Load)
            .node("mul", OpClass::FpMul)
            .node("add", OpClass::FpAdd)
            .node("st", OpClass::Store)
            .node("ix", OpClass::IntAlu)
            .flow("lx", "mul")
            .flow("mul", "add")
            .flow("ly", "add")
            .flow("add", "st")
            .flow_at("ix", "ix", 1)
            .flow("ix", "lx")
            .flow("ix", "ly")
            .flow("ix", "st")
            .build()
    }

    /// Check that a schedule respects every dependence: for each edge u -> v,
    /// t(v) >= t(u) + latency - II * distance.
    fn assert_dependences_hold(graph: &DepGraph, sched: &ModuloSchedule) {
        for e in graph.edges() {
            let tu = sched.placement(e.src).unwrap().cycle;
            let tv = sched.placement(e.dst).unwrap().cycle;
            assert!(
                tv >= tu + e.latency as i64 - sched.ii() as i64 * e.distance as i64,
                "dependence {:?} violated: t({})={} t({})={} II={}",
                e.kind,
                graph.node(e.src).label(),
                tu,
                graph.node(e.dst).label(),
                tv,
                sched.ii()
            );
        }
    }

    /// Check that no functional unit is used twice in the same kernel row.
    fn assert_no_resource_conflicts(sched: &ModuloSchedule) {
        use std::collections::HashSet;
        let mut used = HashSet::new();
        for p in sched.placements() {
            let key = (p.fu, p.cycle.rem_euclid(sched.ii() as i64));
            assert!(used.insert(key), "functional unit {:?} overbooked", p.fu);
        }
    }

    #[test]
    fn saxpy_schedules_at_mii_on_unified_machine() {
        let machine = MachineConfig::unified();
        let g = saxpy();
        let sched = SmsScheduler::new(&machine).schedule(&g).unwrap();
        assert!(sched.is_complete());
        assert_eq!(sched.ii(), mii(&g, &machine));
        assert_dependences_hold(&g, &sched);
        assert_no_resource_conflicts(&sched);
    }

    #[test]
    fn resource_bound_loops_reach_res_mii() {
        // 9 independent loads on a machine with 4 memory units: II must be 3.
        let machine = MachineConfig::unified();
        let mut b = GraphBuilder::new("loads");
        for i in 0..9 {
            b = b.node(&format!("l{i}"), OpClass::Load);
        }
        let g = b.build();
        let sched = SmsScheduler::new(&machine).schedule(&g).unwrap();
        assert_eq!(sched.ii(), 3);
        assert_no_resource_conflicts(&sched);
    }

    #[test]
    fn recurrence_bound_loops_reach_rec_mii() {
        let machine = MachineConfig::unified();
        let g = GraphBuilder::new("acc")
            .node("add", OpClass::FpAdd)
            .node("ld", OpClass::Load)
            .node("st", OpClass::Store)
            .flow("ld", "add")
            .flow_at("add", "add", 1)
            .flow("add", "st")
            .build();
        let sched = SmsScheduler::new(&machine).schedule(&g).unwrap();
        assert_eq!(sched.ii(), 3); // fadd latency over distance 1
        assert_dependences_hold(&g, &sched);
    }

    #[test]
    fn narrow_machine_forces_larger_ii() {
        // The same saxpy body on a 1-FU-per-kind machine: ResMII grows.
        let machine = MachineConfig::new(
            "narrow",
            1,
            vliw_arch::ClusterConfig::new(1, 1, 1, 64),
            vliw_arch::BusConfig::none(),
            vliw_arch::LatencyModel::table1(),
        );
        let g = saxpy();
        let sched = SmsScheduler::new(&machine).schedule(&g).unwrap();
        assert_eq!(sched.ii(), mii(&g, &machine));
        assert!(sched.ii() >= 3); // 3 memory operations on one memory unit
        assert_no_resource_conflicts(&sched);
        assert_dependences_hold(&g, &sched);
    }

    #[test]
    fn stage_count_reflects_pipeline_depth() {
        let machine = MachineConfig::unified();
        let g = saxpy();
        let sched = SmsScheduler::new(&machine).schedule(&g).unwrap();
        // The critical path (load 2 + fmul 4 + fadd 3 + store) is ~10 cycles, so with a
        // small II several stages must overlap.
        assert!(sched.stage_count() >= 3, "SC = {}", sched.stage_count());
    }

    #[test]
    fn cycles_follow_the_paper_formula() {
        let machine = MachineConfig::unified();
        let g = saxpy();
        let sched = SmsScheduler::new(&machine).schedule(&g).unwrap();
        let niter = 1000;
        assert_eq!(
            sched.cycles_for(niter),
            (niter + sched.stage_count() as u64 - 1) * sched.ii() as u64
        );
    }

    #[test]
    fn register_check_can_raise_ii() {
        // A machine with a tiny register file forces a larger II (longer lifetimes per
        // row are spread over more rows, lowering MaxLive).
        let tiny = MachineConfig::new(
            "tiny-regs",
            1,
            vliw_arch::ClusterConfig::new(4, 4, 4, 2),
            vliw_arch::BusConfig::none(),
            vliw_arch::LatencyModel::table1(),
        );
        let g = saxpy();
        let mut strict = SmsScheduler::new(&tiny);
        strict.check_registers = true;
        let mut relaxed = SmsScheduler::new(&tiny);
        relaxed.check_registers = false;
        let relaxed_sched = relaxed.schedule(&g).unwrap();
        match strict.schedule(&g) {
            Ok(s) => assert!(s.ii() >= relaxed_sched.ii()),
            Err(ScheduleError::MaxIiExceeded { .. }) => {} // also acceptable: never fits
            Err(e) => panic!("unexpected error {e}"),
        }
    }

    #[test]
    fn invalid_graph_is_rejected() {
        let machine = MachineConfig::unified();
        let mut g = DepGraph::new("bad");
        let a = g.add_node(OpClass::IntAlu);
        g.add_edge(a, a, 1, 0, DepKind::Flow);
        let err = SmsScheduler::new(&machine).schedule(&g).unwrap_err();
        assert!(matches!(err, ScheduleError::InvalidGraph(_)));
    }

    #[test]
    fn empty_graph_schedules_trivially() {
        let machine = MachineConfig::unified();
        let g = DepGraph::new("empty");
        let sched = SmsScheduler::new(&machine).schedule(&g).unwrap();
        assert!(sched.is_complete());
        assert_eq!(sched.ii(), 1);
    }

    #[test]
    fn every_spec_like_shape_schedules() {
        // A few structurally different loop shapes, all must schedule without panics
        // and respect dependences.
        let machine = MachineConfig::unified();
        let shapes = vec![
            GraphBuilder::new("reduction")
                .node("l", OpClass::Load)
                .node("m", OpClass::FpMul)
                .node("a", OpClass::FpAdd)
                .flow("l", "m")
                .flow("m", "a")
                .flow_at("a", "a", 1)
                .build(),
            GraphBuilder::new("stencil")
                .node("l0", OpClass::Load)
                .node("l1", OpClass::Load)
                .node("l2", OpClass::Load)
                .node("a0", OpClass::FpAdd)
                .node("a1", OpClass::FpAdd)
                .node("m", OpClass::FpMul)
                .node("s", OpClass::Store)
                .flow("l0", "a0")
                .flow("l1", "a0")
                .flow("a0", "a1")
                .flow("l2", "a1")
                .flow("a1", "m")
                .flow("m", "s")
                .build(),
            GraphBuilder::new("divider")
                .node("l", OpClass::Load)
                .node("d", OpClass::FpDiv)
                .node("s", OpClass::Store)
                .flow("l", "d")
                .flow("d", "s")
                .build(),
        ];
        for g in shapes {
            let sched = SmsScheduler::new(&machine).schedule(&g).unwrap();
            assert_dependences_hold(&g, &sched);
            assert_no_resource_conflicts(&sched);
        }
    }
}
