//! # vliw-timing — technology delay models and cycle-time-aware speed-up
//!
//! Section 6.3 of the paper converts IPC into real performance by assigning each
//! configuration a cycle time derived from the delay models of Palacharla, Jouppi &
//! Smith ("Complexity-Effective Superscalar Processors", ISCA'97) for a 0.18 µm
//! technology: the cycle time of a configuration is the maximum of its **bypass delay**
//! and its **register-file access time** (Table 2), and the clustered machines win
//! because both quantities shrink rapidly with the number of functional units and
//! registers per cluster.
//!
//! This crate re-implements those models analytically ([`PalacharlaModel`]), produces
//! the per-configuration cycle times ([`CycleTimeModel`], Table 2) and computes the
//! resulting speed-ups (Figure 9).  The wire-delay constants are calibrated — and
//! documented in [`palacharla`] — so that the *ratios* between configurations land in
//! the neighbourhood the paper reports (the unified machine roughly 3–4× slower per
//! cycle than a 4-cluster machine); absolute picosecond values are indicative only.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod palacharla;
pub mod speedup;

pub use palacharla::{CycleTimeModel, PalacharlaModel};
pub use speedup::{speedup, SpeedupRow};
