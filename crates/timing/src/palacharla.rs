//! The Palacharla-style delay models.
//!
//! Two structures bound the cycle time of the modelled VLIW machines (the paper's
//! Table 2 uses exactly these two):
//!
//! * **Bypass network** — the result buses that forward a functional unit's output to
//!   the inputs of every other unit of the same cluster.  Its delay is dominated by the
//!   wire: `T_bypass = 0.5 · R_metal · C_metal · L²`, with the wire length `L`
//!   proportional to the number of functional units spanned (each unit adds a fixed
//!   height).
//! * **Register file** — modelled as `T_rf = T_fixed + k_reg · R + k_port · P +
//!   k_wire · (R · P²)^(1/2)·scale`, an analytic fit of the decoder + word-line +
//!   bit-line + sense-amp chain in which the word-line length grows with the number of
//!   ports `P` (each port adds a cell width) and the bit-line length grows with the
//!   number of registers `R`.
//!
//! The constants below are calibrated for a 0.18 µm process so that the resulting
//! cycle-time *ratios* between the unified, 2-cluster and 4-cluster configurations of
//! Table 1 land where the paper's Table 2 puts them (the 4-cluster machine ends up
//! roughly 3.5–4× faster per cycle than the unified one, which combined with IPC parity
//! yields the reported average speed-up of ≈3.6).  Absolute picoseconds are indicative.

use serde::{Deserialize, Serialize};
use vliw_arch::MachineConfig;

/// Analytic delay model (see module docs).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PalacharlaModel {
    /// Fixed logic overhead of any pipeline stage, in ps (latches, clock skew).
    pub stage_overhead_ps: f64,
    /// Bypass wire delay coefficient, in ps per (functional unit)²: the quadratic wire
    /// term of `0.5·R·C·L²` with `L` measured in FU heights.
    pub bypass_ps_per_fu2: f64,
    /// Register-file delay per register, in ps (bit-line capacitance).
    pub rf_ps_per_reg: f64,
    /// Register-file delay per port, in ps (word-line capacitance).
    pub rf_ps_per_port: f64,
    /// Register-file wire term, in ps per sqrt(registers · ports²).
    pub rf_wire_ps: f64,
    /// Fixed register-file overhead, in ps (decoder + sense amplifier).
    pub rf_fixed_ps: f64,
}

impl Default for PalacharlaModel {
    fn default() -> Self {
        Self::technology_180nm()
    }
}

impl PalacharlaModel {
    /// The 0.18 µm calibration used for Table 2.
    pub fn technology_180nm() -> Self {
        Self {
            stage_overhead_ps: 80.0,
            bypass_ps_per_fu2: 11.0,
            rf_ps_per_reg: 3.0,
            rf_ps_per_port: 9.0,
            rf_wire_ps: 4.5,
            rf_fixed_ps: 150.0,
        }
    }

    /// Bypass delay of one cluster with `fus` functional units, in ps.
    pub fn bypass_delay_ps(&self, fus: usize) -> f64 {
        self.stage_overhead_ps + self.bypass_ps_per_fu2 * (fus as f64) * (fus as f64)
    }

    /// Register-file access time for `registers` registers with `read_ports` +
    /// `write_ports` ports, in ps.
    pub fn register_file_ps(&self, registers: usize, read_ports: usize, write_ports: usize) -> f64 {
        let ports = (read_ports + write_ports) as f64;
        let regs = registers as f64;
        self.rf_fixed_ps
            + self.rf_ps_per_reg * regs
            + self.rf_ps_per_port * ports
            + self.rf_wire_ps * (regs * ports * ports).sqrt()
    }

    /// Cycle time of `machine`, in ps: the maximum of the per-cluster bypass delay and
    /// the per-cluster register-file access time (the paper's Table 2 rule).
    pub fn cycle_time_ps(&self, machine: &MachineConfig) -> f64 {
        let fus = machine.cluster.issue_width();
        let (rd, wr) = machine.register_file_ports();
        let bypass = self.bypass_delay_ps(fus);
        let rf = self.register_file_ps(machine.cluster.registers, rd, wr);
        bypass.max(rf)
    }
}

/// Cycle times of a set of machine configurations (Table 2 of the paper).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CycleTimeModel {
    model: PalacharlaModel,
}

impl CycleTimeModel {
    /// A cycle-time model using the default 0.18 µm calibration.
    pub fn new() -> Self {
        Self {
            model: PalacharlaModel::technology_180nm(),
        }
    }

    /// A cycle-time model with custom constants.
    pub fn with_model(model: PalacharlaModel) -> Self {
        Self { model }
    }

    /// The underlying delay model.
    pub fn model(&self) -> &PalacharlaModel {
        &self.model
    }

    /// Cycle time of `machine` in picoseconds.
    pub fn cycle_time_ps(&self, machine: &MachineConfig) -> f64 {
        self.model.cycle_time_ps(machine)
    }

    /// The rows of Table 2: `(name, cycle time in ps)` for the unified, 2-cluster and
    /// 4-cluster configurations with the given number of buses.
    pub fn table2(&self, n_buses: usize, bus_latency: u32) -> Vec<(String, f64)> {
        let configs = [
            MachineConfig::unified(),
            MachineConfig::two_cluster(n_buses, bus_latency),
            MachineConfig::four_cluster(n_buses, bus_latency),
        ];
        configs
            .iter()
            .map(|m| (m.name.clone(), self.cycle_time_ps(m)))
            .collect()
    }
}

impl Default for CycleTimeModel {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bypass_delay_grows_quadratically_with_issue_width() {
        let m = PalacharlaModel::technology_180nm();
        let d3 = m.bypass_delay_ps(3) - m.stage_overhead_ps;
        let d6 = m.bypass_delay_ps(6) - m.stage_overhead_ps;
        let d12 = m.bypass_delay_ps(12) - m.stage_overhead_ps;
        assert!((d6 / d3 - 4.0).abs() < 1e-9);
        assert!((d12 / d6 - 4.0).abs() < 1e-9);
    }

    #[test]
    fn register_file_delay_increases_with_regs_and_ports() {
        let m = PalacharlaModel::technology_180nm();
        assert!(m.register_file_ps(64, 24, 12) > m.register_file_ps(32, 12, 6));
        assert!(m.register_file_ps(32, 12, 6) > m.register_file_ps(16, 8, 5));
    }

    #[test]
    fn unified_machine_is_the_slowest_per_cycle() {
        let model = CycleTimeModel::new();
        let unified = model.cycle_time_ps(&MachineConfig::unified());
        let two = model.cycle_time_ps(&MachineConfig::two_cluster(1, 1));
        let four = model.cycle_time_ps(&MachineConfig::four_cluster(1, 1));
        assert!(unified > two);
        assert!(two > four);
    }

    #[test]
    fn cycle_time_ratio_matches_the_papers_ballpark() {
        // The paper's headline: with IPC parity, the 4-cluster/1-bus machine is ~3.6x
        // faster overall, so its cycle time must be roughly 3-4.5x shorter than the
        // unified machine's.
        let model = CycleTimeModel::new();
        let unified = model.cycle_time_ps(&MachineConfig::unified());
        let four = model.cycle_time_ps(&MachineConfig::four_cluster(1, 1));
        let ratio = unified / four;
        assert!(
            (3.0..=4.5).contains(&ratio),
            "unified/4-cluster cycle-time ratio {ratio:.2} outside the expected band"
        );
        let two = model.cycle_time_ps(&MachineConfig::two_cluster(1, 1));
        let ratio2 = unified / two;
        assert!(
            (1.5..=3.0).contains(&ratio2),
            "unified/2-cluster cycle-time ratio {ratio2:.2} outside the expected band"
        );
    }

    #[test]
    fn extra_buses_increase_the_clustered_cycle_time_slightly() {
        // Each bus adds register-file ports, so 2-bus configurations pay a small
        // cycle-time penalty; they must never get faster.
        let model = CycleTimeModel::new();
        for n in [2usize, 4] {
            let one = model.cycle_time_ps(&MachineConfig::clustered(n, 1, 1));
            let two = model.cycle_time_ps(&MachineConfig::clustered(n, 2, 1));
            assert!(two >= one);
        }
    }

    #[test]
    fn table2_lists_three_configurations() {
        let rows = CycleTimeModel::new().table2(1, 1);
        assert_eq!(rows.len(), 3);
        assert!(rows[0].0.contains("unified"));
        assert!(rows[0].1 > rows[2].1);
    }
}
