//! Cycle-time-aware speed-up (Figure 9 of the paper).
//!
//! With the same workload, the execution time of a configuration is
//! `cycles × cycle_time`; the speed-up of a clustered configuration over the unified
//! baseline is therefore
//!
//! ```text
//!   speedup = (IPC_clustered / IPC_unified) × (T_unified / T_clustered)
//! ```
//!
//! (the instruction count cancels out).  The IPC ratio is what Figures 4 and 8 report;
//! the cycle-time ratio comes from the Palacharla model of Table 2.

use crate::palacharla::CycleTimeModel;
use serde::{Deserialize, Serialize};
use vliw_arch::MachineConfig;

/// One bar of Figure 9.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SpeedupRow {
    /// Configuration label (e.g. "2-cluster NU B=1").
    pub label: String,
    /// IPC of the clustered configuration relative to the unified one (≤ ~1).
    pub relative_ipc: f64,
    /// Cycle-time ratio `T_unified / T_clustered` (> 1).
    pub cycle_time_ratio: f64,
    /// The resulting speed-up.
    pub speedup: f64,
}

/// Compute the speed-up of `clustered` over `unified` given the measured IPCs of both.
pub fn speedup(
    model: &CycleTimeModel,
    unified: &MachineConfig,
    clustered: &MachineConfig,
    unified_ipc: f64,
    clustered_ipc: f64,
) -> SpeedupRow {
    assert!(unified_ipc > 0.0, "the unified IPC must be positive");
    let relative_ipc = clustered_ipc / unified_ipc;
    let cycle_time_ratio = model.cycle_time_ps(unified) / model.cycle_time_ps(clustered);
    SpeedupRow {
        label: clustered.name.clone(),
        relative_ipc,
        cycle_time_ratio,
        speedup: relative_ipc * cycle_time_ratio,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn speedup_is_the_product_of_both_ratios() {
        let model = CycleTimeModel::new();
        let unified = MachineConfig::unified();
        let clustered = MachineConfig::four_cluster(1, 1);
        let row = speedup(&model, &unified, &clustered, 4.0, 3.8);
        assert!((row.relative_ipc - 0.95).abs() < 1e-9);
        assert!(row.cycle_time_ratio > 1.0);
        assert!((row.speedup - row.relative_ipc * row.cycle_time_ratio).abs() < 1e-12);
    }

    #[test]
    fn ipc_parity_on_four_clusters_gives_the_papers_headline_speedup() {
        let model = CycleTimeModel::new();
        let unified = MachineConfig::unified();
        let clustered = MachineConfig::four_cluster(1, 1);
        let row = speedup(&model, &unified, &clustered, 4.0, 4.0);
        assert!(
            (3.0..=4.5).contains(&row.speedup),
            "speed-up at IPC parity {} outside the paper's ballpark",
            row.speedup
        );
    }

    #[test]
    fn equal_machines_have_unit_speedup() {
        let model = CycleTimeModel::new();
        let unified = MachineConfig::unified();
        let row = speedup(&model, &unified, &unified, 3.0, 3.0);
        assert!((row.speedup - 1.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_unified_ipc_is_rejected() {
        let model = CycleTimeModel::new();
        let unified = MachineConfig::unified();
        let clustered = MachineConfig::two_cluster(1, 1);
        let _ = speedup(&model, &unified, &clustered, 0.0, 1.0);
    }
}
