//! The `fault` campaign binary: inject one sampled policy fault per seeded case
//! into the degradation ladder's primary rung and require every fault contained.
//!
//! ```text
//! cargo run --release -p vliw-verify --bin fault -- \
//!     [--seed N] [--cases N] [--rung-fuel N] [--out NAME]
//! ```
//!
//! Writes `results/<NAME>.json` (default `fault_campaign`, the committed
//! golden-tested artifact) and exits non-zero when any injected fault escaped
//! uncontained, so CI can gate on it.

use vliw_verify::{run_fault_campaign, FaultCampaignConfig};

fn usage() -> ! {
    eprintln!("usage: fault [--seed N] [--cases N] [--rung-fuel N] [--out NAME]");
    std::process::exit(2);
}

fn parse_config() -> (FaultCampaignConfig, String) {
    let mut config = FaultCampaignConfig::default();
    let mut out = "fault_campaign".to_string();
    let mut args = std::env::args().skip(1);
    while let Some(flag) = args.next() {
        let mut value = || args.next().unwrap_or_else(|| usage());
        match flag.as_str() {
            "--seed" => config.seed = value().parse().unwrap_or_else(|_| usage()),
            "--cases" => config.cases = value().parse().unwrap_or_else(|_| usage()),
            "--rung-fuel" => {
                config.rung_fuel_probes = value().parse().unwrap_or_else(|_| usage());
            }
            "--out" => out = value(),
            _ => usage(),
        }
    }
    (config, out)
}

fn main() {
    let (config, out) = parse_config();
    println!(
        "fault: seed={} cases={} rung-fuel={} probes/rung",
        config.seed, config.cases, config.rung_fuel_probes
    );

    let report = run_fault_campaign(&config);

    let c = &report.coverage;
    println!(
        "coverage: {} faults injected, {} fired, {} certified results, {} typed ladder failures",
        c.injected_by_kind.values().sum::<u64>(),
        c.fired_by_kind.values().sum::<u64>(),
        c.certified_results,
        c.ladder_failures_typed,
    );
    println!(
        "          {} contained panics, {} sequential fallbacks, rungs won {:?}",
        c.contained_panics,
        c.sequential_fallbacks,
        c.rungs_won.keys().collect::<Vec<_>>()
    );
    println!("containment histogram (kind/channel):");
    for (key, count) in &c.containment_by_kind {
        println!("  {key:<36} {count}");
    }

    for u in &report.uncontained {
        println!(
            "  ESCAPE: case {} (seed {:#x}) kind {}: {}",
            u.case_index, u.case_seed, u.kind, u.detail
        );
    }
    let path = vliw_lint::reportio::write_results_json(&out, &report).expect("write report");
    vliw_lint::reportio::exit_on_violations(
        &path,
        report.uncontained.len(),
        &format!("every fault contained in {} cases", report.cases),
        &format!("{} uncontained fault(s)", report.uncontained.len()),
    );
}
