//! The `verify` campaign binary: fuzz random machines × loops, audit every schedule
//! of every policy, shrink any failure, and write a deterministic JSON report.
//!
//! ```text
//! cargo run --release -p vliw-verify --bin verify -- \
//!     [--seed N] [--cases N] [--space default|table1] [--shrink-budget N] [--out NAME]
//! ```
//!
//! Writes `results/<NAME>.json` (default `verify_campaign`) and exits non-zero when
//! any violation was found, so CI can gate on it.

use vliw_verify::{run_campaign, CampaignConfig};

fn usage() -> ! {
    eprintln!(
        "usage: verify [--seed N] [--cases N] [--space default|table1] \
         [--shrink-budget N] [--out NAME]"
    );
    std::process::exit(2);
}

fn parse_config() -> (CampaignConfig, String) {
    let mut config = CampaignConfig::default();
    let mut out = "verify_campaign".to_string();
    let mut args = std::env::args().skip(1);
    while let Some(flag) = args.next() {
        let mut value = || args.next().unwrap_or_else(|| usage());
        match flag.as_str() {
            "--seed" => config.seed = value().parse().unwrap_or_else(|_| usage()),
            "--cases" => config.cases = value().parse().unwrap_or_else(|_| usage()),
            "--shrink-budget" => config.shrink_budget = value().parse().unwrap_or_else(|_| usage()),
            "--space" => {
                config.space = match value().as_str() {
                    "default" => vliw_arch::MachineSpace::default(),
                    "table1" => vliw_arch::MachineSpace::table1(),
                    _ => usage(),
                }
            }
            "--out" => out = value(),
            _ => usage(),
        }
    }
    (config, out)
}

fn main() {
    let (config, out) = parse_config();
    println!(
        "verify: seed={} cases={} space=[clusters {:?}, regs {:?}, buses {:?} x L{:?}]",
        config.seed,
        config.cases,
        config.space.clusters,
        config.space.registers,
        config.space.buses,
        config.space.bus_latency,
    );

    let report = run_campaign(&config);

    let c = &report.coverage;
    println!(
        "coverage: {} machine structures, {} loops, {} schedules checked, {} unschedulable",
        c.machines_explored, c.loops_generated, c.schedules_checked, c.unschedulable
    );
    println!(
        "          {} distinct IIs (max {}), {} schedules above II 64",
        c.distinct_iis, c.max_ii, c.ii_over_64
    );
    println!(
        "          {} unrolled kernels audited ({} unschedulable), factors {:?}",
        c.unrolled_schedules_checked,
        c.unrolled_unschedulable,
        c.unroll_factors.keys().collect::<Vec<_>>()
    );
    println!(
        "          {} schedules statically certified (fifth oracle), warn lints {:?}",
        c.statically_certified,
        c.lint_warnings.keys().collect::<Vec<_>>()
    );
    println!(
        "          {} solver certificates (sixth oracle): {} exact, {} lower bounds, {} fuel-exhausted",
        c.solver_certified, c.solver_exact, c.solver_lower_bounds, c.solver_fuel_exhausted
    );
    println!(
        "          certified II gaps {:?}",
        c.optimality_gaps.iter().collect::<Vec<_>>()
    );
    println!("limiting-resource histogram (policy/resource):");
    for (key, count) in &c.limiting_by_policy {
        println!("  {key:<28} {count}");
    }

    // Per-violation detail goes first; the shared gate tail then prints the report
    // path and the PASS/FAIL verdict and sets the exit code.
    for v in &report.violations {
        println!(
            "  case {} (seed {:#x}) policy {}: {} finding(s); shrunk to {} node(s) / {} edge(s) on {}",
            v.case_index,
            v.case_seed,
            v.policy,
            v.findings.len(),
            v.shrunk.n_nodes,
            v.shrunk.n_edges,
            v.shrunk.machine
        );
    }
    let path = vliw_lint::reportio::write_results_json(&out, &report).expect("write report");
    vliw_lint::reportio::exit_on_violations(
        &path,
        report.violations.len(),
        &format!("no violations in {} cases", report.cases),
        &format!("{} violation(s)", report.violations.len()),
    );
}
