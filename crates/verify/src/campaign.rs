//! The campaign runner: a seeded, rayon-parallel sweep over fuzz cases.

use crate::case::generate_case;
use crate::oracle::{check_case, check_policy, CaseOutcome, Policy, PolicyOutcome};
use crate::report::{CampaignReport, Coverage, ShrunkRepro, ViolationReport};
use crate::shrink::shrink_case;
use rayon::prelude::*;
use std::collections::BTreeSet;
use vliw_arch::{MachineConfig, MachineSpace};

/// Configuration of one verification campaign.
#[derive(Debug, Clone)]
pub struct CampaignConfig {
    /// The campaign seed; every case derives deterministically from it.
    pub seed: u64,
    /// Case budget: how many `(machine, loop)` pairs to generate and audit.
    pub cases: u64,
    /// The machine space to sample from.
    pub space: MachineSpace,
    /// Failure-predicate evaluations the shrinker may spend per violation.
    pub shrink_budget: usize,
}

impl Default for CampaignConfig {
    fn default() -> Self {
        Self {
            seed: 0xC1B0,
            cases: 512,
            space: MachineSpace::default(),
            shrink_budget: 2_000,
        }
    }
}

/// Structural key of a machine: the configuration with the name stripped, so two
/// identically shaped machines count as one explored point.
fn structural_key(machine: &MachineConfig) -> String {
    serde_json::to_string(&(
        machine.n_clusters,
        &machine.cluster,
        &machine.buses,
        &machine.latencies,
    ))
    .expect("machine structure serializes")
}

/// Run a campaign: generate and audit `config.cases` cases in parallel, shrink every
/// violation, and fold everything into a deterministic [`CampaignReport`].
///
/// Cases are independent (each derives from the campaign seed and its index alone)
/// and results are folded in case order, so the report — including the JSON bytes it
/// serialises to — is identical across runs and thread counts.
pub fn run_campaign(config: &CampaignConfig) -> CampaignReport {
    let indices: Vec<u64> = (0..config.cases).collect();
    let outcomes: Vec<CaseOutcome> = indices
        .par_iter()
        .map(|&index| check_case(generate_case(config.seed, index, &config.space)))
        .collect();

    let mut coverage = Coverage::default();
    let mut machines = BTreeSet::new();
    let mut iis = BTreeSet::new();
    let mut violations = Vec::new();

    for outcome in &outcomes {
        let case = &outcome.case;
        machines.insert(structural_key(&case.machine));
        coverage.loops_generated += 1;
        *coverage
            .cluster_counts
            .entry(format!("{}", case.machine.n_clusters))
            .or_insert(0) += 1;

        for (policy, result) in &outcome.outcomes {
            match result {
                PolicyOutcome::Scheduled {
                    ii,
                    mii,
                    limiting,
                    findings,
                } => {
                    coverage.schedules_checked += 1;
                    if ii == mii {
                        coverage.schedules_at_mii += 1;
                    }
                    iis.insert(*ii);
                    coverage.max_ii = coverage.max_ii.max(*ii);
                    if *ii > 64 {
                        coverage.ii_over_64 += 1;
                    }
                    *coverage
                        .limiting_by_policy
                        .entry(format!("{}/{limiting}", policy.label()))
                        .or_insert(0) += 1;
                    if !findings.is_empty() {
                        violations.push(build_violation(config, outcome, *policy, findings));
                    }
                }
                PolicyOutcome::Unschedulable => coverage.unschedulable += 1,
                PolicyOutcome::Rejected { error } => {
                    violations.push(ViolationReport {
                        case_index: case.index,
                        case_seed: case.seed,
                        policy: policy.label().to_string(),
                        machine: case.machine.clone(),
                        loop_name: case.graph.name.clone(),
                        findings: Vec::new(),
                        rejected: Some(error.clone()),
                        shrunk: ShrunkRepro {
                            machine: case.machine.clone(),
                            graph: case.graph.clone(),
                            n_nodes: case.graph.n_nodes(),
                            n_edges: case.graph.n_edges(),
                            shrink_checks: 0,
                        },
                    });
                }
            }
        }
    }
    coverage.machines_explored = machines.len() as u64;
    coverage.distinct_iis = iis.len() as u64;

    CampaignReport {
        campaign_seed: config.seed,
        cases: config.cases,
        policies: Policy::ALL.iter().map(|p| p.label().to_string()).collect(),
        coverage,
        violations,
    }
}

/// Shrink one violating case and package it as a [`ViolationReport`].
fn build_violation(
    config: &CampaignConfig,
    outcome: &CaseOutcome,
    policy: Policy,
    findings: &[vliw_sim::Finding],
) -> ViolationReport {
    let case = &outcome.case;
    let still_fails = |machine: &MachineConfig, graph: &vliw_ddg::DepGraph| {
        graph.validate().is_ok() && check_policy(policy, machine, graph).is_violation()
    };
    let shrunk = shrink_case(
        &case.machine,
        &case.graph,
        still_fails,
        config.shrink_budget,
    );
    ViolationReport {
        case_index: case.index,
        case_seed: case.seed,
        policy: policy.label().to_string(),
        machine: case.machine.clone(),
        loop_name: case.graph.name.clone(),
        findings: findings.to_vec(),
        rejected: None,
        shrunk: ShrunkRepro {
            n_nodes: shrunk.graph.n_nodes(),
            n_edges: shrunk.graph.n_edges(),
            machine: shrunk.machine,
            graph: shrunk.graph,
            shrink_checks: shrunk.checks,
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_config() -> CampaignConfig {
        CampaignConfig {
            seed: 2026,
            cases: 24,
            space: MachineSpace::default(),
            shrink_budget: 200,
        }
    }

    #[test]
    fn a_small_campaign_passes_and_counts_consistently() {
        let report = run_campaign(&small_config());
        assert!(
            report.passed(),
            "violations on a stock build: {:?}",
            report.violations
        );
        let c = &report.coverage;
        assert_eq!(c.loops_generated, 24);
        assert_eq!(
            c.schedules_checked + c.unschedulable,
            24 * Policy::ALL.len() as u64
        );
        assert!(c.schedules_at_mii >= 1);
        assert!(c.schedules_at_mii <= c.schedules_checked);
        assert!(c.machines_explored >= 10, "{c:?}");
        assert!(c.distinct_iis >= 3, "{c:?}");
        assert!(c.max_ii >= 1);
        let limiting_total: u64 = c.limiting_by_policy.values().sum();
        assert_eq!(limiting_total, c.schedules_checked);
        let cluster_total: u64 = c.cluster_counts.values().sum();
        assert_eq!(cluster_total, 24);
    }

    #[test]
    fn campaigns_are_bitwise_deterministic() {
        let a = run_campaign(&small_config());
        let b = run_campaign(&small_config());
        assert_eq!(
            serde_json::to_string(&a).unwrap(),
            serde_json::to_string(&b).unwrap()
        );
    }

    #[test]
    fn reports_roundtrip_through_json() {
        let report = run_campaign(&CampaignConfig {
            cases: 6,
            ..small_config()
        });
        let json = serde_json::to_string_pretty(&report).unwrap();
        let back: CampaignReport = serde_json::from_str(&json).unwrap();
        assert_eq!(report, back);
    }
}
