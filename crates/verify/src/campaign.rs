//! The campaign runner: a seeded, rayon-parallel sweep over fuzz cases.

use crate::case::generate_case;
use crate::oracle::{check_case, check_policy, check_unrolled, CaseOutcome, Policy, PolicyOutcome};
use crate::report::{CampaignReport, Coverage, ShrunkRepro, ViolationReport};
use crate::shrink::shrink_case;
use rayon::prelude::*;
use std::collections::BTreeSet;
use vliw_arch::{MachineConfig, MachineSpace};

/// Configuration of one verification campaign.
#[derive(Debug, Clone)]
pub struct CampaignConfig {
    /// The campaign seed; every case derives deterministically from it.
    pub seed: u64,
    /// Case budget: how many `(machine, loop)` pairs to generate and audit.
    pub cases: u64,
    /// The machine space to sample from.
    pub space: MachineSpace,
    /// Failure-predicate evaluations the shrinker may spend per violation.
    pub shrink_budget: usize,
}

impl Default for CampaignConfig {
    fn default() -> Self {
        Self {
            seed: 0xC1B0,
            cases: 512,
            space: MachineSpace::default(),
            shrink_budget: 2_000,
        }
    }
}

/// Structural key of a machine: the configuration with the name stripped, so two
/// identically shaped machines count as one explored point.
fn structural_key(machine: &MachineConfig) -> String {
    serde_json::to_string(&(
        machine.n_clusters,
        &machine.cluster,
        &machine.buses,
        &machine.latencies,
    ))
    .expect("machine structure serializes")
}

/// Run a campaign: generate and audit `config.cases` cases in parallel, shrink every
/// violation, and fold everything into a deterministic [`CampaignReport`].
///
/// Cases are independent (each derives from the campaign seed and its index alone)
/// and results are folded in case order, so the report — including the JSON bytes it
/// serialises to — is identical across runs and thread counts.
pub fn run_campaign(config: &CampaignConfig) -> CampaignReport {
    let indices: Vec<u64> = (0..config.cases).collect();
    let outcomes: Vec<CaseOutcome> = indices
        .par_iter()
        .map(|&index| check_case(generate_case(config.seed, index, &config.space)))
        .collect();

    let mut coverage = Coverage::default();
    let mut machines = BTreeSet::new();
    let mut iis = BTreeSet::new();
    let mut violations = Vec::new();

    for outcome in &outcomes {
        let case = &outcome.case;
        machines.insert(structural_key(&case.machine));
        coverage.loops_generated += 1;
        *coverage
            .cluster_counts
            .entry(format!("{}", case.machine.n_clusters))
            .or_insert(0) += 1;

        for (policy, result) in &outcome.outcomes {
            match result {
                PolicyOutcome::Scheduled {
                    ii,
                    mii,
                    limiting,
                    findings,
                    lint_warnings,
                    certificate,
                } => {
                    coverage.schedules_checked += 1;
                    if ii == mii {
                        coverage.schedules_at_mii += 1;
                    }
                    iis.insert(*ii);
                    coverage.max_ii = coverage.max_ii.max(*ii);
                    if *ii > 64 {
                        coverage.ii_over_64 += 1;
                    }
                    *coverage
                        .limiting_by_policy
                        .entry(format!("{}/{limiting}", policy.label()))
                        .or_insert(0) += 1;
                    fold_lint_coverage(&mut coverage, findings, lint_warnings);
                    fold_solver_coverage(&mut coverage, *ii, certificate);
                    if !findings.is_empty() {
                        violations.push(build_violation(config, outcome, *policy, findings));
                    }
                }
                PolicyOutcome::Unschedulable => coverage.unschedulable += 1,
                PolicyOutcome::Rejected { error } => {
                    violations.push(rejection_report(outcome, policy.label().to_string(), error));
                }
            }
        }

        // The per-case unroll audit: the sampled factor's exactly-unrolled kernel
        // through BSA and the same five oracles.
        if let Some(audit) = &outcome.unrolled {
            let label = format!("bsa/unroll-x{}", audit.factor);
            match &audit.outcome {
                PolicyOutcome::Scheduled {
                    ii,
                    findings,
                    lint_warnings,
                    certificate,
                    ..
                } => {
                    coverage.unrolled_schedules_checked += 1;
                    *coverage
                        .unroll_factors
                        .entry(format!("x{}", audit.factor))
                        .or_insert(0) += 1;
                    fold_lint_coverage(&mut coverage, findings, lint_warnings);
                    fold_solver_coverage(&mut coverage, *ii, certificate);
                    if !findings.is_empty() {
                        violations.push(build_unroll_violation(
                            config,
                            outcome,
                            audit.factor,
                            label,
                            findings,
                        ));
                    }
                }
                PolicyOutcome::Unschedulable => coverage.unrolled_unschedulable += 1,
                PolicyOutcome::Rejected { error } => {
                    violations.push(rejection_report(outcome, label, error));
                }
            }
        }
    }
    coverage.machines_explored = machines.len() as u64;
    coverage.distinct_iis = iis.len() as u64;

    CampaignReport {
        campaign_seed: config.seed,
        cases: config.cases,
        policies: Policy::ALL.iter().map(|p| p.label().to_string()).collect(),
        coverage,
        violations,
    }
}

/// Fold one audited schedule's static-oracle outcome into the coverage: the
/// certified counter (the certifier passed the schedule — either there are no
/// findings at all, or the only disagreement on record is a static-pass one) and
/// the warn-lint histogram.
fn fold_lint_coverage(
    coverage: &mut Coverage,
    findings: &[vliw_sim::Finding],
    warnings: &[String],
) {
    let certified = findings.is_empty()
        || findings.iter().any(|f| {
            matches!(
                f,
                vliw_sim::Finding::StaticDynamicDisagreement { static_denies, .. }
                    if static_denies.is_empty()
            )
        });
    if certified {
        coverage.statically_certified += 1;
    }
    for id in warnings {
        *coverage.lint_warnings.entry(id.clone()).or_insert(0) += 1;
    }
}

/// Fold one audited schedule's sixth-oracle certificate into the coverage:
/// verdict class counters, fuel accounting and the certified-gap histogram.
fn fold_solver_coverage(coverage: &mut Coverage, ii: u32, certificate: &vliw_lint::OptCertificate) {
    coverage.solver_certified += 1;
    if certificate.is_exact() {
        coverage.solver_exact += 1;
    } else if certificate.lower_bound().is_some() {
        coverage.solver_lower_bounds += 1;
    }
    if certificate.exhausted {
        coverage.solver_fuel_exhausted += 1;
    }
    if let Some(gap) = certificate.gap_to(ii) {
        *coverage
            .optimality_gaps
            .entry(format!("gap{gap}"))
            .or_insert(0) += 1;
    }
}

/// A pre-scheduling rejection, packaged without shrinking (there is no schedule to
/// re-check against).
fn rejection_report(outcome: &CaseOutcome, policy_label: String, error: &str) -> ViolationReport {
    let case = &outcome.case;
    ViolationReport {
        case_index: case.index,
        case_seed: case.seed,
        policy: policy_label,
        machine: case.machine.clone(),
        loop_name: case.graph.name.clone(),
        findings: Vec::new(),
        rejected: Some(error.to_string()),
        shrunk: ShrunkRepro {
            machine: case.machine.clone(),
            graph: case.graph.clone(),
            n_nodes: case.graph.n_nodes(),
            n_edges: case.graph.n_edges(),
            shrink_checks: 0,
        },
    }
}

/// Shrink one violating case against `still_fails` and package it.
fn shrunk_violation(
    config: &CampaignConfig,
    outcome: &CaseOutcome,
    policy_label: String,
    findings: &[vliw_sim::Finding],
    still_fails: impl Fn(&MachineConfig, &vliw_ddg::DepGraph) -> bool,
) -> ViolationReport {
    let case = &outcome.case;
    let shrunk = shrink_case(
        &case.machine,
        &case.graph,
        still_fails,
        config.shrink_budget,
    );
    ViolationReport {
        case_index: case.index,
        case_seed: case.seed,
        policy: policy_label,
        machine: case.machine.clone(),
        loop_name: case.graph.name.clone(),
        findings: findings.to_vec(),
        rejected: None,
        shrunk: ShrunkRepro {
            n_nodes: shrunk.graph.n_nodes(),
            n_edges: shrunk.graph.n_edges(),
            machine: shrunk.machine,
            graph: shrunk.graph,
            shrink_checks: shrunk.checks,
        },
    }
}

/// Shrink one violating policy case and package it as a [`ViolationReport`].
fn build_violation(
    config: &CampaignConfig,
    outcome: &CaseOutcome,
    policy: Policy,
    findings: &[vliw_sim::Finding],
) -> ViolationReport {
    shrunk_violation(
        config,
        outcome,
        policy.label().to_string(),
        findings,
        |machine, graph| {
            graph.validate().is_ok() && check_policy(policy, machine, graph).is_violation()
        },
    )
}

/// Shrink one violating unroll audit.  The shrinker mutates the *original* loop; the
/// failure predicate re-unrolls every candidate at the **same** factor the report
/// names before re-checking, so the reproducer stays expressed in pre-unrolling
/// terms and still fails at exactly the labeled factor.  (`check_unrolled` returns
/// `None` — candidate rejected — when a shrink step clamps the trip count below
/// the factor, so iteration clamping can never silently re-target the repro to a
/// different factor.)
fn build_unroll_violation(
    config: &CampaignConfig,
    outcome: &CaseOutcome,
    factor: u32,
    policy_label: String,
    findings: &[vliw_sim::Finding],
) -> ViolationReport {
    shrunk_violation(
        config,
        outcome,
        policy_label,
        findings,
        move |machine, graph| {
            graph.validate().is_ok()
                && check_unrolled(machine, graph, factor).is_some_and(|a| a.outcome.is_violation())
        },
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_config() -> CampaignConfig {
        CampaignConfig {
            seed: 2026,
            cases: 24,
            space: MachineSpace::default(),
            shrink_budget: 200,
        }
    }

    #[test]
    fn a_small_campaign_passes_and_counts_consistently() {
        let report = run_campaign(&small_config());
        assert!(
            report.passed(),
            "violations on a stock build: {:?}",
            report.violations
        );
        let c = &report.coverage;
        assert_eq!(c.loops_generated, 24);
        assert_eq!(
            c.schedules_checked + c.unschedulable,
            24 * Policy::ALL.len() as u64
        );
        assert!(c.schedules_at_mii >= 1);
        assert!(c.schedules_at_mii <= c.schedules_checked);
        assert!(c.machines_explored >= 10, "{c:?}");
        assert!(c.distinct_iis >= 3, "{c:?}");
        assert!(c.max_ii >= 1);
        let limiting_total: u64 = c.limiting_by_policy.values().sum();
        assert_eq!(limiting_total, c.schedules_checked);
        let cluster_total: u64 = c.cluster_counts.values().sum();
        assert_eq!(cluster_total, 24);
        // Every case also attempts one sampled-factor unroll audit.
        assert_eq!(c.unrolled_schedules_checked + c.unrolled_unschedulable, 24);
        assert!(c.unrolled_schedules_checked >= 1, "{c:?}");
        let factor_total: u64 = c.unroll_factors.values().sum();
        assert_eq!(factor_total, c.unrolled_schedules_checked);
        // The fifth (static) oracle certified every schedule the dynamic four
        // passed — a passing campaign means zero static/dynamic disagreements.
        assert_eq!(
            c.statically_certified,
            c.schedules_checked + c.unrolled_schedules_checked
        );
        // The sixth (optimality) oracle solved every audited schedule, and a
        // passing campaign means no achieved II ever undercut a certified
        // lower bound: every gap key is non-negative.
        assert_eq!(
            c.solver_certified,
            c.schedules_checked + c.unrolled_schedules_checked
        );
        assert!(c.solver_exact >= 1, "{c:?}");
        let gap_total: u64 = c.optimality_gaps.values().sum();
        assert_eq!(gap_total, c.solver_certified);
        assert!(
            c.optimality_gaps.keys().all(|k| !k.starts_with("gap-")),
            "negative certified gap: {:?}",
            c.optimality_gaps
        );
    }

    #[test]
    fn campaigns_are_bitwise_deterministic() {
        let a = run_campaign(&small_config());
        let b = run_campaign(&small_config());
        assert_eq!(
            serde_json::to_string(&a).unwrap(),
            serde_json::to_string(&b).unwrap()
        );
    }

    #[test]
    fn reports_roundtrip_through_json() {
        let report = run_campaign(&CampaignConfig {
            cases: 6,
            ..small_config()
        });
        let json = serde_json::to_string_pretty(&report).unwrap();
        let back: CampaignReport = serde_json::from_str(&json).unwrap();
        assert_eq!(report, back);
    }
}
