//! Seeded generation of one fuzz case: a random machine and a random loop.

use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use vliw_arch::{MachineConfig, MachineSampler, MachineSpace};
use vliw_ddg::DepGraph;
use vliw_workloads::{GeneratorProfile, LoopGenerator};

/// One `(machine, loop)` pair of a campaign, reproducible from `seed` alone.
#[derive(Debug, Clone)]
pub struct FuzzCase {
    /// Position of the case in its campaign.
    pub index: u64,
    /// The case's own seed (derived from the campaign seed and `index`).
    pub seed: u64,
    /// The sampled machine configuration (always satisfies
    /// [`MachineConfig::validate`]).
    pub machine: MachineConfig,
    /// The generated loop body; its edge latencies follow `machine`'s latency model.
    pub graph: DepGraph,
    /// The sampled unroll factor (2–8, clamped to the loop's trip count) whose
    /// exactly-unrolled kernel the oracle additionally audits; a value below 2
    /// (degenerate trip count) opts the case out of the unroll audit.
    pub unroll_factor: u32,
}

/// SplitMix64 — the standard seed mixer; keeps per-case streams statistically
/// independent even though case indices are consecutive.
fn mix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Generate case `index` of the campaign seeded with `campaign_seed`, drawing the
/// machine from `space`.  Deterministic: the same arguments always produce the same
/// pair, and each case is derived independently of every other (so campaigns can be
/// generated in parallel and any single case re-generated in isolation).
pub fn generate_case(campaign_seed: u64, index: u64, space: &MachineSpace) -> FuzzCase {
    let seed = mix(campaign_seed ^ mix(index));
    let machine = MachineSampler::new(space.clone(), seed).sample(format!("fuzz{index}"));
    let mut profile_rng = ChaCha8Rng::seed_from_u64(seed ^ 0x0050_F11E);
    let profile = GeneratorProfile::fuzz(&mut profile_rng);
    let graph = LoopGenerator::new(profile, seed ^ 0x100F)
        .with_latencies(machine.latencies.clone())
        .generate(&format!("fuzz{index}"));
    // Every case also carries a sampled unroll factor so the oracle can audit one
    // exactly-unrolled kernel per case.  Two clamps keep the audit sound and cheap:
    // a factor above NITER would leave the kernel with zero iterations (nothing to
    // audit), and a factor that blows a large body past ~96 kernel nodes buys no
    // coverage the small bodies don't already provide while making the II search
    // and replay disproportionately expensive — big bodies are audited at small
    // factors, small bodies across the whole 2..=8 axis.
    const MAX_UNROLLED_KERNEL_NODES: usize = 96;
    let sampled = 2 + (mix(seed ^ 0x006_FAC7) % 7) as u32;
    let size_cap = (MAX_UNROLLED_KERNEL_NODES / graph.n_nodes().max(1)).max(2) as u32;
    let unroll_factor = sampled.min(size_cap).min(graph.iterations as u32);
    FuzzCase {
        index,
        seed,
        machine,
        graph,
        unroll_factor,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cases_are_deterministic_and_valid() {
        let space = MachineSpace::default();
        for index in 0..40 {
            let a = generate_case(42, index, &space);
            let b = generate_case(42, index, &space);
            assert_eq!(a.machine, b.machine);
            assert_eq!(a.graph, b.graph);
            assert_eq!(a.unroll_factor, b.unroll_factor);
            a.machine.validate().expect("sampled machine is valid");
            a.graph.validate().expect("generated loop is valid");
        }
    }

    #[test]
    fn unroll_factors_are_in_range_and_cover_the_axis() {
        let space = MachineSpace::default();
        let mut seen = std::collections::BTreeSet::new();
        for index in 0..60 {
            let case = generate_case(42, index, &space);
            assert!(case.unroll_factor as u64 <= case.graph.iterations);
            assert!(case.unroll_factor <= 8);
            seen.insert(case.unroll_factor);
        }
        // The sampler must exercise most of the 2..=8 axis over 60 cases.
        assert!(seen.len() >= 5, "factors seen: {seen:?}");
    }

    #[test]
    fn different_campaign_seeds_or_indices_give_different_cases() {
        let space = MachineSpace::default();
        let a = generate_case(1, 0, &space);
        let b = generate_case(2, 0, &space);
        let c = generate_case(1, 1, &space);
        assert!(a.graph != b.graph || a.machine != b.machine);
        assert!(a.graph != c.graph || a.machine != c.machine);
    }

    #[test]
    fn loop_edge_latencies_follow_the_sampled_machine() {
        let space = MachineSpace::default();
        for index in 0..60 {
            let case = generate_case(7, index, &space);
            for e in case.graph.edges() {
                assert_eq!(
                    e.latency,
                    case.machine.latency(case.graph.node(e.src).class),
                    "case {index}: edge latency diverges from the machine model"
                );
            }
        }
    }
}
