//! Fault-injection campaigns over the degradation ladder.
//!
//! The differential campaign ([`crate::campaign`]) asks *does the healthy stack
//! produce correct schedules?*  This module asks the complementary robustness
//! question: *when a scheduling policy misbehaves — drops its bus reservations,
//! lies about probe feasibility, burns the fuel budget, or outright panics — does
//! anything escape?*  A [`FaultyPolicy`] wraps the paper's BSA policy and injects
//! one sampled [`FaultPlan`] at a sampled placement step; the wrapped policy is
//! then wired into [`cvliw_core::ResilientScheduler`] as the primary rung, and the
//! campaign asserts the robustness layer's contract on every case:
//!
//! 1. **no fault escapes as an uncertified schedule** — every ladder output is
//!    re-certified here, *independently* of the certifier gate inside the ladder;
//! 2. **the ladder always terminates** with either a certified schedule or a typed
//!    error — never a panic, never silence;
//! 3. **every containment is reported** — a fault that fired must show up either
//!    as a recorded primary-rung failure or as a provably benign no-op.
//!
//! Any case violating one of these lands in
//! [`FaultCampaignReport::uncontained`], which a passing campaign requires to be
//! empty.  Cases derive deterministically from the campaign seed (same machines
//! and loops as the differential campaign, via [`generate_case`]), results fold in
//! case order, and the report serialises to byte-identical JSON across runs and
//! thread counts — `results/fault_campaign.json` is golden-tested like the figure
//! artifacts.

use crate::case::generate_case;
use cvliw_core::bsa::BsaPolicy;
use cvliw_core::{ResilientScheduler, RungError};
use rayon::prelude::*;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use vliw_arch::MachineSpace;
use vliw_ddg::NodeId;
use vliw_sms::{ClusterPolicy, EngineView, FuelBudget, ScheduleError, Trial};

/// Rung name the sabotaged primary policy is reported under.
pub const PRIMARY_RUNG: &str = "faulty-bsa";

/// Probes a [`FaultKind::BurnFuel`] fault wastes in one burst.  Campaign budgets
/// must stay below this (see [`FaultCampaignConfig::rung_fuel_probes`]) so the
/// burst provably exhausts the rung's fuel slice.
pub const FUEL_TO_BURN: u64 = 65_536;

/// The four ways a sabotaged policy misbehaves.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// Return the honest placement but with its bus reservations deleted: the
    /// schedule silently loses the communications it depends on.  Caught by the
    /// certifier gate (`missing-communication` / `dependence-violated`) — or
    /// provably benign when a later consumer re-requests the same transfer.
    DropComms,
    /// Lie about probe feasibility: claim the node places in a cluster the machine
    /// does not have.  Caught by the engine's trial validation
    /// ([`ScheduleError::RoguePolicy`]).
    FabricateTrial,
    /// Spend [`FUEL_TO_BURN`] probes on one node, exhausting the rung's fuel
    /// slice.  Caught by the fuel meter ([`ScheduleError::BudgetExhausted`]).
    BurnFuel,
    /// Panic mid-placement.  Caught by the ladder's panic containment
    /// ([`ScheduleError::PolicyPanic`]).
    Panic,
}

impl FaultKind {
    /// All kinds, in sampling order.
    pub const ALL: [FaultKind; 4] = [
        FaultKind::DropComms,
        FaultKind::FabricateTrial,
        FaultKind::BurnFuel,
        FaultKind::Panic,
    ];

    /// Stable label used in reports and coverage keys.
    pub fn label(self) -> &'static str {
        match self {
            FaultKind::DropComms => "drop-comms",
            FaultKind::FabricateTrial => "fabricate-trial",
            FaultKind::BurnFuel => "burn-fuel",
            FaultKind::Panic => "panic",
        }
    }
}

/// One injection: which fault, and the placement step it arms at.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultPlan {
    /// The misbehaviour to inject.
    pub kind: FaultKind,
    /// The `select_placement` call (counted across the whole II search) at which
    /// the fault arms.  Kinds that need the inner policy's cooperation (a trial to
    /// corrupt) stay armed until a suitable step arrives.
    pub at_step: u64,
}

/// SplitMix64 — same mixer as the case generator, so plans are independent of the
/// case streams they ride on.
fn mix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl FaultPlan {
    /// Sample the plan for one case from its seed: kind uniform over
    /// [`FaultKind::ALL`], arming step in `0..8` (early enough to fire on
    /// virtually every generated loop).
    pub fn sample(case_seed: u64) -> Self {
        let kind = FaultKind::ALL[(mix(case_seed ^ 0x00FA_0175) % 4) as usize];
        let at_step = mix(case_seed ^ 0x0057_E900) % 8;
        Self { kind, at_step }
    }
}

/// A [`ClusterPolicy`] wrapper that injects its [`FaultPlan`] exactly once and
/// otherwise delegates every call to the wrapped policy.
#[derive(Debug)]
pub struct FaultyPolicy<P> {
    inner: P,
    plan: FaultPlan,
    step: u64,
    fired: bool,
}

impl<P: ClusterPolicy> FaultyPolicy<P> {
    /// Wrap `inner` with `plan`.
    pub fn new(inner: P, plan: FaultPlan) -> Self {
        Self {
            inner,
            plan,
            step: 0,
            fired: false,
        }
    }

    /// Whether the fault actually fired (a plan armed past the last placement
    /// step, or waiting on a trial that never came, stays unfired).
    pub fn fired(&self) -> bool {
        self.fired
    }
}

impl<P: ClusterPolicy> ClusterPolicy for FaultyPolicy<P> {
    fn name(&self) -> &'static str {
        "faulty"
    }

    fn begin_ii(
        &mut self,
        graph: &vliw_ddg::DepGraph,
        machine: &vliw_arch::MachineConfig,
        ii: u32,
    ) {
        self.inner.begin_ii(graph, machine, ii);
    }

    fn begin_attempt(
        &mut self,
        graph: &vliw_ddg::DepGraph,
        machine: &vliw_arch::MachineConfig,
        ii: u32,
    ) {
        self.inner.begin_attempt(graph, machine, ii);
    }

    fn select_placement(&mut self, node: NodeId, view: &mut EngineView<'_>) -> Option<Trial> {
        let step = self.step;
        self.step += 1;
        let armed = !self.fired && step >= self.plan.at_step;
        match self.plan.kind {
            FaultKind::Panic if armed => {
                self.fired = true;
                panic!("injected fault: policy panic at placement step {step}");
            }
            FaultKind::BurnFuel if armed => {
                self.fired = true;
                for _ in 0..FUEL_TO_BURN {
                    let _ = view.probe(node, 0);
                }
                self.inner.select_placement(node, view)
            }
            FaultKind::FabricateTrial if armed => {
                // Corrupt the honest trial into a placement on a cluster the
                // machine does not have; stay armed until the inner policy
                // actually produces a trial to corrupt.
                let trial = self.inner.select_placement(node, view)?;
                self.fired = true;
                Some(Trial {
                    cluster: view.machine().n_clusters,
                    ..trial
                })
            }
            FaultKind::DropComms if armed => {
                // Stay armed until a trial actually carries bus reservations.
                let mut trial = self.inner.select_placement(node, view)?;
                if !trial.comms.is_empty() {
                    self.fired = true;
                    trial.comms.clear();
                }
                Some(trial)
            }
            _ => self.inner.select_placement(node, view),
        }
    }
}

/// Configuration of one fault campaign.
#[derive(Debug, Clone)]
pub struct FaultCampaignConfig {
    /// The campaign seed; cases and fault plans derive deterministically from it.
    pub seed: u64,
    /// How many cases to inject and audit.
    pub cases: u64,
    /// The machine space to sample from.
    pub space: MachineSpace,
    /// Probe budget of every searching rung's fuel slice.  Must stay below
    /// [`FUEL_TO_BURN`] so a burn-fuel fault provably exhausts its rung.
    pub rung_fuel_probes: u64,
}

impl Default for FaultCampaignConfig {
    fn default() -> Self {
        Self {
            seed: 0xFA17,
            cases: 256,
            space: MachineSpace::default(),
            rung_fuel_probes: 4_096,
        }
    }
}

/// One case whose fault was *not* contained — a passing campaign has none.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct UncontainedFault {
    /// Campaign position of the case.
    pub case_index: u64,
    /// The case seed (regenerates machine, loop and fault plan exactly).
    pub case_seed: u64,
    /// Label of the injected fault kind.
    pub kind: String,
    /// What escaped.
    pub detail: String,
}

/// Coverage counters of one fault campaign.  All maps are ordered, so
/// serialisation is byte-deterministic for a given seed.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct FaultCoverage {
    /// Cases per injected fault kind.
    pub injected_by_kind: BTreeMap<String, u64>,
    /// Cases whose fault actually fired, per kind.
    pub fired_by_kind: BTreeMap<String, u64>,
    /// Histogram over `"<kind>/<containment>"` of how each case's fault was
    /// absorbed.
    pub containment_by_kind: BTreeMap<String, u64>,
    /// Histogram over the rung that produced each certified schedule.
    pub rungs_won: BTreeMap<String, u64>,
    /// Cases that ended in a certified schedule (ladder success).
    pub certified_results: u64,
    /// Certified schedules produced by the constructed sequential rung.
    pub sequential_fallbacks: u64,
    /// Contained panics reported across all rung failures.
    pub contained_panics: u64,
    /// Cases where the whole ladder failed with a typed error (machines that
    /// cannot execute the loop at all; never a panic, never an uncertified
    /// schedule).
    pub ladder_failures_typed: u64,
}

/// The full, deterministic output of one fault campaign — written to
/// `results/fault_campaign.json` by the `fault` binary.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FaultCampaignReport {
    /// The campaign seed every case derives from.
    pub campaign_seed: u64,
    /// The case budget that was run.
    pub cases: u64,
    /// Probe budget of every searching rung.
    pub rung_fuel_probes: u64,
    /// Rung name the sabotaged policy ran under.
    pub primary_rung: String,
    /// Aggregate coverage counters.
    pub coverage: FaultCoverage,
    /// Every escape, in case order (empty = campaign passed).
    pub uncontained: Vec<UncontainedFault>,
}

impl FaultCampaignReport {
    /// Whether every injected fault was contained.
    pub fn passed(&self) -> bool {
        self.uncontained.is_empty()
    }
}

/// Per-case audit record, folded into the report in case order.
struct CaseRecord {
    kind: &'static str,
    fired: bool,
    containment: String,
    rung_won: Option<String>,
    contained_panics: u64,
    ladder_failed: bool,
    uncontained: Option<UncontainedFault>,
}

/// The containment channel a rung failure was absorbed through.
fn classify(error: &RungError) -> &'static str {
    match error {
        RungError::NotCertified { .. } => "caught-by-certifier",
        RungError::Schedule(ScheduleError::PolicyPanic { .. }) => "contained-panic",
        RungError::Schedule(
            ScheduleError::BudgetExhausted { .. } | ScheduleError::DeadlineExpired { .. },
        ) => "fuel-exhausted",
        RungError::Schedule(ScheduleError::RoguePolicy(_)) => "refused-rogue-trial",
        RungError::Schedule(ScheduleError::MaxIiExceeded { .. }) => "search-failed",
        RungError::Schedule(_) => "typed-error",
    }
}

/// Inject one case's fault and audit the ladder's response.
fn run_fault_case(config: &FaultCampaignConfig, index: u64) -> CaseRecord {
    let case = generate_case(config.seed, index, &config.space);
    let plan = FaultPlan::sample(case.seed);
    let kind = plan.kind.label();
    let mut policy = FaultyPolicy::new(BsaPolicy::new(), plan);
    let ladder = ResilientScheduler::new(&case.machine)
        .with_rung_fuel(FuelBudget::probes(config.rung_fuel_probes));
    let outcome = ladder.schedule_with_primary(&mut policy, PRIMARY_RUNG, &case.graph);
    let fired = policy.fired();

    let escape = |detail: String| UncontainedFault {
        case_index: index,
        case_seed: case.seed,
        kind: kind.to_string(),
        detail,
    };
    let mut record = CaseRecord {
        kind,
        fired,
        containment: String::new(),
        rung_won: None,
        contained_panics: 0,
        ladder_failed: false,
        uncontained: None,
    };

    match outcome {
        Ok(out) => {
            record.rung_won = Some(out.rung().to_string());
            record.contained_panics = out.contained_panics() as u64;

            // Invariant 1 — re-certify the winning schedule *independently* of the
            // ladder's own gate; a fault that slipped through both rungs and gate
            // would surface here.  (The empty graph is the one case the lints'
            // makespan model degenerates on; the ladder documents the same carve-out.)
            if case.graph.n_nodes() > 0 {
                let report = vliw_lint::Certifier::new(&case.machine).check(
                    &case.graph,
                    &out.result.schedule,
                    case.graph.iterations,
                );
                if !report.is_certified() {
                    record.uncontained = Some(escape(format!(
                        "final schedule failed independent recertification: {:?}",
                        report.deny_ids()
                    )));
                }
            }

            // Invariant 3 — a fired fault must be accounted for: either the primary
            // rung's failure is on record, or the fault was provably benign (only
            // drop-comms can heal — a later consumer re-requests the transfer).
            record.containment = if !fired {
                "not-fired".to_string()
            } else if out.rung() == PRIMARY_RUNG {
                if record.uncontained.is_none() && plan.kind != FaultKind::DropComms {
                    record.uncontained = Some(escape(
                        "fault fired at the primary rung yet the primary rung won".to_string(),
                    ));
                }
                "fired-benign".to_string()
            } else {
                match out.failures.iter().find(|f| f.rung == PRIMARY_RUNG) {
                    Some(failure) => classify(&failure.error).to_string(),
                    None => {
                        record.uncontained = Some(escape(
                            "fault fired but no primary-rung failure was recorded".to_string(),
                        ));
                        "unreported".to_string()
                    }
                }
            };

            // Each kind must be absorbed through its designed channel.  Drop-comms
            // is the one kind whose effect can be masked by unrelated failures
            // (a fuel- or search-limited primary), so any typed containment counts.
            if fired && record.uncontained.is_none() {
                let expected = match plan.kind {
                    FaultKind::Panic => record.containment == "contained-panic",
                    FaultKind::FabricateTrial => record.containment == "refused-rogue-trial",
                    FaultKind::BurnFuel => record.containment == "fuel-exhausted",
                    FaultKind::DropComms => true,
                };
                if !expected {
                    record.uncontained = Some(escape(format!(
                        "{kind} fault was absorbed as '{}' instead of its designed channel",
                        record.containment
                    )));
                }
            }
        }
        Err(fail) => {
            // Invariant 2 — a full-ladder failure is still a *typed* terminal
            // outcome (by construction every `LadderFailure.error` is a
            // `ScheduleError`); record it without calling it an escape.
            record.ladder_failed = true;
            record.containment = "ladder-failed-typed".to_string();
            record.contained_panics = fail
                .failures
                .iter()
                .filter(|f| f.error.is_contained_panic())
                .count() as u64;
        }
    }
    record
}

/// Run a fault campaign: inject one sampled fault per case, rayon-parallel, and
/// fold the audits into a deterministic [`FaultCampaignReport`].
///
/// Cases are independent (each derives from the campaign seed and its index
/// alone) and results are folded in case order, so the report — including the
/// JSON bytes it serialises to — is identical across runs and thread counts.
pub fn run_fault_campaign(config: &FaultCampaignConfig) -> FaultCampaignReport {
    assert!(
        config.rung_fuel_probes < FUEL_TO_BURN,
        "rung fuel must stay below FUEL_TO_BURN for burn-fuel faults to exhaust their rung"
    );
    let indices: Vec<u64> = (0..config.cases).collect();
    let records: Vec<CaseRecord> = indices
        .par_iter()
        .map(|&index| run_fault_case(config, index))
        .collect();

    let mut coverage = FaultCoverage::default();
    let mut uncontained = Vec::new();
    for record in records {
        *coverage
            .injected_by_kind
            .entry(record.kind.to_string())
            .or_insert(0) += 1;
        if record.fired {
            *coverage
                .fired_by_kind
                .entry(record.kind.to_string())
                .or_insert(0) += 1;
        }
        *coverage
            .containment_by_kind
            .entry(format!("{}/{}", record.kind, record.containment))
            .or_insert(0) += 1;
        if let Some(rung) = &record.rung_won {
            coverage.certified_results += 1;
            if rung == "sequential" {
                coverage.sequential_fallbacks += 1;
            }
            *coverage.rungs_won.entry(rung.clone()).or_insert(0) += 1;
        }
        coverage.contained_panics += record.contained_panics;
        if record.ladder_failed {
            coverage.ladder_failures_typed += 1;
        }
        if let Some(u) = record.uncontained {
            uncontained.push(u);
        }
    }

    FaultCampaignReport {
        campaign_seed: config.seed,
        cases: config.cases,
        rung_fuel_probes: config.rung_fuel_probes,
        primary_rung: PRIMARY_RUNG.to_string(),
        coverage,
        uncontained,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vliw_arch::{MachineConfig, OpClass};
    use vliw_ddg::{DepGraph, GraphBuilder};

    fn saxpy() -> DepGraph {
        GraphBuilder::new("saxpy")
            .iterations(100)
            .node("lx", OpClass::Load)
            .node("ly", OpClass::Load)
            .node("mul", OpClass::FpMul)
            .node("add", OpClass::FpAdd)
            .node("st", OpClass::Store)
            .flow("lx", "mul")
            .flow("mul", "add")
            .flow("ly", "add")
            .flow("add", "st")
            .build()
    }

    fn inject(
        kind: FaultKind,
        ladder: &ResilientScheduler,
        graph: &DepGraph,
    ) -> (
        bool,
        Result<cvliw_core::ResilientOutcome, cvliw_core::LadderFailure>,
    ) {
        let mut policy = FaultyPolicy::new(BsaPolicy::new(), FaultPlan { kind, at_step: 0 });
        let outcome = ladder.schedule_with_primary(&mut policy, PRIMARY_RUNG, graph);
        (policy.fired(), outcome)
    }

    #[test]
    fn injected_panic_is_contained_and_the_ladder_recovers() {
        let machine = MachineConfig::four_cluster(1, 1);
        let (fired, outcome) = inject(
            FaultKind::Panic,
            &ResilientScheduler::new(&machine),
            &saxpy(),
        );
        let out = outcome.unwrap();
        assert!(fired);
        assert_ne!(out.rung(), PRIMARY_RUNG);
        assert_eq!(out.contained_panics(), 1);
        let primary = &out.failures[0];
        assert_eq!(primary.rung, PRIMARY_RUNG);
        assert_eq!(classify(&primary.error), "contained-panic");
    }

    #[test]
    fn fabricated_trial_is_refused_as_a_rogue_policy() {
        let machine = MachineConfig::four_cluster(1, 1);
        let (fired, outcome) = inject(
            FaultKind::FabricateTrial,
            &ResilientScheduler::new(&machine),
            &saxpy(),
        );
        let out = outcome.unwrap();
        assert!(fired);
        assert_ne!(out.rung(), PRIMARY_RUNG);
        assert_eq!(classify(&out.failures[0].error), "refused-rogue-trial");
    }

    #[test]
    fn burned_fuel_exhausts_only_the_primary_rungs_slice() {
        let machine = MachineConfig::four_cluster(1, 1);
        let ladder = ResilientScheduler::new(&machine).with_rung_fuel(FuelBudget::probes(256));
        let (fired, outcome) = inject(FaultKind::BurnFuel, &ladder, &saxpy());
        let out = outcome.unwrap();
        assert!(fired);
        assert_eq!(classify(&out.failures[0].error), "fuel-exhausted");
        // The fallback rung ran under its own fresh slice and succeeded.
        assert_ne!(out.rung(), PRIMARY_RUNG);
        assert!(out.result.schedule.is_complete());
    }

    #[test]
    fn dropped_comms_are_caught_before_any_schedule_escapes() {
        // Force cross-cluster traffic: four single-FU clusters cannot hold saxpy
        // on one cluster at its MII, so BSA's trials carry bus reservations.
        let machine = MachineConfig::four_cluster(1, 1);
        let (fired, outcome) = inject(
            FaultKind::DropComms,
            &ResilientScheduler::new(&machine),
            &saxpy(),
        );
        let out = outcome.unwrap();
        assert!(fired, "no trial ever carried a communication to drop");
        // Whatever won, it must re-certify cleanly.
        let report = vliw_lint::Certifier::new(&machine).check(
            &saxpy(),
            &out.result.schedule,
            saxpy().iterations,
        );
        assert!(report.is_certified(), "{:?}", report.deny_ids());
        // And if the corrupted attempt made it to the gate, the certifier refused it.
        if out.rung() != PRIMARY_RUNG {
            assert_eq!(classify(&out.failures[0].error), "caught-by-certifier");
        }
    }

    #[test]
    fn a_small_fault_campaign_contains_every_fault() {
        let config = FaultCampaignConfig {
            cases: 48,
            ..FaultCampaignConfig::default()
        };
        let report = run_fault_campaign(&config);
        assert!(report.passed(), "escapes: {:?}", report.uncontained);
        let c = &report.coverage;
        assert_eq!(c.injected_by_kind.values().sum::<u64>(), 48);
        // All four kinds sampled, and most faults actually fire.
        assert_eq!(c.injected_by_kind.len(), 4, "{c:?}");
        assert!(c.fired_by_kind.len() >= 3, "{c:?}");
        assert_eq!(
            c.certified_results + c.ladder_failures_typed,
            48,
            "every case must terminate in a certified schedule or a typed error"
        );
        assert!(c.certified_results > 0);
    }

    #[test]
    fn fault_campaigns_are_bitwise_deterministic() {
        let config = FaultCampaignConfig {
            cases: 24,
            ..FaultCampaignConfig::default()
        };
        let a = run_fault_campaign(&config);
        let b = run_fault_campaign(&config);
        assert_eq!(
            serde_json::to_string(&a).unwrap(),
            serde_json::to_string(&b).unwrap()
        );
    }

    #[test]
    fn reports_roundtrip_through_json() {
        let report = run_fault_campaign(&FaultCampaignConfig {
            cases: 8,
            ..FaultCampaignConfig::default()
        });
        let json = serde_json::to_string_pretty(&report).unwrap();
        let back: FaultCampaignReport = serde_json::from_str(&json).unwrap();
        assert_eq!(report, back);
    }
}
