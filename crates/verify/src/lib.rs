//! # vliw-verify — coverage-directed differential verification
//!
//! The paper's conclusions rest on the schedulers being *correct* across a wide
//! space of clustered machine descriptions, yet the figure pipelines only ever
//! schedule — they never execute.  This crate closes that gap with fuzz campaigns:
//!
//! 1. [`case`] draws a seeded random `(machine, loop)` pair per case — machine
//!    configurations from [`vliw_arch::MachineSampler`], loop bodies from
//!    [`vliw_workloads::LoopGenerator`] under a fuzzed
//!    [`vliw_workloads::GeneratorProfile`], with the loop's edge latencies matching
//!    the sampled machine's (possibly perturbed) latency model;
//! 2. [`oracle`] runs every one of the five scheduling policies (unified SMS, BSA,
//!    N&E, round-robin, load-balanced) on each pair through the shared engine and
//!    audits every produced schedule with [`vliw_sim::check_schedule`] — static
//!    validation, cycle-level replay, and the closed-form cycle cross-checks; every
//!    case additionally draws a sampled unroll factor (2–8) and pushes its
//!    exactly-unrolled kernel ([`vliw_ddg::unroll_exact`], scheduled with BSA)
//!    through the same four oracles, so the unroll path is execution-validated too;
//! 3. [`shrink`] reduces any failing pair to a minimal reproducer by deleting nodes
//!    and edges, clamping iteration counts and simplifying the machine, re-checking
//!    the failure after every candidate step;
//! 4. [`campaign`] runs a case budget rayon-parallel from a single campaign seed,
//!    folds per-case results into coverage counters (machines explored, IIs hit,
//!    policy × limiting-resource histogram) and emits a deterministic JSON
//!    [`report::CampaignReport`] — same seed, same bytes.
//!
//! The `verify` binary drives a campaign from the command line and writes
//! `results/verify_campaign.json`; CI runs a small fixed-seed campaign on every PR
//! (the `verify-smoke` job).  The same oracle backs the opt-in `verify_cells` mode
//! of `vliw_bench::Sweep`, which execution-validates every cell of a figure
//! pipeline.
//!
//! [`fault`] turns the campaign machinery against the robustness layer itself: a
//! [`FaultyPolicy`] injects a sampled misbehaviour (dropped bus reservations,
//! fabricated trials, burned fuel, panics) into the primary rung of
//! [`cvliw_core::ResilientScheduler`] and the campaign asserts that every fault is
//! contained — no uncertified schedule escapes, the ladder always terminates with
//! a typed outcome, and every containment is on record.  The `fault` binary writes
//! the golden-tested `results/fault_campaign.json`; CI gates on it in the
//! `fault-smoke` job.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod campaign;
pub mod case;
pub mod fault;
pub mod oracle;
pub mod report;
pub mod shrink;

pub use campaign::{run_campaign, CampaignConfig};
pub use case::{generate_case, FuzzCase};
pub use fault::{
    run_fault_campaign, FaultCampaignConfig, FaultCampaignReport, FaultCoverage, FaultKind,
    FaultPlan, FaultyPolicy, UncontainedFault,
};
pub use oracle::{
    audit_scheduled, check_case, check_policy, check_policy_with, check_unrolled,
    solve_certificate, CaseOutcome, Policy, PolicyOutcome, UnrollAudit,
};
pub use report::{CampaignReport, Coverage, ShrunkRepro, ViolationReport};
pub use shrink::{induced_subgraph, shrink_case, ShrinkResult};
