//! The differential oracle: run every policy on a fuzz case, audit every schedule.

use crate::case::FuzzCase;
use cvliw_core::{
    BsaScheduler, LoadBalancedScheduler, LoopScheduler, NeScheduler, RoundRobinScheduler,
};
use serde::{Deserialize, Serialize};
use vliw_arch::MachineConfig;
use vliw_ddg::DepGraph;
use vliw_lint::{OptCertificate, OptimalSolver};
use vliw_sim::{check_schedule, verification_iterations, Finding};
use vliw_sms::{ScheduleError, ScheduledLoop, SmsScheduler};

/// The five scheduling policies of the repository, all thin strategies on the shared
/// `IiSearchDriver` engine.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Policy {
    /// The unified-machine SMS reference (scheduled on the case machine's unified
    /// counterpart — SMS is a single-cluster scheduler).
    UnifiedSms,
    /// The paper's single-pass cluster scheduler (Figure 5).
    Bsa,
    /// The two-phase Nystrom & Eichenberger-style baseline.
    NystromEichenberger,
    /// Ablation: fixed round-robin cluster assignment.
    RoundRobin,
    /// Ablation: fixed load-balanced cluster assignment.
    LoadBalanced,
}

impl Policy {
    /// Every policy, in reporting order.
    pub const ALL: [Policy; 5] = [
        Policy::UnifiedSms,
        Policy::Bsa,
        Policy::NystromEichenberger,
        Policy::RoundRobin,
        Policy::LoadBalanced,
    ];

    /// Short label used in reports and coverage counters.
    pub fn label(self) -> &'static str {
        match self {
            Policy::UnifiedSms => "unified-sms",
            Policy::Bsa => "bsa",
            Policy::NystromEichenberger => "ne",
            Policy::RoundRobin => "round-robin",
            Policy::LoadBalanced => "load-balanced",
        }
    }

    /// The machine this policy actually schedules `machine`'s loops for: the machine
    /// itself for the cluster schedulers, its unified counterpart for the SMS
    /// reference.
    pub fn target_machine(self, machine: &MachineConfig) -> MachineConfig {
        match self {
            Policy::UnifiedSms if machine.is_clustered() => machine.unified_counterpart(),
            _ => machine.clone(),
        }
    }

    /// Schedule `graph` for `machine` under this policy (on its
    /// [`Policy::target_machine`]).
    pub fn schedule(
        self,
        machine: &MachineConfig,
        graph: &DepGraph,
    ) -> Result<ScheduledLoop, ScheduleError> {
        let target = self.target_machine(machine);
        match self {
            Policy::UnifiedSms => SmsScheduler::new(&target).schedule_diag(graph),
            Policy::Bsa => BsaScheduler::new(&target).schedule_loop(graph),
            Policy::NystromEichenberger => NeScheduler::new(&target).schedule_loop(graph),
            Policy::RoundRobin => RoundRobinScheduler::new(&target).schedule_loop(graph),
            Policy::LoadBalanced => LoadBalancedScheduler::new(&target).schedule_loop(graph),
        }
    }
}

/// What happened when one policy met one fuzz case.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum PolicyOutcome {
    /// A schedule was produced and audited.
    Scheduled {
        /// The achieved initiation interval.
        ii: u32,
        /// The minimum II of the loop on the target machine.
        mii: u32,
        /// What bounded the II (the engine's diagnosis, as a label).
        limiting: String,
        /// Every oracle disagreement (empty = verified).  Includes
        /// [`Finding::StaticDynamicDisagreement`] when the static certifier — the
        /// fifth oracle — disagrees with the dynamic four about this schedule.
        findings: Vec<Finding>,
        /// Warn-level lint ids the static certifier raised (sorted, deduplicated).
        lint_warnings: Vec<String>,
        /// The sixth oracle's optimality certificate for this loop on the
        /// policy's target machine: `ii` must sit at or above its lower bound.
        certificate: OptCertificate,
    },
    /// The II search exhausted its budget — a legitimate outcome on harsh random
    /// machines (tiny register files, saturated buses), counted by the coverage but
    /// not a correctness violation.
    Unschedulable,
    /// The scheduler rejected the graph before searching — never expected for
    /// generated loops, so this *is* a violation (of the generator or the
    /// validation pipeline).
    Rejected {
        /// The scheduler's error message.
        error: String,
    },
}

impl PolicyOutcome {
    /// Whether this outcome demonstrates a correctness violation.
    pub fn is_violation(&self) -> bool {
        match self {
            PolicyOutcome::Scheduled { findings, .. } => !findings.is_empty(),
            PolicyOutcome::Unschedulable => false,
            PolicyOutcome::Rejected { .. } => true,
        }
    }
}

/// The audited outcome of the per-case unroll audit: the case's sampled factor was
/// applied with [`vliw_ddg::unroll_exact`] and the kernel scheduled with BSA, then
/// run through the same five oracles as every other schedule.
#[derive(Debug, Clone)]
pub struct UnrollAudit {
    /// The unroll factor that was applied.
    pub factor: u32,
    /// What happened when BSA met the unrolled kernel.
    pub outcome: PolicyOutcome,
}

/// The audited outcome of one case across all five policies, plus the sampled
/// unroll-factor audit.
#[derive(Debug, Clone)]
pub struct CaseOutcome {
    /// The case that was checked.
    pub case: FuzzCase,
    /// One outcome per [`Policy::ALL`] entry, in that order.
    pub outcomes: Vec<(Policy, PolicyOutcome)>,
    /// The unroll audit (`None` when the case's trip count is too small to unroll).
    pub unrolled: Option<UnrollAudit>,
}

impl CaseOutcome {
    /// The policies whose outcome demonstrates a violation.
    pub fn violating_policies(&self) -> impl Iterator<Item = Policy> + '_ {
        self.outcomes
            .iter()
            .filter(|(_, o)| o.is_violation())
            .map(|&(p, _)| p)
    }
}

/// Run `policy` on one `(machine, graph)` pair and audit the result.
///
/// The scheduler call runs behind [`vliw_sms::contain_schedule`]: a panic in any
/// policy is converted into [`ScheduleError::PolicyPanic`] and recorded as a
/// [`PolicyOutcome::Rejected`] violation of that one case, instead of unwinding
/// through the rayon pool and killing the whole campaign.
pub fn check_policy(policy: Policy, machine: &MachineConfig, graph: &DepGraph) -> PolicyOutcome {
    match vliw_sms::contain_schedule(|| policy.schedule(machine, graph)) {
        Ok(out) => {
            // The achieved II seeds the solve as its incumbent: the schedule
            // the dynamic oracles are about to validate is itself a witness,
            // so the solver only has to close the range below it.
            let certificate = solve_certificate(
                &policy.target_machine(machine),
                graph,
                Some(out.diagnostics.ii),
            );
            audit_scheduled(policy, machine, graph, &out, &certificate)
        }
        Err(e) => error_outcome(e),
    }
}

/// The sixth oracle's certificate for `graph` on `machine` (the *target* machine
/// a policy schedules for): a budgeted exact branch-and-bound solve of the
/// optimal II, seeded with the best validated achieved II as the incumbent.
/// Deterministic for a given input, so re-running it inside shrink predicates
/// reproduces the original findings.
pub fn solve_certificate(
    machine: &MachineConfig,
    graph: &DepGraph,
    incumbent: Option<u32>,
) -> OptCertificate {
    OptimalSolver::default().certify_with_incumbent(graph, machine, incumbent)
}

/// [`check_policy`] with a precomputed optimality certificate (must be for the
/// policy's [`Policy::target_machine`]); [`check_case`] shares one solve across
/// the policies targeting the same machine.
pub fn check_policy_with(
    policy: Policy,
    machine: &MachineConfig,
    graph: &DepGraph,
    certificate: &OptCertificate,
) -> PolicyOutcome {
    match vliw_sms::contain_schedule(|| policy.schedule(machine, graph)) {
        Ok(out) => audit_scheduled(policy, machine, graph, &out, certificate),
        Err(e) => error_outcome(e),
    }
}

/// Run the five audit oracles over one already-produced schedule.  Split out of
/// [`check_policy_with`] so callers that need the achieved IIs *before* solving
/// (to seed the solver's incumbent — [`check_case`] and the `fig_optgap`
/// pipeline) can schedule first and audit second without scheduling twice.
pub fn audit_scheduled(
    policy: Policy,
    machine: &MachineConfig,
    graph: &DepGraph,
    out: &ScheduledLoop,
    certificate: &OptCertificate,
) -> PolicyOutcome {
    let target = policy.target_machine(machine);
    let report = check_schedule(
        &target,
        graph,
        &out.schedule,
        verification_iterations(graph),
    );
    let mut findings = report.findings;
    // The fifth, *static* oracle: the lint certifier must agree with the
    // dynamic four on every schedule — it certifies exactly the schedules
    // they pass.  Any static-pass/dynamic-fail (or vice versa) is itself a
    // violation, and it shrinks like any other finding.
    let lint = vliw_lint::Certifier::new(&target)
        .with_certificate(certificate.clone())
        .check(graph, &out.schedule, verification_iterations(graph));
    if lint.is_certified() != findings.is_empty() {
        let dynamic_findings = findings.len();
        findings.push(Finding::StaticDynamicDisagreement {
            static_denies: lint.deny_ids(),
            dynamic_findings,
        });
    }
    // The sixth, *optimality* oracle: an achieved II below the solver's
    // certified lower bound (or any schedule for a loop the solver
    // proved unschedulable) means one of the two is unsound — a hard
    // violation that shrinks like any other finding.
    if certificate.violated_by(out.diagnostics.ii) {
        findings.push(Finding::IiBelowCertifiedBound {
            achieved: out.diagnostics.ii,
            lower_bound: certificate.lower_bound(),
        });
    }
    PolicyOutcome::Scheduled {
        ii: out.diagnostics.ii,
        mii: out.diagnostics.mii,
        limiting: out.diagnostics.limiting.to_string(),
        findings,
        lint_warnings: lint.warn_ids(),
        certificate: certificate.clone(),
    }
}

/// Map a scheduler error to its outcome: budget exhaustion is legitimate
/// coverage; everything else — malformed inputs, degenerate graphs, impossible
/// machines, contained panics, rogue policies — is a *typed rejection*: the
/// scheduler refused (or was unable) to produce a schedule and said why, which
/// the campaign records verbatim.
fn error_outcome(e: ScheduleError) -> PolicyOutcome {
    match e {
        ScheduleError::MaxIiExceeded { .. } => PolicyOutcome::Unschedulable,
        e => PolicyOutcome::Rejected {
            error: e.to_string(),
        },
    }
}

/// Audit the exactly-unrolled kernel of `graph` at `factor` under BSA: unroll with
/// [`vliw_ddg::unroll_exact`], schedule, and run the result through the five
/// oracles.  Returns `None` for factors below 2 or above the trip count (the
/// kernel would cover no iterations).
pub fn check_unrolled(
    machine: &MachineConfig,
    graph: &DepGraph,
    factor: u32,
) -> Option<UnrollAudit> {
    if factor < 2 || factor as u64 > graph.iterations {
        return None;
    }
    let kernel = vliw_ddg::unroll_exact(graph, factor).kernel;
    Some(UnrollAudit {
        factor,
        outcome: check_policy(Policy::Bsa, machine, &kernel),
    })
}

/// Run all five policies on `case` and audit every produced schedule, plus the
/// case's sampled unroll factor through BSA.
///
/// Two passes: first schedule every policy, then solve one certificate per
/// distinct target machine — seeded with the *best* achieved II among the
/// policies that target it, so the solver starts from a validated incumbent —
/// and finally audit each schedule against its machine's certificate.
pub fn check_case(case: FuzzCase) -> CaseOutcome {
    let schedules: Vec<(Policy, Result<ScheduledLoop, ScheduleError>)> = Policy::ALL
        .iter()
        .map(|&policy| {
            (
                policy,
                vliw_sms::contain_schedule(|| policy.schedule(&case.machine, &case.graph)),
            )
        })
        .collect();
    // One solver run per distinct target machine: the clustered policies share
    // the case machine, the SMS reference targets its unified counterpart.
    let unified_target = Policy::UnifiedSms.target_machine(&case.machine);
    let best_ii = |target: &MachineConfig| {
        schedules
            .iter()
            .filter(|(p, _)| p.target_machine(&case.machine) == *target)
            .filter_map(|(_, r)| r.as_ref().ok().map(|out| out.diagnostics.ii))
            .min()
    };
    let base_cert = solve_certificate(&case.machine, &case.graph, best_ii(&case.machine));
    let unified_cert = if unified_target == case.machine {
        base_cert.clone()
    } else {
        solve_certificate(&unified_target, &case.graph, best_ii(&unified_target))
    };
    let outcomes = schedules
        .into_iter()
        .map(|(policy, result)| {
            let cert = match policy {
                Policy::UnifiedSms => &unified_cert,
                _ => &base_cert,
            };
            let outcome = match result {
                Ok(out) => audit_scheduled(policy, &case.machine, &case.graph, &out, cert),
                Err(e) => error_outcome(e),
            };
            (policy, outcome)
        })
        .collect();
    let unrolled = check_unrolled(&case.machine, &case.graph, case.unroll_factor);
    CaseOutcome {
        case,
        outcomes,
        unrolled,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::case::generate_case;
    use vliw_arch::MachineSpace;

    #[test]
    fn every_policy_on_a_paper_machine_verifies_clean() {
        let case = generate_case(1234, 0, &MachineSpace::table1());
        let outcome = check_case(case);
        assert_eq!(outcome.outcomes.len(), Policy::ALL.len());
        for (policy, o) in &outcome.outcomes {
            assert!(
                !o.is_violation(),
                "{}: unexpected violation {:?}",
                policy.label(),
                o
            );
        }
        let unrolled = outcome
            .unrolled
            .expect("generated trip counts allow unrolling");
        assert!(unrolled.factor >= 2);
        assert!(
            !unrolled.outcome.is_violation(),
            "unroll x{}: unexpected violation {:?}",
            unrolled.factor,
            unrolled.outcome
        );
    }

    #[test]
    fn unroll_audits_run_clean_across_sampled_cases() {
        let space = MachineSpace::default();
        let mut audited = 0;
        for index in 0..24 {
            let case = generate_case(77, index, &space);
            if let Some(audit) = check_unrolled(&case.machine, &case.graph, case.unroll_factor) {
                assert!(
                    !audit.outcome.is_violation(),
                    "case {index} x{}: {:?}",
                    audit.factor,
                    audit.outcome
                );
                audited += 1;
            }
        }
        assert!(audited >= 12, "only {audited}/24 cases were unroll-audited");
    }

    #[test]
    fn degenerate_unroll_factors_are_skipped() {
        let case = generate_case(1234, 0, &MachineSpace::table1());
        assert!(check_unrolled(&case.machine, &case.graph, 1).is_none());
        assert!(
            check_unrolled(&case.machine, &case.graph, case.graph.iterations as u32 + 1).is_none()
        );
    }

    #[test]
    fn unified_sms_targets_the_counterpart_machine() {
        let clustered = vliw_arch::MachineConfig::four_cluster(1, 2);
        let target = Policy::UnifiedSms.target_machine(&clustered);
        assert_eq!(target.n_clusters, 1);
        assert_eq!(target.total_issue_width(), clustered.total_issue_width());
        for p in [Policy::Bsa, Policy::RoundRobin] {
            assert_eq!(p.target_machine(&clustered), clustered);
        }
    }

    #[test]
    fn policy_labels_are_distinct() {
        let labels: std::collections::BTreeSet<_> = Policy::ALL.iter().map(|p| p.label()).collect();
        assert_eq!(labels.len(), Policy::ALL.len());
    }
}
