//! Deterministic, serialisable campaign reports.

use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use vliw_arch::MachineConfig;
use vliw_ddg::DepGraph;
use vliw_sim::Finding;

/// Coverage counters accumulated over a whole campaign.  All maps are ordered
/// (`BTreeMap`), so serialisation is byte-deterministic for a given seed.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct Coverage {
    /// Distinct machine *structures* explored (names ignored).
    pub machines_explored: u64,
    /// Loops generated (one per case).
    pub loops_generated: u64,
    /// Schedules produced and differentially audited.
    pub schedules_checked: u64,
    /// Audited schedules that achieved their minimum II (`II == MII`).
    pub schedules_at_mii: u64,
    /// `(policy, case)` pairs whose II search exhausted its budget.
    pub unschedulable: u64,
    /// Distinct initiation intervals achieved across all schedules.
    pub distinct_iis: u64,
    /// The largest II achieved.
    pub max_ii: u32,
    /// Schedules whose II exceeded 64 — exercising the reservation table's
    /// multi-word rows.
    pub ii_over_64: u64,
    /// Exactly-unrolled kernels (one sampled factor per case, scheduled with BSA)
    /// produced and differentially audited.
    pub unrolled_schedules_checked: u64,
    /// Unroll audits whose II search exhausted its budget (coverage, not failure —
    /// unrolled bodies are the fastest way to overflow a tiny register file).
    pub unrolled_unschedulable: u64,
    /// Histogram over the sampled unroll factors of every audited kernel
    /// (`"x<factor>"` keys).
    pub unroll_factors: BTreeMap<String, u64>,
    /// Histogram over `"<policy>/<limiting-resource>"` of the engine's diagnosis for
    /// every produced schedule.
    pub limiting_by_policy: BTreeMap<String, u64>,
    /// Histogram over cluster counts of the sampled machines.
    pub cluster_counts: BTreeMap<String, u64>,
    /// Schedules the static certifier (the fifth oracle) certified.  In a passing
    /// campaign this equals `schedules_checked + unrolled_schedules_checked`: the
    /// static and dynamic oracles must agree on every schedule.
    pub statically_certified: u64,
    /// Histogram over warn-level lint ids the static certifier raised across all
    /// audited schedules.
    pub lint_warnings: BTreeMap<String, u64>,
    /// Schedules carrying a sixth-oracle optimality certificate.  In a passing
    /// campaign this equals `schedules_checked + unrolled_schedules_checked`:
    /// every audited schedule is solved.
    pub solver_certified: u64,
    /// Certificates that pinned the exact optimal II (verdict `Optimal`).
    pub solver_exact: u64,
    /// Certificates that only bounded the optimum from below (verdict
    /// `LowerBound`).
    pub solver_lower_bounds: u64,
    /// Certificates whose per-loop solver fuel budget ran out before the search
    /// concluded.
    pub solver_fuel_exhausted: u64,
    /// Histogram over the certified II gap `achieved − lower_bound` of every
    /// audited schedule (`"gap<k>"` keys).  Zero `achieved < lower_bound`
    /// violations means no negative keys ever appear here.
    pub optimality_gaps: BTreeMap<String, u64>,
}

/// A shrunk, self-contained reproducer of one violation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ShrunkRepro {
    /// The reduced machine.
    pub machine: MachineConfig,
    /// The reduced loop.
    pub graph: DepGraph,
    /// Nodes in the reduced loop.
    pub n_nodes: usize,
    /// Edges in the reduced loop.
    pub n_edges: usize,
    /// Failure-predicate evaluations the shrink spent.
    pub shrink_checks: usize,
}

/// One verified violation: the failing case, the policy, the findings, and the
/// shrunk reproducer.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ViolationReport {
    /// Campaign position of the failing case.
    pub case_index: u64,
    /// The case seed (regenerates the original machine and loop exactly).
    pub case_seed: u64,
    /// The policy whose schedule failed the audit.
    pub policy: String,
    /// The original sampled machine.
    pub machine: MachineConfig,
    /// Name of the original generated loop.
    pub loop_name: String,
    /// The oracle findings on the original case (empty for a pre-scheduling
    /// rejection, see `rejected`).
    pub findings: Vec<Finding>,
    /// Set when the scheduler rejected the generated graph before searching —
    /// a violation of the generation pipeline rather than of a schedule, kept
    /// distinct from the oracle findings so report consumers can triage by kind.
    pub rejected: Option<String>,
    /// The minimal reproducer (still failing after reduction).
    pub shrunk: ShrunkRepro,
}

/// The full, deterministic output of one campaign — written to
/// `results/verify_campaign.json` by the `verify` binary.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CampaignReport {
    /// The campaign seed every case derives from.
    pub campaign_seed: u64,
    /// The case budget that was run.
    pub cases: u64,
    /// Labels of the policies exercised, in order.
    pub policies: Vec<String>,
    /// Aggregate coverage counters.
    pub coverage: Coverage,
    /// Every violation found, in case order (empty = campaign passed).
    pub violations: Vec<ViolationReport>,
}

impl CampaignReport {
    /// Whether the campaign found no violations.
    pub fn passed(&self) -> bool {
        self.violations.is_empty()
    }
}
