//! Shrinking a failing `(machine, loop)` pair to a minimal reproducer.
//!
//! When a campaign case fails, the raw reproducer is a random machine plus a random
//! loop body of potentially dozens of nodes — far more than the bug needs.  The
//! shrinker greedily applies structure-preserving reductions, keeping each candidate
//! only if the caller's failure predicate still holds on it:
//!
//! * drop one node (and every incident edge) at a time;
//! * drop one edge at a time;
//! * clamp the iteration count;
//! * simplify the machine: fewer clusters, one bus, unit bus latency, single
//!   functional units, a roomy register file.
//!
//! The passes repeat to a fixpoint under a predicate-evaluation budget, so shrinking
//! always terminates even on expensive predicates.  Everything is deterministic:
//! reductions are attempted in a fixed order.

use vliw_arch::{BusConfig, ClusterConfig, MachineConfig};
use vliw_ddg::DepGraph;

/// The outcome of [`shrink_case`].
#[derive(Debug, Clone)]
pub struct ShrinkResult {
    /// The reduced machine (still failing).
    pub machine: MachineConfig,
    /// The reduced loop (still failing).
    pub graph: DepGraph,
    /// How many times the failure predicate was evaluated.
    pub checks: usize,
}

/// The subgraph of `graph` induced by the nodes with `keep[node] == true`.
///
/// Node order (and therefore the id remapping) follows the original order; edges are
/// kept iff both endpoints survive.  `iterations`, `invocations` and the name carry
/// over.  Unroll provenance (`copy`/`original`) is reset — shrunk reproducers stand
/// on their own.
pub fn induced_subgraph(graph: &DepGraph, keep: &[bool]) -> DepGraph {
    assert_eq!(keep.len(), graph.n_nodes());
    let mut out = DepGraph::new(graph.name.clone());
    out.iterations = graph.iterations;
    out.invocations = graph.invocations;
    let mut remap = vec![None; graph.n_nodes()];
    for node in graph.nodes() {
        if keep[node.id.index()] {
            remap[node.id.index()] = Some(out.add_named_node(node.class, node.name.clone()));
        }
    }
    for e in graph.edges() {
        if let (Some(src), Some(dst)) = (remap[e.src.index()], remap[e.dst.index()]) {
            out.add_edge(src, dst, e.latency, e.distance, e.kind);
        }
    }
    out
}

/// A copy of `graph` without its `drop`-th edge (by edge-list position).
fn without_edge(graph: &DepGraph, drop: usize) -> DepGraph {
    let mut out = DepGraph::new(graph.name.clone());
    out.iterations = graph.iterations;
    out.invocations = graph.invocations;
    for node in graph.nodes() {
        out.add_named_node(node.class, node.name.clone());
    }
    for (i, e) in graph.edges().enumerate() {
        if i != drop {
            out.add_edge(e.src, e.dst, e.latency, e.distance, e.kind);
        }
    }
    out
}

/// Candidate machine simplifications, most aggressive first.  Each either returns a
/// *different* valid machine or `None` when the reduction does not apply.
fn machine_reductions(machine: &MachineConfig) -> Vec<MachineConfig> {
    let mut candidates = Vec::new();
    let mut push = |m: MachineConfig| {
        if m != *machine && m.validate().is_ok() {
            candidates.push(m);
        }
    };
    if machine.n_clusters > 2 {
        let mut m = machine.clone();
        m.n_clusters = 2;
        m.name = format!("{}-2c", machine.name);
        push(m);
    }
    if machine.buses.count > 1 {
        let mut m = machine.clone();
        m.buses = BusConfig::new(1, machine.buses.latency);
        push(m);
    }
    if machine.buses.count > 0 && machine.buses.latency > 1 {
        let mut m = machine.clone();
        m.buses = BusConfig::new(machine.buses.count, 1);
        push(m);
    }
    let c = &machine.cluster;
    if c.fus != [1, 1, 1] {
        let mut m = machine.clone();
        m.cluster = ClusterConfig::new(1, 1, 1, c.registers);
        push(m);
    }
    if c.registers < 64 {
        // A roomy register file removes the register dimension from the reproducer
        // when pressure is irrelevant to the bug.
        let mut m = machine.clone();
        m.cluster = ClusterConfig::new(c.fus[0], c.fus[1], c.fus[2], 64);
        push(m);
    }
    candidates
}

/// Greedily reduce a failing `(machine, graph)` pair, re-checking `fails` after
/// every candidate reduction and keeping only reductions that preserve the failure.
/// At most `budget` predicate evaluations are spent; the pair returned always still
/// fails (the inputs are required to fail — debug-asserted).
pub fn shrink_case(
    machine: &MachineConfig,
    graph: &DepGraph,
    mut fails: impl FnMut(&MachineConfig, &DepGraph) -> bool,
    budget: usize,
) -> ShrinkResult {
    let mut machine = machine.clone();
    let mut graph = graph.clone();
    debug_assert!(fails(&machine, &graph), "shrink_case needs a failing input");
    let mut checks = 0usize;
    // Evaluate `fails` on a candidate, first returning the current best pair when
    // the evaluation budget is already spent — `checks` counts only evaluations
    // that actually ran, so it never exceeds `budget`.
    macro_rules! try_candidate {
        ($m:expr, $g:expr) => {{
            if checks >= budget {
                return ShrinkResult {
                    machine,
                    graph,
                    checks,
                };
            }
            checks += 1;
            fails($m, $g)
        }};
    }

    loop {
        let mut reduced = false;

        // 1. Node deletion, one at a time (later nodes first: they are leaves more
        // often, so early passes shed the expression trees quickly).
        let mut idx = graph.n_nodes();
        while idx > 0 {
            idx -= 1;
            if graph.n_nodes() <= 1 {
                break;
            }
            let mut keep = vec![true; graph.n_nodes()];
            keep[idx] = false;
            let candidate = induced_subgraph(&graph, &keep);
            if try_candidate!(&machine, &candidate) {
                graph = candidate;
                reduced = true;
                // Deleting node `idx` shifts later ids down; `idx` now names the
                // next-lower candidate, which the loop decrement handles.
            }
        }

        // 2. Edge deletion.
        let mut e = graph.n_edges();
        while e > 0 {
            e -= 1;
            let candidate = without_edge(&graph, e);
            if try_candidate!(&machine, &candidate) {
                graph = candidate;
                reduced = true;
            }
        }

        // 3. Iteration clamp (the simulator replays every iteration, so small
        // iteration counts also make the reproducer cheap to re-run).
        if graph.iterations > 8 {
            let mut candidate = graph.clone();
            candidate.iterations = 8;
            if try_candidate!(&machine, &candidate) {
                graph = candidate;
                reduced = true;
            }
        }

        // 4. Machine simplification.
        for candidate in machine_reductions(&machine) {
            if try_candidate!(&candidate, &graph) {
                machine = candidate;
                reduced = true;
            }
        }

        if !reduced {
            return ShrinkResult {
                machine,
                graph,
                checks,
            };
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vliw_arch::OpClass;
    use vliw_ddg::DepKind;

    fn chain(n: usize) -> DepGraph {
        let mut g = DepGraph::new("chain");
        let ids: Vec<_> = (0..n).map(|_| g.add_node(OpClass::IntAlu)).collect();
        for w in ids.windows(2) {
            g.add_edge(w[0], w[1], 1, 0, DepKind::Flow);
        }
        g
    }

    #[test]
    fn induced_subgraph_remaps_edges() {
        let g = chain(4);
        let sub = induced_subgraph(&g, &[true, false, true, true]);
        assert_eq!(sub.n_nodes(), 3);
        // Only the 2->3 edge survives (0->1 and 1->2 lose an endpoint).
        assert_eq!(sub.n_edges(), 1);
        let e = sub.edges().next().unwrap();
        assert_eq!((e.src.index(), e.dst.index()), (1, 2));
        assert!(sub.validate().is_ok());
    }

    #[test]
    fn shrinks_to_the_two_nodes_the_failure_needs() {
        // "Fails" whenever a Store consumes a Load — everything else is noise that
        // the shrinker must strip.
        let mut g = chain(6);
        let ld = g.add_node(OpClass::Load);
        let st = g.add_node(OpClass::Store);
        g.add_edge(ld, st, 2, 0, DepKind::Flow);
        let machine = MachineConfig::four_cluster(2, 4);
        let fails = |_: &MachineConfig, g: &DepGraph| {
            g.edges().any(|e| {
                g.node(e.src).class == OpClass::Load && g.node(e.dst).class == OpClass::Store
            })
        };
        let result = shrink_case(&machine, &g, fails, 10_000);
        assert_eq!(result.graph.n_nodes(), 2);
        assert_eq!(result.graph.n_edges(), 1);
        assert!(fails(&result.machine, &result.graph));
        // The machine collapsed to the simplest valid one still failing.
        assert_eq!(result.machine.n_clusters, 2);
        assert_eq!(result.machine.buses.count, 1);
        assert_eq!(result.machine.buses.latency, 1);
        assert_eq!(result.machine.cluster.fus, [1, 1, 1]);
    }

    #[test]
    fn budget_bounds_the_predicate_evaluations() {
        let g = chain(30);
        let machine = MachineConfig::two_cluster(1, 1);
        let mut evals = 0usize;
        let result = shrink_case(
            &machine,
            &g,
            |_, _| {
                evals += 1;
                true
            },
            25,
        );
        // `checks` counts exactly the evaluations that ran, and never exceeds the
        // budget (the debug-assert on the failing input is not budgeted).
        assert_eq!(result.checks, 25);
        assert!(evals <= 26);
    }

    #[test]
    fn iteration_counts_are_clamped_when_irrelevant() {
        let mut g = chain(3);
        g.iterations = 500;
        let machine = MachineConfig::two_cluster(1, 1);
        let result = shrink_case(&machine, &g, |_, _| true, 10_000);
        assert_eq!(result.graph.iterations, 8);
    }
}
