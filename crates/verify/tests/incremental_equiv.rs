//! Property test of the engine's incremental II search: for every policy, on random
//! machines and random loops, the incremental register-pressure tracker must produce
//! **byte-identical** results to the from-scratch search — the same schedules, the
//! same [`vliw_sms::ScheduleDiagnostics`] (including the II trajectory of every
//! retry) and the same fuel receipts.  The incremental path is a pure optimization;
//! any observable difference is a bug.
//!
//! The sampled machine space includes harsh configurations (tiny register files,
//! saturated buses), so the cases exercise deep II retry chains, ordering fallbacks
//! and register-limited failures, not just first-try successes.  In debug builds the
//! engine additionally cross-checks the tracker against a full `LifetimeMap` on
//! every probe, so a divergence would also pinpoint the exact placement.

use cvliw_core::{BsaScheduler, LoadBalancedScheduler, NeScheduler, RoundRobinScheduler};
use vliw_arch::{MachineConfig, MachineSpace};
use vliw_ddg::DepGraph;
use vliw_sms::{FuelBudget, ScheduleError, ScheduledLoop, SmsScheduler};
use vliw_verify::generate_case;

type Outcome = Result<ScheduledLoop, ScheduleError>;

/// Schedule `graph` under one policy twice — incremental tracker on and off — and
/// return both outcomes.
fn both_modes(label: &str, machine: &MachineConfig, graph: &DepGraph) -> (Outcome, Outcome) {
    match label {
        "unified-sms" => {
            let target = if machine.is_clustered() {
                machine.unified_counterpart()
            } else {
                machine.clone()
            };
            (
                SmsScheduler::new(&target).schedule_diag(graph),
                SmsScheduler::new(&target)
                    .incremental(false)
                    .schedule_diag(graph),
            )
        }
        "bsa" => (
            BsaScheduler::new(machine).schedule_diag(graph),
            BsaScheduler::new(machine)
                .incremental(false)
                .schedule_diag(graph),
        ),
        "ne" => (
            NeScheduler::new(machine).schedule_diag(graph),
            NeScheduler::new(machine)
                .incremental(false)
                .schedule_diag(graph),
        ),
        "round-robin" => (
            RoundRobinScheduler::new(machine).schedule_diag(graph),
            RoundRobinScheduler::new(machine)
                .incremental(false)
                .schedule_diag(graph),
        ),
        "load-balanced" => (
            LoadBalancedScheduler::new(machine).schedule_diag(graph),
            LoadBalancedScheduler::new(machine)
                .incremental(false)
                .schedule_diag(graph),
        ),
        other => unreachable!("unknown policy {other}"),
    }
}

const POLICIES: [&str; 5] = ["unified-sms", "bsa", "ne", "round-robin", "load-balanced"];

#[test]
fn incremental_search_is_byte_identical_across_policies() {
    let space = MachineSpace::default();
    let mut scheduled = 0usize;
    let mut retried = 0usize;
    for index in 0..24 {
        let case = generate_case(0xE9_01, index, &space);
        for label in POLICIES {
            let (on, off) = both_modes(label, &case.machine, &case.graph);
            assert_eq!(
                on, off,
                "incremental vs from-scratch diverged: case {index}, policy {label}"
            );
            if let Ok(out) = &on {
                scheduled += 1;
                if !out.diagnostics.ii_trajectory.is_empty() {
                    retried += 1;
                }
            }
        }
    }
    // The property is vacuous unless the cases actually schedule and actually retry
    // (II retries are where stale reuse would show up).
    assert!(scheduled >= 40, "only {scheduled} schedules produced");
    assert!(retried >= 8, "only {retried} searches took an II retry");
}

#[test]
fn incremental_search_preserves_fuel_receipts() {
    let space = MachineSpace::default();
    let mut exhausted = 0usize;
    let mut receipts = 0usize;
    for index in 0..24 {
        let case = generate_case(0xF0E1, index, &space);
        // A tight budget so some searches exhaust mid-II (the receipt then records
        // the partial spend) and the rest finish with a full receipt.
        for probes in [400u64, 1 << 40] {
            let on = BsaScheduler::new(&case.machine)
                .with_fuel(FuelBudget::probes(probes))
                .schedule_diag(&case.graph);
            let off = BsaScheduler::new(&case.machine)
                .with_fuel(FuelBudget::probes(probes))
                .incremental(false)
                .schedule_diag(&case.graph);
            assert_eq!(
                on, off,
                "fuel receipts diverged: case {index}, budget {probes}"
            );
            match &on {
                Ok(out) => {
                    assert!(
                        out.diagnostics.fuel.is_some(),
                        "budgeted run lost its receipt"
                    );
                    receipts += 1;
                }
                Err(ScheduleError::BudgetExhausted { .. }) => exhausted += 1,
                Err(_) => {}
            }
        }
    }
    assert!(
        receipts >= 12,
        "only {receipts} budgeted schedules succeeded"
    );
    assert!(
        exhausted >= 4,
        "only {exhausted} searches exhausted the budget"
    );
}
