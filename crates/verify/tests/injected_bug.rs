//! End-to-end check of the verification subsystem's detection power: inject a
//! scheduler bug — a dropped bus reservation, the classic clustered-scheduling
//! mistake — and assert that the differential oracle catches it and that the
//! shrinker reduces the failing case to a minimal reproducer.
//!
//! The faulty policy wraps the real BSA policy and silently discards one of the bus
//! transfers each placement requested.  The engine then neither reserves the bus nor
//! records the communication, so the produced schedule has a value crossing clusters
//! with no transfer carrying it — statically a `MissingCommunication`, dynamically an
//! operand that is never available in the consumer's cluster.

use cvliw_core::bsa::BsaPolicy;
use vliw_arch::MachineConfig;
use vliw_ddg::{DepGraph, NodeId};
use vliw_sim::{check_schedule, verification_iterations, Finding, Violation};
use vliw_sms::{ClusterPolicy, EngineView, IiSearchDriver, ScheduledLoop, Trial};
use vliw_verify::{generate_case, shrink_case, ShrunkRepro, ViolationReport};
use vliw_workloads::{GeneratorProfile, LoopGenerator};

/// BSA with an injected bug: the last bus transfer of every committed placement is
/// silently dropped.
struct DroppedBusReservation(BsaPolicy);

impl DroppedBusReservation {
    fn new() -> Self {
        Self(BsaPolicy::new())
    }
}

impl ClusterPolicy for DroppedBusReservation {
    fn name(&self) -> &'static str {
        "bsa-dropped-bus"
    }

    fn begin_ii(&mut self, graph: &DepGraph, machine: &MachineConfig, ii: u32) {
        self.0.begin_ii(graph, machine, ii);
    }

    fn begin_attempt(&mut self, graph: &DepGraph, machine: &MachineConfig, ii: u32) {
        self.0.begin_attempt(graph, machine, ii);
    }

    fn select_placement(&mut self, node: NodeId, view: &mut EngineView<'_>) -> Option<Trial> {
        let mut trial = self.0.select_placement(node, view)?;
        trial.comms.pop(); // the bug: one requested transfer never reaches the engine
        Some(trial)
    }
}

fn faulty_schedule(machine: &MachineConfig, graph: &DepGraph) -> Option<ScheduledLoop> {
    IiSearchDriver::new(machine)
        .schedule(graph, &mut DroppedBusReservation::new())
        .ok()
}

/// The failure predicate the shrinker re-evaluates: the faulty scheduler still
/// produces a schedule that fails the differential audit.
fn faulty_still_fails(machine: &MachineConfig, graph: &DepGraph) -> bool {
    if graph.validate().is_err() {
        return false;
    }
    match faulty_schedule(machine, graph) {
        Some(out) => !check_schedule(
            machine,
            graph,
            &out.schedule,
            verification_iterations(graph),
        )
        .is_clean(),
        None => false,
    }
}

/// A deterministic (machine, loop) pair on which correct BSA needs bus transfers —
/// scanned from seeded generator output so the test does not depend on hand-tuned
/// structure.
fn failing_pair() -> (MachineConfig, DepGraph) {
    let machine = MachineConfig::two_cluster(2, 1);
    for seed in 0..64u64 {
        let graph = LoopGenerator::new(GeneratorProfile::default(), seed).generate("inj");
        if faulty_still_fails(&machine, &graph) {
            return (machine, graph);
        }
    }
    panic!("no generated loop triggered the injected bug on {machine}");
}

#[test]
fn the_injected_bug_is_caught_by_the_differential_oracle() {
    let (machine, graph) = failing_pair();

    // Sanity: the *correct* scheduler verifies clean on the same pair.
    let good = IiSearchDriver::new(&machine)
        .schedule(&graph, &mut BsaPolicy::new())
        .expect("correct BSA schedules the loop");
    let clean = check_schedule(
        &machine,
        &graph,
        &good.schedule,
        verification_iterations(&graph),
    );
    assert!(clean.is_clean(), "{:?}", clean.findings);

    // The faulty scheduler produces a schedule the oracle rejects, with the
    // signature findings of a dropped transfer.
    let bad = faulty_schedule(&machine, &graph).expect("faulty BSA still schedules");
    let report = check_schedule(
        &machine,
        &graph,
        &bad.schedule,
        verification_iterations(&graph),
    );
    assert!(!report.is_clean());
    assert!(
        report.findings.iter().any(|f| matches!(
            f,
            Finding::StaticViolation {
                violation: Violation::MissingCommunication { .. }
            }
        )),
        "expected a MissingCommunication, got {:?}",
        report.findings
    );
    assert!(
        report
            .findings
            .iter()
            .any(|f| matches!(f, Finding::ExecutionError { .. })),
        "the replay must also notice the operand never arriving: {:?}",
        report.findings
    );
}

#[test]
fn the_injected_bug_shrinks_to_a_minimal_reproducer() {
    let (machine, graph) = failing_pair();
    let original_nodes = graph.n_nodes();

    let result = shrink_case(&machine, &graph, faulty_still_fails, 4_000);

    // Still failing, and strictly smaller than the raw case.
    assert!(faulty_still_fails(&result.machine, &result.graph));
    assert!(
        result.graph.n_nodes() < original_nodes,
        "shrinker removed nothing ({original_nodes} nodes)"
    );
    // A dropped-transfer bug needs very little structure: a producer, a consumer
    // that the scheduler splits across clusters, and the edge between them.
    assert!(
        result.graph.n_nodes() <= 6,
        "reproducer still has {} nodes",
        result.graph.n_nodes()
    );
    assert!(result.graph.n_edges() <= result.graph.n_nodes() + 2);

    // The reproducer is a self-contained, serialisable artifact.
    let repro = ViolationReport {
        case_index: 0,
        case_seed: 0,
        policy: "bsa-dropped-bus".to_string(),
        machine,
        loop_name: result.graph.name.clone(),
        findings: Vec::new(),
        rejected: None,
        shrunk: ShrunkRepro {
            n_nodes: result.graph.n_nodes(),
            n_edges: result.graph.n_edges(),
            machine: result.machine.clone(),
            graph: result.graph.clone(),
            shrink_checks: result.checks,
        },
    };
    let json = serde_json::to_string_pretty(&repro).unwrap();
    let back: ViolationReport = serde_json::from_str(&json).unwrap();
    assert_eq!(back.shrunk.graph, result.graph);
    assert_eq!(back.shrunk.machine, result.machine);
}

#[test]
fn fuzz_cases_also_trigger_the_injected_bug() {
    // The campaign's own case generator (not just the corpus generator) produces
    // cases that expose the bug — i.e. the sampled space genuinely exercises the
    // bus machinery.
    let space = vliw_arch::MachineSpace::default();
    let mut hits = 0usize;
    for index in 0..48 {
        let case = generate_case(0xB06, index, &space);
        if case.machine.is_clustered() && faulty_still_fails(&case.machine, &case.graph) {
            hits += 1;
        }
    }
    assert!(
        hits >= 3,
        "only {hits}/48 fuzz cases exercised the dropped bus reservation"
    );
}
