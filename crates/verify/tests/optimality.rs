//! Sixth-oracle integration tests: pinned known-optimal IIs on fuzz cases and
//! the certified-lower-bound invariant across policies.
//!
//! The pinned expectations are deterministic: the corpus derives from the
//! `fig_optgap` seed, and both the schedulers and the solver are deterministic
//! for a given (machine, graph) pair.

use vliw_arch::{MachineConfig, MachineSpace};
use vliw_lint::OptimalSolver;
use vliw_verify::{check_policy, generate_case, Policy, PolicyOutcome};

/// The `fig_optgap` corpus seed (see `vliw_bench::optgap::OPTGAP_SEED`).
const SEED: u64 = 20_260_809;

#[test]
fn bsa_is_provably_suboptimal_on_a_pinned_fuzz_case() {
    // fig_optgap case 8 on the Table-1 4-cluster machine: the solver finds and
    // validates its own witness at II = 2 while BSA settles for 3 — a
    // heuristic-independent proof that the paper's scheduler leaves an II on
    // the table here.  Not a violation (the bound is a floor, not a target),
    // but exactly the gap the fig_optgap pipeline histograms.
    let machine = MachineConfig::four_cluster(1, 1);
    let case = generate_case(SEED, 8, &MachineSpace::table1());
    let cert = OptimalSolver::default().certify(&case.graph, &machine);
    assert_eq!(cert.optimal_ii(), Some(2), "cold solve: {cert:?}");

    let outcome = check_policy(Policy::Bsa, &machine, &case.graph);
    let PolicyOutcome::Scheduled {
        ii,
        findings,
        certificate,
        ..
    } = outcome
    else {
        panic!("BSA must schedule fig_optgap case 8");
    };
    assert_eq!(findings, vec![], "a gap above the bound is not a violation");
    assert_eq!(ii, 3);
    assert_eq!(certificate.gap_to(ii), Some(1));
}

#[test]
fn the_certified_optimum_is_achieved_by_some_policy_on_the_first_case() {
    // fig_optgap case 0 on the 2-cluster machine: pinned exact optimum, and
    // the best policy lands exactly on it.
    let machine = MachineConfig::two_cluster(1, 1);
    let case = generate_case(SEED, 0, &MachineSpace::table1());
    let cert = OptimalSolver::default().certify(&case.graph, &machine);
    let opt = cert.optimal_ii().expect("case 0 certifies exactly");
    let best = Policy::ALL
        .iter()
        .filter_map(|&p| match check_policy(p, &machine, &case.graph) {
            PolicyOutcome::Scheduled { ii, .. } => Some(ii),
            _ => None,
        })
        .min()
        .expect("case 0 schedules");
    assert_eq!(best, opt);
}

#[test]
fn no_policy_beats_a_certified_lower_bound_across_the_corpus() {
    // The sixth oracle's hard invariant as a direct property test: every
    // schedule of every policy sits at or above its certificate's bound.
    // Scaled down in debug builds; CI runs it in release at full width.
    let cases = if cfg!(debug_assertions) { 3 } else { 12 };
    let space = MachineSpace::table1();
    for machine in [
        MachineConfig::two_cluster(1, 1),
        MachineConfig::four_cluster(1, 1),
    ] {
        for index in 0..cases {
            let case = generate_case(SEED, index, &space);
            for policy in Policy::ALL {
                match check_policy(policy, &machine, &case.graph) {
                    PolicyOutcome::Scheduled {
                        ii,
                        findings,
                        certificate,
                        ..
                    } => {
                        assert_eq!(
                            findings,
                            vec![],
                            "{} case {index} on {}",
                            policy.label(),
                            machine.name
                        );
                        let lb = certificate
                            .lower_bound()
                            .expect("scheduled loops are feasible");
                        assert!(
                            ii >= lb,
                            "{} case {index} on {}: II {ii} beats certified bound {lb}",
                            policy.label(),
                            machine.name
                        );
                    }
                    PolicyOutcome::Unschedulable => {}
                    PolicyOutcome::Rejected { error } => {
                        panic!("{} case {index}: {error}", policy.label())
                    }
                }
            }
        }
    }
}
