//! Property test of the static analysis layer against the scheduling engine: the
//! lint crate's modulo-liveness analysis recomputes the per-cluster `MaxLive`
//! register-pressure numbers **independently** of `vliw_sms::LifetimeMap` (its own
//! interval derivation, its own pressure fold over the kernel rows), and the two
//! must agree exactly on every schedule any policy produces — across random
//! machines, random loops and all five scheduling policies of the repository.
//!
//! This is the agreement that lets the certifier's `register-pressure` deny lint
//! stand in for the dynamic validator's `RegisterOverflow` check: same numbers,
//! derived two different ways.

use vliw_lint::ModuloLiveness;
use vliw_sms::cluster_max_live;
use vliw_verify::{generate_case, Policy};

#[test]
fn static_max_live_matches_lifetime_map_across_policies_and_cases() {
    let space = vliw_arch::MachineSpace::default();
    let mut schedules_checked = 0usize;
    for index in 0..32u64 {
        let case = generate_case(0x11FE, index, &space);
        for policy in Policy::ALL {
            let Ok(out) = policy.schedule(&case.machine, &case.graph) else {
                continue; // unschedulable on a harsh random machine: nothing to compare
            };
            let target = policy.target_machine(&case.machine);
            let liveness = ModuloLiveness::new(&case.graph, &out.schedule, &target);
            let reference = cluster_max_live(&case.graph, &out.schedule, &target);
            assert_eq!(
                liveness.max_live(),
                reference,
                "case {index} ({}) policy {} on {}: static MaxLive diverged from LifetimeMap",
                case.graph.name,
                policy.label(),
                target
            );
            schedules_checked += 1;
        }
    }
    assert!(
        schedules_checked >= 100,
        "only {schedules_checked} schedules compared — the space got too harsh"
    );
}

#[test]
fn static_max_live_matches_on_the_paper_machines() {
    // The Table-1 space: the machines the figures actually run on.
    let space = vliw_arch::MachineSpace::table1();
    for index in 0..12u64 {
        let case = generate_case(0xA11, index, &space);
        for policy in Policy::ALL {
            let Ok(out) = policy.schedule(&case.machine, &case.graph) else {
                continue;
            };
            let target = policy.target_machine(&case.machine);
            assert_eq!(
                ModuloLiveness::new(&case.graph, &out.schedule, &target).max_live(),
                cluster_max_live(&case.graph, &out.schedule, &target),
                "case {index} policy {}",
                policy.label()
            );
        }
    }
}
