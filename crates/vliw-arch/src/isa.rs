//! The VLIW instruction format (Figure 3 of the paper).
//!
//! One VLIW instruction is fetched per cycle and contains one sub-instruction per
//! cluster.  Each sub-instruction ([`ClusterInstruction`]) carries:
//!
//! * one operation slot per functional unit of the cluster ([`FuSlot`]), which is
//!   either a useful operation or a NOP;
//! * an `IN BUS` field naming the local register in which the value sitting in the
//!   incoming-value register (IRV) must be stored, if any;
//! * an `OUT BUS` field naming the source (a functional-unit output or a local
//!   register) of a value to be driven onto one of the shared buses, if any.
//!
//! The emitted program ([`VliwProgram`]) is what the cycle-level simulator executes and
//! what the code-size model (Figure 10) measures: the *useful operation* count excludes
//! NOP slots, the *total operation* count includes them.

use crate::machine::MachineConfig;
use crate::op::Operation;
use serde::{Deserialize, Serialize};
use std::fmt;

/// One functional-unit slot of a cluster sub-instruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum FuSlot {
    /// No operation issues on this unit this cycle.
    #[default]
    Nop,
    /// A useful operation issues on this unit.
    Op(Operation),
}

impl FuSlot {
    /// Whether the slot holds a useful operation.
    #[inline]
    pub fn is_useful(&self) -> bool {
        matches!(self, FuSlot::Op(_))
    }

    /// The operation in the slot, if any.
    #[inline]
    pub fn operation(&self) -> Option<Operation> {
        match self {
            FuSlot::Nop => None,
            FuSlot::Op(op) => Some(*op),
        }
    }
}

impl fmt::Display for FuSlot {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FuSlot::Nop => f.write_str("nop"),
            FuSlot::Op(op) => write!(f, "{op}"),
        }
    }
}

/// The `IN BUS` field: store the value in the incoming-value register into a local
/// register so later instructions of this cluster can read it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct InBusField {
    /// Which bus the value is taken from.
    pub bus: usize,
    /// The dependence-graph node whose value is being received (for tracing).
    pub node: u32,
}

/// The `OUT BUS` field: drive a value onto a shared bus.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct OutBusField {
    /// Which bus the value is driven onto.
    pub bus: usize,
    /// The dependence-graph node whose value is being sent.
    pub node: u32,
    /// Pipeline stage of the sending operation (needed to disambiguate overlapped
    /// iterations in the simulator).
    pub stage: u32,
}

/// The sub-instruction executed by one cluster in one cycle.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ClusterInstruction {
    /// One slot per functional unit of the cluster (layout follows
    /// [`crate::resources::ResourcePool`] order: all INT units, then FP, then MEM).
    pub slots: Vec<FuSlot>,
    /// Optional incoming-bus write-back.
    pub in_bus: Option<InBusField>,
    /// Optional outgoing-bus drive.
    pub out_bus: Option<OutBusField>,
}

impl ClusterInstruction {
    /// An all-NOP sub-instruction for a cluster with `n_slots` functional units.
    pub fn nops(n_slots: usize) -> Self {
        Self {
            slots: vec![FuSlot::Nop; n_slots],
            in_bus: None,
            out_bus: None,
        }
    }

    /// Number of useful operations in this sub-instruction.
    pub fn useful_ops(&self) -> usize {
        self.slots.iter().filter(|s| s.is_useful()).count()
    }

    /// Whether the sub-instruction is entirely empty (all NOPs, no bus activity).
    pub fn is_empty(&self) -> bool {
        self.useful_ops() == 0 && self.in_bus.is_none() && self.out_bus.is_none()
    }
}

/// One full VLIW instruction: a sub-instruction per cluster.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct VliwInstruction {
    /// Sub-instructions, indexed by cluster id.
    pub clusters: Vec<ClusterInstruction>,
}

impl VliwInstruction {
    /// An all-NOP instruction for `machine`.
    pub fn nops(machine: &MachineConfig) -> Self {
        Self {
            clusters: (0..machine.n_clusters)
                .map(|_| ClusterInstruction::nops(machine.cluster.issue_width()))
                .collect(),
        }
    }

    /// Number of useful operations across all clusters.
    pub fn useful_ops(&self) -> usize {
        self.clusters
            .iter()
            .map(ClusterInstruction::useful_ops)
            .sum()
    }

    /// Number of operation slots (useful or not) across all clusters.
    pub fn total_slots(&self) -> usize {
        self.clusters.iter().map(|c| c.slots.len()).sum()
    }

    /// Whether no cluster does anything in this cycle.
    pub fn is_empty(&self) -> bool {
        self.clusters.iter().all(ClusterInstruction::is_empty)
    }
}

/// A sequence of VLIW instructions (e.g. the kernel of a software-pipelined loop, or
/// the full prologue/kernel/epilogue expansion).
#[derive(Debug, Clone, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct VliwProgram {
    /// The instructions, one per cycle.
    pub instructions: Vec<VliwInstruction>,
}

impl VliwProgram {
    /// An empty program.
    pub fn new() -> Self {
        Self::default()
    }

    /// A program of `len` all-NOP instructions for `machine`.
    pub fn nops(machine: &MachineConfig, len: usize) -> Self {
        Self {
            instructions: (0..len).map(|_| VliwInstruction::nops(machine)).collect(),
        }
    }

    /// Number of instructions (cycles) in the program.
    pub fn len(&self) -> usize {
        self.instructions.len()
    }

    /// Whether the program has no instructions.
    pub fn is_empty(&self) -> bool {
        self.instructions.is_empty()
    }

    /// Total useful operations.
    pub fn useful_ops(&self) -> usize {
        self.instructions
            .iter()
            .map(VliwInstruction::useful_ops)
            .sum()
    }

    /// Total operation slots, i.e. useful operations plus NOPs.  This is the raw
    /// (uncompressed) code-size measure of Figure 10.
    pub fn total_slots(&self) -> usize {
        self.instructions
            .iter()
            .map(VliwInstruction::total_slots)
            .sum()
    }

    /// Number of NOP slots.
    pub fn nop_slots(&self) -> usize {
        self.total_slots() - self.useful_ops()
    }
}

impl fmt::Display for VliwProgram {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (cycle, instr) in self.instructions.iter().enumerate() {
            write!(f, "{cycle:4}: ")?;
            for (cid, ci) in instr.clusters.iter().enumerate() {
                write!(f, "[c{cid}:")?;
                for slot in &ci.slots {
                    write!(f, " {slot}")?;
                }
                if let Some(out) = &ci.out_bus {
                    write!(f, " out(bus{}={}#s{})", out.bus, out.node, out.stage)?;
                }
                if let Some(inb) = &ci.in_bus {
                    write!(f, " in(bus{}->{})", inb.bus, inb.node)?;
                }
                write!(f, "] ")?;
            }
            writeln!(f)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::op::{OpClass, Operation};

    #[test]
    fn nop_program_has_no_useful_ops() {
        let machine = MachineConfig::two_cluster(1, 1);
        let prog = VliwProgram::nops(&machine, 5);
        assert_eq!(prog.len(), 5);
        assert_eq!(prog.useful_ops(), 0);
        // 2 clusters x 6 FUs x 5 cycles
        assert_eq!(prog.total_slots(), 60);
        assert_eq!(prog.nop_slots(), 60);
        assert!(prog
            .instructions
            .iter()
            .all(super::VliwInstruction::is_empty));
    }

    #[test]
    fn useful_op_counting() {
        let machine = MachineConfig::unified();
        let mut prog = VliwProgram::nops(&machine, 2);
        prog.instructions[0].clusters[0].slots[0] = FuSlot::Op(Operation::new(0, OpClass::Load, 0));
        prog.instructions[1].clusters[0].slots[4] =
            FuSlot::Op(Operation::new(1, OpClass::FpMul, 0));
        assert_eq!(prog.useful_ops(), 2);
        assert_eq!(prog.nop_slots(), 2 * 12 - 2);
        assert!(!prog.instructions[0].is_empty());
    }

    #[test]
    fn bus_fields_make_instruction_non_empty() {
        let machine = MachineConfig::four_cluster(1, 1);
        let mut instr = VliwInstruction::nops(&machine);
        assert!(instr.is_empty());
        instr.clusters[2].out_bus = Some(OutBusField {
            bus: 0,
            node: 9,
            stage: 1,
        });
        assert!(!instr.is_empty());
        assert_eq!(instr.useful_ops(), 0);
    }

    #[test]
    fn display_contains_cluster_markers() {
        let machine = MachineConfig::two_cluster(1, 1);
        let prog = VliwProgram::nops(&machine, 1);
        let text = prog.to_string();
        assert!(text.contains("[c0:"));
        assert!(text.contains("[c1:"));
    }

    #[test]
    fn slot_default_is_nop() {
        assert_eq!(FuSlot::default(), FuSlot::Nop);
        assert!(!FuSlot::Nop.is_useful());
        assert!(FuSlot::Nop.operation().is_none());
    }
}
