//! Operation latencies (Table 1 of the paper).
//!
//! The published table lists the latencies assumed for each operation class; the exact
//! numbers are not fully legible in the archival scan, so this module uses the values
//! customary for the research compilers of that era (ICTINEO / SUIF-based VLIW studies)
//! and documents them here.  All units are fully pipelined — an operation occupies its
//! functional unit for a single cycle regardless of its result latency — which matches
//! the modulo-scheduling resource model used in the paper (one reservation-table slot
//! per operation).
//!
//! | class  | latency (cycles) |
//! |--------|------------------|
//! | ialu   | 1                |
//! | imul   | 2                |
//! | fadd   | 3                |
//! | fmul   | 4                |
//! | fdiv   | 17               |
//! | fsqrt  | 22               |
//! | load   | 2 (perfect L1)   |
//! | store  | 1                |
//! | branch | 1                |
//! | copy   | 1                |
//!
//! A custom [`LatencyModel`] can be constructed for sensitivity studies (e.g. the
//! longer-latency ablations exercised by the benches).

use crate::op::OpClass;
use serde::{Deserialize, Serialize};

/// Per-operation-class result latencies, in cycles.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct LatencyModel {
    latencies: [u32; OpClass::ALL.len()],
}

impl LatencyModel {
    /// The default latency model described in the module documentation.
    pub fn table1() -> Self {
        let mut latencies = [1u32; OpClass::ALL.len()];
        for (i, class) in OpClass::ALL.iter().enumerate() {
            latencies[i] = match class {
                OpClass::IntAlu => 1,
                OpClass::IntMul => 2,
                OpClass::FpAdd => 3,
                OpClass::FpMul => 4,
                OpClass::FpDiv => 17,
                OpClass::FpSqrt => 22,
                OpClass::Load => 2,
                OpClass::Store => 1,
                OpClass::Branch => 1,
                OpClass::Copy => 1,
            };
        }
        Self { latencies }
    }

    /// A model where every operation has unit latency.  Useful in tests and in the
    /// worked example of Figure 7, where the paper assumes 1-cycle operations.
    pub fn unit() -> Self {
        Self {
            latencies: [1; OpClass::ALL.len()],
        }
    }

    /// Build a model from an explicit `(class, latency)` table; classes not mentioned
    /// keep the [`LatencyModel::table1`] value.
    pub fn with_overrides(overrides: &[(OpClass, u32)]) -> Self {
        let mut model = Self::table1();
        for &(class, lat) in overrides {
            model.set(class, lat);
        }
        model
    }

    /// The latency of `class`, in cycles.  Always at least 1.
    #[inline]
    pub fn latency(&self, class: OpClass) -> u32 {
        self.latencies[Self::slot(class)]
    }

    /// Override the latency of a single class.  Latencies below 1 are clamped to 1.
    pub fn set(&mut self, class: OpClass, latency: u32) {
        self.latencies[Self::slot(class)] = latency.max(1);
    }

    /// The largest latency over all classes (an upper bound useful for sizing
    /// scheduling windows).
    pub fn max_latency(&self) -> u32 {
        *self.latencies.iter().max().expect("non-empty")
    }

    fn slot(class: OpClass) -> usize {
        OpClass::ALL
            .iter()
            .position(|&c| c == class)
            .expect("class present in OpClass::ALL")
    }
}

impl Default for LatencyModel {
    fn default() -> Self {
        Self::table1()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_latencies_match_documentation() {
        let m = LatencyModel::table1();
        assert_eq!(m.latency(OpClass::IntAlu), 1);
        assert_eq!(m.latency(OpClass::IntMul), 2);
        assert_eq!(m.latency(OpClass::FpAdd), 3);
        assert_eq!(m.latency(OpClass::FpMul), 4);
        assert_eq!(m.latency(OpClass::FpDiv), 17);
        assert_eq!(m.latency(OpClass::FpSqrt), 22);
        assert_eq!(m.latency(OpClass::Load), 2);
        assert_eq!(m.latency(OpClass::Store), 1);
        assert_eq!(m.latency(OpClass::Branch), 1);
        assert_eq!(m.latency(OpClass::Copy), 1);
    }

    #[test]
    fn unit_model_is_all_ones() {
        let m = LatencyModel::unit();
        for class in OpClass::ALL {
            assert_eq!(m.latency(class), 1);
        }
    }

    #[test]
    fn overrides_apply_and_clamp() {
        let m = LatencyModel::with_overrides(&[(OpClass::Load, 6), (OpClass::Store, 0)]);
        assert_eq!(m.latency(OpClass::Load), 6);
        // clamped to 1
        assert_eq!(m.latency(OpClass::Store), 1);
        // untouched classes keep the default
        assert_eq!(m.latency(OpClass::FpMul), 4);
    }

    #[test]
    fn max_latency_is_consistent() {
        let m = LatencyModel::table1();
        assert_eq!(m.max_latency(), 22);
        let m2 = LatencyModel::with_overrides(&[(OpClass::Load, 40)]);
        assert_eq!(m2.max_latency(), 40);
    }

    #[test]
    fn default_is_table1() {
        assert_eq!(LatencyModel::default(), LatencyModel::table1());
    }
}
