//! # vliw-arch — clustered VLIW machine description
//!
//! This crate models the clustered VLIW architecture of Sánchez & González (ICPP 2000),
//! Section 3:
//!
//! * a machine is a set of **homogeneous clusters**, each with its own functional units
//!   and a **local register file**;
//! * values produced in one cluster and consumed in another travel over one of a small
//!   number of **shared buses**; a transfer occupies the chosen bus for the whole bus
//!   latency;
//! * all clusters share the memory hierarchy (modelled as perfect in the paper);
//! * one VLIW instruction is fetched per cycle and carries, for every cluster, one
//!   operation slot per functional unit plus the `IN BUS` / `OUT BUS` fields that steer
//!   inter-cluster communication.
//!
//! The crate provides:
//!
//! * [`FuKind`], [`OpClass`] and [`LatencyModel`] — the operation repertoire and its
//!   latencies (Table 1 of the paper);
//! * [`MachineConfig`] / [`ClusterConfig`] / [`BusConfig`] — machine descriptions with
//!   the three presets evaluated in the paper (*unified*, *2-cluster*, *4-cluster*);
//! * [`ResourcePool`] — the enumeration of schedulable resources (functional-unit
//!   instances and buses) that reservation tables index;
//! * [`MachineSpace`] / [`MachineSampler`] — seeded random sampling of *valid*
//!   machine configurations (see [`MachineConfig::validate`]), the configuration
//!   space explored by the `vliw-verify` fuzzing campaigns;
//! * the VLIW instruction format ([`VliwInstruction`], [`ClusterInstruction`],
//!   [`FuSlot`], [`InBusField`], [`OutBusField`]) used by the simulator and by the
//!   code-size model.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod isa;
pub mod latency;
pub mod machine;
pub mod op;
pub mod resources;
pub mod sampler;

pub use isa::{ClusterInstruction, FuSlot, InBusField, OutBusField, VliwInstruction, VliwProgram};
pub use latency::LatencyModel;
pub use machine::{BusConfig, ClusterConfig, ClusterId, MachineConfig};
pub use op::{FuKind, OpClass, Operation};
pub use resources::{ResourceIndex, ResourceKind, ResourcePool};
pub use sampler::{MachineSampler, MachineSpace};
